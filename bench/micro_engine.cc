// Multi-stream engine throughput: RunBatch over K concurrent streams at
// several shard counts, reporting aggregate bags/sec and streams/sec. Emits
// BENCH_engine.json next to the binary's working directory.
//
//   micro_engine [num_streams] [bags_per_stream] [thread_list]
//   e.g. micro_engine 64 40 1,2,4,8

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bagcpd/common/rng.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/runtime/stream_engine.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

DetectorOptions BenchDetector() {
  DetectorOptions options;
  options.tau = 4;
  options.tau_prime = 4;
  options.bootstrap.replicates = 50;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 4;
  return options;
}

std::map<std::string, BagSequence> MakeStreams(std::size_t num_streams,
                                               std::size_t bags_per_stream) {
  std::map<std::string, BagSequence> streams;
  Rng base(2024);
  const GaussianMixture before = GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  const GaussianMixture after = GaussianMixture::Isotropic({4.0, 4.0}, 0.5);
  for (std::size_t s = 0; s < num_streams; ++s) {
    Rng rng = base.Fork(s);
    BagSequence bags;
    bags.reserve(bags_per_stream);
    for (std::size_t t = 0; t < bags_per_stream; ++t) {
      const GaussianMixture& mix =
          (s % 2 == 0 && t >= bags_per_stream / 2) ? after : before;
      bags.push_back(mix.SampleBag(20, &rng));
    }
    char key[32];
    std::snprintf(key, sizeof(key), "stream-%04zu", s);
    streams.emplace(key, std::move(bags));
  }
  return streams;
}

struct Row {
  std::size_t threads = 0;
  double seconds = 0.0;
  double bags_per_sec = 0.0;
  double streams_per_sec = 0.0;
  double speedup = 0.0;
  std::uint64_t results = 0;
  // Aggregated shard-arena counters after the run, so CI can watch pool
  // efficiency (hit rate, dropped releases) over time alongside throughput.
  BufferArenaStats arena;
  // Enqueue→process queueing latency over every processed submission.
  EngineLatencyStats latency;
};

double ArenaHitRate(const BufferArenaStats& stats) {
  return stats.acquires > 0 ? static_cast<double>(stats.pool_hits) /
                                  static_cast<double>(stats.acquires)
                            : 0.0;
}

int Main(int argc, char** argv) {
  const std::size_t num_streams =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 64;
  const std::size_t bags_per_stream =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 40;
  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  if (argc > 3) {
    thread_counts.clear();
    for (char* tok = std::strtok(argv[3], ","); tok != nullptr;
         tok = std::strtok(nullptr, ",")) {
      thread_counts.push_back(static_cast<std::size_t>(std::atoi(tok)));
    }
  }

  bench::PrintHeader(
      "micro_engine: concurrent multi-stream throughput",
      "StreamEngine::RunBatch, aggregate bags/sec vs. shard count");
  std::printf("streams=%zu bags/stream=%zu bag_size=20 replicates=50\n\n",
              num_streams, bags_per_stream);

  const std::map<std::string, BagSequence> streams =
      MakeStreams(num_streams, bags_per_stream);
  const double total_bags =
      static_cast<double>(num_streams) * static_cast<double>(bags_per_stream);

  std::vector<Row> rows;
  double baseline_seconds = 0.0;
  for (std::size_t threads : thread_counts) {
    StreamEngineOptions options;
    options.num_shards = threads;
    options.detector = BenchDetector();
    options.seed = 7;
    auto engine_owner =
        bench::Unwrap(StreamEngine::Create(options), "engine init");
    StreamEngine& engine = *engine_owner;

    const auto start = std::chrono::steady_clock::now();
    auto batch = bench::Unwrap(engine.RunBatch(streams), "RunBatch");
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();

    Row row;
    row.threads = threads;
    row.seconds = seconds;
    row.bags_per_sec = total_bags / seconds;
    row.streams_per_sec = static_cast<double>(num_streams) / seconds;
    row.results = engine.result_count();
    row.arena = engine.arena_stats();
    row.latency = engine.latency_stats();
    if (baseline_seconds == 0.0) baseline_seconds = seconds;
    row.speedup = baseline_seconds / seconds;
    rows.push_back(row);
    std::printf(
        "threads=%2zu  %8.3fs  %10.0f bags/s  %8.1f streams/s  speedup %.2fx"
        "  arena hit %.1f%%  queue mean %.1fus max %.1fus\n",
        row.threads, row.seconds, row.bags_per_sec, row.streams_per_sec,
        row.speedup, 100.0 * ArenaHitRate(row.arena),
        row.latency.mean_ns() / 1e3,
        static_cast<double>(row.latency.max_ns) / 1e3);
  }

  std::FILE* json = std::fopen("BENCH_engine.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_engine.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"micro_engine\",\n"
               "  \"streams\": %zu,\n  \"bags_per_stream\": %zu,\n"
               "  \"runs\": [\n",
               num_streams, bags_per_stream);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"threads\": %zu, \"seconds\": %.6f, "
                 "\"bags_per_sec\": %.1f, \"streams_per_sec\": %.3f, "
                 "\"speedup_vs_first\": %.3f, \"results\": %llu,\n"
                 "     \"arena\": {\"acquires\": %llu, \"pool_hits\": %llu, "
                 "\"hit_rate\": %.4f, \"releases\": %llu, "
                 "\"dropped_releases\": %llu, \"pooled_buffers\": %zu, "
                 "\"pooled_doubles\": %zu},\n"
                 "     \"queue_latency\": {\"samples\": %llu, "
                 "\"mean_ns\": %.1f, \"max_ns\": %llu}}%s\n",
                 r.threads, r.seconds, r.bags_per_sec, r.streams_per_sec,
                 r.speedup, static_cast<unsigned long long>(r.results),
                 static_cast<unsigned long long>(r.arena.acquires),
                 static_cast<unsigned long long>(r.arena.pool_hits),
                 ArenaHitRate(r.arena),
                 static_cast<unsigned long long>(r.arena.releases),
                 static_cast<unsigned long long>(r.arena.dropped_releases),
                 r.arena.pooled_buffers, r.arena.pooled_doubles,
                 static_cast<unsigned long long>(r.latency.samples),
                 r.latency.mean_ns(),
                 static_cast<unsigned long long>(r.latency.max_ns),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_engine.json\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main(int argc, char** argv) { return bagcpd::Main(argc, argv); }
