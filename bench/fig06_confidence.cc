// Reproduces paper Fig. 6: behaviour of the bootstrap confidence intervals on
// the five synthetic datasets of Section 5.1. For each dataset it prints the
// three panels: the pairwise EMD matrix (left), the 2-d MDS embedding of the
// bags (center), and the change-point score with its 95% CI band and alarms
// (right), followed by the expected-vs-observed alarm summary.
//
// Expected shape (paper): no alarms on datasets 1-3 (stationary / noisy /
// drifting), an alarm near t = 11 on dataset 4 (mean jump), and no alarm on
// dataset 5 (the drift speed-up is too subtle) — with visibly wider CIs on
// datasets 2, 3 and 5.

#include <cstdio>
#include <iostream>

#include "bagcpd/analysis/ascii_plot.h"
#include "bagcpd/analysis/mds.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/ci_datasets.h"
#include "bagcpd/emd/emd.h"
#include "bagcpd/io/table.h"
#include "bagcpd/runtime/thread_pool.h"
#include "bagcpd/signature/signature_set.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

int Main() {
  bench::PrintHeader(
      "Figure 6 — confidence-interval behaviour on datasets 1-5 (Sec. 5.1)",
      "20 bags of 2-d Gaussians, n_t ~ Poisson(50), tau = tau' = 5, 95% CI.");

  CiDatasetOptions data_options;
  data_options.seed = 6;
  std::vector<LabeledBagSequence> datasets =
      bench::Unwrap(MakeAllCiDatasets(data_options), "ci datasets");

  // The batch EMD matrices below solve all C(20, 2) transportation problems
  // over this pool; the parallel overload is bitwise-identical to the serial
  // one, so the panels do not depend on the host's core count.
  ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));

  TablePrinter summary({"dataset", "description", "expected", "alarms",
                        "mean CI width"});

  const char* descriptions[5] = {
      "large variance, stationary", "80/20 background noise",
      "gradual circular drift", "mean jump at t=11", "drift speed-up at t=11"};

  for (int index = 1; index <= 5; ++index) {
    const LabeledBagSequence& ds = datasets[static_cast<std::size_t>(index - 1)];
    std::printf("---- dataset %d: %s ----\n", index,
                descriptions[index - 1]);

    // Signatures for the panel plots (same builder the detector uses).
    SignatureBuilderOptions sig_options;
    sig_options.method = SignatureMethod::kKMeans;
    sig_options.k = 8;
    sig_options.seed = 60;
    SignatureBuilder builder(sig_options);
    // One shared-buffer SignatureSet for the whole sequence: the batch EMD
    // matrix walks every signature back to back through the cache.
    SignatureSet signatures;
    for (std::size_t t = 0; t < ds.bags.size(); ++t) {
      const Signature sig =
          bench::Unwrap(builder.Build(ds.bags[t], t), "signature");
      bench::UnwrapStatus(signatures.Append(sig), "append signature");
    }
    Matrix emd = bench::Unwrap(
        PairwiseEmdMatrix(signatures, GroundDistance::kEuclidean, &pool),
        "emd matrix");
    std::printf("left panel: pairwise EMD between bags (dark = far)\n%s\n",
                RenderHeatMap(emd).c_str());
    MdsEmbedding mds = bench::Unwrap(ClassicalMds(emd, 2), "mds");
    std::printf("center panel: bags embedded in 2-d by classical MDS\n%s\n",
                RenderScatter2d(mds.coordinates).c_str());

    DetectorOptions options;
    options.tau = 5;
    options.tau_prime = 5;
    options.bootstrap.replicates = 400;
    options.bootstrap.alpha = 0.05;
    options.signature = sig_options;
    options.seed = 61;
    auto detector_owner =
        bench::Unwrap(BagStreamDetector::Create(options), "create");
    BagStreamDetector& detector = *detector_owner;
    std::vector<StepResult> results =
        bench::Unwrap(detector.Run(ds.bags), "detector");
    bench::ResultSeries series = bench::Slice(results, ds.bags.size());
    std::printf("right panel: change-point score with 95%% CI and alarms\n%s\n",
                RenderLineChart(series.score, series.lo, series.up,
                                series.alarms, ds.change_points)
                    .c_str());

    double width = 0.0;
    for (const StepResult& r : results) width += r.ci_up - r.ci_lo;
    width /= static_cast<double>(results.size());
    char width_buf[32];
    std::snprintf(width_buf, sizeof(width_buf), "%.3f", width);
    summary.AddRow({std::to_string(index), descriptions[index - 1],
                    CiDatasetHasDetectableChange(index) ? "alarm @ t=10"
                                                        : "no alarm",
                    series.alarms.empty()
                        ? "none"
                        : "t=" + std::to_string(series.alarms.front()),
                    width_buf});
  }

  std::printf("summary (paper: alarms only on dataset 4; wider CIs on 2/3/5):\n");
  summary.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main() { return bagcpd::Main(); }
