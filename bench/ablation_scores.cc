// Ablation: scoreLR (Eq. 16) vs scoreKL (Eq. 17). Section 3.3's claim: the
// KL score is conservative and robust but insensitive to minor changes; the
// LR score behaves the opposite way. We sweep the magnitude of a planted mean
// jump and compare the scores' contrast at the change against their
// background noise (a signal-to-noise ratio), plus false-alarm behaviour on a
// noisy stationary stream.

#include <cstdio>
#include <iostream>

#include "bagcpd/analysis/metrics.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/bag_generators.h"
#include "bagcpd/io/table.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

LabeledBagSequence JumpStream(double magnitude, std::uint64_t seed) {
  MixtureStreamOptions options;
  options.bag_size_rate = 60.0;
  options.seed = seed;
  return bench::Unwrap(
      GenerateMixtureStream(
          "jump", 24,
          [magnitude](std::size_t t) {
            return GaussianMixture::Isotropic(
                t < 12 ? Point{0.0, 0.0} : Point{magnitude, 0.0}, 1.0);
          },
          [](std::size_t t) { return t < 12 ? 0 : 1; }, options),
      "jump stream");
}

// Contrast: peak score within 1 step of the change over the MAD of the rest.
double Contrast(const std::vector<StepResult>& results, std::size_t cp) {
  double peak = -1e30;
  std::vector<double> background;
  for (const StepResult& r : results) {
    if (r.time + 1 >= cp && r.time <= cp + 1) {
      peak = std::max(peak, r.score);
    } else {
      background.push_back(r.score);
    }
  }
  double spread = 1e-9;
  for (double b : background) spread += std::abs(b);
  spread /= static_cast<double>(background.size());
  return peak / spread;
}

int Main() {
  bench::PrintHeader(
      "Ablation — scoreLR (Eq. 16) vs scoreKL (Eq. 17)",
      "mean-jump magnitude sweep; contrast = peak-at-change / background.");

  TablePrinter table({"jump size", "contrast LR", "contrast KL"});
  for (double magnitude : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    double contrast[2] = {0.0, 0.0};
    const int kSeeds = 6;
    for (int seed = 0; seed < kSeeds; ++seed) {
      LabeledBagSequence ds =
          JumpStream(magnitude, 400 + static_cast<std::uint64_t>(seed));
      int which = 0;
      for (ScoreType type :
           {ScoreType::kLogLikelihoodRatio, ScoreType::kSymmetrizedKl}) {
        DetectorOptions options;
        options.tau = 5;
        options.tau_prime = 5;
        options.score_type = type;
        options.bootstrap.replicates = 0;
        options.signature.k = 6;
        options.seed = static_cast<std::uint64_t>(seed);
        auto detector_owner =
            bench::Unwrap(BagStreamDetector::Create(options), "create");
        BagStreamDetector& detector = *detector_owner;
        std::vector<StepResult> results =
            bench::Unwrap(detector.Run(ds.bags), "detector");
        contrast[which] += Contrast(results, 12);
        ++which;
      }
    }
    char mag_buf[32], lr_buf[32], kl_buf[32];
    std::snprintf(mag_buf, sizeof(mag_buf), "%.1f sigma", magnitude);
    std::snprintf(lr_buf, sizeof(lr_buf), "%.2f", contrast[0] / kSeeds);
    std::snprintf(kl_buf, sizeof(kl_buf), "%.2f", contrast[1] / kSeeds);
    table.AddRow({mag_buf, lr_buf, kl_buf});
  }
  table.Print(std::cout);

  // Operational sensitivity: which score's adaptive ALARMS catch smaller
  // jumps (Section 3.3: LR is the sensitive one).
  std::printf("\nalarm sensitivity to small jumps (hits over 8 seeds):\n");
  TablePrinter sens_table({"jump size", "LR hits", "KL hits"});
  for (double magnitude : {0.75, 1.0, 1.5, 2.5}) {
    int hits[2] = {0, 0};
    const int kSeeds = 8;
    for (int seed = 0; seed < kSeeds; ++seed) {
      LabeledBagSequence ds =
          JumpStream(magnitude, 450 + static_cast<std::uint64_t>(seed));
      int which = 0;
      for (ScoreType type :
           {ScoreType::kLogLikelihoodRatio, ScoreType::kSymmetrizedKl}) {
        DetectorOptions options;
        options.tau = 5;
        options.tau_prime = 5;
        options.score_type = type;
        options.bootstrap.replicates = 150;
        options.signature.k = 6;
        options.seed = static_cast<std::uint64_t>(seed);
        auto detector_owner =
            bench::Unwrap(BagStreamDetector::Create(options), "create");
        BagStreamDetector& detector = *detector_owner;
        const DetectionReport report = EvaluateAlarms(
            AlarmTimes(bench::Unwrap(detector.Run(ds.bags), "detector")),
            ds.change_points, 3);
        hits[which] += static_cast<int>(report.true_positives);
        ++which;
      }
    }
    char mag_buf[32];
    std::snprintf(mag_buf, sizeof(mag_buf), "%.2f sigma", magnitude);
    sens_table.AddRow({mag_buf, std::to_string(hits[0]) + "/8",
                       std::to_string(hits[1]) + "/8"});
  }
  sens_table.Print(std::cout);

  std::printf("\nfalse-alarm robustness on a noisy stationary stream:\n");
  TablePrinter fa_table({"score", "alarms / 10 runs"});
  for (ScoreType type :
       {ScoreType::kLogLikelihoodRatio, ScoreType::kSymmetrizedKl}) {
    int alarms = 0;
    for (int seed = 0; seed < 10; ++seed) {
      MixtureStreamOptions stream_options;
      stream_options.bag_size_rate = 40.0;
      stream_options.seed = 500 + static_cast<std::uint64_t>(seed);
      LabeledBagSequence ds = bench::Unwrap(
          GenerateMixtureStream(
              "noisy", 20,
              [](std::size_t) {
                return GaussianMixture::Isotropic({0.0, 0.0}, 10.0);
              },
              [](std::size_t) { return 0; }, stream_options),
          "noisy stream");
      DetectorOptions options;
      options.tau = 5;
      options.tau_prime = 5;
      options.score_type = type;
      options.bootstrap.replicates = 200;
      options.signature.k = 6;
      options.seed = static_cast<std::uint64_t>(seed);
      auto detector_owner =
          bench::Unwrap(BagStreamDetector::Create(options), "create");
      BagStreamDetector& detector = *detector_owner;
      alarms += static_cast<int>(
          AlarmTimes(bench::Unwrap(detector.Run(ds.bags), "detector")).size());
    }
    fa_table.AddRow({ScoreTypeName(type), std::to_string(alarms)});
  }
  fa_table.Print(std::cout);
  std::printf(
      "\nreading (Sec. 3.3): LR is the more sensitive score, KL the more\n"
      "conservative/robust one.\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main() { return bagcpd::Main(); }
