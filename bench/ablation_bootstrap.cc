// Ablation: Bayesian vs standard bootstrap for the per-step confidence
// intervals (Section 4.2). The paper's argument for the Bayesian bootstrap is
// smoothness with small windows: the standard bootstrap's replicate scores
// collapse onto few atoms when tau' is small, making quantile CIs coarse.

#include <cstdio>
#include <iostream>
#include <set>

#include "bagcpd/analysis/metrics.h"
#include "bagcpd/core/bootstrap.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/ci_datasets.h"
#include "bagcpd/io/table.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

int Main() {
  bench::PrintHeader(
      "Ablation — Bayesian vs standard bootstrap CIs (Sec. 4.2)",
      "replicate-distribution granularity and end-to-end alarm behaviour.");

  // 1) Replicate granularity at a fixed inspection point with small windows.
  ScoreContext ctx;
  const std::size_t tau = 4, tau_prime = 3;
  ctx.log_ref_ref = Matrix(tau, tau, 0.4);
  ctx.log_test_test = Matrix(tau_prime, tau_prime, 0.5);
  ctx.log_ref_test = Matrix(tau, tau_prime, 1.0);
  ctx.log_ref_test(0, 0) = 1.8;
  ctx.log_ref_ref(0, 1) = 0.7;
  ctx.log_ref_ref(1, 0) = 0.7;

  TablePrinter granularity({"method", "distinct replicate scores / 400",
                            "CI width"});
  for (BootstrapMethod method :
       {BootstrapMethod::kBayesian, BootstrapMethod::kStandard}) {
    Rng rng(40);
    std::set<long long> distinct;
    std::vector<double> pi_ref(tau, 1.0 / tau);
    std::vector<double> pi_test(tau_prime, 1.0 / tau_prime);
    BootstrapOptions options;
    options.replicates = 400;
    options.method = method;
    for (int r = 0; r < 400; ++r) {
      std::vector<double> gr = ResampleWeights(method, pi_ref, &rng);
      std::vector<double> gt = ResampleWeights(method, pi_test, &rng);
      Result<double> score =
          ComputeScore(ScoreType::kSymmetrizedKl, ctx, gr, gt);
      if (score.ok()) {
        distinct.insert(static_cast<long long>(score.ValueOrDie() * 1e12));
      }
    }
    Rng rng2(41);
    BootstrapInterval ci = bench::Unwrap(
        BootstrapScoreInterval(ScoreType::kSymmetrizedKl, ctx, pi_ref, pi_test,
                               options, &rng2),
        "bootstrap");
    char width_buf[32];
    std::snprintf(width_buf, sizeof(width_buf), "%.4f", ci.up - ci.lo);
    granularity.AddRow({BootstrapMethodName(method),
                        std::to_string(distinct.size()), width_buf});
  }
  granularity.Print(std::cout);

  // 2) End-to-end alarm behaviour across seeds.
  std::printf("\nend-to-end on Section 5.1 datasets (tau = tau' = 5):\n");
  TablePrinter behaviour({"dataset", "method", "hit rate", "false alarms"});
  for (int index : {1, 4}) {
    for (BootstrapMethod method :
         {BootstrapMethod::kBayesian, BootstrapMethod::kStandard}) {
      int hits = 0;
      int false_alarms = 0;
      const int kSeeds = 10;
      for (int seed = 0; seed < kSeeds; ++seed) {
        CiDatasetOptions data_options;
        data_options.seed = 600 + static_cast<std::uint64_t>(seed);
        LabeledBagSequence ds =
            bench::Unwrap(MakeCiDataset(index, data_options), "dataset");
        DetectorOptions options;
        options.tau = 5;
        options.tau_prime = 5;
        options.bootstrap.replicates = 200;
        options.bootstrap.method = method;
        options.signature.k = 8;
        options.seed = static_cast<std::uint64_t>(seed);
        auto detector_owner =
            bench::Unwrap(BagStreamDetector::Create(options), "create");
        BagStreamDetector& detector = *detector_owner;
        const DetectionReport report = EvaluateAlarms(
            AlarmTimes(bench::Unwrap(detector.Run(ds.bags), "detector")),
            ds.change_points, 3);
        hits += static_cast<int>(report.true_positives);
        false_alarms += static_cast<int>(report.false_positives);
      }
      behaviour.AddRow({"ds" + std::to_string(index),
                        BootstrapMethodName(method),
                        std::to_string(hits) + "/" +
                            std::to_string(index == 4 ? 10 : 0),
                        std::to_string(false_alarms)});
    }
  }
  behaviour.Print(std::cout);
  std::printf(
      "\nreading (Sec. 4.2): the Bayesian bootstrap yields a continuum of\n"
      "replicate scores even with 7 window elements, where the standard\n"
      "bootstrap collapses to few atoms; detection quality is comparable,\n"
      "smoothness is the differentiator.\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main() { return bagcpd::Main(); }
