// EMD transport-solver microbenchmark: the workspace-backed dense solver
// (emd/transport_solver.h) against the generic MinCostFlow reference path it
// replaced — per-solve latency at K = 4 / 16 / 64, steady-state allocations
// per solve (the workspace growth counter), and pairwise-matrix throughput.
// Both paths must agree bitwise on every instance; the harness aborts if a
// single solve diverges. A second sweep (K = 4..256) races the approximate
// solvers (emd/approx: sinkhorn, sliced) against the exact workspace, and a
// fidelity section replays fig07/fig11-style detector scenarios under each
// solver to report max |delta score| and the detection-delay shift of the
// argmax step. A large-K sweep (K = 64..512) races the exact solver's dense
// Dijkstra scan against its 4-ary-heap specialization (bitwise-identical by
// construction; the harness verifies anyway), and a rolling-step section
// times the detector's per-push batch — the (W - 1) shared-right solves of
// UpdateRollingTable — as one ComputeBatch call against the pre-batch
// per-pair dense loop. Emits BENCH_emd.json in the working directory, which
// tools/check_perf_gate.py hard-gates (>= 1.3x at K = 16 for the exact
// rows; --emd-approx gates >= 3x at K = 64 for both approximate solvers,
// zero steady-state allocations, and the fidelity ceilings; --emd-large
// gates the heap >= 1.5x at K = 256 and the batched rolling step >= 1.2x at
// K = 64, zero steady-state allocations on both).
//
//   micro_emd [repeats]   (default 50; scales the iteration counts)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bagcpd/common/rng.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/pamap_simulator.h"
#include "bagcpd/emd/approx/emd_solver.h"
#include "bagcpd/emd/approx/options.h"
#include "bagcpd/emd/emd.h"
#include "bagcpd/emd/min_cost_flow.h"
#include "bagcpd/emd/transport_solver.h"
#include "bagcpd/graph/enron_simulator.h"
#include "bagcpd/graph/features.h"
#include "bagcpd/signature/signature_set.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

Signature RandomSignature(Rng* rng, std::size_t k, std::size_t dim) {
  Signature s;
  for (std::size_t i = 0; i < k; ++i) {
    Point c(dim);
    for (double& v : c) v = rng->Uniform(-5.0, 5.0);
    s.AddCenter(c, rng->Uniform(0.5, 3.0));
  }
  return s;
}

// The pre-workspace ComputeEmd path, verbatim: build a fresh MinCostFlow
// network (vector-of-vectors adjacency, heap Dijkstra), solve, and extract
// the full EmdSolution the old ComputeEmdDetailed always materialized.
double ReferenceEmd(SignatureView a, SignatureView b,
                    const GroundDistanceFn& ground) {
  const std::size_t k = a.size();
  const std::size_t l = b.size();
  const double total_flow = std::min(a.TotalWeight(), b.TotalWeight());
  const std::size_t source = 0;
  const std::size_t sink = k + l + 1;
  MinCostFlow network(k + l + 2);
  for (std::size_t i = 0; i < k; ++i) {
    network.AddArc(source, 1 + i, a.weight(i), 0.0);
  }
  std::vector<std::vector<int>> transport_ids(k, std::vector<int>(l));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      transport_ids[i][j] =
          network.AddArc(1 + i, 1 + k + j, std::min(a.weight(i), b.weight(j)),
                         ground(a.center(i), b.center(j)));
    }
  }
  for (std::size_t j = 0; j < l; ++j) {
    network.AddArc(1 + k + j, sink, b.weight(j), 0.0);
  }
  FlowSolution flow =
      bench::Unwrap(network.Solve(source, sink, total_flow), "reference");
  Matrix flow_matrix(k, l);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      flow_matrix(i, j) = network.FlowOn(transport_ids[i][j]);
    }
  }
  return flow.cost / flow.flow;
}

struct SolveRow {
  std::size_t k = 0;
  double ref_ns_per_solve = 0.0;
  double ns_per_solve = 0.0;
  double speedup = 0.0;
  double steady_state_allocs_per_solve = 0.0;
};

struct ApproxRow {
  std::size_t k = 0;
  std::string solver;
  double exact_ns_per_solve = 0.0;
  double ns_per_solve = 0.0;
  double speedup_vs_exact = 0.0;
  double steady_state_allocs_per_solve = 0.0;
};

struct FidelityRow {
  std::string scenario;
  std::string solver;
  double max_abs_score_delta = 0.0;
  // argmax(score) step of the approximate run minus the exact run's: the
  // shift in where the strongest change-point evidence lands.
  long delay_delta_steps = 0;
};

struct LargeKRow {
  std::size_t k = 0;
  double dense_ns_per_solve = 0.0;
  double heap_ns_per_solve = 0.0;
  double heap_speedup = 0.0;
  double steady_state_allocs_per_solve = 0.0;  // Heap-path workspace growth.
};

struct BatchRow {
  std::size_t k = 0;
  std::size_t pairs = 0;
  double serial_ns_per_step = 0.0;
  double batched_ns_per_step = 0.0;
  double batched_speedup = 0.0;
  double steady_state_allocs_per_step = 0.0;  // Batched-path growth.
};

// Runs the detector over `bags` with the given approximate-solver spec and
// returns the per-step scores (bootstrap off: fidelity measures the score
// path itself, not CI resampling noise on top of it).
std::vector<double> ScoreSeries(const BagSequence& bags,
                                const DetectorOptions& base,
                                const std::string& emd_spec) {
  DetectorOptions options = base;
  options.bootstrap.replicates = 0;
  options.emd =
      bench::Unwrap(ParseEmdSolverSpec(emd_spec), "emd spec");
  auto detector =
      bench::Unwrap(BagStreamDetector::Create(options), "fidelity detector");
  const std::vector<StepResult> results =
      bench::Unwrap(detector->Run(bags), "fidelity run");
  std::vector<double> scores;
  scores.reserve(results.size());
  for (const StepResult& r : results) scores.push_back(r.score);
  return scores;
}

std::size_t ArgMax(const std::vector<double>& v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

// One fidelity scenario: exact vs each approximate solver on the same stream.
void RunFidelityScenario(const char* name, const BagSequence& bags,
                         const DetectorOptions& base,
                         std::vector<FidelityRow>* rows) {
  const std::vector<double> exact = ScoreSeries(bags, base, "exact");
  const std::size_t exact_peak = ArgMax(exact);
  for (const char* spec : {"sinkhorn:0.1", "sliced:16"}) {
    const std::vector<double> approx = ScoreSeries(bags, base, spec);
    FidelityRow row;
    row.scenario = name;
    row.solver = spec;
    for (std::size_t i = 0; i < exact.size() && i < approx.size(); ++i) {
      row.max_abs_score_delta =
          std::max(row.max_abs_score_delta, std::abs(approx[i] - exact[i]));
    }
    row.delay_delta_steps = static_cast<long>(ArgMax(approx)) -
                            static_cast<long>(exact_peak);
    rows->push_back(row);
    std::printf(
        "fidelity %-12s %-14s max|dScore| %.4f   delay shift %+ld steps\n",
        name, spec, row.max_abs_score_delta, row.delay_delta_steps);
  }
}

int Main(int argc, char** argv) {
  const int repeats = argc > 1 ? std::atoi(argv[1]) : 50;

  bench::PrintHeader(
      "micro_emd: workspace transport solver vs MinCostFlow reference",
      "per-solve latency, steady-state allocations, matrix throughput");
  std::printf("repeats=%d\n\n", repeats);

  const GroundDistanceFn ground =
      MakeGroundDistance(GroundDistance::kEuclidean);

  std::vector<SolveRow> rows;
  for (const std::size_t k : {std::size_t{4}, std::size_t{16},
                              std::size_t{64}}) {
    // A fixed pool of instances, cycled by both paths in the same order.
    Rng rng(1000 + k);
    const std::size_t pool_size = 16;
    std::vector<Signature> left;
    std::vector<Signature> right;
    for (std::size_t p = 0; p < pool_size; ++p) {
      left.push_back(RandomSignature(&rng, k, 2));
      right.push_back(RandomSignature(&rng, k, 2));
    }

    EmdWorkspace workspace;
    // Bitwise agreement on every instance before any timing.
    for (std::size_t p = 0; p < pool_size; ++p) {
      const double ref = ReferenceEmd(left[p], right[p], ground);
      const double ours =
          bench::Unwrap(workspace.Compute(left[p], right[p],
                                          GroundDistance::kEuclidean),
                        "workspace solve");
      if (ref != ours) {
        std::fprintf(stderr,
                     "FATAL: solver diverged from reference at k=%zu p=%zu "
                     "(%.17g vs %.17g)\n",
                     k, p, ref, ours);
        return 1;
      }
    }

    // Iteration count scaled so each pass stays well under a second.
    const int iterations =
        std::max(64, repeats * static_cast<int>(6400 / (k * k)));
    const std::uint64_t allocs_before = workspace.allocation_count();
    std::uint64_t timed_solves = 0;

    double ref_sink = 0.0;
    double ours_sink = 0.0;
    const std::pair<double, double> timed = bench::BestSecondsPerCallInterleaved(
        3, iterations, &ref_sink, &ours_sink,
        [&](int it) {
          const std::size_t p = static_cast<std::size_t>(it) % pool_size;
          return ReferenceEmd(left[p], right[p], ground);
        },
        [&](int it) {
          const std::size_t p = static_cast<std::size_t>(it) % pool_size;
          ++timed_solves;
          return bench::Unwrap(
              workspace.Compute(left[p], right[p], GroundDistance::kEuclidean),
              "workspace solve");
        });
    // Same instances in the same order: the sums must match bitwise (the
    // verification pass again, but over the timed loops themselves).
    if (ref_sink != ours_sink) {
      std::fprintf(stderr, "FATAL: timed-loop checksums diverged at k=%zu\n",
                   k);
      return 1;
    }

    SolveRow row;
    row.k = k;
    row.ref_ns_per_solve = timed.first * 1e9;
    row.ns_per_solve = timed.second * 1e9;
    row.speedup = row.ref_ns_per_solve / row.ns_per_solve;
    // The verification pass already saw this (K, L), so the timed loops run
    // against warm buffers: any growth here is a steady-state allocation.
    row.steady_state_allocs_per_solve =
        timed_solves == 0
            ? 0.0
            : static_cast<double>(workspace.allocation_count() -
                                  allocs_before) /
                  static_cast<double>(timed_solves);
    rows.push_back(row);
    std::printf(
        "emd_solve k=%-3zu reference %9.0f ns/solve   workspace %9.0f "
        "ns/solve   speedup %.2fx   steady-state allocs/solve %.4f\n",
        k, row.ref_ns_per_solve, row.ns_per_solve, row.speedup,
        row.steady_state_allocs_per_solve);
  }

  // Pairwise-matrix throughput: the fig06/MDS batch shape.
  const std::size_t pairwise_n = 24;
  const std::size_t pairwise_k = 8;
  double pairwise_seconds = 0.0;
  double pairwise_solves_per_second = 0.0;
  {
    Rng rng(6);
    SignatureSet set;
    for (std::size_t i = 0; i < pairwise_n; ++i) {
      bench::UnwrapStatus(set.Append(RandomSignature(&rng, pairwise_k, 2)),
                          "append");
    }
    const int matrix_repeats = std::max(3, repeats / 5);
    double matrix_sink = 0.0;
    pairwise_seconds =
        bench::BestSecondsPerCall(3, matrix_repeats, &matrix_sink, [&](int) {
          return bench::Unwrap(PairwiseEmdMatrix(set), "pairwise")(0, 1);
        });
    const double solves =
        static_cast<double>(pairwise_n * (pairwise_n - 1) / 2);
    pairwise_solves_per_second = solves / pairwise_seconds;
    std::printf(
        "\npairwise_matrix n=%zu k=%zu: %.4fs per matrix, %.0f solves/s\n",
        pairwise_n, pairwise_k, pairwise_seconds, pairwise_solves_per_second);
  }

  // --- Large-K sweep: dense Dijkstra scan vs 4-ary-heap specialization ----
  std::printf("\nlarge-K sweep (dense scan vs 4-ary-heap Dijkstra):\n");
  std::vector<LargeKRow> large_k_rows;
  for (const std::size_t k : {std::size_t{64}, std::size_t{128},
                              std::size_t{256}, std::size_t{512}}) {
    Rng rng(4000 + k);
    const std::size_t pool_size = k >= 256 ? 4 : 8;
    std::vector<Signature> left;
    std::vector<Signature> right;
    for (std::size_t p = 0; p < pool_size; ++p) {
      left.push_back(RandomSignature(&rng, k, 2));
      right.push_back(RandomSignature(&rng, k, 2));
    }

    EmdWorkspace dense;
    dense.set_heap_threshold(0);  // Always the dense scan (pre-heap path).
    EmdWorkspace heap;
    heap.set_heap_threshold(1);  // Always the heap.

    // Bitwise agreement on every instance before any timing (this also warms
    // both workspaces, so the timed loops measure steady state).
    for (std::size_t p = 0; p < pool_size; ++p) {
      const double d = bench::Unwrap(
          dense.Compute(left[p], right[p], GroundDistance::kEuclidean),
          "dense solve");
      const double h = bench::Unwrap(
          heap.Compute(left[p], right[p], GroundDistance::kEuclidean),
          "heap solve");
      if (d != h) {
        std::fprintf(stderr,
                     "FATAL: heap diverged from dense at k=%zu p=%zu "
                     "(%.17g vs %.17g)\n",
                     k, p, d, h);
        return 1;
      }
    }

    // The dense solve is ~K augmentations x O(K^2) scans apiece; scale the
    // budget so K = 512 stays bounded while K = 64 still amortizes the timer.
    const int iterations =
        std::max(2, repeats * static_cast<int>(65536 / (k * k)));
    const std::uint64_t allocs_before = heap.allocation_count();
    std::uint64_t timed_solves = 0;
    double dense_sink = 0.0;
    double heap_sink = 0.0;
    const std::pair<double, double> timed =
        bench::BestSecondsPerCallInterleaved(
            2, iterations, &dense_sink, &heap_sink,
            [&](int it) {
              const std::size_t p = static_cast<std::size_t>(it) % pool_size;
              return bench::Unwrap(
                  dense.Compute(left[p], right[p], GroundDistance::kEuclidean),
                  "dense solve");
            },
            [&](int it) {
              const std::size_t p = static_cast<std::size_t>(it) % pool_size;
              ++timed_solves;
              return bench::Unwrap(
                  heap.Compute(left[p], right[p], GroundDistance::kEuclidean),
                  "heap solve");
            });
    if (dense_sink != heap_sink) {
      std::fprintf(stderr,
                   "FATAL: large-K timed-loop checksums diverged at k=%zu\n",
                   k);
      return 1;
    }

    LargeKRow row;
    row.k = k;
    row.dense_ns_per_solve = timed.first * 1e9;
    row.heap_ns_per_solve = timed.second * 1e9;
    row.heap_speedup = row.dense_ns_per_solve / row.heap_ns_per_solve;
    row.steady_state_allocs_per_solve =
        timed_solves == 0
            ? 0.0
            : static_cast<double>(heap.allocation_count() - allocs_before) /
                  static_cast<double>(timed_solves);
    large_k_rows.push_back(row);
    std::printf(
        "emd_large k=%-3zu dense %10.0f ns/solve   heap %10.0f ns/solve   "
        "speedup %.2fx   steady-state allocs/solve %.4f\n",
        k, row.dense_ns_per_solve, row.heap_ns_per_solve, row.heap_speedup,
        row.steady_state_allocs_per_solve);
  }

  // --- Rolling-step batch: (W - 1) shared-right solves per detector push --
  std::printf(
      "\nrolling-step batch (W - 1 = 9 shared-right pairs per step):\n");
  std::vector<BatchRow> batch_rows;
  for (const std::size_t k : {std::size_t{16}, std::size_t{64}}) {
    Rng rng(7000 + k);
    const std::size_t pairs = 9;  // tau = tau' = 5 => W - 1 = 9 new pairs.
    const std::size_t pool_size = 4;
    // pool_size detector "steps": each has `pairs` older window signatures
    // and the one newest signature they all pair with.
    std::vector<std::vector<Signature>> olders(pool_size);
    std::vector<Signature> newest;
    for (std::size_t s = 0; s < pool_size; ++s) {
      for (std::size_t p = 0; p < pairs; ++p) {
        olders[s].push_back(RandomSignature(&rng, k, 2));
      }
      newest.push_back(RandomSignature(&rng, k, 2));
    }
    std::vector<std::vector<SignatureView>> older_views(pool_size);
    for (std::size_t s = 0; s < pool_size; ++s) {
      for (const Signature& sig : olders[s]) older_views[s].push_back(sig);
    }

    // Serial baseline = the pre-batch rolling-table inner loop: one dense
    // per-pair solve per (older, newest) pair. Batched = one shared-right
    // ComputeBatch per step at the default heap crossover — exactly what
    // UpdateRollingTable runs now. Same solves either way, so the two timed
    // loops must agree bitwise.
    EmdWorkspace serial;
    serial.set_heap_threshold(0);
    EmdWorkspace batched;  // Default crossover: heap engages at K + L >= 48.
    std::vector<double> out(pairs);

    // Warm both paths over every step and verify agreement.
    for (std::size_t s = 0; s < pool_size; ++s) {
      bench::UnwrapStatus(
          batched.ComputeBatch(older_views[s].data(), pairs, newest[s],
                               GroundDistance::kEuclidean, out.data()),
          "batched step");
      for (std::size_t p = 0; p < pairs; ++p) {
        const double d = bench::Unwrap(
            serial.Compute(older_views[s][p], newest[s],
                           GroundDistance::kEuclidean),
            "serial solve");
        if (d != out[p]) {
          std::fprintf(stderr,
                       "FATAL: batched rolling step diverged at k=%zu s=%zu "
                       "p=%zu (%.17g vs %.17g)\n",
                       k, s, p, d, out[p]);
          return 1;
        }
      }
    }

    const int iterations =
        std::max(4, repeats * static_cast<int>(4096 / (k * k)));
    const std::uint64_t allocs_before = batched.allocation_count();
    std::uint64_t timed_steps = 0;
    double serial_sink = 0.0;
    double batched_sink = 0.0;
    const std::pair<double, double> timed =
        bench::BestSecondsPerCallInterleaved(
            2, iterations, &serial_sink, &batched_sink,
            [&](int it) {
              const std::size_t s = static_cast<std::size_t>(it) % pool_size;
              double sum = 0.0;
              for (std::size_t p = 0; p < pairs; ++p) {
                sum += bench::Unwrap(
                    serial.Compute(older_views[s][p], newest[s],
                                   GroundDistance::kEuclidean),
                    "serial solve");
              }
              return sum;
            },
            [&](int it) {
              const std::size_t s = static_cast<std::size_t>(it) % pool_size;
              ++timed_steps;
              bench::UnwrapStatus(
                  batched.ComputeBatch(older_views[s].data(), pairs,
                                       newest[s], GroundDistance::kEuclidean,
                                       out.data()),
                  "batched step");
              double sum = 0.0;
              for (std::size_t p = 0; p < pairs; ++p) sum += out[p];
              return sum;
            });
    if (serial_sink != batched_sink) {
      std::fprintf(stderr,
                   "FATAL: rolling-step timed-loop checksums diverged at "
                   "k=%zu\n",
                   k);
      return 1;
    }

    BatchRow row;
    row.k = k;
    row.pairs = pairs;
    row.serial_ns_per_step = timed.first * 1e9;
    row.batched_ns_per_step = timed.second * 1e9;
    row.batched_speedup = row.serial_ns_per_step / row.batched_ns_per_step;
    row.steady_state_allocs_per_step =
        timed_steps == 0
            ? 0.0
            : static_cast<double>(batched.allocation_count() - allocs_before) /
                  static_cast<double>(timed_steps);
    batch_rows.push_back(row);
    std::printf(
        "emd_batch k=%-3zu serial %10.0f ns/step   batched %10.0f ns/step   "
        "speedup %.2fx   steady-state allocs/step %.4f\n",
        k, row.serial_ns_per_step, row.batched_ns_per_step,
        row.batched_speedup, row.steady_state_allocs_per_step);
  }

  // --- Approximate-solver sweep: exact vs sinkhorn vs sliced --------------
  std::printf("\napprox sweep (normalized signatures, squared-Euclidean):\n");
  std::vector<ApproxRow> approx_rows;
  for (const std::size_t k : {std::size_t{4}, std::size_t{16}, std::size_t{64},
                              std::size_t{256}}) {
    Rng rng(9000 + k);
    const std::size_t pool_size = 8;
    std::vector<Signature> left;
    std::vector<Signature> right;
    for (std::size_t p = 0; p < pool_size; ++p) {
      Signature a = RandomSignature(&rng, k, 2);
      Signature b = RandomSignature(&rng, k, 2);
      a.NormalizeInPlace();
      b.NormalizeInPlace();
      left.push_back(std::move(a));
      right.push_back(std::move(b));
    }
    // The exact dense solve is O(K^3)-ish; keep the iteration budget sane at
    // K = 256 while still amortizing timer noise at small K.
    const int iterations = std::max(
        2, repeats * static_cast<int>(6400 / (k * k)) / 2 + (k <= 64 ? 8 : 0));

    EmdSolver exact_solver;  // kind = exact
    EmdSolver sinkhorn_solver(
        bench::Unwrap(ParseEmdSolverSpec("sinkhorn:0.1"), "sinkhorn spec"));
    EmdSolver sliced_solver(
        bench::Unwrap(ParseEmdSolverSpec("sliced:16"), "sliced spec"));
    struct Contender {
      const char* name;
      EmdSolver* solver;
    };
    const Contender contenders[] = {{"sinkhorn:0.1", &sinkhorn_solver},
                                    {"sliced:16", &sliced_solver}};

    double sink = 0.0;
    // Warm every solver over the whole pool so the timed loops measure
    // steady state (any later growth is a steady-state allocation).
    for (std::size_t p = 0; p < pool_size; ++p) {
      sink += bench::Unwrap(
          exact_solver.Compute(left[p], right[p],
                               GroundDistance::kSquaredEuclidean),
          "exact warmup");
      for (const Contender& c : contenders) {
        sink += bench::Unwrap(
            c.solver->Compute(left[p], right[p],
                              GroundDistance::kSquaredEuclidean),
            "approx warmup");
      }
    }

    const double exact_seconds =
        bench::BestSecondsPerCall(2, iterations, &sink, [&](int it) {
          const std::size_t p = static_cast<std::size_t>(it) % pool_size;
          return bench::Unwrap(
              exact_solver.Compute(left[p], right[p],
                                   GroundDistance::kSquaredEuclidean),
              "exact solve");
        });
    for (const Contender& c : contenders) {
      const std::uint64_t allocs_before = c.solver->allocation_count();
      std::uint64_t solves = 0;
      const double seconds =
          bench::BestSecondsPerCall(2, iterations, &sink, [&](int it) {
            const std::size_t p = static_cast<std::size_t>(it) % pool_size;
            ++solves;
            return bench::Unwrap(
                c.solver->Compute(left[p], right[p],
                                  GroundDistance::kSquaredEuclidean),
                "approx solve");
          });
      ApproxRow row;
      row.k = k;
      row.solver = c.name;
      row.exact_ns_per_solve = exact_seconds * 1e9;
      row.ns_per_solve = seconds * 1e9;
      row.speedup_vs_exact = exact_seconds / seconds;
      row.steady_state_allocs_per_solve =
          solves == 0 ? 0.0
                      : static_cast<double>(c.solver->allocation_count() -
                                            allocs_before) /
                            static_cast<double>(solves);
      approx_rows.push_back(row);
      std::printf(
          "emd_approx k=%-3zu %-14s exact %10.0f ns/solve   approx %9.0f "
          "ns/solve   speedup %6.2fx   steady-state allocs/solve %.4f\n",
          k, row.solver.c_str(), row.exact_ns_per_solve, row.ns_per_solve,
          row.speedup_vs_exact, row.steady_state_allocs_per_solve);
    }
    if (sink == 12345.678) std::printf(" ");  // Keep `sink` observable.
  }

  // --- Fidelity: fig07/fig11-style detector scenarios ---------------------
  std::printf("\nfidelity (bootstrap off; score path only):\n");
  std::vector<FidelityRow> fidelity_rows;
  {
    // fig07-style: PAMAP-like activity stream, tau = tau' = 5, k = 10.
    PamapSimulatorOptions sim;
    sim.seed = 777;
    sim.subject = 1;
    sim.sampling_hz = 20.0;
    sim.mean_bags_per_activity = 6.0;
    PamapRecording rec =
        bench::Unwrap(SimulatePamapSubject(sim), "pamap simulator");
    DetectorOptions options;
    options.tau = 5;
    options.tau_prime = 5;
    options.signature.method = SignatureMethod::kKMeans;
    options.signature.k = 10;
    options.seed = 71;
    RunFidelityScenario("fig07_pamap", rec.stream.bags, options,
                        &fidelity_rows);
  }
  {
    // fig11-style: ENRON-like weekly email graphs, destination strength,
    // tau = 5 / tau' = 3, k = 8.
    EnronSimulatorOptions sim;
    sim.seed = 2002;
    sim.weeks = 60;
    sim.node_rate = 50.0;
    sim.edge_density = 0.25;
    EnronStream stream =
        bench::Unwrap(SimulateEnronStream(sim), "enron simulator");
    BagSequence bags;
    for (const BipartiteGraph& g : stream.weekly_graphs) {
      bags.push_back(bench::Unwrap(
          ExtractGraphFeature(g, GraphFeature::kDestinationStrength),
          "feature"));
    }
    DetectorOptions options;
    options.tau = 5;
    options.tau_prime = 3;
    options.signature.method = SignatureMethod::kKMeans;
    options.signature.k = 8;
    options.seed = 116;
    RunFidelityScenario("fig11_enron", bags, options, &fidelity_rows);
  }

  std::FILE* json = std::fopen("BENCH_emd.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_emd.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"micro_emd\",\n  \"repeats\": %d,\n"
               "  \"runs\": [\n",
               repeats);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SolveRow& r = rows[i];
    std::fprintf(json,
                 "    {\"name\": \"emd_solve_k%zu\", \"k\": %zu, "
                 "\"ref_ns_per_solve\": %.1f, \"ns_per_solve\": %.1f, "
                 "\"speedup\": %.3f, "
                 "\"steady_state_allocs_per_solve\": %.6f}%s\n",
                 r.k, r.k, r.ref_ns_per_solve, r.ns_per_solve, r.speedup,
                 r.steady_state_allocs_per_solve,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"pairwise\": {\"n\": %zu, \"k\": %zu, "
               "\"seconds_per_matrix\": %.6f, \"solves_per_second\": %.1f},\n",
               pairwise_n, pairwise_k, pairwise_seconds,
               pairwise_solves_per_second);
  std::fprintf(json, "  \"large_k_runs\": [\n");
  for (std::size_t i = 0; i < large_k_rows.size(); ++i) {
    const LargeKRow& r = large_k_rows[i];
    std::fprintf(json,
                 "    {\"name\": \"emd_large_k%zu\", \"k\": %zu, "
                 "\"dense_ns_per_solve\": %.1f, \"heap_ns_per_solve\": %.1f, "
                 "\"heap_speedup\": %.3f, "
                 "\"steady_state_allocs_per_solve\": %.6f}%s\n",
                 r.k, r.k, r.dense_ns_per_solve, r.heap_ns_per_solve,
                 r.heap_speedup, r.steady_state_allocs_per_solve,
                 i + 1 < large_k_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"batch_runs\": [\n");
  for (std::size_t i = 0; i < batch_rows.size(); ++i) {
    const BatchRow& r = batch_rows[i];
    std::fprintf(json,
                 "    {\"name\": \"emd_batch_k%zu\", \"k\": %zu, "
                 "\"pairs\": %zu, \"serial_ns_per_step\": %.1f, "
                 "\"batched_ns_per_step\": %.1f, \"batched_speedup\": %.3f, "
                 "\"steady_state_allocs_per_step\": %.6f}%s\n",
                 r.k, r.k, r.pairs, r.serial_ns_per_step,
                 r.batched_ns_per_step, r.batched_speedup,
                 r.steady_state_allocs_per_step,
                 i + 1 < batch_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"approx_runs\": [\n");
  for (std::size_t i = 0; i < approx_rows.size(); ++i) {
    const ApproxRow& r = approx_rows[i];
    std::fprintf(json,
                 "    {\"name\": \"emd_approx_k%zu_%s\", \"k\": %zu, "
                 "\"solver\": \"%s\", \"exact_ns_per_solve\": %.1f, "
                 "\"ns_per_solve\": %.1f, \"speedup_vs_exact\": %.3f, "
                 "\"steady_state_allocs_per_solve\": %.6f}%s\n",
                 r.k, r.solver.c_str(), r.k, r.solver.c_str(),
                 r.exact_ns_per_solve, r.ns_per_solve, r.speedup_vs_exact,
                 r.steady_state_allocs_per_solve,
                 i + 1 < approx_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"fidelity\": [\n");
  for (std::size_t i = 0; i < fidelity_rows.size(); ++i) {
    const FidelityRow& r = fidelity_rows[i];
    std::fprintf(json,
                 "    {\"scenario\": \"%s\", \"solver\": \"%s\", "
                 "\"max_abs_score_delta\": %.6f, "
                 "\"delay_delta_steps\": %ld}%s\n",
                 r.scenario.c_str(), r.solver.c_str(), r.max_abs_score_delta,
                 r.delay_delta_steps,
                 i + 1 < fidelity_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_emd.json\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main(int argc, char** argv) { return bagcpd::Main(argc, argv); }
