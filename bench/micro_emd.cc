// Microbenchmarks of the metric-space substrate: EMD solves as a function of
// signature size, ground distances, quantizer throughput, and the pairwise
// distance matrix (the building blocks behind every per-step cost in the
// detector).

#include <benchmark/benchmark.h>

#include "bagcpd/common/rng.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/emd/emd.h"
#include "bagcpd/emd/emd_1d.h"
#include "bagcpd/signature/builder.h"

namespace bagcpd {
namespace {

Signature RandomSignature(Rng* rng, std::size_t k, std::size_t dim) {
  Signature s;
  for (std::size_t i = 0; i < k; ++i) {
    Point c(dim);
    for (double& v : c) v = rng->Uniform(-5.0, 5.0);
    s.AddCenter(c, rng->Uniform(0.5, 3.0));
  }
  return s;
}

void BM_EmdSolve(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Signature a = RandomSignature(&rng, k, 2);
  Signature b = RandomSignature(&rng, k, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeEmd(a, b).ValueOrDie());
  }
  state.SetComplexityN(static_cast<std::int64_t>(k));
}
BENCHMARK(BM_EmdSolve)->RangeMultiplier(2)->Range(2, 64)->Complexity();

void BM_EmdGroundDistances(benchmark::State& state) {
  const GroundDistance kind = static_cast<GroundDistance>(state.range(0));
  Rng rng(2);
  Signature a = RandomSignature(&rng, 8, 3);
  Signature b = RandomSignature(&rng, 8, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeEmd(a, b, kind).ValueOrDie());
  }
}
BENCHMARK(BM_EmdGroundDistances)
    ->Arg(static_cast<int>(GroundDistance::kEuclidean))
    ->Arg(static_cast<int>(GroundDistance::kSquaredEuclidean))
    ->Arg(static_cast<int>(GroundDistance::kManhattan));

void BM_EmdUnbalanced(benchmark::State& state) {
  // Partial matching: one side carries 4x the mass.
  Rng rng(3);
  Signature a = RandomSignature(&rng, 16, 2);
  Signature b = RandomSignature(&rng, 16, 2);
  for (std::size_t i = 0; i < b.size(); ++i) b.mutable_weights()[i] *= 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeEmd(a, b).ValueOrDie());
  }
}
BENCHMARK(BM_EmdUnbalanced);

void BM_KMeansQuantize(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  GaussianMixture mix = GaussianMixture::EqualWeight(
      {{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0}}, 1.0);
  Bag bag = mix.SampleBag(n, &rng);
  KMeansOptions options;
  options.k = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(KMeansQuantize(bag, options).ValueOrDie());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KMeansQuantize)->Arg(100)->Arg(300)->Arg(1000);

void BM_HistogramQuantize(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  GaussianMixture mix = GaussianMixture::Isotropic({0.0}, 3.0);
  Bag bag = mix.SampleBag(n, &rng);
  HistogramOptions options;
  options.bin_width = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HistogramQuantize(bag, options).ValueOrDie());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HistogramQuantize)->Arg(300)->Arg(1000);

void BM_Emd1dFastPathVsSolver(benchmark::State& state) {
  // The exact 1-d sweep vs the general transportation solver on the same
  // normalized 1-d instance (arg 0 = sweep, 1 = solver).
  const bool use_solver = state.range(0) != 0;
  Rng rng(7);
  Signature a, b;
  for (std::size_t i = 0; i < 16; ++i) {
    const double ax = rng.Uniform(-10.0, 10.0);
    a.AddCenter(Point{ax}, rng.Uniform(0.5, 2.0));
    const double bx = rng.Uniform(-10.0, 10.0);
    b.AddCenter(Point{bx}, rng.Uniform(0.5, 2.0));
  }
  a = a.Normalized();
  b = b.Normalized();
  const GroundDistanceFn ground =
      MakeGroundDistance(GroundDistance::kEuclidean);
  for (auto _ : state) {
    if (use_solver) {
      benchmark::DoNotOptimize(ComputeEmd(a, b, ground).ValueOrDie());
    } else {
      benchmark::DoNotOptimize(ComputeEmd1d(a, b).ValueOrDie());
    }
  }
  state.SetLabel(use_solver ? "flow solver" : "1-d sweep");
}
BENCHMARK(BM_Emd1dFastPathVsSolver)->Arg(0)->Arg(1);

void BM_PairwiseEmdMatrix(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<Signature> sigs;
  for (std::size_t i = 0; i < n; ++i) {
    sigs.push_back(RandomSignature(&rng, 8, 2));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PairwiseEmdMatrix(sigs).ValueOrDie());
  }
}
BENCHMARK(BM_PairwiseEmdMatrix)->Arg(10)->Arg(20);

}  // namespace
}  // namespace bagcpd
