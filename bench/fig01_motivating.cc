// Reproduces paper Fig. 1: the motivating example. A stream of ~300
// one-dimensional observations per step changes shape (1 -> 2 -> 3 Gaussian
// components) at t = 50 and t = 100 while the mean stays at zero.
//
//   (a) our detector consumes the bags directly and flags both changes;
//   (b) the sample-mean sequence carries no signal;
//   (c) ChangeFinder [8] and the kernel change detector [9], fed the
//       sample-mean sequence as in the paper, see nothing.
//
// Expected shape (paper): ours detects t = 50, 100; baselines' scores are
// unrelated to the change points.

#include <cstdio>
#include <iostream>

#include "bagcpd/analysis/ascii_plot.h"
#include "bagcpd/analysis/metrics.h"
#include "bagcpd/common/stats.h"
#include "bagcpd/baselines/changefinder.h"
#include "bagcpd/baselines/kcd.h"
#include "bagcpd/baselines/mean_reduction.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/fig1.h"
#include "bagcpd/io/table.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

// Peak contrast: mean over change points of (max score within +-2 steps of
// the change) / (95th percentile of the background scores). A method whose
// score peaks align with the changes scores >> 1; a method whose peaks are
// unrelated to the changes (the paper's point about the baselines) sits
// near or below 1.
double PeakContrast(const std::vector<double>& scores,
                    const std::vector<std::size_t>& change_points) {
  std::vector<double> background;
  for (std::size_t t = 0; t < scores.size(); ++t) {
    bool near = false;
    for (std::size_t cp : change_points) {
      if (t + 5 >= cp && t <= cp + 5) near = true;
    }
    if (!near) background.push_back(scores[t]);
  }
  const double floor = Quantile(background, 0.95).ValueOr(1.0);
  double contrast = 0.0;
  for (std::size_t cp : change_points) {
    double peak = -1e30;
    for (std::size_t t = (cp >= 2 ? cp - 2 : 0);
         t <= cp + 2 && t < scores.size(); ++t) {
      peak = std::max(peak, scores[t]);
    }
    contrast += peak / (std::abs(floor) > 1e-9 ? floor : 1.0);
  }
  return contrast / static_cast<double>(change_points.size());
}

int Main() {
  bench::PrintHeader(
      "Figure 1 — motivating example (1 -> 2 -> 3 Gaussian mixture)",
      "150 steps, ~300 instances each; changes planted at t = 50, 100.\n"
      "Ours runs on the bags; baselines run on the sample-mean sequence.");

  Fig1Options data_options;
  data_options.seed = 20260610;
  data_options.phase_length = 50;
  data_options.bag_size_rate = 300.0;
  LabeledBagSequence stream =
      bench::Unwrap(MakeFig1Stream(data_options), "fig1 data");

  // --- (a) our detector, straight on the bags. ---
  DetectorOptions options;
  options.tau = 5;
  options.tau_prime = 5;
  options.score_type = ScoreType::kSymmetrizedKl;
  options.bootstrap.replicates = 300;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 8;
  options.seed = 1;
  auto detector_owner =
      bench::Unwrap(BagStreamDetector::Create(options), "create");
  BagStreamDetector& detector = *detector_owner;
  std::vector<StepResult> ours =
      bench::Unwrap(detector.Run(stream.bags), "detector");
  bench::ResultSeries series = bench::Slice(ours, stream.bags.size());

  std::printf("(a) bag-of-data detector (scoreKL, tau = tau' = 5):\n");
  std::printf("%s\n",
              RenderLineChart(series.score, series.lo, series.up,
                              series.alarms, stream.change_points)
                  .c_str());

  // --- (b) the sample-mean sequence. ---
  std::vector<Point> means =
      bench::Unwrap(ReduceBags(stream.bags), "mean reduction");
  std::vector<double> mean_series;
  for (const Point& m : means) mean_series.push_back(m[0]);
  std::printf("(b) sample-mean sequence (the changes are invisible):\n");
  std::printf("%s\n", RenderLineChart(mean_series, {}, {}, {},
                                      stream.change_points)
                          .c_str());

  // --- (c) baselines on the sample means. ---
  ChangeFinderOptions cf_options;
  cf_options.sdar.order = 2;
  cf_options.sdar.discount = 0.05;
  cf_options.smoothing_window = 5;
  ChangeFinder cf(1, cf_options);
  std::vector<double> cf_scores = bench::Unwrap(cf.Run(means), "ChangeFinder");

  KcdOptions kcd_options;
  kcd_options.window = 25;
  std::vector<double> kcd_scores =
      bench::Unwrap(RunKcd(means, kcd_options), "KCD");

  std::printf("(c) ChangeFinder [8] on the means:\n%s\n",
              RenderLineChart(cf_scores, {}, {}, {}, stream.change_points)
                  .c_str());
  std::printf("    KCD [9] on the means:\n%s\n",
              RenderLineChart(kcd_scores, {}, {}, {}, stream.change_points)
                  .c_str());

  // --- Quantitative comparison. ---
  TablePrinter table({"method", "input", "peak contrast @cp", "alarms",
                      "hits"});
  const DetectionReport ours_report =
      EvaluateAlarms(series.alarms, stream.change_points, 5);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f",
                PeakContrast(series.score, stream.change_points));
  table.AddRow({"bagcpd (KL)", "bags", buf,
                std::to_string(series.alarms.size()),
                std::to_string(ours_report.true_positives) + "/2"});
  std::snprintf(buf, sizeof(buf), "%.2f",
                PeakContrast(cf_scores, stream.change_points));
  table.AddRow({"ChangeFinder [8]", "means", buf, "-", "-"});
  std::snprintf(buf, sizeof(buf), "%.2f",
                PeakContrast(kcd_scores, stream.change_points));
  table.AddRow({"KCD [9]", "means", buf, "-", "-"});
  table.Print(std::cout);

  std::printf(
      "\nshape check: ours should hit both changes with peak contrast >> 1;\n"
      "the baselines on means should sit near 1 (their peaks are unrelated\n"
      "to the change points), as in the paper.\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main() { return bagcpd::Main(); }
