// Columnar batch frontend benchmark: the 10k-series offline sweep the batch/
// subsystem exists for. Two phases, both emitted into BENCH_batch.json:
//
//  1. Ingest race — the same interleaved unsorted row corpus built into (a)
//     the nested per-vector idiom (map of key -> map of timestamp -> Bag,
//     one heap allocation per observation) and (b) a BatchTableBuilder
//     columnar table. Best-of-3 each; CI gates columnar_speedup >= 1.15x.
//
//  2. Detection — RunBatchColumnar over the table at several pool sizes,
//     reporting groups/sec and rows/sec. Every run's score column is folded
//     into a bitwise checksum; CI gates that all pool sizes agree and that
//     row counts are preserved exactly (output rows == input steps).
//
//   micro_batch [groups] [steps_per_group] [points_per_step] [pool_list]
//   e.g. micro_batch 10000 8 2 1,4

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bagcpd/batch/batch_runner.h"
#include "bagcpd/batch/batch_table.h"
#include "bagcpd/batch/synthetic.h"
#include "bagcpd/common/point.h"
#include "bagcpd/runtime/thread_pool.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

DetectorOptions BatchDetector() {
  DetectorOptions options;
  options.tau = 2;
  options.tau_prime = 2;
  options.bootstrap.replicates = 0;  // Scores only: the 10k sweep stays fast.
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 2;
  return options;
}

// The pre-batch-subsystem ingest idiom: nested owning containers keyed twice
// over, one vector<double> allocation per observation.
std::size_t NestedIngest(const BatchSeriesRows& rows) {
  std::map<std::string, std::map<std::int64_t, Bag>> nested;
  const std::size_t dim = rows.dim;
  for (std::size_t r = 0; r < rows.row_count(); ++r) {
    const double* v = rows.values.data() + r * dim;
    nested[rows.keys[rows.group[r]]][rows.timestamp[r]].push_back(
        Point(v, v + dim));
  }
  std::size_t total_points = 0;
  for (const auto& [key, series] : nested) {
    (void)key;
    for (const auto& [ts, bag] : series) {
      (void)ts;
      total_points += bag.size();
    }
  }
  return total_points;
}

// Bitwise fold of the scored rows: XOR of the score bit patterns (position-
// mixed) plus the scored-row count. Any cross-pool divergence — value,
// placement, or count — changes it.
std::uint64_t ScoreChecksum(const BatchResultTable& result) {
  std::uint64_t checksum = 0x9e3779b97f4a7c15ull * (result.row_count() + 1);
  for (std::size_t r = 0; r < result.row_count(); ++r) {
    if (!result.has_score[r]) continue;
    std::uint64_t bits = 0;
    std::memcpy(&bits, &result.score[r], sizeof(bits));
    checksum ^= bits + 0x9e3779b97f4a7c15ull + (checksum << 6) +
                (checksum >> 2) + r;
  }
  return checksum;
}

struct DetectionRow {
  std::size_t pool = 0;
  double seconds = 0.0;
  double groups_per_sec = 0.0;
  double rows_per_sec = 0.0;
  std::uint64_t scored_rows = 0;
  std::uint64_t checksum = 0;
  bool row_count_preserved = false;
};

int Main(int argc, char** argv) {
  BatchSeriesSpec spec;
  spec.num_groups = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;
  spec.steps_per_group = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  spec.points_per_step = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;
  spec.dim = 2;
  spec.seed = 7;
  std::vector<std::size_t> pool_sizes = {1, 4};
  if (argc > 4) {
    pool_sizes.clear();
    for (char* tok = std::strtok(argv[4], ","); tok != nullptr;
         tok = std::strtok(nullptr, ",")) {
      pool_sizes.push_back(static_cast<std::size_t>(std::atoi(tok)));
    }
  }

  bench::PrintHeader("micro_batch: columnar batch ingest + detection",
                     "BatchTableBuilder vs nested ingest; RunBatchColumnar "
                     "groups/sec by pool size");
  const BatchSeriesRows rows =
      bench::Unwrap(GenerateBatchSeriesRows(spec), "corpus generation");
  const double row_count = static_cast<double>(rows.row_count());
  std::printf("groups=%zu steps/group=%zu points/step=%zu dim=%zu rows=%zu\n\n",
              spec.num_groups, spec.steps_per_group, spec.points_per_step,
              spec.dim, rows.row_count());

  // --- Phase 1: ingest race (best of 3 each) -----------------------------
  constexpr int kIngestReps = 3;
  double nested_best = 1e300;
  std::size_t nested_points = 0;
  for (int rep = 0; rep < kIngestReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    nested_points = NestedIngest(rows);
    const auto stop = std::chrono::steady_clock::now();
    const double s = Seconds(start, stop);
    if (s < nested_best) nested_best = s;
  }

  double columnar_best = 1e300;
  BatchTable table;
  for (int rep = 0; rep < kIngestReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    table = BuildBatchTable(rows);
    const auto stop = std::chrono::steady_clock::now();
    const double s = Seconds(start, stop);
    if (s < columnar_best) columnar_best = s;
  }
  if (nested_points != table.row_count()) {
    std::fprintf(stderr, "FATAL: ingest paths disagree on row count\n");
    return 1;
  }

  const double columnar_speedup = nested_best / columnar_best;
  std::printf("ingest nested    %8.3fs  %12.0f rows/s\n", nested_best,
              row_count / nested_best);
  std::printf("ingest columnar  %8.3fs  %12.0f rows/s  speedup %.2fx\n\n",
              columnar_best, row_count / columnar_best, columnar_speedup);

  // --- Phase 2: detection sweep by pool size -----------------------------
  std::vector<DetectionRow> detection;
  bool checksums_match = true;
  for (std::size_t pool_size : pool_sizes) {
    ThreadPool pool(pool_size);
    BatchRunnerOptions options;
    options.detector = BatchDetector();
    options.seed = 7;
    options.num_shards = pool_size > 1 ? pool_size * 2 : 1;
    options.pool = &pool;

    const auto start = std::chrono::steady_clock::now();
    const BatchResultTable result =
        bench::Unwrap(RunBatchColumnar(table, options), "RunBatchColumnar");
    const auto stop = std::chrono::steady_clock::now();

    DetectionRow row;
    row.pool = pool_size;
    row.seconds = Seconds(start, stop);
    row.groups_per_sec = static_cast<double>(table.group_count()) / row.seconds;
    row.rows_per_sec = static_cast<double>(table.step_count()) / row.seconds;
    for (std::uint8_t scored : result.has_score) row.scored_rows += scored;
    row.checksum = ScoreChecksum(result);
    row.row_count_preserved =
        result.quarantined.empty() && result.row_count() == table.step_count();
    if (!detection.empty() && row.checksum != detection.front().checksum) {
      checksums_match = false;
    }
    detection.push_back(row);
    std::printf(
        "pool=%2zu  %8.3fs  %10.1f groups/s  %10.0f rows/s  "
        "scored=%" PRIu64 "  checksum=%016" PRIx64 "  rows %s\n",
        row.pool, row.seconds, row.groups_per_sec, row.rows_per_sec,
        row.scored_rows, row.checksum,
        row.row_count_preserved ? "preserved" : "LOST");
  }

  std::FILE* json = std::fopen("BENCH_batch.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_batch.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"micro_batch\",\n"
               "  \"groups\": %zu,\n  \"steps_per_group\": %zu,\n"
               "  \"rows\": %zu,\n"
               "  \"ingest\": {\"nested_seconds\": %.6f, "
               "\"nested_rows_per_sec\": %.0f, \"columnar_seconds\": %.6f, "
               "\"columnar_rows_per_sec\": %.0f, \"columnar_speedup\": "
               "%.3f},\n"
               "  \"detection\": [\n",
               spec.num_groups, spec.steps_per_group, rows.row_count(),
               nested_best, row_count / nested_best, columnar_best,
               row_count / columnar_best, columnar_speedup);
  for (std::size_t i = 0; i < detection.size(); ++i) {
    const DetectionRow& r = detection[i];
    std::fprintf(json,
                 "    {\"pool\": %zu, \"seconds\": %.6f, "
                 "\"groups_per_sec\": %.1f, \"rows_per_sec\": %.1f, "
                 "\"scored_rows\": %" PRIu64 ", "
                 "\"checksum\": \"%016" PRIx64 "\", "
                 "\"row_count_preserved\": %s}%s\n",
                 r.pool, r.seconds, r.groups_per_sec, r.rows_per_sec,
                 r.scored_rows, r.checksum,
                 r.row_count_preserved ? "true" : "false",
                 i + 1 < detection.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"checksums_match\": %s\n}\n",
               checksums_match ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote BENCH_batch.json\n");
  return checksums_match ? 0 : 1;
}

}  // namespace
}  // namespace bagcpd

int main(int argc, char** argv) { return bagcpd::Main(argc, argv); }
