// Ablation: signature construction methods (Section 3.1). k-means is the
// paper's default; k-medoids and LVQ are the named alternatives; histograms
// are the "very simple way"; the single-centroid reduction is the strawman
// the paper argues against. Run all five on the Fig. 1 mixture-shape stream,
// where centroids provably carry no signal.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bagcpd/analysis/metrics.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/fig1.h"
#include "bagcpd/io/table.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

int Main() {
  bench::PrintHeader(
      "Ablation — signature methods (Sec. 3.1) on the Fig. 1 stream",
      "kmeans / kmedoids / lvq / histogram vs the centroid strawman.");

  Fig1Options data_options;
  data_options.seed = 900;
  data_options.phase_length = 25;
  data_options.bag_size_rate = 150.0;
  LabeledBagSequence stream =
      bench::Unwrap(MakeFig1Stream(data_options), "fig1 stream");

  TablePrinter table(
      {"method", "AUC@cp", "hits", "alarms", "runtime (ms)"});
  for (SignatureMethod method :
       {SignatureMethod::kKMeans, SignatureMethod::kKMedoids,
        SignatureMethod::kLvq, SignatureMethod::kHistogram,
        SignatureMethod::kCentroid}) {
    DetectorOptions options;
    options.tau = 5;
    options.tau_prime = 5;
    options.bootstrap.replicates = 150;
    options.signature.method = method;
    options.signature.k = 8;
    options.signature.bin_width = 1.0;
    options.seed = 91;
    auto detector_owner =
        bench::Unwrap(BagStreamDetector::Create(options), "create");
    BagStreamDetector& detector = *detector_owner;
    const auto start = std::chrono::steady_clock::now();
    std::vector<StepResult> results =
        bench::Unwrap(detector.Run(stream.bags), "detector");
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    const std::vector<std::uint64_t> alarms = AlarmTimes(results);
    const DetectionReport report =
        EvaluateAlarms(alarms, stream.change_points, 4);
    const double auc = bench::NearChangeAuc(results, stream.change_points);
    char auc_buf[32];
    std::snprintf(auc_buf, sizeof(auc_buf), "%.2f", auc);
    table.AddRow({SignatureMethodName(method), auc_buf,
                  std::to_string(report.true_positives) + "/2",
                  std::to_string(alarms.size()),
                  std::to_string(elapsed)});
  }
  table.Print(std::cout);
  std::printf(
      "\nreading: every genuine quantizer sees the shape changes (AUC near\n"
      "1); the centroid reduction cannot (AUC near 0.5) — the paper's core\n"
      "motivation. Histograms are fastest on 1-d data; kmedoids costs most.\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main() { return bagcpd::Main(); }
