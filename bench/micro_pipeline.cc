// Microbenchmarks of the detector pipeline: per-step cost with and without
// the bootstrap, bootstrap scaling in T, and the estimator primitives that
// make replicates cheap (the Section 4.2 efficiency claim: resampling never
// recomputes an EMD).

#include <benchmark/benchmark.h>

#include "bagcpd/core/bootstrap.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/gmm.h"

namespace bagcpd {
namespace {

BagSequence MakeStream(std::size_t steps, std::size_t bag_size,
                       std::uint64_t seed) {
  Rng rng(seed);
  GaussianMixture mix = GaussianMixture::Isotropic({0.0, 0.0}, 1.0);
  BagSequence bags;
  for (std::size_t t = 0; t < steps; ++t) {
    bags.push_back(mix.SampleBag(bag_size, &rng));
  }
  return bags;
}

void BM_DetectorStep(benchmark::State& state) {
  const int replicates = static_cast<int>(state.range(0));
  BagSequence bags = MakeStream(64, 50, 7);
  DetectorOptions options;
  options.tau = 5;
  options.tau_prime = 5;
  options.bootstrap.replicates = replicates;
  options.signature.k = 8;
  options.seed = 1;
  auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
  BagStreamDetector& detector = *detector_owner;
  std::size_t next = 0;
  for (auto _ : state) {
    if (next == bags.size()) {
      state.PauseTiming();
      detector.Reset();
      next = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(detector.Push(bags[next++]).ValueOrDie());
  }
  state.SetLabel(replicates == 0 ? "score only"
                                 : "T=" + std::to_string(replicates));
}
BENCHMARK(BM_DetectorStep)->Arg(0)->Arg(100)->Arg(200)->Arg(400);

void BM_BootstrapInterval(benchmark::State& state) {
  const int replicates = static_cast<int>(state.range(0));
  const std::size_t tau = 5, tau_prime = 5;
  ScoreContext ctx;
  ctx.log_ref_ref = Matrix(tau, tau, 0.4);
  ctx.log_test_test = Matrix(tau_prime, tau_prime, 0.5);
  ctx.log_ref_test = Matrix(tau, tau_prime, 1.0);
  std::vector<double> pi_ref(tau, 1.0 / tau);
  std::vector<double> pi_test(tau_prime, 1.0 / tau_prime);
  BootstrapOptions options;
  options.replicates = replicates;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BootstrapScoreInterval(ScoreType::kSymmetrizedKl, ctx, pi_ref, pi_test,
                               options, &rng)
            .ValueOrDie());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          replicates);
}
BENCHMARK(BM_BootstrapInterval)->Arg(100)->Arg(400)->Arg(1600);

void BM_ScoreKlFromCachedLogs(benchmark::State& state) {
  // One replicate's marginal cost: a KL evaluation over cached log-EMDs.
  const std::size_t tau = static_cast<std::size_t>(state.range(0));
  ScoreContext ctx;
  ctx.log_ref_ref = Matrix(tau, tau, 0.4);
  ctx.log_test_test = Matrix(tau, tau, 0.5);
  ctx.log_ref_test = Matrix(tau, tau, 1.0);
  std::vector<double> gamma(tau, 1.0 / static_cast<double>(tau));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeScore(ScoreType::kSymmetrizedKl, ctx, gamma, gamma)
            .ValueOrDie());
  }
}
BENCHMARK(BM_ScoreKlFromCachedLogs)->Arg(5)->Arg(10)->Arg(20);

void BM_DirichletResample(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ResampleWeights(BootstrapMethod::kBayesian, pi, &rng));
  }
}
BENCHMARK(BM_DirichletResample)->Arg(5)->Arg(10)->Arg(50);

void BM_FullRunPerBag(benchmark::State& state) {
  // End-to-end amortized per-bag cost on a realistic stream.
  BagSequence bags = MakeStream(40, 100, 8);
  DetectorOptions options;
  options.tau = 5;
  options.tau_prime = 5;
  options.bootstrap.replicates = 200;
  options.signature.k = 8;
  options.seed = 4;
  for (auto _ : state) {
    auto detector_owner = BagStreamDetector::Create(options).MoveValueUnsafe();
    BagStreamDetector& detector = *detector_owner;
    benchmark::DoNotOptimize(detector.Run(bags).ValueOrDie());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bags.size()));
}
BENCHMARK(BM_FullRunPerBag)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bagcpd
