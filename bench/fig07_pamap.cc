// Reproduces paper Table 1 and Fig. 7: activity-transition detection on the
// PAMAP-like simulator (the offline stand-in for the PAMAP2 dataset; see
// DESIGN.md section 3). Three subjects perform the 14-entry protocol; sensor
// streams are cut into 10 s bags and the detector flags activity changes.
//
// Expected shape (paper): change points detected "with plausible accuracy" —
// most transitions raise alarms near the boundary, scores rise at every
// transition, and no alarms fire where the score merely oscillates.

#include <cstdio>
#include <iostream>

#include "bagcpd/analysis/ascii_plot.h"
#include "bagcpd/analysis/metrics.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/pamap_simulator.h"
#include "bagcpd/io/table.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

int Main() {
  bench::PrintHeader(
      "Table 1 / Figure 7 — PAMAP-like activity monitoring (Sec. 5.2)",
      "3 simulated subjects, 10 s bags, tau = tau' = 5. Simulator replaces\n"
      "the (offline-unavailable) PAMAP2 recordings; see DESIGN.md.");

  // Table 1: activities and their IDs.
  TablePrinter activities({"Activity", "ID", "Activity", "ID"});
  const auto& table = PamapActivityTable();
  for (std::size_t i = 0; i < 6; ++i) {
    activities.AddRow({table[i].name, std::to_string(table[i].id),
                       table[i + 6].name, std::to_string(table[i + 6].id)});
  }
  std::printf("Table 1 — activities and their IDs:\n");
  activities.Print(std::cout);
  std::printf("\nprotocol order per subject: ");
  for (int id : PamapProtocolOrder()) std::printf("%d ", id);
  std::printf("\n\n");

  TablePrinter summary({"subject", "bags", "avg bag size", "transitions",
                        "alarms", "recall", "precision", "mean delay"});

  for (int subject = 1; subject <= 3; ++subject) {
    PamapSimulatorOptions sim;
    sim.seed = 777;
    sim.subject = subject;
    sim.sampling_hz = 50.0;  // Reduced from the real ~100 Hz for runtime.
    sim.mean_bags_per_activity = 18.0;  // ~252 bags/subject as in the paper.
    PamapRecording rec =
        bench::Unwrap(SimulatePamapSubject(sim), "pamap simulator");

    DetectorOptions options;
    options.tau = 5;
    options.tau_prime = 5;
    options.bootstrap.replicates = 200;
    options.signature.method = SignatureMethod::kKMeans;
    options.signature.k = 10;
    options.seed = 70 + static_cast<std::uint64_t>(subject);
    auto detector_owner =
        bench::Unwrap(BagStreamDetector::Create(options), "create");
    BagStreamDetector& detector = *detector_owner;
    std::vector<StepResult> results =
        bench::Unwrap(detector.Run(rec.stream.bags), "detector");
    bench::ResultSeries series =
        bench::Slice(results, rec.stream.bags.size());

    std::printf("subject %d — score with alarms (':' = true transition):\n%s\n",
                subject,
                RenderLineChart(series.score, series.lo, series.up,
                                series.alarms, rec.stream.change_points)
                    .c_str());

    const DetectionReport report = EvaluateAlarms(
        series.alarms, rec.stream.change_points, /*tolerance=*/4);
    double avg_bag = 0.0;
    for (const Bag& bag : rec.stream.bags) {
      avg_bag += static_cast<double>(bag.size());
    }
    avg_bag /= static_cast<double>(rec.stream.bags.size());
    char recall_buf[32], precision_buf[32], delay_buf[32], avg_buf[32];
    std::snprintf(recall_buf, sizeof(recall_buf), "%.2f", report.recall);
    std::snprintf(precision_buf, sizeof(precision_buf), "%.2f",
                  report.precision);
    std::snprintf(delay_buf, sizeof(delay_buf), "%.1f", report.mean_delay);
    std::snprintf(avg_buf, sizeof(avg_buf), "%.0f", avg_bag);
    summary.AddRow({std::to_string(subject),
                    std::to_string(rec.stream.bags.size()), avg_buf,
                    std::to_string(rec.stream.change_points.size()),
                    std::to_string(series.alarms.size()), recall_buf,
                    precision_buf, delay_buf});
  }

  std::printf("per-subject detection summary (tolerance 4 bags = 40 s):\n");
  summary.Print(std::cout);
  std::printf(
      "\nshape check (paper): most transitions detected, scores rise at all\n"
      "of them, and rapid score oscillation does not trigger alarms.\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main() { return bagcpd::Main(); }
