// Reproduces paper Fig. 10: change detection on synthetic bipartite-graph
// streams (datasets 1-4 of Section 5.3) using the seven node/edge features.
// Scale note: the paper uses n_s, n_d ~ Poisson(200) over 200/240 steps; this
// harness runs Poisson(60), density 0.5 and blocks of 10 (100/120 steps) so
// the whole figure regenerates in seconds. The SHAPE is preserved: strength
// features (5, 6) detect all changes including subtle early ones, degree
// features (1, 2) and edge weights (7) track most, and the second-degree
// features (3, 4) carry no signal because the generator has no
// source/destination correspondence.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bagcpd/analysis/ascii_plot.h"
#include "bagcpd/analysis/metrics.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/graph/features.h"
#include "bagcpd/graph/generators.h"
#include "bagcpd/io/table.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

int Main() {
  bench::PrintHeader(
      "Figure 10 — bipartite-graph streams, 7 features x 4 datasets (Sec. 5.3)",
      "reduced scale (nodes ~ Poisson(100), blocks of 10); shape-preserving.");

  BipartiteStreamOptions graph_options;
  graph_options.seed = 10;
  graph_options.node_rate = 100.0;
  graph_options.edge_density = 0.5;
  graph_options.length_scale = 0.5;  // Blocks of 10.
  std::vector<BipartiteStream> streams =
      bench::Unwrap(MakeAllBipartiteDatasets(graph_options), "datasets");

  for (const BipartiteStream& stream : streams) {
    std::printf("---- %s (%zu steps, changes at:", stream.name.c_str(),
                stream.graphs.size());
    for (std::size_t cp : stream.change_points) std::printf(" %zu", cp);
    std::printf(") ----\n");

    TablePrinter table({"feature", "alarms", "hits", "recall", "AUC@cp"});
    std::vector<std::uint64_t> union_alarms;
    for (GraphFeature feature : AllGraphFeatures()) {
      BagSequence bags;
      for (const BipartiteGraph& g : stream.graphs) {
        bags.push_back(
            bench::Unwrap(ExtractGraphFeature(g, feature), "feature"));
      }
      DetectorOptions options;
      options.tau = 5;
      options.tau_prime = 3;
      options.bootstrap.replicates = 200;
      options.signature.method = SignatureMethod::kKMeans;
      options.signature.k = 6;
      options.seed = 100 + static_cast<std::uint64_t>(feature);
      BagStreamDetector detector(options);
      std::vector<StepResult> results =
          bench::Unwrap(detector.Run(bags), "detector");
      bench::ResultSeries series = bench::Slice(results, bags.size());

      union_alarms.insert(union_alarms.end(), series.alarms.begin(),
                          series.alarms.end());
      const DetectionReport report = EvaluateAlarms(
          series.alarms, stream.change_points, /*tolerance=*/5);
      char recall_buf[32], auc_buf[32];
      std::snprintf(recall_buf, sizeof(recall_buf), "%.2f", report.recall);
      const double auc = bench::NearChangeAuc(results, stream.change_points);
      std::snprintf(auc_buf, sizeof(auc_buf), "%.2f", auc);
      table.AddRow({std::string(GraphFeatureName(feature)),
                    std::to_string(series.alarms.size()),
                    std::to_string(report.true_positives) + "/" +
                        std::to_string(stream.change_points.size()),
                    recall_buf, auc_buf});

      // Chart the strength features — the paper's headline finding.
      if (feature == GraphFeature::kSourceStrength) {
        std::printf("feature 5 (source strength) score series:\n%s\n",
                    RenderLineChart(series.score, series.lo, series.up,
                                    series.alarms, stream.change_points)
                        .c_str());
      }
    }
    // The paper's Fig. 10 criterion: a change counts as detected if at least
    // one of the seven features alarms near it.
    std::sort(union_alarms.begin(), union_alarms.end());
    const DetectionReport union_report =
        EvaluateAlarms(union_alarms, stream.change_points, /*tolerance=*/5);
    char union_recall[32];
    std::snprintf(union_recall, sizeof(union_recall), "%.2f",
                  union_report.recall);
    table.AddRow({"UNION of features", std::to_string(union_alarms.size()),
                  std::to_string(union_report.true_positives) + "/" +
                      std::to_string(stream.change_points.size()),
                  union_recall, "-"});
    table.Print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "shape check (paper Fig. 10): features 5 and 6 detect the changes in\n"
      "every dataset (even small early ones); features 3 and 4 do not work\n"
      "here since the data has no source/destination correspondence.\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main() { return bagcpd::Main(); }
