// Reproduces paper Fig. 10: change detection on synthetic bipartite-graph
// streams (datasets 1-4 of Section 5.3) using the seven node/edge features.
// Scale note: the paper uses n_s, n_d ~ Poisson(200) over 200/240 steps; this
// harness runs Poisson(60), density 0.5 and blocks of 10 (100/120 steps) so
// the whole figure regenerates in seconds. The SHAPE is preserved: strength
// features (5, 6) detect all changes including subtle early ones, degree
// features (1, 2) and edge weights (7) track most, and the second-degree
// features (3, 4) carry no signal because the generator has no
// source/destination correspondence.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bagcpd/analysis/ascii_plot.h"
#include "bagcpd/analysis/metrics.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/emd/emd.h"
#include "bagcpd/graph/features.h"
#include "bagcpd/graph/generators.h"
#include "bagcpd/io/table.h"
#include "bagcpd/runtime/thread_pool.h"
#include "bagcpd/signature/builder.h"
#include "bagcpd/signature/signature_set.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

int Main() {
  bench::PrintHeader(
      "Figure 10 — bipartite-graph streams, 7 features x 4 datasets (Sec. 5.3)",
      "reduced scale (nodes ~ Poisson(100), blocks of 10); shape-preserving.");

  BipartiteStreamOptions graph_options;
  graph_options.seed = 10;
  graph_options.node_rate = 100.0;
  graph_options.edge_density = 0.5;
  graph_options.length_scale = 0.5;  // Blocks of 10.
  std::vector<BipartiteStream> streams =
      bench::Unwrap(MakeAllBipartiteDatasets(graph_options), "datasets");

  for (const BipartiteStream& stream : streams) {
    std::printf("---- %s (%zu steps, changes at:", stream.name.c_str(),
                stream.graphs.size());
    for (std::size_t cp : stream.change_points) std::printf(" %zu", cp);
    std::printf(") ----\n");

    TablePrinter table({"feature", "alarms", "hits", "recall", "AUC@cp"});
    std::vector<std::uint64_t> union_alarms;
    for (GraphFeature feature : AllGraphFeatures()) {
      BagSequence bags;
      for (const BipartiteGraph& g : stream.graphs) {
        bags.push_back(
            bench::Unwrap(ExtractGraphFeature(g, feature), "feature"));
      }
      DetectorOptions options;
      options.tau = 5;
      options.tau_prime = 3;
      options.bootstrap.replicates = 200;
      options.signature.method = SignatureMethod::kKMeans;
      options.signature.k = 6;
      options.seed = 100 + static_cast<std::uint64_t>(feature);
      auto detector =
          bench::Unwrap(BagStreamDetector::Create(options), "detector");
      std::vector<StepResult> results =
          bench::Unwrap(detector->Run(bags), "detector");
      bench::ResultSeries series = bench::Slice(results, bags.size());

      union_alarms.insert(union_alarms.end(), series.alarms.begin(),
                          series.alarms.end());
      const DetectionReport report = EvaluateAlarms(
          series.alarms, stream.change_points, /*tolerance=*/5);
      char recall_buf[32], auc_buf[32];
      std::snprintf(recall_buf, sizeof(recall_buf), "%.2f", report.recall);
      const double auc = bench::NearChangeAuc(results, stream.change_points);
      std::snprintf(auc_buf, sizeof(auc_buf), "%.2f", auc);
      table.AddRow({std::string(GraphFeatureName(feature)),
                    std::to_string(series.alarms.size()),
                    std::to_string(report.true_positives) + "/" +
                        std::to_string(stream.change_points.size()),
                    recall_buf, auc_buf});

      // Chart the strength features — the paper's headline finding.
      if (feature == GraphFeature::kSourceStrength) {
        std::printf("feature 5 (source strength) score series:\n%s\n",
                    RenderLineChart(series.score, series.lo, series.up,
                                    series.alarms, stream.change_points)
                        .c_str());
      }
    }
    // The paper's Fig. 10 criterion: a change counts as detected if at least
    // one of the seven features alarms near it.
    std::sort(union_alarms.begin(), union_alarms.end());
    const DetectionReport union_report =
        EvaluateAlarms(union_alarms, stream.change_points, /*tolerance=*/5);
    char union_recall[32];
    std::snprintf(union_recall, sizeof(union_recall), "%.2f",
                  union_report.recall);
    table.AddRow({"UNION of features", std::to_string(union_alarms.size()),
                  std::to_string(union_report.true_positives) + "/" +
                      std::to_string(stream.change_points.size()),
                  union_recall, "-"});
    table.Print(std::cout);
    std::printf("\n");
  }

  // Batch cross-distance analysis over the parallel CrossDistanceMatrix: for
  // each dataset, quantize the source-strength feature of every step into a
  // shared SignatureSet and compare pre-change vs post-change blocks. The
  // pooled fill is bitwise-identical to the serial one (deterministic row
  // chunking), so this block is pure throughput.
  std::printf("batch check — EMD separation of the first change "
              "(feature 5, pooled CrossDistanceMatrix):\n");
  ThreadPool pool(4);
  for (const BipartiteStream& stream : streams) {
    if (stream.change_points.empty()) continue;
    const std::size_t cp = stream.change_points.front();
    SignatureBuilderOptions sig_options;
    sig_options.method = SignatureMethod::kKMeans;
    sig_options.k = 6;
    sig_options.seed = 100 + static_cast<std::uint64_t>(
                                 GraphFeature::kSourceStrength);
    SignatureBuilder builder(sig_options);
    SignatureSet before;
    SignatureSet after;
    for (std::size_t t = 0; t < stream.graphs.size(); ++t) {
      const Bag bag = bench::Unwrap(
          ExtractGraphFeature(stream.graphs[t],
                              GraphFeature::kSourceStrength),
          "feature");
      Signature sig = bench::Unwrap(builder.Build(bag, t), "signature");
      bench::UnwrapStatus((t < cp ? before : after).Append(sig), "append");
    }
    const Matrix within = bench::Unwrap(
        CrossDistanceMatrix(before, before, GroundDistance::kEuclidean,
                            &pool),
        "within table");
    const Matrix across = bench::Unwrap(
        CrossDistanceMatrix(before, after, GroundDistance::kEuclidean, &pool),
        "cross table");
    double within_sum = 0.0;
    std::size_t within_count = 0;
    for (std::size_t i = 0; i < within.rows(); ++i) {
      for (std::size_t j = 0; j < within.cols(); ++j) {
        if (i == j) continue;
        within_sum += within(i, j);
        ++within_count;
      }
    }
    double across_sum = 0.0;
    for (std::size_t i = 0; i < across.rows(); ++i) {
      for (std::size_t j = 0; j < across.cols(); ++j) {
        across_sum += across(i, j);
      }
    }
    const double within_mean =
        within_sum / static_cast<double>(std::max<std::size_t>(1,
                                                               within_count));
    const double across_mean =
        across_sum / static_cast<double>(across.rows() * across.cols());
    std::printf(
        "  %-12s mean EMD within pre-change %.3f, across change %.3f "
        "(separation %.2fx)\n",
        stream.name.c_str(), within_mean, across_mean,
        across_mean / within_mean);
  }

  std::printf(
      "\nshape check (paper Fig. 10): features 5 and 6 detect the changes in\n"
      "every dataset (even small early ones); features 3 and 4 do not work\n"
      "here since the data has no source/destination correspondence.\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main() { return bagcpd::Main(); }
