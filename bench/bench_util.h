// Shared helpers for the experiment harnesses: run the detector over a bag
// stream, slice the result series for plotting, and compute the shape metrics
// reported in EXPERIMENTS.md.

#ifndef BAGCPD_BENCH_BENCH_UTIL_H_
#define BAGCPD_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bagcpd/analysis/metrics.h"
#include "bagcpd/core/detector.h"

namespace bagcpd {
namespace bench {

/// \brief Aborts the harness with a message if a Result failed.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result.MoveValueUnsafe();
}

inline void UnwrapStatus(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// \brief Series views over detector output, index-aligned with the stream
/// (times before the first inspection point are padded with the first value
/// so charts line up with the planted change points).
struct ResultSeries {
  std::vector<double> score;
  std::vector<double> lo;
  std::vector<double> up;
  std::vector<std::uint64_t> alarms;
};

inline ResultSeries Slice(const std::vector<StepResult>& results,
                          std::size_t stream_length) {
  ResultSeries out;
  out.score.assign(stream_length, 0.0);
  out.lo.assign(stream_length, 0.0);
  out.up.assign(stream_length, 0.0);
  if (results.empty()) return out;
  for (const StepResult& r : results) {
    if (r.time >= stream_length) continue;
    out.score[static_cast<std::size_t>(r.time)] = r.score;
    out.lo[static_cast<std::size_t>(r.time)] =
        std::isnan(r.ci_lo) ? r.score : r.ci_lo;
    out.up[static_cast<std::size_t>(r.time)] =
        std::isnan(r.ci_up) ? r.score : r.ci_up;
    if (r.alarm) out.alarms.push_back(r.time);
  }
  // Pad the warm-up prefix with the first computed values.
  const std::size_t first = static_cast<std::size_t>(results.front().time);
  for (std::size_t t = 0; t < first && t < stream_length; ++t) {
    out.score[t] = out.score[first];
    out.lo[t] = out.lo[first];
    out.up[t] = out.up[first];
  }
  return out;
}

/// \brief AUC of the scores against a +-1-step window around each change
/// point (the sharp-peak labeling used in the integration tests).
inline double NearChangeAuc(const std::vector<StepResult>& results,
                            const std::vector<std::size_t>& change_points) {
  if (change_points.empty()) return std::nan("");
  std::vector<double> scores;
  std::vector<int> labels;
  for (const StepResult& r : results) {
    scores.push_back(r.score);
    bool near = false;
    for (std::size_t cp : change_points) {
      if (r.time + 1 >= cp && r.time <= cp + 1) near = true;
    }
    labels.push_back(near ? 1 : 0);
  }
  Result<double> auc = RocAuc(scores, labels);
  return auc.ok() ? auc.ValueOrDie() : std::nan("");
}

/// \brief Seconds between two steady_clock time points.
inline double SecondsBetween(std::chrono::steady_clock::time_point start,
                             std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

/// \brief Times `fn(it)` over `iterations` calls, best of `reps` passes;
/// returns seconds per call. Every value `fn` returns accumulates into *sink
/// so the work cannot be optimized away (and checksums stay comparable
/// across solvers).
template <typename Fn>
double BestSecondsPerCall(int reps, int iterations, double* sink, Fn&& fn) {
  double best = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int it = 0; it < iterations; ++it) *sink += fn(it);
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best, SecondsBetween(start, stop));
  }
  return best / iterations;
}

/// \brief Two-sided interleaved best-of timing for A-vs-B comparisons: each
/// rep runs a full pass of `fn_a` then a full pass of `fn_b`, and each side
/// keeps its own best pass — so a transient stall poisons at most one pass
/// of one side, never the ratio. The sinks accumulate per side; when both
/// functions solve the same instances, callers can compare *sink_a and
/// *sink_b bitwise as an end-to-end agreement check over the timed loops
/// themselves. Returns {seconds per call of A, seconds per call of B}.
template <typename FnA, typename FnB>
std::pair<double, double> BestSecondsPerCallInterleaved(
    int reps, int iterations, double* sink_a, double* sink_b, FnA&& fn_a,
    FnB&& fn_b) {
  double best_a = 1e100;
  double best_b = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    for (int it = 0; it < iterations; ++it) *sink_a += fn_a(it);
    auto stop = std::chrono::steady_clock::now();
    best_a = std::min(best_a, SecondsBetween(start, stop));

    start = std::chrono::steady_clock::now();
    for (int it = 0; it < iterations; ++it) *sink_b += fn_b(it);
    stop = std::chrono::steady_clock::now();
    best_b = std::min(best_b, SecondsBetween(start, stop));
  }
  return {best_a / iterations, best_b / iterations};
}

/// \brief Header printed by every harness.
inline void PrintHeader(const char* figure, const char* note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("%s\n", note);
  std::printf("==============================================================\n\n");
}

}  // namespace bench
}  // namespace bagcpd

#endif  // BAGCPD_BENCH_BENCH_UTIL_H_
