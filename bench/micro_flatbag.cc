// Flat-vs-nested bag storage microbenchmark: the cache/allocator win the
// FlatBag layer buys on the distance-dominated hot paths, and proof that the
// nested->flat conversion happens exactly once per bag at the ingest
// boundary. Emits BENCH_flatbag.json in the working directory.
//
//   micro_flatbag [bag_size] [dim] [repeats]
//   e.g. micro_flatbag 256 8 50

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/signature/kmeans.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

// Sum of all pairwise squared distances over the nested representation:
// every point access chases one pointer per row.
double PairwiseNested(const Bag& bag) {
  double acc = 0.0;
  for (std::size_t i = 0; i < bag.size(); ++i) {
    for (std::size_t j = i + 1; j < bag.size(); ++j) {
      acc += SquaredDistance(bag[i], bag[j]);
    }
  }
  return acc;
}

// Same sweep over the flat view: rows are adjacent in one buffer.
double PairwiseFlat(BagView bag) {
  double acc = 0.0;
  for (std::size_t i = 0; i < bag.size(); ++i) {
    for (std::size_t j = i + 1; j < bag.size(); ++j) {
      acc += SquaredDistance(bag[i], bag[j]);
    }
  }
  return acc;
}

struct Row {
  const char* name;
  double nested_seconds = 0.0;
  double flat_seconds = 0.0;
  double speedup = 0.0;
};

int Main(int argc, char** argv) {
  const std::size_t bag_size =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 256;
  const std::size_t dim =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const int repeats = argc > 3 ? std::atoi(argv[3]) : 50;

  bench::PrintHeader(
      "micro_flatbag: nested vs flat bag storage",
      "pairwise kernels, k-means quantization, detector ingestion");
  std::printf("bag_size=%zu dim=%zu repeats=%d\n\n", bag_size, dim, repeats);

  Rng rng(2025);
  Point mean(dim, 0.0);
  const GaussianMixture mix = GaussianMixture::Isotropic(mean, 1.0);
  const Bag bag = mix.SampleBag(bag_size, &rng);
  const FlatBag flat = bench::Unwrap(FlatBag::FromBag(bag), "FromBag");

  std::vector<Row> rows;

  // 1) Raw pairwise-distance sweep (the shape of every EMD cost matrix and
  // k-means assignment pass).
  {
    Row row;
    row.name = "pairwise_sq_distance";
    double nested_sink = 0.0;
    double flat_sink = 0.0;
    auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) nested_sink += PairwiseNested(bag);
    auto stop = std::chrono::steady_clock::now();
    row.nested_seconds = Seconds(start, stop);
    start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) flat_sink += PairwiseFlat(flat.view());
    stop = std::chrono::steady_clock::now();
    row.flat_seconds = Seconds(start, stop);
    // Identical operations in identical order: the sums must match bitwise.
    if (nested_sink != flat_sink) {
      std::fprintf(stderr, "FATAL: nested/flat pairwise sums diverged\n");
      return 1;
    }
    row.speedup = row.nested_seconds / row.flat_seconds;
    rows.push_back(row);
  }

  // 2) k-means quantization: nested entry (validate + flatten every call)
  // vs flat entry (flattened once upstream).
  {
    Row row;
    row.name = "kmeans_quantize";
    KMeansOptions options;
    options.k = 8;
    options.seed = 3;
    auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      bench::Unwrap(KMeansQuantize(bag, options), "kmeans nested");
    }
    auto stop = std::chrono::steady_clock::now();
    row.nested_seconds = Seconds(start, stop);
    start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      bench::Unwrap(KMeansQuantize(flat.view(), options), "kmeans flat");
    }
    stop = std::chrono::steady_clock::now();
    row.flat_seconds = Seconds(start, stop);
    row.speedup = row.nested_seconds / row.flat_seconds;
    rows.push_back(row);
  }

  // 3) Detector ingestion: a nested stream (flattened once per bag at the
  // Push boundary) vs a pre-flattened stream (zero conversions inside the
  // loop). Confirms the boundary cost is one conversion per bag, after which
  // both paths run the identical flat pipeline.
  {
    Row row;
    row.name = "detector_ingest";
    Rng stream_rng(7);
    BagSequence stream;
    for (std::size_t t = 0; t < 32; ++t) {
      stream.push_back(mix.SampleBag(bag_size / 4, &stream_rng));
    }
    const FlatBagSequence flat_stream =
        bench::Unwrap(FlattenSequence(stream), "FlattenSequence");
    DetectorOptions options;
    options.tau = 4;
    options.tau_prime = 4;
    options.bootstrap.replicates = 0;
    options.signature.k = 4;
    BagStreamDetector detector(options);
    const int ingest_repeats = std::max(1, repeats / 10);
    auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < ingest_repeats; ++r) {
      bench::Unwrap(detector.Run(stream), "nested run");
    }
    auto stop = std::chrono::steady_clock::now();
    row.nested_seconds = Seconds(start, stop);
    start = std::chrono::steady_clock::now();
    for (int r = 0; r < ingest_repeats; ++r) {
      bench::Unwrap(detector.Run(flat_stream), "flat run");
    }
    stop = std::chrono::steady_clock::now();
    row.flat_seconds = Seconds(start, stop);
    row.speedup = row.nested_seconds / row.flat_seconds;
    rows.push_back(row);
  }

  for (const Row& row : rows) {
    std::printf("%-22s nested %9.4fs   flat %9.4fs   flat speedup %.2fx\n",
                row.name, row.nested_seconds, row.flat_seconds, row.speedup);
  }

  std::FILE* json = std::fopen("BENCH_flatbag.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_flatbag.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"micro_flatbag\",\n"
               "  \"bag_size\": %zu,\n  \"dim\": %zu,\n  \"repeats\": %d,\n"
               "  \"runs\": [\n",
               bag_size, dim, repeats);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"nested_seconds\": %.6f, "
                 "\"flat_seconds\": %.6f, \"flat_speedup\": %.3f}%s\n",
                 r.name, r.nested_seconds, r.flat_seconds, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_flatbag.json\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main(int argc, char** argv) { return bagcpd::Main(argc, argv); }
