// Flat-vs-nested bag storage microbenchmark: the cache/allocator win the
// FlatBag layer buys on the distance-dominated hot paths, proof that the
// nested->flat conversion happens exactly once per bag at the ingest
// boundary, and the pooled-memory sections (BufferArena ingest vs malloc
// ingest, packed single-buffer signature build vs the old split layout).
// Emits BENCH_flatbag.json in the working directory.
//
//   micro_flatbag [bag_size] [dim] [repeats]
//   e.g. micro_flatbag 256 8 50

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/signature/kmeans.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

// Sum of all pairwise squared distances over the nested representation:
// every point access chases one pointer per row.
double PairwiseNested(const Bag& bag) {
  double acc = 0.0;
  for (std::size_t i = 0; i < bag.size(); ++i) {
    for (std::size_t j = i + 1; j < bag.size(); ++j) {
      acc += SquaredDistance(bag[i], bag[j]);
    }
  }
  return acc;
}

// Same sweep over the flat view: rows are adjacent in one buffer.
double PairwiseFlat(BagView bag) {
  double acc = 0.0;
  for (std::size_t i = 0; i < bag.size(); ++i) {
    for (std::size_t j = i + 1; j < bag.size(); ++j) {
      acc += SquaredDistance(bag[i], bag[j]);
    }
  }
  return acc;
}

struct Row {
  const char* name;
  double nested_seconds = 0.0;
  double flat_seconds = 0.0;
  double speedup = 0.0;
};

// Pooled-memory comparison rows: a malloc baseline vs the arena/packed path.
struct MemRow {
  const char* name;
  double baseline_seconds = 0.0;
  double pooled_seconds = 0.0;
  double speedup = 0.0;
};

// Mimics the engine's steady-state ingest: flatten a nested bag, keep the
// FlatBag in flight while its shard works through the queue, then retire it.
// Slots retire in scrambled order (a fixed LCG) because shards drain at
// different rates, so freed buffers are scattered across the heap exactly as
// in production — the regime where the general allocator coalesces and
// re-splits chunks on every cycle while the arena just pops a freelist. The
// only difference between the two passes is where buffers come from.
double IngestPass(const BagSequence& stream, int iterations,
                  std::size_t window, BufferArena* arena, double* checksum) {
  std::vector<FlatBag> in_flight(window);
  double acc = 0.0;
  std::uint64_t lcg = 0x2545F4914F6CDD1DULL;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iterations; ++it) {
    const Bag& bag = stream[static_cast<std::size_t>(it) % stream.size()];
    FlatBag flat = bench::Unwrap(FlatBag::FromBag(bag, arena), "ingest");
    acc += flat.data()[0];
    // Retire a pseudo-random slot: releases its buffer (to the arena when
    // one is attached) — the producer/consumer cycle of a shard queue.
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    in_flight[static_cast<std::size_t>((lcg >> 33) % window)] =
        std::move(flat);
  }
  const auto stop = std::chrono::steady_clock::now();
  *checksum += acc;
  return Seconds(start, stop);
}

// The old split signature layout (separate center and weight vectors), kept
// here as the baseline the packed single-buffer layout replaced.
struct SplitSignature {
  std::vector<double> centers;
  std::vector<double> weights;
};

int Main(int argc, char** argv) {
  const std::size_t bag_size =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 256;
  const std::size_t dim =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const int repeats = argc > 3 ? std::atoi(argv[3]) : 50;

  bench::PrintHeader(
      "micro_flatbag: nested vs flat bag storage",
      "pairwise kernels, k-means quantization, detector ingestion");
  std::printf("bag_size=%zu dim=%zu repeats=%d\n\n", bag_size, dim, repeats);

  Rng rng(2025);
  Point mean(dim, 0.0);
  const GaussianMixture mix = GaussianMixture::Isotropic(mean, 1.0);
  const Bag bag = mix.SampleBag(bag_size, &rng);
  const FlatBag flat = bench::Unwrap(FlatBag::FromBag(bag), "FromBag");

  std::vector<Row> rows;

  // 1) Raw pairwise-distance sweep (the shape of every EMD cost matrix and
  // k-means assignment pass).
  {
    Row row;
    row.name = "pairwise_sq_distance";
    double nested_sink = 0.0;
    double flat_sink = 0.0;
    auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) nested_sink += PairwiseNested(bag);
    auto stop = std::chrono::steady_clock::now();
    row.nested_seconds = Seconds(start, stop);
    start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) flat_sink += PairwiseFlat(flat.view());
    stop = std::chrono::steady_clock::now();
    row.flat_seconds = Seconds(start, stop);
    // Identical operations in identical order: the sums must match bitwise.
    if (nested_sink != flat_sink) {
      std::fprintf(stderr, "FATAL: nested/flat pairwise sums diverged\n");
      return 1;
    }
    row.speedup = row.nested_seconds / row.flat_seconds;
    rows.push_back(row);
  }

  // 2) k-means quantization: nested entry (validate + flatten every call)
  // vs flat entry (flattened once upstream).
  {
    Row row;
    row.name = "kmeans_quantize";
    KMeansOptions options;
    options.k = 8;
    options.seed = 3;
    auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      bench::Unwrap(KMeansQuantize(bag, options), "kmeans nested");
    }
    auto stop = std::chrono::steady_clock::now();
    row.nested_seconds = Seconds(start, stop);
    start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      bench::Unwrap(KMeansQuantize(flat.view(), options), "kmeans flat");
    }
    stop = std::chrono::steady_clock::now();
    row.flat_seconds = Seconds(start, stop);
    row.speedup = row.nested_seconds / row.flat_seconds;
    rows.push_back(row);
  }

  // 3) Detector ingestion: a nested stream (flattened once per bag at the
  // Push boundary) vs a pre-flattened stream (zero conversions inside the
  // loop). Confirms the boundary cost is one conversion per bag, after which
  // both paths run the identical flat pipeline.
  {
    Row row;
    row.name = "detector_ingest";
    Rng stream_rng(7);
    BagSequence stream;
    for (std::size_t t = 0; t < 32; ++t) {
      stream.push_back(mix.SampleBag(bag_size / 4, &stream_rng));
    }
    const FlatBagSequence flat_stream =
        bench::Unwrap(FlattenSequence(stream), "FlattenSequence");
    DetectorOptions options;
    options.tau = 4;
    options.tau_prime = 4;
    options.bootstrap.replicates = 0;
    options.signature.k = 4;
    auto detector_owner =
        bench::Unwrap(BagStreamDetector::Create(options), "create");
    BagStreamDetector& detector = *detector_owner;
    const int ingest_repeats = std::max(1, repeats / 10);
    auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < ingest_repeats; ++r) {
      bench::Unwrap(detector.Run(stream), "nested run");
    }
    auto stop = std::chrono::steady_clock::now();
    row.nested_seconds = Seconds(start, stop);
    start = std::chrono::steady_clock::now();
    for (int r = 0; r < ingest_repeats; ++r) {
      bench::Unwrap(detector.Run(flat_stream), "flat run");
    }
    stop = std::chrono::steady_clock::now();
    row.flat_seconds = Seconds(start, stop);
    row.speedup = row.nested_seconds / row.flat_seconds;
    rows.push_back(row);
  }

  std::vector<MemRow> mem_rows;

  // 4) Arena vs malloc ingest: the steady-state flatten/retire cycle of the
  // engine's shard queues — a realistic queue depth of bags in flight and
  // bag sizes spread across several size classes (real streams are not
  // uniform), which is exactly the regime where the general allocator falls
  // off its per-thread fast path while the arena keeps popping freelists.
  {
    MemRow row;
    row.name = "arena_ingest";
    Rng ingest_rng(11);
    // Fixed geometry for this section (independent of the CLI dims): 4-d
    // bags of 36..96 points, i.e. 1.1-3 KB buffers. Large enough that every
    // size misses the allocator's per-thread cache, small enough that the
    // flatten copy does not drown the allocation cost being measured.
    Point ingest_mean(4, 0.0);
    const GaussianMixture ingest_mix =
        GaussianMixture::Isotropic(ingest_mean, 1.0);
    BagSequence stream;
    for (std::size_t t = 0; t < 64; ++t) {
      stream.push_back(ingest_mix.SampleBag(36 + 4 * (t % 16), &ingest_rng));
    }
    const std::size_t window = 128;
    const int iterations = std::max(4000, repeats * 800);
    BufferArena arena;
    double malloc_sum = 0.0;
    double arena_sum = 0.0;
    // Warm both paths once (page faults, arena freelist fill).
    IngestPass(stream, iterations / 4, window, nullptr, &malloc_sum);
    IngestPass(stream, iterations / 4, window, &arena, &arena_sum);
    malloc_sum = arena_sum = 0.0;
    // Alternate the two passes and keep each side's best time, so transient
    // container noise (frequency shifts, background work) cannot poison one
    // side of the ratio.
    row.baseline_seconds = 1e100;
    row.pooled_seconds = 1e100;
    double malloc_pass_sum = 0.0;
    double arena_pass_sum = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      malloc_pass_sum = 0.0;
      arena_pass_sum = 0.0;
      row.baseline_seconds = std::min(
          row.baseline_seconds,
          IngestPass(stream, iterations, window, nullptr, &malloc_pass_sum));
      row.pooled_seconds = std::min(
          row.pooled_seconds,
          IngestPass(stream, iterations, window, &arena, &arena_pass_sum));
    }
    // Identical bags in identical order: the checksums must match bitwise.
    if (malloc_pass_sum != arena_pass_sum) {
      std::fprintf(stderr, "FATAL: malloc/arena ingest checksums diverged\n");
      return 1;
    }
    row.speedup = row.baseline_seconds / row.pooled_seconds;
    mem_rows.push_back(row);
  }

  // 5) Packed vs split signature build: a detector window's worth of
  // signatures built and alive together per round (the way windows and batch
  // analyses actually hold them), as one (K*d + K) buffer each (today's
  // layout, optionally arena-recycled) against the historical two-vector
  // layout — twice the allocations, half the locality.
  {
    Rng sig_rng(13);
    const std::size_t k = 8;
    const std::size_t sig_dim = dim;
    const std::size_t batch = 64;  // Signatures alive simultaneously.
    std::vector<double> source_centers(k * sig_dim);
    std::vector<double> source_weights(k);
    for (double& v : source_centers) v = sig_rng.Uniform(-2.0, 2.0);
    for (double& w : source_weights) w = sig_rng.Uniform(0.5, 4.0);
    const int rounds = std::max(200, repeats * 10);

    double split_sum = 0.0;
    const auto split_start = std::chrono::steady_clock::now();
    for (int it = 0; it < rounds; ++it) {
      std::vector<SplitSignature> window(batch);
      for (SplitSignature& split : window) {
        split.centers.reserve(k * sig_dim);
        split.weights.reserve(k);
        for (std::size_t c = 0; c < k; ++c) {
          split.centers.insert(split.centers.end(),
                               source_centers.data() + c * sig_dim,
                               source_centers.data() + (c + 1) * sig_dim);
          split.weights.push_back(source_weights[c]);
        }
        split_sum += split.centers[0] + split.weights.back();
      }
    }
    const auto split_stop = std::chrono::steady_clock::now();

    BufferArena arena;
    // The production assembly path: SignatureAssembler, exactly what the
    // quantizers run after their final assignment pass.
    auto run_packed = [&](BufferArena* maybe_arena, double* sum) {
      const auto start = std::chrono::steady_clock::now();
      for (int it = 0; it < rounds; ++it) {
        std::vector<Signature> window;
        window.reserve(batch);
        for (std::size_t s = 0; s < batch; ++s) {
          SignatureAssembler assembler(k, sig_dim, maybe_arena);
          for (std::size_t c = 0; c < k; ++c) {
            assembler.Add(
                PointView(source_centers.data() + c * sig_dim, sig_dim),
                source_weights[c]);
          }
          window.push_back(assembler.Finish());
          *sum += window.back().center(0)[0] + window.back().weight(k - 1);
        }
      }
      const auto stop = std::chrono::steady_clock::now();
      return Seconds(start, stop);
    };

    double packed_sum = 0.0;
    double pooled_sum = 0.0;
    MemRow packed;
    packed.name = "packed_signature_build";
    packed.baseline_seconds = Seconds(split_start, split_stop);
    packed.pooled_seconds = run_packed(nullptr, &packed_sum);
    packed.speedup = packed.baseline_seconds / packed.pooled_seconds;
    mem_rows.push_back(packed);

    MemRow pooled;
    pooled.name = "packed_signature_build_arena";
    pooled.baseline_seconds = packed.baseline_seconds;
    run_packed(&arena, &pooled_sum);  // Warm the freelist.
    pooled_sum = 0.0;
    pooled.pooled_seconds = run_packed(&arena, &pooled_sum);
    pooled.speedup = pooled.baseline_seconds / pooled.pooled_seconds;
    mem_rows.push_back(pooled);

    // One timed pass each over identical inputs: all three layouts read the
    // same first-center / last-weight values, so the checksums must match
    // bitwise — and consuming split_sum here also keeps the baseline loop
    // from being dead-code eliminated.
    if (packed_sum != pooled_sum || split_sum != packed_sum) {
      std::fprintf(stderr, "FATAL: split/packed/arena checksums diverged\n");
      return 1;
    }
  }

  for (const Row& row : rows) {
    std::printf("%-22s nested %9.4fs   flat %9.4fs   flat speedup %.2fx\n",
                row.name, row.nested_seconds, row.flat_seconds, row.speedup);
  }
  for (const MemRow& row : mem_rows) {
    std::printf(
        "%-28s malloc %9.4fs   pooled %9.4fs   pooled speedup %.2fx\n",
        row.name, row.baseline_seconds, row.pooled_seconds, row.speedup);
  }

  std::FILE* json = std::fopen("BENCH_flatbag.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_flatbag.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"micro_flatbag\",\n"
               "  \"bag_size\": %zu,\n  \"dim\": %zu,\n  \"repeats\": %d,\n"
               "  \"runs\": [\n",
               bag_size, dim, repeats);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"nested_seconds\": %.6f, "
                 "\"flat_seconds\": %.6f, \"flat_speedup\": %.3f}%s\n",
                 r.name, r.nested_seconds, r.flat_seconds, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"memory_runs\": [\n");
  for (std::size_t i = 0; i < mem_rows.size(); ++i) {
    const MemRow& r = mem_rows[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"baseline_seconds\": %.6f, "
                 "\"pooled_seconds\": %.6f, \"pooled_speedup\": %.3f}%s\n",
                 r.name, r.baseline_seconds, r.pooled_seconds, r.speedup,
                 i + 1 < mem_rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_flatbag.json\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main(int argc, char** argv) { return bagcpd::Main(argc, argv); }
