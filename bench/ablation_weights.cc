// Ablation: uniform window weights (the paper's experimental setting) versus
// the Eq. 15 hyperbolic discounting toward the inspection point. Discounting
// emphasizes the bags adjacent to t, which sharpens reaction to abrupt jumps
// but increases variance (effective sample size shrinks).

#include <cstdio>
#include <iostream>

#include "bagcpd/analysis/metrics.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/data/ci_datasets.h"
#include "bagcpd/io/table.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

int Main() {
  bench::PrintHeader(
      "Ablation — uniform vs discounted window weights (Eq. 15)",
      "Section 5.1 datasets 3 (drift), 4 (jump) and 1 (stationary), 10 seeds.");

  TablePrinter table({"dataset", "weights", "alarm rate", "hit rate",
                      "false alarms/run", "mean |score|"});

  for (int index : {1, 3, 4}) {
    for (WeightScheme scheme :
         {WeightScheme::kUniform, WeightScheme::kDiscounted}) {
      int runs_with_alarm = 0;
      int hits = 0;
      double false_alarms = 0.0;
      double mean_abs_score = 0.0;
      std::size_t score_count = 0;
      const int kSeeds = 10;
      for (int seed = 0; seed < kSeeds; ++seed) {
        CiDatasetOptions data_options;
        data_options.seed = 300 + static_cast<std::uint64_t>(seed);
        LabeledBagSequence ds =
            bench::Unwrap(MakeCiDataset(index, data_options), "dataset");
        DetectorOptions options;
        options.tau = 5;
        options.tau_prime = 5;
        options.weight_scheme = scheme;
        options.bootstrap.replicates = 200;
        options.signature.k = 8;
        options.seed = static_cast<std::uint64_t>(seed);
        auto detector_owner =
            bench::Unwrap(BagStreamDetector::Create(options), "create");
        BagStreamDetector& detector = *detector_owner;
        std::vector<StepResult> results =
            bench::Unwrap(detector.Run(ds.bags), "detector");
        const std::vector<std::uint64_t> alarms = AlarmTimes(results);
        if (!alarms.empty()) ++runs_with_alarm;
        const DetectionReport report =
            EvaluateAlarms(alarms, ds.change_points, 3);
        hits += static_cast<int>(report.true_positives);
        false_alarms += static_cast<double>(report.false_positives);
        for (const StepResult& r : results) {
          mean_abs_score += std::abs(r.score);
          ++score_count;
        }
      }
      char rate_buf[32], hit_buf[32], fa_buf[32], score_buf[32];
      std::snprintf(rate_buf, sizeof(rate_buf), "%d/%d", runs_with_alarm,
                    kSeeds);
      std::snprintf(hit_buf, sizeof(hit_buf), "%d/%d", hits,
                    index == 4 ? kSeeds : 0);
      std::snprintf(fa_buf, sizeof(fa_buf), "%.1f", false_alarms / kSeeds);
      std::snprintf(score_buf, sizeof(score_buf), "%.3f",
                    mean_abs_score / static_cast<double>(score_count));
      table.AddRow({"ds" + std::to_string(index), WeightSchemeName(scheme),
                    rate_buf, hit_buf, fa_buf, score_buf});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nreading: both schemes must stay quiet on ds1/ds3 and fire on ds4;\n"
      "discounting trades a sharper jump response for noisier scores.\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main() { return bagcpd::Main(); }
