// Reproduces paper Fig. 11: the ENRON case study, on the event-driven email
// network simulator (the corpus itself is not available offline; DESIGN.md
// section 3 documents the substitution). Weekly bipartite graphs, 5-week
// reference / 3-week test windows, the same seven features, scoreKL.
//
// Expected shape (paper): the change-point scores coincide with most of the
// scripted events; our detector catches events comparable to (and some beyond)
// the GraphScope-detected column.

#include <cstdio>
#include <iostream>

#include "bagcpd/analysis/ascii_plot.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/emd/emd.h"
#include "bagcpd/graph/enron_simulator.h"
#include "bagcpd/graph/features.h"
#include "bagcpd/io/table.h"
#include "bagcpd/runtime/thread_pool.h"
#include "bagcpd/signature/builder.h"
#include "bagcpd/signature/signature_set.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

int Main() {
  bench::PrintHeader(
      "Figure 11 — ENRON-like email network case study (Sec. 5.4)",
      "100 weekly graphs, tau = 5 weeks, tau' = 3 weeks, 7 features.\n"
      "Event-driven simulator replaces the (offline-unavailable) corpus.");

  EnronSimulatorOptions sim;
  sim.seed = 2002;
  sim.weeks = 100;
  sim.node_rate = 50.0;
  sim.edge_density = 0.25;
  EnronStream stream =
      bench::Unwrap(SimulateEnronStream(sim), "enron simulator");

  // Run the detector per feature; remember alarms and one score series for
  // the chart (destination strength tracks the crisis cascade best).
  std::vector<std::vector<std::uint64_t>> alarms_per_feature;
  bench::ResultSeries chart_series;
  std::vector<std::size_t> event_weeks;
  for (const EnronEvent& e : stream.events) event_weeks.push_back(e.week);

  for (GraphFeature feature : AllGraphFeatures()) {
    BagSequence bags;
    for (const BipartiteGraph& g : stream.weekly_graphs) {
      bags.push_back(bench::Unwrap(ExtractGraphFeature(g, feature), "feature"));
    }
    DetectorOptions options;
    options.tau = 5;
    options.tau_prime = 3;
    options.bootstrap.replicates = 200;
    options.signature.method = SignatureMethod::kKMeans;
    options.signature.k = 8;
    options.seed = 110 + static_cast<std::uint64_t>(feature);
    auto detector =
        bench::Unwrap(BagStreamDetector::Create(options), "detector");
    std::vector<StepResult> results =
        bench::Unwrap(detector->Run(bags), "detector");
    alarms_per_feature.push_back(AlarmTimes(results));
    if (feature == GraphFeature::kDestinationStrength) {
      chart_series = bench::Slice(results, bags.size());
    }
    std::printf("feature %d (%-26s): %zu alarms\n", static_cast<int>(feature),
                GraphFeatureName(feature), alarms_per_feature.back().size());
  }

  std::printf("\nweekly scoreKL for feature 6 (destination strength), ':' = "
              "scripted events:\n%s\n",
              RenderLineChart(chart_series.score, chart_series.lo,
                              chart_series.up, chart_series.alarms,
                              event_weeks)
                  .c_str());

  // The Fig. 11 event table: ours vs the GraphScope column.
  TablePrinter table({"week", "ours", "GraphScope[22]", "event"});
  std::size_t ours_detected = 0;
  std::size_t graphscope_detected = 0;
  for (const EnronEvent& event : stream.events) {
    bool detected = false;
    for (const auto& alarms : alarms_per_feature) {
      for (std::uint64_t a : alarms) {
        if (a + 1 >= event.week && a <= event.week + 3) detected = true;
      }
    }
    if (detected) ++ours_detected;
    if (event.detected_by_graphscope) ++graphscope_detected;
    table.AddRow({std::to_string(event.week), detected ? "X" : "",
                  event.detected_by_graphscope ? "X" : "", event.label});
  }
  table.Print(std::cout);

  // Batch drift profile over the parallel CrossDistanceMatrix: distance of
  // every week's destination-strength signature from the calm opening weeks,
  // averaged per quarter of the stream. The pooled fill is bitwise-identical
  // to the serial one (deterministic row chunking).
  {
    const std::size_t calm_weeks = 20;
    SignatureBuilderOptions sig_options;
    sig_options.method = SignatureMethod::kKMeans;
    sig_options.k = 8;
    sig_options.seed =
        110 + static_cast<std::uint64_t>(GraphFeature::kDestinationStrength);
    SignatureBuilder builder(sig_options);
    SignatureSet calm;
    SignatureSet all;
    for (std::size_t t = 0; t < stream.weekly_graphs.size(); ++t) {
      const Bag bag = bench::Unwrap(
          ExtractGraphFeature(stream.weekly_graphs[t],
                              GraphFeature::kDestinationStrength),
          "feature");
      Signature sig = bench::Unwrap(builder.Build(bag, t), "signature");
      if (t < calm_weeks) {
        bench::UnwrapStatus(calm.Append(sig), "append calm");
      }
      bench::UnwrapStatus(all.Append(sig), "append all");
    }
    ThreadPool pool(4);
    const Matrix drift = bench::Unwrap(
        CrossDistanceMatrix(calm, all, GroundDistance::kEuclidean, &pool),
        "drift table");
    std::printf("\ndrift from the calm opening %zu weeks (mean EMD per "
                "quarter, feature 6):\n",
                calm_weeks);
    const std::size_t weeks = all.size();
    for (std::size_t quarter = 0; quarter < 4; ++quarter) {
      const std::size_t begin = quarter * weeks / 4;
      const std::size_t end = (quarter + 1) * weeks / 4;
      double sum = 0.0;
      for (std::size_t i = 0; i < drift.rows(); ++i) {
        for (std::size_t j = begin; j < end; ++j) sum += drift(i, j);
      }
      std::printf("  weeks %3zu-%3zu: %.3f\n", begin, end - 1,
                  sum / static_cast<double>(drift.rows() * (end - begin)));
    }
  }

  std::printf(
      "\nours: %zu/%zu events; GraphScope-style reference column: %zu/%zu.\n"
      "shape check (paper): we detect most events including some the\n"
      "GraphScope column misses.\n",
      ours_detected, stream.events.size(), graphscope_detected,
      stream.events.size());
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main() { return bagcpd::Main(); }
