// Checkpoint subsystem cost: detector export / import round-trip latency and
// blob size at several window configurations, plus the engine-wide
// Checkpoint/Restore figures the crash-recovery story depends on. Emits
// BENCH_ckpt.json for the perf job.
//
//   micro_ckpt [num_streams] [bags_per_stream]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bagcpd/common/rng.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/runtime/stream_engine.h"
#include "bagcpd/serialize/checkpoint.h"
#include "bench_util.h"

namespace bagcpd {
namespace {

DetectorOptions BenchDetector(std::size_t tau) {
  DetectorOptions options;
  options.tau = tau;
  options.tau_prime = tau;
  options.bootstrap.replicates = 50;
  options.signature.method = SignatureMethod::kKMeans;
  options.signature.k = 4;
  options.seed = 0;
  return options;
}

BagSequence MakeStream(std::uint64_t seed, std::size_t length) {
  Rng rng(seed);
  const GaussianMixture mix = GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  BagSequence bags;
  bags.reserve(length);
  for (std::size_t t = 0; t < length; ++t) {
    bags.push_back(mix.SampleBag(20, &rng));
  }
  return bags;
}

struct DetectorRow {
  std::size_t tau = 0;
  std::size_t blob_bytes = 0;
  double export_us = 0.0;
  double import_us = 0.0;
};

struct EngineRow {
  std::size_t streams = 0;
  std::size_t blob_bytes = 0;
  double checkpoint_ms = 0.0;
  double restore_ms = 0.0;
  double per_stream_us = 0.0;
};

DetectorRow BenchDetectorCkpt(std::size_t tau, const BagSequence& bags) {
  DetectorOptions options = BenchDetector(tau);
  options.seed = 11;
  auto detector =
      bench::Unwrap(BagStreamDetector::Create(options), "detector init");
  for (const Bag& bag : bags) {
    bench::Unwrap(detector->Push(bag), "push");
  }

  constexpr int kReps = 200;
  std::string blob;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    bench::UnwrapStatus(detector->ExportState(&blob), "ExportState");
  }
  auto stop = std::chrono::steady_clock::now();
  DetectorRow row;
  row.tau = tau;
  row.blob_bytes = blob.size();
  row.export_us =
      std::chrono::duration<double, std::micro>(stop - start).count() / kReps;

  auto restored =
      bench::Unwrap(BagStreamDetector::Create(options), "detector init");
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    bench::UnwrapStatus(restored->ImportState(blob), "ImportState");
  }
  stop = std::chrono::steady_clock::now();
  row.import_us =
      std::chrono::duration<double, std::micro>(stop - start).count() / kReps;
  return row;
}

EngineRow BenchEngineCkpt(std::size_t num_streams,
                          std::size_t bags_per_stream) {
  StreamEngineOptions options;
  options.num_shards = 4;
  options.seed = 7;
  options.detector = BenchDetector(4);
  options.collect_results = false;
  auto engine = bench::Unwrap(StreamEngine::Create(options), "engine init");
  for (std::size_t s = 0; s < num_streams; ++s) {
    const BagSequence bags = MakeStream(100 + s, bags_per_stream);
    const std::string key = "stream-" + std::to_string(s);
    for (const Bag& bag : bags) {
      bench::UnwrapStatus(engine->Submit(key, bag), "submit");
    }
  }
  engine->Flush();

  EngineRow row;
  row.streams = num_streams;
  std::string blob;
  auto start = std::chrono::steady_clock::now();
  bench::UnwrapStatus(engine->Checkpoint(&blob), "Checkpoint");
  auto stop = std::chrono::steady_clock::now();
  row.blob_bytes = blob.size();
  row.checkpoint_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();

  auto second = bench::Unwrap(StreamEngine::Create(options), "engine init");
  start = std::chrono::steady_clock::now();
  bench::UnwrapStatus(second->Restore(blob), "Restore");
  stop = std::chrono::steady_clock::now();
  row.restore_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  row.per_stream_us = row.restore_ms * 1e3 / static_cast<double>(num_streams);
  return row;
}

int Main(int argc, char** argv) {
  const std::size_t num_streams =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 64;
  const std::size_t bags_per_stream =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 20;

  bench::PrintHeader("micro_ckpt: checkpoint subsystem cost",
                     "detector export/import latency, engine "
                     "Checkpoint/Restore, blob sizes");

  std::vector<DetectorRow> detector_rows;
  for (std::size_t tau : {std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
    const BagSequence bags = MakeStream(42, 3 * tau);
    const DetectorRow row = BenchDetectorCkpt(tau, bags);
    detector_rows.push_back(row);
    std::printf("detector tau=%-2zu  blob %6zu B  export %7.1fus  "
                "import %7.1fus\n",
                row.tau, row.blob_bytes, row.export_us, row.import_us);
  }

  const EngineRow engine_row = BenchEngineCkpt(num_streams, bags_per_stream);
  std::printf("\nengine %zu streams  blob %zu B  checkpoint %.2fms  "
              "restore %.2fms (%.1fus/stream)\n",
              engine_row.streams, engine_row.blob_bytes,
              engine_row.checkpoint_ms, engine_row.restore_ms,
              engine_row.per_stream_us);

  std::FILE* json = std::fopen("BENCH_ckpt.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open BENCH_ckpt.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"micro_ckpt\",\n  \"detector\": [\n");
  for (std::size_t i = 0; i < detector_rows.size(); ++i) {
    const DetectorRow& r = detector_rows[i];
    std::fprintf(json,
                 "    {\"tau\": %zu, \"blob_bytes\": %zu, "
                 "\"export_us\": %.2f, \"import_us\": %.2f}%s\n",
                 r.tau, r.blob_bytes, r.export_us, r.import_us,
                 i + 1 < detector_rows.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"engine\": {\"streams\": %zu, \"blob_bytes\": %zu, "
               "\"checkpoint_ms\": %.3f, \"restore_ms\": %.3f, "
               "\"restore_us_per_stream\": %.2f}\n}\n",
               engine_row.streams, engine_row.blob_bytes,
               engine_row.checkpoint_ms, engine_row.restore_ms,
               engine_row.per_stream_us);
  std::fclose(json);
  std::printf("\nwrote BENCH_ckpt.json\n");
  return 0;
}

}  // namespace
}  // namespace bagcpd

int main(int argc, char** argv) { return bagcpd::Main(argc, argv); }
