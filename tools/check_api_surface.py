#!/usr/bin/env python3
"""Enforce the public-API facade on the examples.

Two checks, both hard failures:

1. Include surface: every example may include project headers ONLY through
   the umbrella header "bagcpd/bagcpd.h" (system <...> includes are free).
   This is what keeps the examples honest documentation of the public API —
   no reaching into deep internal headers.

2. (--compile) Each example translation unit compiles standalone against the
   include dir, i.e. the umbrella header really does pull in everything an
   application needs.

Usage: tools/check_api_surface.py [--compile] [--compiler g++]
Run from the repository root (or pass --root).
"""

import argparse
import pathlib
import re
import subprocess
import sys

UMBRELLA = "bagcpd/bagcpd.h"
# Both include forms: quote includes must BE the umbrella; angle includes are
# free for system headers but must never reach into bagcpd/ (the -I src dir
# resolves angle includes too, so they would otherwise evade the gate).
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*(?:"([^"]+)"|<([^>]+)>)')


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--compile", action="store_true",
                        help="also syntax-check each example standalone")
    parser.add_argument("--compiler", default="g++")
    args = parser.parse_args()

    root = pathlib.Path(args.root).resolve()
    examples = sorted((root / "examples").glob("*.cc"))
    if not examples:
        print(f"FATAL: no examples found under {root}/examples", file=sys.stderr)
        return 2

    failures = []
    for example in examples:
        rel = example.relative_to(root)
        for lineno, line in enumerate(example.read_text().splitlines(), 1):
            match = INCLUDE_RE.match(line)
            if not match:
                continue
            quoted, angled = match.group(1), match.group(2)
            if quoted is not None and quoted != UMBRELLA:
                failures.append(
                    f'{rel}:{lineno}: includes "{quoted}" — examples '
                    f'must include only "{UMBRELLA}"')
            elif angled is not None and angled.startswith("bagcpd"):
                failures.append(
                    f"{rel}:{lineno}: includes <{angled}> — project headers "
                    f'may only enter through "{UMBRELLA}"')
        if args.compile:
            cmd = [args.compiler, "-std=c++17", "-Wall", "-Wextra",
                   "-fsyntax-only", "-I", str(root / "src"), str(example)]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                failures.append(
                    f"{rel}: standalone compile failed:\n{proc.stderr}")

    if failures:
        print("API surface check FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1

    mode = "include surface + standalone compile" if args.compile \
        else "include surface"
    print(f"API surface check passed for {len(examples)} examples ({mode}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
