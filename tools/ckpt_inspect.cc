// ckpt_inspect: prints what a checkpoint artifact contains without loading
// any detector — the operator-facing view of the serialize/ wire format.
// Accepts all three blob kinds (engine checkpoint, single engine-stream
// blob, bare detector blob) and spill files, which ARE engine-stream blobs.
//
//   ckpt_inspect <file.ckpt> [...]
//
// For each file: the format version, the blob kind, the engine seed (engine
// checkpoints only), and one row per stream — key, profile, window fill,
// resume position, and serialized size.

#include <cstdio>
#include <string>
#include <vector>

#include "bagcpd/bagcpd.h"

namespace {

const char* KindName(bagcpd::serialize::BlobKind kind) {
  switch (kind) {
    case bagcpd::serialize::BlobKind::kDetector:
      return "detector";
    case bagcpd::serialize::BlobKind::kEngineStream:
      return "engine-stream";
    case bagcpd::serialize::BlobKind::kEngineCheckpoint:
      return "engine-checkpoint";
  }
  return "unknown";
}

int InspectFile(const std::string& path) {
  std::vector<double> storage;
  bagcpd::Result<std::size_t> bytes =
      bagcpd::serialize::ReadFileBytes(path, nullptr, &storage);
  if (!bytes.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 bytes.status().ToString().c_str());
    return 1;
  }
  const std::string_view blob =
      bagcpd::serialize::FileBytesView(storage, bytes.ValueOrDie());
  bagcpd::Result<bagcpd::serialize::CheckpointInfo> info =
      bagcpd::serialize::InspectCheckpoint(blob);
  if (!info.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 info.status().ToString().c_str());
    return 1;
  }
  const bagcpd::serialize::CheckpointInfo& ckpt = info.ValueOrDie();

  std::printf("%s: %zu bytes, format v%u, kind %s", path.c_str(), blob.size(),
              ckpt.version, KindName(ckpt.kind));
  if (ckpt.kind == bagcpd::serialize::BlobKind::kEngineCheckpoint) {
    std::printf(", engine seed %llu, %zu streams",
                static_cast<unsigned long long>(ckpt.engine_seed),
                ckpt.streams.size());
  }
  std::printf("\n");
  for (const bagcpd::serialize::StreamBlobInfo& stream : ckpt.streams) {
    std::printf(
        "  %-24s profile=%-12s window=%zu/%zu next_index=%llu bytes=%zu\n",
        stream.key.c_str(), stream.profile.c_str(),
        stream.detector.window_fill, stream.detector.window_capacity,
        static_cast<unsigned long long>(stream.detector.next_index),
        stream.blob_bytes);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <checkpoint-file> [...]\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    if (InspectFile(argv[i]) != 0) rc = 1;
  }
  return rc;
}
