// gen_batch_series: writes a synthetic grouped-series corpus (the
// generate_10k_series-style fixture behind the batch benchmarks) to a
// BatchTable file, CSV or binary by output extension.
//
//   gen_batch_series [groups] [steps] [points] [dim] [seed] out.{csv|bin}
//
// Defaults: 10000 groups x 16 steps x 4 points of dim 2, seed 0. The corpus
// is deterministic in (spec, seed): regenerating with the same arguments
// produces a byte-identical file.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bagcpd/bagcpd.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [groups] [steps] [points] [dim] [seed] out.{csv|bin}\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string out_path = argv[argc - 1];

  bagcpd::BatchSeriesSpec spec;
  std::size_t* const fields[] = {&spec.num_groups, &spec.steps_per_group,
                                 &spec.points_per_step, &spec.dim};
  const int positional = argc - 2;  // arguments before the output path
  if (positional > 5) return Usage(argv[0]);
  for (int i = 0; i < positional && i < 4; ++i) {
    *fields[i] =
        static_cast<std::size_t>(std::strtoull(argv[1 + i], nullptr, 10));
  }
  if (positional == 5) {
    spec.seed = std::strtoull(argv[5], nullptr, 10);
  }

  bagcpd::Result<bagcpd::BatchTable> table =
      bagcpd::GenerateBatchSeries(spec);
  if (!table.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }

  bagcpd::Status written = bagcpd::Status::OK();
  if (out_path.size() >= 4 &&
      out_path.compare(out_path.size() - 4, 4, ".csv") == 0) {
    written = bagcpd::WriteBatchTableCsv(out_path, table.ValueOrDie());
  } else {
    written = bagcpd::WriteBatchTableBinary(out_path, table.ValueOrDie());
  }
  if (!written.ok()) {
    std::fprintf(stderr, "write failed: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu groups, %zu steps, %zu rows (dim %zu, seed %llu)\n",
              out_path.c_str(), table.ValueOrDie().group_count(),
              table.ValueOrDie().step_count(), table.ValueOrDie().row_count(),
              spec.dim, static_cast<unsigned long long>(spec.seed));
  return 0;
}
