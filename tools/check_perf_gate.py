#!/usr/bin/env python3
"""CI perf gate: fail the multi-core perf job when the engine stops scaling.

Parses the BENCH_engine.json emitted by bench/micro_engine.cc and enforces
that RunBatch at --threads shards is at least --min-speedup times faster than
the single-shard baseline (the ">2x @ 4 threads" criterion from the roadmap).
Optionally also enforces the arena-ingest floor from BENCH_flatbag.json.

Usage:
  check_perf_gate.py BENCH_engine.json [--threads 4] [--min-speedup 2.0]
  check_perf_gate.py BENCH_flatbag.json --memory-run arena_ingest \
      --min-speedup 1.15

Exits 0 when the gate passes, 1 when it fails or the row is missing.
"""

import argparse
import json
import sys


def check_engine(data, threads, min_speedup):
    runs = data.get("runs", [])
    row = next((r for r in runs if r.get("threads") == threads), None)
    if row is None:
        print(f"FAIL: no run with threads={threads} in "
              f"{[r.get('threads') for r in runs]}")
        return False
    speedup = row.get("speedup_vs_first")
    if speedup is None:
        print("FAIL: run is missing 'speedup_vs_first'")
        return False
    ok = speedup >= min_speedup
    verdict = "PASS" if ok else "FAIL"
    print(f"{verdict}: engine speedup @ {threads} threads = {speedup:.3f}x "
          f"(gate: >= {min_speedup:.2f}x)")
    return ok


def check_memory_run(data, name, min_speedup):
    runs = data.get("memory_runs", [])
    row = next((r for r in runs if r.get("name") == name), None)
    if row is None:
        print(f"FAIL: no memory run named '{name}' in "
              f"{[r.get('name') for r in runs]}")
        return False
    speedup = row.get("pooled_speedup")
    if speedup is None:
        print(f"FAIL: memory run '{name}' is missing 'pooled_speedup'")
        return False
    ok = speedup >= min_speedup
    verdict = "PASS" if ok else "FAIL"
    print(f"{verdict}: {name} pooled speedup = {speedup:.3f}x "
          f"(gate: >= {min_speedup:.2f}x)")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="path to a BENCH_*.json file")
    parser.add_argument("--threads", type=int, default=4,
                        help="engine row to gate on (default: 4)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="minimum acceptable speedup (default: 2.0)")
    parser.add_argument("--memory-run", default=None,
                        help="gate on a memory_runs row of this name instead "
                             "of the engine thread-scaling rows")
    args = parser.parse_args()

    try:
        with open(args.bench_json, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot parse {args.bench_json}: {error}")
        return 1

    if args.memory_run is not None:
        ok = check_memory_run(data, args.memory_run, args.min_speedup)
    else:
        ok = check_engine(data, args.threads, args.min_speedup)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
