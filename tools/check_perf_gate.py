#!/usr/bin/env python3
"""CI perf gate: fail the multi-core perf job when the engine stops scaling.

Parses the BENCH_engine.json emitted by bench/micro_engine.cc and enforces
that RunBatch at --threads shards is at least --min-speedup times faster than
the single-shard baseline (the ">2x @ 4 threads" criterion from the roadmap).
Optionally also enforces the arena-ingest floor from BENCH_flatbag.json.

Also enforces the EMD-solver floor from BENCH_emd.json (bench/micro_emd.cc):
the workspace transport solver must beat the MinCostFlow reference by
--min-speedup on the named run AND every run must report zero steady-state
allocations per solve.

Also enforces the large-K floor from the same BENCH_emd.json (--emd-large):
the exact solver's 4-ary-heap Dijkstra must beat the dense scan by
--min-heap-speedup at K = --large-k, the batched rolling-step solve must beat
the serial per-pair dense loop by --min-batch-speedup at K = --batch-k, and
every large_k_runs / batch_runs row must report zero steady-state
allocations.

Also enforces the columnar-batch floor from BENCH_batch.json
(bench/micro_batch.cc): BatchTableBuilder ingest must beat the nested
per-vector baseline by --min-speedup, every detection run must preserve row
counts exactly (output rows == input steps, nothing quarantined on the clean
synthetic corpus), and all pool sizes must produce bitwise-identical score
checksums.

Also enforces the approximate-EMD floor from the same BENCH_emd.json
(--emd-approx): every approximate solver (sinkhorn, sliced) must beat the
exact workspace solve by --min-speedup at K = --approx-k, every approx_runs
row must report zero steady-state allocations per solve, and the fidelity
section must stay under --max-score-delta / --max-delay-delta on every
fig07/fig11-style scenario.

Usage:
  check_perf_gate.py BENCH_engine.json [--threads 4] [--min-speedup 2.0]
  check_perf_gate.py BENCH_flatbag.json --memory-run arena_ingest \
      --min-speedup 1.15
  check_perf_gate.py BENCH_emd.json --emd-run emd_solve_k16 \
      --min-speedup 1.3
  check_perf_gate.py BENCH_emd.json --emd-approx --min-speedup 3.0
  check_perf_gate.py BENCH_emd.json --emd-large --min-heap-speedup 1.5 \
      --min-batch-speedup 1.2
  check_perf_gate.py BENCH_batch.json --batch --min-speedup 1.15

Exits 0 when the gate passes, 1 when it fails or the row is missing.
"""

import argparse
import json
import sys


def check_engine(data, threads, min_speedup):
    runs = data.get("runs", [])
    row = next((r for r in runs if r.get("threads") == threads), None)
    if row is None:
        print(f"FAIL: no run with threads={threads} in "
              f"{[r.get('threads') for r in runs]}")
        return False
    speedup = row.get("speedup_vs_first")
    if speedup is None:
        print("FAIL: run is missing 'speedup_vs_first'")
        return False
    ok = speedup >= min_speedup
    verdict = "PASS" if ok else "FAIL"
    print(f"{verdict}: engine speedup @ {threads} threads = {speedup:.3f}x "
          f"(gate: >= {min_speedup:.2f}x)")
    return ok


def check_memory_run(data, name, min_speedup):
    runs = data.get("memory_runs", [])
    row = next((r for r in runs if r.get("name") == name), None)
    if row is None:
        print(f"FAIL: no memory run named '{name}' in "
              f"{[r.get('name') for r in runs]}")
        return False
    speedup = row.get("pooled_speedup")
    if speedup is None:
        print(f"FAIL: memory run '{name}' is missing 'pooled_speedup'")
        return False
    ok = speedup >= min_speedup
    verdict = "PASS" if ok else "FAIL"
    print(f"{verdict}: {name} pooled speedup = {speedup:.3f}x "
          f"(gate: >= {min_speedup:.2f}x)")
    return ok


def check_emd_run(data, name, min_speedup):
    runs = data.get("runs", [])
    row = next((r for r in runs if r.get("name") == name), None)
    if row is None:
        print(f"FAIL: no EMD run named '{name}' in "
              f"{[r.get('name') for r in runs]}")
        return False
    speedup = row.get("speedup")
    if speedup is None:
        print(f"FAIL: EMD run '{name}' is missing 'speedup'")
        return False
    ok = speedup >= min_speedup
    verdict = "PASS" if ok else "FAIL"
    print(f"{verdict}: {name} speedup over MinCostFlow = {speedup:.3f}x "
          f"(gate: >= {min_speedup:.2f}x)")
    # Steady-state allocations must be exactly zero on EVERY measured size,
    # not just the gated one — a single workspace regrowth per solve would
    # show up here long before it shows up in wall-clock.
    for r in runs:
        allocs = r.get("steady_state_allocs_per_solve")
        if allocs is None:
            print(f"FAIL: run '{r.get('name')}' is missing "
                  "'steady_state_allocs_per_solve'")
            ok = False
        elif allocs != 0:
            print(f"FAIL: run '{r.get('name')}' reports {allocs} "
                  "steady-state allocations per solve (gate: exactly 0)")
            ok = False
        else:
            print(f"PASS: {r.get('name')} steady-state allocs/solve = 0")
    return ok


def check_emd_approx(data, approx_k, min_speedup, max_score_delta,
                     max_delay_delta):
    ok = True

    runs = data.get("approx_runs", [])
    if not runs:
        print("FAIL: no 'approx_runs' section in BENCH_emd.json")
        return False

    # Speedup gate: every approximate solver present at K = approx_k must
    # clear the floor against the exact workspace solve.
    gated = [r for r in runs if r.get("k") == approx_k]
    if not gated:
        print(f"FAIL: no approx_runs rows with k={approx_k} in "
              f"{sorted({r.get('k') for r in runs})}")
        ok = False
    for row in gated:
        speedup = row.get("speedup_vs_exact")
        name = row.get("name")
        if speedup is None:
            print(f"FAIL: run '{name}' is missing 'speedup_vs_exact'")
            ok = False
            continue
        passed = speedup >= min_speedup
        verdict = "PASS" if passed else "FAIL"
        print(f"{verdict}: {name} speedup over exact = {speedup:.3f}x "
              f"(gate: >= {min_speedup:.2f}x)")
        ok = ok and passed

    # Allocation gate: zero steady-state allocations on EVERY approx row,
    # every size — the scratch buffers must reach a fixed point.
    for row in runs:
        allocs = row.get("steady_state_allocs_per_solve")
        name = row.get("name")
        if allocs is None:
            print(f"FAIL: run '{name}' is missing "
                  "'steady_state_allocs_per_solve'")
            ok = False
        elif allocs != 0:
            print(f"FAIL: run '{name}' reports {allocs} steady-state "
                  "allocations per solve (gate: exactly 0)")
            ok = False
        else:
            print(f"PASS: {name} steady-state allocs/solve = 0")

    # Fidelity gate: the approximate score paths must stay close to exact on
    # the fig07/fig11-style scenarios, and the argmax step must not drift.
    fidelity = data.get("fidelity", [])
    if not fidelity:
        print("FAIL: no 'fidelity' section in BENCH_emd.json")
        ok = False
    for row in fidelity:
        label = f"{row.get('scenario')}/{row.get('solver')}"
        delta = row.get("max_abs_score_delta")
        delay = row.get("delay_delta_steps")
        if delta is None or delay is None:
            print(f"FAIL: fidelity row '{label}' is missing fields")
            ok = False
            continue
        if delta > max_score_delta:
            print(f"FAIL: {label} max|dScore| = {delta:.4f} "
                  f"(gate: <= {max_score_delta:.4f})")
            ok = False
        elif abs(delay) > max_delay_delta:
            print(f"FAIL: {label} detection-delay shift = {delay} steps "
                  f"(gate: |shift| <= {max_delay_delta})")
            ok = False
        else:
            print(f"PASS: {label} max|dScore| = {delta:.4f}, "
                  f"delay shift = {delay:+d} steps")
    return ok


def check_emd_large(data, large_k, batch_k, min_heap_speedup,
                    min_batch_speedup):
    ok = True

    # Heap gate: the 4-ary-heap Dijkstra must clear the floor against the
    # dense scan at the gated size.
    large_runs = data.get("large_k_runs", [])
    if not large_runs:
        print("FAIL: no 'large_k_runs' section in BENCH_emd.json")
        ok = False
    row = next((r for r in large_runs if r.get("k") == large_k), None)
    if row is None:
        print(f"FAIL: no large_k_runs row with k={large_k} in "
              f"{sorted({r.get('k') for r in large_runs})}")
        ok = False
    else:
        speedup = row.get("heap_speedup")
        if speedup is None:
            print(f"FAIL: run '{row.get('name')}' is missing 'heap_speedup'")
            ok = False
        else:
            passed = speedup >= min_heap_speedup
            verdict = "PASS" if passed else "FAIL"
            print(f"{verdict}: {row.get('name')} heap speedup over dense "
                  f"= {speedup:.3f}x (gate: >= {min_heap_speedup:.2f}x)")
            ok = ok and passed

    # Batch gate: one ComputeBatch rolling step must clear the floor against
    # the serial per-pair dense loop it replaced.
    batch_runs = data.get("batch_runs", [])
    if not batch_runs:
        print("FAIL: no 'batch_runs' section in BENCH_emd.json")
        ok = False
    row = next((r for r in batch_runs if r.get("k") == batch_k), None)
    if row is None:
        print(f"FAIL: no batch_runs row with k={batch_k} in "
              f"{sorted({r.get('k') for r in batch_runs})}")
        ok = False
    else:
        speedup = row.get("batched_speedup")
        if speedup is None:
            print(f"FAIL: run '{row.get('name')}' is missing "
                  "'batched_speedup'")
            ok = False
        else:
            passed = speedup >= min_batch_speedup
            verdict = "PASS" if passed else "FAIL"
            print(f"{verdict}: {row.get('name')} batched speedup over serial "
                  f"= {speedup:.3f}x (gate: >= {min_batch_speedup:.2f}x)")
            ok = ok and passed

    # Allocation gate: zero steady-state allocations on EVERY row of both
    # sections, every size — the heap arrays and batch cost block must reach
    # a fixed point like the rest of the workspace scratch.
    for runs, field in ((large_runs, "steady_state_allocs_per_solve"),
                        (batch_runs, "steady_state_allocs_per_step")):
        for r in runs:
            allocs = r.get(field)
            name = r.get("name")
            if allocs is None:
                print(f"FAIL: run '{name}' is missing '{field}'")
                ok = False
            elif allocs != 0:
                print(f"FAIL: run '{name}' reports {allocs} steady-state "
                      "allocations (gate: exactly 0)")
                ok = False
            else:
                print(f"PASS: {name} steady-state allocs = 0")
    return ok


def check_batch(data, min_speedup):
    ok = True

    ingest = data.get("ingest", {})
    speedup = ingest.get("columnar_speedup")
    if speedup is None:
        print("FAIL: 'ingest' is missing 'columnar_speedup'")
        ok = False
    else:
        passed = speedup >= min_speedup
        verdict = "PASS" if passed else "FAIL"
        print(f"{verdict}: columnar ingest speedup over nested per-vector "
              f"= {speedup:.3f}x (gate: >= {min_speedup:.2f}x)")
        ok = ok and passed

    runs = data.get("detection", [])
    if not runs:
        print("FAIL: no detection runs in BENCH_batch.json")
        ok = False
    for run in runs:
        pool = run.get("pool")
        if run.get("row_count_preserved") is not True:
            print(f"FAIL: pool={pool} did not preserve row counts "
                  "(gate: output rows == input steps, nothing quarantined)")
            ok = False
        else:
            print(f"PASS: pool={pool} row counts preserved")

    checksums = {run.get("checksum") for run in runs}
    if data.get("checksums_match") is not True or len(checksums) > 1:
        print(f"FAIL: detection checksums diverge across pool sizes: "
              f"{sorted(checksums)}")
        ok = False
    elif runs:
        print(f"PASS: all {len(runs)} pool sizes agree on score checksum "
              f"{checksums.pop()}")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="path to a BENCH_*.json file")
    parser.add_argument("--threads", type=int, default=4,
                        help="engine row to gate on (default: 4)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="minimum acceptable speedup (default: 2.0)")
    parser.add_argument("--memory-run", default=None,
                        help="gate on a memory_runs row of this name instead "
                             "of the engine thread-scaling rows")
    parser.add_argument("--emd-run", default=None,
                        help="gate on a BENCH_emd.json run of this name "
                             "(speedup vs the MinCostFlow reference, plus "
                             "zero steady-state allocations on every run)")
    parser.add_argument("--batch", action="store_true",
                        help="gate on BENCH_batch.json: columnar ingest "
                             "speedup, exact row-count preservation, and "
                             "matching detection checksums across pool sizes")
    parser.add_argument("--emd-approx", action="store_true",
                        help="gate on BENCH_emd.json approx_runs/fidelity: "
                             "approximate-solver speedup over exact at "
                             "--approx-k, zero steady-state allocations, and "
                             "score/delay fidelity ceilings")
    parser.add_argument("--emd-large", action="store_true",
                        help="gate on BENCH_emd.json large_k_runs/batch_runs: "
                             "heap-Dijkstra speedup over the dense scan at "
                             "--large-k, batched rolling-step speedup over "
                             "the serial per-pair loop at --batch-k, and "
                             "zero steady-state allocations on every row")
    parser.add_argument("--large-k", type=int, default=256,
                        help="signature size whose heap row is speedup-gated "
                             "(default: 256)")
    parser.add_argument("--batch-k", type=int, default=64,
                        help="signature size whose batch row is speedup-gated "
                             "(default: 64)")
    parser.add_argument("--min-heap-speedup", type=float, default=1.5,
                        help="minimum heap-over-dense speedup at --large-k "
                             "(default: 1.5)")
    parser.add_argument("--min-batch-speedup", type=float, default=1.2,
                        help="minimum batched-over-serial rolling-step "
                             "speedup at --batch-k (default: 1.2)")
    parser.add_argument("--approx-k", type=int, default=64,
                        help="signature size whose approx rows are speedup-"
                             "gated (default: 64)")
    parser.add_argument("--max-score-delta", type=float, default=1.0,
                        help="maximum allowed max|dScore| vs exact on any "
                             "fidelity scenario (default: 1.0)")
    parser.add_argument("--max-delay-delta", type=int, default=2,
                        help="maximum allowed argmax-step shift vs exact on "
                             "any fidelity scenario (default: 2)")
    args = parser.parse_args()

    try:
        with open(args.bench_json, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot parse {args.bench_json}: {error}")
        return 1

    if args.batch:
        ok = check_batch(data, args.min_speedup)
    elif args.emd_large:
        ok = check_emd_large(data, args.large_k, args.batch_k,
                             args.min_heap_speedup, args.min_batch_speedup)
    elif args.emd_approx:
        ok = check_emd_approx(data, args.approx_k, args.min_speedup,
                              args.max_score_delta, args.max_delay_delta)
    elif args.emd_run is not None:
        ok = check_emd_run(data, args.emd_run, args.min_speedup)
    elif args.memory_run is not None:
        ok = check_memory_run(data, args.memory_run, args.min_speedup)
    else:
        ok = check_engine(data, args.threads, args.min_speedup)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
