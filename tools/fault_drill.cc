// fault_drill: fault-containment integration driver for the CI job. Runs the
// same deterministic multi-stream workload twice in one process — once
// fault-free as the reference, once with the given fault spec armed through
// the engine's `fault=` option — and proves the containment contract:
//
//   fault_drill <shards> <fault-spec|-> <fault-budget>
//
//   1. the engine finishes (no hang, no crash) with the fault armed;
//   2. the armed fault actually fired, and hit some but not all streams;
//   3. with a fault budget, nothing is quarantined (no kError events) —
//      every failure is contained to a kStreamFault + recovery;
//   4. streams the fault never touched are bitwise-identical to the
//      fault-free run.
//
// Stream lengths are staggered (8, 10, .., 18 bags) so a per-stream
// `detector.push:every-n:N` drill deterministically targets only the longer
// streams. Every step result prints as hex floats (%a — bit-exact,
// locale-free), one line per step, so `diff` across shard counts proves the
// drill outcome itself is shard-invariant. With spec `-` the drill prints
// the reference run and exits (a disarmed-injector baseline for the diff).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bagcpd/bagcpd.h"

namespace {

constexpr std::size_t kKeys = 6;
constexpr std::uint64_t kEngineSeed = 5;

bagcpd::DetectorOptions DrillDetector() {
  bagcpd::DetectorOptions options;
  options.tau = 3;
  options.tau_prime = 3;
  options.bootstrap.replicates = 30;
  options.signature.method = bagcpd::SignatureMethod::kKMeans;
  options.signature.k = 3;
  options.seed = 0;
  return options;
}

// Staggered lengths: stream-i carries 8 + 2i bags, so an every-n drill on
// per-stream push ordinals only reaches the streams long enough to get there.
std::map<std::string, bagcpd::BagSequence> Corpus() {
  std::map<std::string, bagcpd::BagSequence> corpus;
  const bagcpd::GaussianMixture before =
      bagcpd::GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  const bagcpd::GaussianMixture after =
      bagcpd::GaussianMixture::Isotropic({4.0, 4.0}, 0.5);
  for (std::size_t i = 0; i < kKeys; ++i) {
    const std::string key = "stream-" + std::to_string(i);
    const std::size_t total = 8 + 2 * i;
    bagcpd::Rng rng(1000 + i);
    bagcpd::BagSequence bags;
    for (std::size_t t = 0; t < total; ++t) {
      bags.push_back((t >= total / 2 ? after : before).SampleBag(14, &rng));
    }
    corpus.emplace(key, std::move(bags));
  }
  return corpus;
}

int Fatal(const bagcpd::Status& status, const char* what) {
  std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
  return 1;
}

struct RunOutcome {
  std::map<std::string, std::vector<bagcpd::StepResult>> steps;
  // Streams that surfaced in any kStreamFault (contained) or kError
  // (quarantine) event — the fault's blast radius.
  std::set<std::string> touched;
  std::size_t quarantines = 0;
};

RunOutcome RunWorkload(bagcpd::StreamEngine* engine,
                       const std::map<std::string, bagcpd::BagSequence>& corpus) {
  // Time-major round-robin: a fixed global submission order, so every
  // sequence-keyed recovery decision is reproducible run over run.
  std::size_t longest = 0;
  for (const auto& [key, bags] : corpus) {
    if (bags.size() > longest) longest = bags.size();
  }
  for (std::size_t t = 0; t < longest; ++t) {
    for (const auto& [key, bags] : corpus) {
      if (t >= bags.size()) continue;
      const bagcpd::Status status = engine->Submit(key, bags[t]);
      if (!status.ok()) {
        std::fprintf(stderr, "FATAL submit %s t=%zu: %s\n", key.c_str(), t,
                     status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  engine->Flush();
  RunOutcome out;
  for (const bagcpd::EngineEvent& event : engine->DrainEvents()) {
    switch (event.kind) {
      case bagcpd::EngineEvent::Kind::kStep:
        out.steps[event.stream_id].push_back(event.step);
        break;
      case bagcpd::EngineEvent::Kind::kStreamFault:
        out.touched.insert(event.stream_id);
        break;
      case bagcpd::EngineEvent::Kind::kError:
        out.touched.insert(event.stream_id);
        ++out.quarantines;
        break;
      default:
        break;
    }
  }
  return out;
}

void PrintSteps(const RunOutcome& outcome) {
  for (const auto& [key, series] : outcome.steps) {
    for (const bagcpd::StepResult& step : series) {
      std::printf("%s t=%llu score=%a lo=%a up=%a xi=%a alarm=%d\n",
                  key.c_str(), static_cast<unsigned long long>(step.time),
                  step.score, step.ci_lo, step.ci_up, step.xi,
                  step.alarm ? 1 : 0);
    }
  }
}

bool SeriesIdentical(const std::vector<bagcpd::StepResult>& a,
                     const std::vector<bagcpd::StepResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].score != b[i].score ||
        a[i].alarm != b[i].alarm) {
      return false;
    }
    const bool both_nan = std::isnan(a[i].xi) && std::isnan(b[i].xi);
    if (!both_nan && a[i].xi != b[i].xi) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: %s <shards> <fault-spec|-> <fault-budget>\n",
                 argv[0]);
    return 2;
  }
  const std::size_t shards =
      static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  const std::string spec = argv[2];
  const std::uint64_t budget = std::strtoull(argv[3], nullptr, 10);

  const auto corpus = Corpus();
  bagcpd::StreamEngineOptions options;
  options.num_shards = shards;
  options.seed = kEngineSeed;
  options.detector = DrillDetector();

  // Reference: the same workload with the injector disarmed.
  bagcpd::fault::FaultInjector::Global().Disarm();
  bagcpd::Result<std::unique_ptr<bagcpd::StreamEngine>> reference_engine =
      bagcpd::StreamEngine::Create(options);
  if (!reference_engine.ok()) {
    return Fatal(reference_engine.status(), "reference engine init");
  }
  const RunOutcome reference =
      RunWorkload(reference_engine.ValueOrDie().get(), corpus);
  if (!reference.touched.empty()) {
    std::fprintf(stderr, "FATAL: fault-free reference saw failures\n");
    return 1;
  }

  if (spec == "-") {
    PrintSteps(reference);
    std::fprintf(stderr, "fault_drill: baseline, %zu streams clean\n",
                 reference.steps.size());
    return 0;
  }

  options.fault = spec;  // Create() arms the process-wide injector.
  options.max_stream_faults = budget;
  bagcpd::Result<std::unique_ptr<bagcpd::StreamEngine>> drill_engine =
      bagcpd::StreamEngine::Create(options);
  if (!drill_engine.ok()) return Fatal(drill_engine.status(), "drill init");
  const RunOutcome drill = RunWorkload(drill_engine.ValueOrDie().get(), corpus);
  const std::uint64_t fired =
      bagcpd::fault::FaultInjector::Global().fired_count();
  bagcpd::fault::FaultInjector::Global().Disarm();

  int failures = 0;
  if (fired == 0) {
    std::fprintf(stderr, "FAIL: armed fault '%s' never fired\n", spec.c_str());
    ++failures;
  }
  if (drill.touched.empty()) {
    std::fprintf(stderr, "FAIL: fault fired but no stream reported it\n");
    ++failures;
  }
  if (drill.touched.size() >= corpus.size()) {
    std::fprintf(stderr,
                 "FAIL: fault touched every stream — no survivors to check\n");
    ++failures;
  }
  if (budget > 0 && drill.quarantines > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu quarantine(s) despite fault budget %llu\n",
                 drill.quarantines, static_cast<unsigned long long>(budget));
    ++failures;
  }
  // The heart of the contract: untouched streams never noticed the drill.
  for (const auto& [key, series] : reference.steps) {
    if (drill.touched.count(key) != 0) continue;
    auto it = drill.steps.find(key);
    if (it == drill.steps.end() || !SeriesIdentical(series, it->second)) {
      std::fprintf(stderr,
                   "FAIL: untouched stream %s diverged from reference\n",
                   key.c_str());
      ++failures;
    }
  }

  PrintSteps(drill);
  std::fprintf(stderr,
               "fault_drill: spec=%s budget=%llu fired=%llu touched=%zu "
               "quarantined=%zu survivors=%zu -> %s\n",
               spec.c_str(), static_cast<unsigned long long>(budget),
               static_cast<unsigned long long>(fired), drill.touched.size(),
               drill.quarantines, corpus.size() - drill.touched.size(),
               failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}
