// ckpt_recovery: crash-recovery integration driver for the CI job. Runs a
// deterministic multi-stream workload in one of three modes and prints every
// step result as hex floats (%a — bit-exact, locale-free), one line per
// step, so plain `sort | diff` proves the recovery contract:
//
//   ckpt_recovery full   <shards> <split> <total> -        # uninterrupted
//   ckpt_recovery phase1 <shards> <split> <total> <ckpt>   # run, checkpoint
//   ckpt_recovery phase2 <shards> <split> <total> <ckpt>   # fresh process,
//                                                          # restore, finish
//
// sort(phase1.out + phase2.out) must equal sort(full.out) bitwise, for ANY
// shard counts on either side — phase2 is a different process with no state
// but the checkpoint file.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bagcpd/bagcpd.h"

namespace {

constexpr std::size_t kKeys = 6;
constexpr std::uint64_t kEngineSeed = 5;

bagcpd::DetectorOptions RecoveryDetector() {
  bagcpd::DetectorOptions options;
  options.tau = 3;
  options.tau_prime = 3;
  options.bootstrap.replicates = 30;
  options.signature.method = bagcpd::SignatureMethod::kKMeans;
  options.signature.k = 3;
  options.seed = 0;
  return options;
}

std::map<std::string, bagcpd::BagSequence> Corpus(std::size_t total) {
  std::map<std::string, bagcpd::BagSequence> corpus;
  const bagcpd::GaussianMixture before =
      bagcpd::GaussianMixture::Isotropic({0.0, 0.0}, 0.5);
  const bagcpd::GaussianMixture after =
      bagcpd::GaussianMixture::Isotropic({4.0, 4.0}, 0.5);
  for (std::size_t i = 0; i < kKeys; ++i) {
    const std::string key = "stream-" + std::to_string(i);
    bagcpd::Rng rng(1000 + i);
    bagcpd::BagSequence bags;
    for (std::size_t t = 0; t < total; ++t) {
      bags.push_back((t >= total / 2 ? after : before).SampleBag(14, &rng));
    }
    corpus.emplace(key, std::move(bags));
  }
  return corpus;
}

int Fatal(const bagcpd::Status& status, const char* what) {
  std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
  return 1;
}

void SubmitRange(bagcpd::StreamEngine* engine,
                 const std::map<std::string, bagcpd::BagSequence>& corpus,
                 std::size_t from, std::size_t to) {
  for (std::size_t t = from; t < to; ++t) {
    for (const auto& [key, bags] : corpus) {
      const bagcpd::Status status = engine->Submit(key, bags[t]);
      if (!status.ok()) {
        std::fprintf(stderr, "FATAL submit %s t=%zu: %s\n", key.c_str(), t,
                     status.ToString().c_str());
        std::exit(1);
      }
    }
  }
}

void PrintSteps(bagcpd::StreamEngine* engine) {
  // One self-contained line per step; hex floats make the diff bit-exact.
  std::map<std::string, std::vector<bagcpd::StepResult>> steps;
  for (const bagcpd::EngineEvent& event : engine->DrainEvents()) {
    if (event.kind == bagcpd::EngineEvent::Kind::kStep) {
      steps[event.stream_id].push_back(event.step);
    }
  }
  for (const auto& [key, series] : steps) {
    for (const bagcpd::StepResult& step : series) {
      std::printf("%s t=%llu score=%a lo=%a up=%a xi=%a alarm=%d\n",
                  key.c_str(), static_cast<unsigned long long>(step.time),
                  step.score, step.ci_lo, step.ci_up, step.xi,
                  step.alarm ? 1 : 0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 6) {
    std::fprintf(stderr,
                 "usage: %s full|phase1|phase2 <shards> <split> <total> "
                 "<ckpt-file|->\n",
                 argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  const std::size_t shards =
      static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10));
  const std::size_t split =
      static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10));
  const std::size_t total =
      static_cast<std::size_t>(std::strtoull(argv[4], nullptr, 10));
  const std::string ckpt_path = argv[5];
  if (split > total || total == 0) {
    std::fprintf(stderr, "FATAL: need 0 <= split <= total, total > 0\n");
    return 2;
  }

  const auto corpus = Corpus(total);
  bagcpd::StreamEngineOptions options;
  options.num_shards = shards;
  options.seed = kEngineSeed;
  options.detector = RecoveryDetector();
  bagcpd::Result<std::unique_ptr<bagcpd::StreamEngine>> created =
      bagcpd::StreamEngine::Create(options);
  if (!created.ok()) return Fatal(created.status(), "engine init");
  std::unique_ptr<bagcpd::StreamEngine> engine = created.MoveValueUnsafe();

  if (mode == "full") {
    SubmitRange(engine.get(), corpus, 0, total);
    engine->Flush();
    PrintSteps(engine.get());
    return 0;
  }
  if (mode == "phase1") {
    SubmitRange(engine.get(), corpus, 0, split);
    engine->Flush();
    PrintSteps(engine.get());
    std::string blob;
    const bagcpd::Status status = engine->Checkpoint(&blob);
    if (!status.ok()) return Fatal(status, "Checkpoint");
    const bagcpd::Status written =
        bagcpd::serialize::WriteFileBytes(ckpt_path, blob);
    if (!written.ok()) return Fatal(written, "write checkpoint");
    std::fprintf(stderr, "checkpoint: %zu bytes -> %s\n", blob.size(),
                 ckpt_path.c_str());
    return 0;
  }
  if (mode == "phase2") {
    std::vector<double> storage;
    bagcpd::Result<std::size_t> bytes =
        bagcpd::serialize::ReadFileBytes(ckpt_path, nullptr, &storage);
    if (!bytes.ok()) return Fatal(bytes.status(), "read checkpoint");
    const bagcpd::Status restored = engine->Restore(
        bagcpd::serialize::FileBytesView(storage, bytes.ValueOrDie()));
    if (!restored.ok()) return Fatal(restored, "Restore");
    engine->DrainEvents();  // Discard the kRestore events.
    SubmitRange(engine.get(), corpus, split, total);
    engine->Flush();
    PrintSteps(engine.get());
    return 0;
  }
  std::fprintf(stderr, "FATAL: unknown mode '%s'\n", mode.c_str());
  return 2;
}
