#include "bagcpd/batch/batch_runner.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "bagcpd/common/check.h"
#include "bagcpd/common/point.h"
#include "bagcpd/runtime/stream_engine.h"
#include "bagcpd/runtime/thread_pool.h"

namespace bagcpd {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Canonicalizes a profile reference against the run's registry: empty and
// "default" mean the default profile; anything else must be a registered
// name.
Result<std::string> CanonicalProfile(const BatchRunnerOptions& options,
                                     const std::string& profile) {
  if (profile.empty() || profile == kDefaultProfileName) {
    return std::string(kDefaultProfileName);
  }
  if (options.profiles.count(profile) == 0) {
    return Status::Invalid("unknown detector profile '" + profile + "'");
  }
  return profile;
}

const DetectorOptions& OptionsForProfile(const BatchRunnerOptions& options,
                                         const std::string& canonical) {
  if (canonical == kDefaultProfileName) return options.detector;
  auto it = options.profiles.find(canonical);
  BAGCPD_CHECK_MSG(it != options.profiles.end(), "unresolved profile '%s'",
                   canonical.c_str());
  return it->second;
}

// The profile a group is scored under: a non-empty profile column in the
// table data wins; otherwise the caller's per-key route; otherwise the
// default. A table profile that is unknown, or that contradicts a per-key
// route, is a per-group failure (quarantine), never a whole-batch error —
// the table data is not under the caller's control the way options are.
Result<std::string> ResolveGroupProfile(const BatchRunnerOptions& options,
                                        const std::string& key,
                                        const std::string& table_profile) {
  auto routed = options.profile_by_key.find(key);
  if (!table_profile.empty()) {
    BAGCPD_ASSIGN_OR_RETURN(std::string canonical,
                            CanonicalProfile(options, table_profile));
    if (routed != options.profile_by_key.end()) {
      BAGCPD_ASSIGN_OR_RETURN(std::string routed_canonical,
                              CanonicalProfile(options, routed->second));
      if (routed_canonical != canonical) {
        return Status::Invalid("group '" + key + "' carries profile '" +
                               canonical +
                               "' but profile_by_key routes it to '" +
                               routed_canonical + "'");
      }
    }
    return canonical;
  }
  if (routed != options.profile_by_key.end()) {
    return CanonicalProfile(options, routed->second);
  }
  return std::string(kDefaultProfileName);
}

}  // namespace

Status ValidateBatchRunnerOptions(const BatchRunnerOptions& options) {
  BAGCPD_RETURN_NOT_OK(ValidateDetectorOptions(options.detector));
  if (options.detector.seed != 0) {
    return Status::Invalid(
        "BatchRunnerOptions.detector.seed must be 0: per-group seeds derive "
        "from BatchRunnerOptions.seed and the group key (set the run seed "
        "instead)");
  }
  for (const auto& [name, profile] : options.profiles) {
    if (name.empty() || name == kDefaultProfileName) {
      return Status::Invalid("profile name '" + name +
                             "' is reserved (the default profile is "
                             "BatchRunnerOptions.detector)");
    }
    BAGCPD_RETURN_NOT_OK(ValidateDetectorOptions(profile));
    if (profile.seed != 0) {
      return Status::Invalid("profile '" + name +
                             "' has a nonzero detector seed: per-group seeds "
                             "derive from the run seed, the group key, and "
                             "the profile name");
    }
  }
  // Dangling routes are caller bugs surfaced before any work, matching
  // StreamEngine::RunBatch's up-front resolution.
  for (const auto& [key, profile] : options.profile_by_key) {
    Result<std::string> canonical = CanonicalProfile(options, profile);
    if (!canonical.ok()) {
      return Status::Invalid("profile_by_key['" + key + "']: " +
                             canonical.status().message());
    }
  }
  BAGCPD_RETURN_NOT_OK(ValidateBufferArenaOptions(options.arena));
  return Status::OK();
}

Result<BatchResultTable> RunBatchColumnar(const BatchTable& table,
                                          const BatchRunnerOptions& options) {
  BAGCPD_RETURN_NOT_OK(ValidateBatchRunnerOptions(options));

  const std::size_t num_groups = table.group_count();
  BatchResultTable out;

  // Per-group resolution pass: a group is eligible iff it was well-formed at
  // build time AND its profile resolves. `resolution[g]` carries the
  // canonical profile or the quarantine reason.
  std::vector<Result<std::string>> resolution;
  resolution.reserve(num_groups);
  // Row offset of each eligible group in the output columns; quarantined
  // groups occupy no rows. `result_group[g]` is the provisional index into
  // the result-group directory (run-time failures compact it afterwards).
  std::vector<std::size_t> row_offset(num_groups, 0);
  std::vector<std::uint32_t> result_group(num_groups, 0);
  std::size_t total_rows = 0;
  std::uint32_t next_result_group = 0;
  for (std::size_t g = 0; g < num_groups; ++g) {
    if (!table.group_status(g).ok()) {
      resolution.emplace_back(table.group_status(g));
      continue;
    }
    resolution.push_back(
        ResolveGroupProfile(options, table.group_key(g),
                            table.group_profile(g)));
    if (!resolution.back().ok()) continue;
    row_offset[g] = total_rows;
    result_group[g] = next_result_group++;
    total_rows += table.group_step_count(g);
  }

  // Columns are written in place from the shard workers: every eligible
  // group owns a disjoint row range, so concurrent writes never touch the
  // same element. Score columns start as "no verdict" (NaN, has_score = 0)
  // and only rows the detector scored are overwritten.
  out.group.resize(total_rows);
  out.step.resize(total_rows);
  out.timestamp.resize(total_rows);
  out.score.assign(total_rows, kNaN);
  out.ci_lo.assign(total_rows, kNaN);
  out.ci_up.assign(total_rows, kNaN);
  out.xi.assign(total_rows, kNaN);
  out.is_change.assign(total_rows, 0);
  out.has_score.assign(total_rows, 0);

  // Outcome of each eligible group's detector run (push failures quarantine
  // the group after the fact). Slots are only ever written by the one shard
  // owning the group.
  std::vector<Status> outcome(num_groups, Status::OK());
  // Steps skipped for non-finite values, per group; merged into out.skipped
  // in table order by the epilogue so the report is shard-independent.
  std::vector<std::vector<BatchResultTable::Skipped>> skipped_steps(num_groups);

  const std::size_t num_shards = std::max<std::size_t>(1, options.num_shards);
  std::vector<std::unique_ptr<BufferArena>> arenas;
  arenas.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    arenas.push_back(std::make_unique<BufferArena>(options.arena));
  }

  // Contiguous deterministic chunking: shard s owns groups
  // [s * base + min(s, rem), ...) — a pure function of (num_groups,
  // num_shards), mirroring ThreadPool::ParallelFor's split discipline.
  const std::size_t base = num_groups / num_shards;
  const std::size_t rem = num_groups % num_shards;
  const auto shard_body = [&](std::size_t s) {
    const std::size_t begin = s * base + std::min(s, rem);
    const std::size_t end = begin + base + (s < rem ? 1 : 0);
    BufferArena* arena = arenas[s].get();
    for (std::size_t g = begin; g < end; ++g) {
      if (!resolution[g].ok()) continue;
      const std::string& profile = resolution[g].ValueOrDie();
      DetectorOptions per_group = OptionsForProfile(options, profile);
      per_group.seed =
          DerivePerStreamSeed(options.seed, table.group_key(g), profile);
      // Cannot fail: the profile was validated up front and only the seed
      // differs.
      Result<std::unique_ptr<BagStreamDetector>> created =
          BagStreamDetector::Create(per_group);
      BAGCPD_CHECK_MSG(created.ok(), "validated profile failed Create: %s",
                       created.status().ToString().c_str());
      std::unique_ptr<BagStreamDetector> detector = created.MoveValueUnsafe();
      detector->set_buffer_arena(arena);

      const std::size_t steps = table.group_step_count(g);
      const std::size_t offset = row_offset[g];
      for (std::size_t step = 0; step < steps; ++step) {
        out.group[offset + step] = result_group[g];
        out.step[offset + step] = static_cast<std::uint32_t>(step);
        out.timestamp[offset + step] = table.step_timestamp(g, step);
      }
      // Detector time t is an index over the bags actually pushed; with
      // skipped steps that differs from the table step, so the mapping is
      // kept explicitly.
      std::vector<std::size_t> pushed_step;
      pushed_step.reserve(steps);
      for (std::size_t step = 0; step < steps; ++step) {
        const BagView bag = table.step_bag(g, step);
        Status finite = CheckBagViewFinite(bag);
        if (!finite.ok()) {
          skipped_steps[g].push_back(BatchResultTable::Skipped{
              table.group_key(g), static_cast<std::uint32_t>(step),
              std::move(finite)});
          continue;
        }
        pushed_step.push_back(step);
        Result<std::optional<StepResult>> pushed = detector->Push(bag);
        if (!pushed.ok()) {
          outcome[g] = pushed.status();
          break;
        }
        if (!pushed.ValueOrDie().has_value()) continue;
        const StepResult& r = *pushed.ValueOrDie();
        const std::size_t row =
            offset + pushed_step[static_cast<std::size_t>(r.time)];
        out.score[row] = r.score;
        out.ci_lo[row] = r.ci_lo;
        out.ci_up[row] = r.ci_up;
        out.xi[row] = r.xi;
        out.is_change[row] = r.alarm ? 1 : 0;
        out.has_score[row] = 1;
      }
    }
  };
  if (options.pool != nullptr && options.pool->size() > 0) {
    options.pool->ParallelFor(0, num_shards, shard_body);
  } else {
    for (std::size_t s = 0; s < num_shards; ++s) shard_body(s);
  }

  // Serial epilogue: build the result-group directory and the quarantine
  // report, compacting out the rows of groups that failed mid-run. The
  // epilogue order is table order, so the final table is independent of how
  // the shards interleaved.
  bool any_runtime_failure = false;
  for (std::size_t g = 0; g < num_groups; ++g) {
    if (resolution[g].ok() && !outcome[g].ok()) any_runtime_failure = true;
  }
  std::size_t write_row = 0;
  std::uint32_t final_group = 0;
  for (std::size_t g = 0; g < num_groups; ++g) {
    if (!resolution[g].ok()) {
      out.quarantined.push_back(BatchResultTable::Quarantined{
          table.group_key(g), resolution[g].status(),
          table.group_step_count(g)});
      continue;
    }
    if (!outcome[g].ok()) {
      out.quarantined.push_back(BatchResultTable::Quarantined{
          table.group_key(g), outcome[g], table.group_step_count(g)});
      continue;
    }
    out.keys.push_back(table.group_key(g));
    out.profiles.push_back(resolution[g].ValueOrDie());
    for (BatchResultTable::Skipped& s : skipped_steps[g]) {
      out.skipped.push_back(std::move(s));
    }
    if (any_runtime_failure) {
      const std::size_t steps = table.group_step_count(g);
      const std::size_t offset = row_offset[g];
      for (std::size_t step = 0; step < steps; ++step) {
        out.group[write_row] = final_group;
        out.step[write_row] = out.step[offset + step];
        out.timestamp[write_row] = out.timestamp[offset + step];
        out.score[write_row] = out.score[offset + step];
        out.ci_lo[write_row] = out.ci_lo[offset + step];
        out.ci_up[write_row] = out.ci_up[offset + step];
        out.xi[write_row] = out.xi[offset + step];
        out.is_change[write_row] = out.is_change[offset + step];
        out.has_score[write_row] = out.has_score[offset + step];
        ++write_row;
      }
    }
    ++final_group;
  }
  if (any_runtime_failure) {
    out.group.resize(write_row);
    out.step.resize(write_row);
    out.timestamp.resize(write_row);
    out.score.resize(write_row);
    out.ci_lo.resize(write_row);
    out.ci_up.resize(write_row);
    out.xi.resize(write_row);
    out.is_change.resize(write_row);
    out.has_score.resize(write_row);
  }
  return out;
}

}  // namespace bagcpd
