#include "bagcpd/batch/batch_io.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <locale>
#include <sstream>
#include <utility>
#include <vector>

#include "bagcpd/io/csv.h"

namespace bagcpd {
namespace {

// ---------------------------------------------------------------------------
// Locale-independent numeric parsing/formatting (same discipline as
// api/spec.cc: a host app calling setlocale() must not corrupt data files).

#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
#define BAGCPD_BATCH_FP_CHARCONV 1
#else
#define BAGCPD_BATCH_FP_CHARCONV 0
#endif

bool ParseInt64(const std::string& text, std::int64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out, 10);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseValue(const std::string& text, double* out) {
#if BAGCPD_BATCH_FP_CHARCONV
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
#else
  std::istringstream stream(text);
  stream.imbue(std::locale::classic());
  stream >> *out;
  return !stream.fail() && stream.eof();
#endif
}

// Shortest decimal form that parses back to exactly `v` — CSV round-trips
// must be bitwise, not merely close.
std::string FormatValue(double v) {
#if BAGCPD_BATCH_FP_CHARCONV
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc()) return std::string(buf, ptr);
#endif
  for (int precision = 6; precision <= 17; ++precision) {
    std::ostringstream stream;
    stream.imbue(std::locale::classic());
    stream << std::setprecision(precision) << v;
    double back = 0.0;
    if (ParseValue(stream.str(), &back) && back == v) return stream.str();
  }
  std::ostringstream stream;
  stream.imbue(std::locale::classic());
  stream << std::setprecision(17) << v;
  return stream.str();
}

// ---------------------------------------------------------------------------
// Little-endian byte plumbing. Explicit byte shuffling (not memcpy of host
// integers) so the format is identical on any endianness.

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}

void PutI64(std::string* out, std::int64_t v) {
  PutU64(out, static_cast<std::uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

// Cursor over an in-memory file image; every Get checks remaining bytes so a
// truncated or corrupt file fails cleanly instead of reading past the end.
class ByteReader {
 public:
  ByteReader(const std::string& data, std::string path)
      : data_(data), path_(std::move(path)) {}

  Status GetU32(std::uint32_t* out) {
    BAGCPD_RETURN_NOT_OK(Need(4));
    *out = 0;
    for (int i = 0; i < 4; ++i) {
      *out |= std::uint32_t(std::uint8_t(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }

  Status GetU64(std::uint64_t* out) {
    BAGCPD_RETURN_NOT_OK(Need(8));
    *out = 0;
    for (int i = 0; i < 8; ++i) {
      *out |= std::uint64_t(std::uint8_t(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }

  Status GetI64(std::int64_t* out) {
    std::uint64_t bits = 0;
    BAGCPD_RETURN_NOT_OK(GetU64(&bits));
    *out = static_cast<std::int64_t>(bits);
    return Status::OK();
  }

  Status GetF64(double* out) {
    std::uint64_t bits = 0;
    BAGCPD_RETURN_NOT_OK(GetU64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

  Status GetString(std::string* out) {
    std::uint64_t len = 0;
    BAGCPD_RETURN_NOT_OK(GetU64(&len));
    BAGCPD_RETURN_NOT_OK(Need(len));
    out->assign(data_, pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return Status::OK();
  }

  Status GetBytes(char* out, std::size_t n) {
    BAGCPD_RETURN_NOT_OK(Need(n));
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(std::uint64_t n) const {
    if (n > data_.size() - pos_) {
      return Status::IoError(path_ + ": truncated batch table file");
    }
    return Status::OK();
  }

  const std::string& data_;
  std::string path_;
  std::size_t pos_ = 0;
};

constexpr char kBinaryMagic[8] = {'B', 'A', 'G', 'C', 'P', 'D', 'B', 'T'};
constexpr std::uint32_t kBinaryVersion = 1;

Status WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file.good()) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for reading");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

Status WriteBatchTableCsv(const std::string& path, const BatchTable& table) {
  // CSV carries one dimension in its header, so the whole table must share
  // it; ragged (quarantined) groups have no CSV representation at all.
  if (table.empty()) {
    return Status::Invalid(
        "cannot write an empty table as CSV (the header encodes the point "
        "dimension); use the binary format");
  }
  std::size_t dim = 0;
  bool any_profile = false;
  for (std::size_t g = 0; g < table.group_count(); ++g) {
    if (!table.group_status(g).ok()) {
      return Status::Invalid("cannot write '" + table.group_key(g) +
                             "' as CSV: " + table.group_status(g).message() +
                             " (use the binary format for malformed groups)");
    }
    if (dim == 0) {
      dim = table.group_dim(g);
    } else if (table.group_dim(g) != dim) {
      return Status::Invalid(
          "cannot write CSV: group '" + table.group_key(g) + "' has dim " +
          std::to_string(table.group_dim(g)) + " but earlier groups have " +
          std::to_string(dim) + " (use the binary format for mixed tables)");
    }
    if (!table.group_profile(g).empty()) any_profile = true;
  }

  std::vector<std::string> header = {"key", "timestamp"};
  for (std::size_t d = 0; d < dim; ++d) {
    header.push_back("v" + std::to_string(d));
  }
  if (any_profile) header.push_back("profile");

  std::vector<std::vector<std::string>> rows;
  rows.reserve(table.row_count());
  for (std::size_t g = 0; g < table.group_count(); ++g) {
    for (std::size_t s = 0; s < table.group_step_count(g); ++s) {
      const BagView bag = table.step_bag(g, s);
      for (std::size_t i = 0; i < bag.size(); ++i) {
        std::vector<std::string> row;
        row.reserve(header.size());
        row.push_back(table.group_key(g));
        row.push_back(std::to_string(table.step_timestamp(g, s)));
        for (double v : bag[i]) row.push_back(FormatValue(v));
        if (any_profile) row.push_back(table.group_profile(g));
        rows.push_back(std::move(row));
      }
    }
  }
  return WriteCsv(path, header, rows);
}

Result<BatchTable> ReadBatchTableCsv(const std::string& path,
                                     BufferArena* arena) {
  BAGCPD_ASSIGN_OR_RETURN(CsvData csv, ReadCsv(path));
  const std::vector<std::string>& header = csv.header;
  if (header.size() < 3 || header[0] != "key" || header[1] != "timestamp") {
    return Status::Invalid(
        path + ": expected header 'key,timestamp,v0,...[,profile]'");
  }
  const bool has_profile = header.back() == "profile";
  const std::size_t dim = header.size() - 2 - (has_profile ? 1 : 0);
  if (dim == 0) {
    return Status::Invalid(path + ": header has no value columns");
  }
  for (std::size_t d = 0; d < dim; ++d) {
    if (header[2 + d] != "v" + std::to_string(d)) {
      return Status::Invalid(path + ": value column " + std::to_string(d) +
                             " is named '" + header[2 + d] + "', expected 'v" +
                             std::to_string(d) + "'");
    }
  }

  BatchTableBuilder builder(arena);
  builder.Reserve(csv.rows.size(), dim);
  std::vector<double> point(dim);
  for (std::size_t r = 0; r < csv.rows.size(); ++r) {
    const std::vector<std::string>& row = csv.rows[r];
    std::int64_t timestamp = 0;
    if (!ParseInt64(row[1], &timestamp)) {
      return Status::Invalid(path + ": row " + std::to_string(r + 1) +
                             ": timestamp '" + row[1] +
                             "' is not an integer");
    }
    for (std::size_t d = 0; d < dim; ++d) {
      if (!ParseValue(row[2 + d], &point[d])) {
        return Status::Invalid(path + ": row " + std::to_string(r + 1) +
                               ": value '" + row[2 + d] +
                               "' is not a number");
      }
      // NaN/Inf are rejected at the file boundary so a poisoned value is
      // named by its row instead of surfacing later as a skipped step or a
      // dropped engine submission.
      if (!std::isfinite(point[d])) {
        return Status::Invalid(path + ": row " + std::to_string(r + 1) +
                               ": column v" + std::to_string(d) +
                               " holds non-finite value '" + row[2 + d] + "'");
      }
    }
    const std::string& profile = has_profile ? row.back() : std::string();
    BAGCPD_RETURN_NOT_OK(
        builder.AddRow(row[0], timestamp,
                       PointView(point.data(), dim), profile));
  }
  return builder.Build();
}

Status WriteBatchTableBinary(const std::string& path,
                             const BatchTable& table) {
  std::string bytes;
  bytes.append(kBinaryMagic, sizeof(kBinaryMagic));
  PutU32(&bytes, kBinaryVersion);
  PutU64(&bytes, table.group_count());
  for (std::size_t g = 0; g < table.group_count(); ++g) {
    PutU64(&bytes, table.group_key(g).size());
    bytes += table.group_key(g);
    PutU64(&bytes, table.group_profile(g).size());
    bytes += table.group_profile(g);
    PutU64(&bytes, table.group_step_count(g));
    for (std::size_t s = 0; s < table.group_step_count(g); ++s) {
      PutI64(&bytes, table.step_timestamp(g, s));
      PutU64(&bytes, table.step_row_count(g, s));
      const std::size_t first = table.step_first_row(g, s);
      for (std::size_t i = 0; i < table.step_row_count(g, s); ++i) {
        // Per-row (not per-table) dimension, so ragged quarantined groups
        // round-trip exactly.
        const PointView values = table.row_values(first + i);
        PutU32(&bytes, static_cast<std::uint32_t>(values.size()));
        for (double v : values) PutF64(&bytes, v);
      }
    }
  }
  return WriteFile(path, bytes);
}

Result<BatchTable> ReadBatchTableBinary(const std::string& path,
                                        BufferArena* arena) {
  BAGCPD_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  ByteReader reader(bytes, path);
  char magic[sizeof(kBinaryMagic)];
  BAGCPD_RETURN_NOT_OK(reader.GetBytes(magic, sizeof(magic)));
  if (std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::Invalid(path + ": not a bagcpd batch table file");
  }
  std::uint32_t version = 0;
  BAGCPD_RETURN_NOT_OK(reader.GetU32(&version));
  if (version != kBinaryVersion) {
    return Status::Invalid(path + ": unsupported batch table version " +
                           std::to_string(version));
  }
  BatchTableBuilder builder(arena);
  std::uint64_t num_groups = 0;
  BAGCPD_RETURN_NOT_OK(reader.GetU64(&num_groups));
  std::string key;
  std::string profile;
  std::vector<double> point;
  for (std::uint64_t g = 0; g < num_groups; ++g) {
    BAGCPD_RETURN_NOT_OK(reader.GetString(&key));
    BAGCPD_RETURN_NOT_OK(reader.GetString(&profile));
    std::uint64_t num_steps = 0;
    BAGCPD_RETURN_NOT_OK(reader.GetU64(&num_steps));
    for (std::uint64_t s = 0; s < num_steps; ++s) {
      std::int64_t timestamp = 0;
      BAGCPD_RETURN_NOT_OK(reader.GetI64(&timestamp));
      std::uint64_t num_rows = 0;
      BAGCPD_RETURN_NOT_OK(reader.GetU64(&num_rows));
      for (std::uint64_t i = 0; i < num_rows; ++i) {
        std::uint32_t dim = 0;
        BAGCPD_RETURN_NOT_OK(reader.GetU32(&dim));
        point.resize(dim);
        for (std::uint32_t d = 0; d < dim; ++d) {
          BAGCPD_RETURN_NOT_OK(reader.GetF64(&point[d]));
          // Same boundary rejection as the CSV reader: name the offending
          // row rather than let NaN/Inf propagate into a detector.
          if (!std::isfinite(point[d])) {
            return Status::Invalid(
                path + ": group '" + key + "' step " + std::to_string(s) +
                " row " + std::to_string(i) + " value " + std::to_string(d) +
                " is non-finite");
          }
        }
        BAGCPD_RETURN_NOT_OK(builder.AddRow(
            key, timestamp, PointView(point.data(), point.size()), profile));
      }
    }
  }
  if (!reader.AtEnd()) {
    return Status::IoError(path + ": trailing bytes after batch table data");
  }
  return builder.Build();
}

}  // namespace bagcpd
