#include "bagcpd/batch/synthetic.h"

#include <cstdio>

#include "bagcpd/common/rng.h"

namespace bagcpd {

Status ValidateBatchSeriesSpec(const BatchSeriesSpec& spec) {
  if (spec.num_groups < 1) {
    return Status::Invalid("num_groups must be >= 1");
  }
  if (spec.steps_per_group < 1) {
    return Status::Invalid("steps_per_group must be >= 1");
  }
  if (spec.points_per_step < 1) {
    return Status::Invalid("points_per_step must be >= 1");
  }
  if (spec.dim < 1) {
    return Status::Invalid("dim must be >= 1");
  }
  if (spec.change_fraction < 0.0 || spec.change_fraction > 1.0) {
    return Status::Invalid("change_fraction must be in [0, 1]");
  }
  return Status::OK();
}

Result<BatchSeriesRows> GenerateBatchSeriesRows(const BatchSeriesSpec& spec) {
  BAGCPD_RETURN_NOT_OK(ValidateBatchSeriesSpec(spec));
  BatchSeriesRows rows;
  rows.dim = spec.dim;
  rows.keys.reserve(spec.num_groups);
  const std::size_t total_rows =
      spec.num_groups * spec.steps_per_group * spec.points_per_step;
  rows.group.reserve(total_rows);
  rows.timestamp.reserve(total_rows);
  rows.values.reserve(total_rows * spec.dim);

  char name[32];
  for (std::size_t g = 0; g < spec.num_groups; ++g) {
    std::snprintf(name, sizeof(name), "series-%06zu", g);
    rows.keys.emplace_back(name);
  }
  // Which series change: every round(1/fraction)-th one, so the set is a
  // pure function of (num_groups, change_fraction), never of the RNG.
  const std::size_t change_every =
      spec.change_fraction > 0.0
          ? static_cast<std::size_t>(1.0 / spec.change_fraction + 0.5)
          : 0;
  const std::size_t change_step = spec.steps_per_group / 2;

  // One RNG fork per series, keyed by the group index: series g draws the
  // same values whatever the corpus size or emission order around it.
  const Rng root(spec.seed);
  std::vector<Rng> per_group;
  per_group.reserve(spec.num_groups);
  for (std::size_t g = 0; g < spec.num_groups; ++g) {
    per_group.push_back(root.Fork(g));
  }

  // Time-major emission: all series at step t before any series at t + 1 —
  // the "unsorted" interleaved order a log-structured source would produce,
  // which BatchTableBuilder must sort back into per-key runs.
  for (std::size_t t = 0; t < spec.steps_per_group; ++t) {
    for (std::size_t g = 0; g < spec.num_groups; ++g) {
      const bool changes = change_every > 0 && g % change_every == 0;
      const double mean =
          (changes && t >= change_step) ? spec.drift : 0.0;
      Rng& rng = per_group[g];
      for (std::size_t p = 0; p < spec.points_per_step; ++p) {
        rows.group.push_back(static_cast<std::uint32_t>(g));
        rows.timestamp.push_back(static_cast<std::int64_t>(t));
        for (std::size_t d = 0; d < spec.dim; ++d) {
          rows.values.push_back(rng.Gaussian(mean, 1.0));
        }
      }
    }
  }
  return rows;
}

BatchTable BuildBatchTable(const BatchSeriesRows& rows, BufferArena* arena) {
  BatchTableBuilder builder(arena);
  builder.Reserve(rows.row_count(), rows.dim);
  for (std::size_t r = 0; r < rows.row_count(); ++r) {
    // AddRow cannot fail here: keys are non-empty and dim >= 1 by
    // construction.
    builder
        .AddRow(rows.keys[rows.group[r]], rows.timestamp[r],
                PointView(rows.values.data() + r * rows.dim, rows.dim))
        .ok();
  }
  return builder.Build();
}

Result<BatchTable> GenerateBatchSeries(const BatchSeriesSpec& spec,
                                       BufferArena* arena) {
  BAGCPD_ASSIGN_OR_RETURN(BatchSeriesRows rows, GenerateBatchSeriesRows(spec));
  return BuildBatchTable(rows, arena);
}

}  // namespace bagcpd
