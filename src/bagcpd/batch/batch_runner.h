// RunBatchColumnar: the offline counterpart of StreamEngine::RunBatch, driven
// by a BatchTable instead of per-key BagSequences. One call sweeps every
// group (key) of the table through its own BagStreamDetector and returns one
// flat BatchResultTable — the `ts_detect_changepoints_by` shape of the
// anofox-forecast extension, with the same row-accounting discipline: one
// output row per input step of every healthy group, every group the run
// could NOT score listed in `quarantined` with the exact reason, and every
// step whose bag held a non-finite value listed in `skipped` (the step's row
// stays, unscored; the group keeps going). Nothing is silently dropped.
//
// Determinism: each group's detector is seeded via DerivePerStreamSeed — the
// identical (engine seed, key, profile) derivation StreamEngine uses — and
// processes its own steps in time order on one thread. Group-to-shard
// chunking is a pure function of (group count, num_shards), and no state is
// shared between groups, so the result table is bitwise-identical for every
// (num_shards, thread pool size) combination, including the serial
// one-detector-per-group reference loop.

#ifndef BAGCPD_BATCH_BATCH_RUNNER_H_
#define BAGCPD_BATCH_BATCH_RUNNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bagcpd/batch/batch_table.h"
#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/result.h"
#include "bagcpd/core/detector.h"

namespace bagcpd {

class ThreadPool;

/// \brief Configuration of one columnar batch run (the offline analogue of
/// StreamEngineOptions; see also api::BatchSpec for the text form).
struct BatchRunnerOptions {
  /// Detector configuration for groups that resolve to the default profile.
  /// `detector.seed` must be 0 — per-group seeds derive from `seed` below
  /// plus the group key (and profile), exactly like StreamEngine.
  DetectorOptions detector;
  /// Named detector profiles (beyond the implicit "default"); a group whose
  /// table rows carry a profile column, or whose key appears in
  /// `profile_by_key`, routes here. Seeds must be 0, same as `detector`.
  std::map<std::string, DetectorOptions> profiles;
  /// Per-key profile routing, consulted for groups whose rows carry no
  /// profile of their own (a non-empty table profile wins; a CONFLICTING
  /// non-empty table profile quarantines the group). Entries for keys not in
  /// the table are ignored.
  std::map<std::string, std::string> profile_by_key;
  /// Engine-equivalent seed: group `key` under profile `p` is seeded exactly
  /// as a StreamEngine with this seed would seed stream `key` under `p`.
  std::uint64_t seed = 0;
  /// Number of contiguous group chunks the run is split into. Purely an
  /// execution knob (results are identical for any value >= 1); 0 behaves
  /// like 1.
  std::size_t num_shards = 1;
  /// Optional compute pool the shards run on (nullptr or size 0 = serial).
  /// Non-owning; must outlive the call.
  ThreadPool* pool = nullptr;
  /// Tuning for the per-shard buffer arenas detector signature builds
  /// recycle through.
  BufferArenaOptions arena;
};

/// \brief Checks that `options` form a coherent batch-run configuration;
/// exactly the condition RunBatchColumnar accepts.
Status ValidateBatchRunnerOptions(const BatchRunnerOptions& options);

/// \brief Flat columnar result of RunBatchColumnar. Row r belongs to group
/// `keys[group[r]]`, step `step[r]` (0-based within the group, time order).
/// Rows appear grouped in table order, steps ascending within a group.
///
/// Every step of every non-quarantined group produces exactly one row.
/// Steps the detector had no verdict for (warm-up, and the tail when CIs are
/// off) carry has_score = 0 with NaN score/interval columns — present, not
/// dropped, mirroring the anofox "output rows == input rows" contract.
struct BatchResultTable {
  /// Result-group directory, in table group order (quarantined groups
  /// excluded — they live in `quarantined` instead).
  std::vector<std::string> keys;
  /// Canonical profile each result group was scored under (parallel to
  /// `keys`).
  std::vector<std::string> profiles;

  // Per-row columns (all the same length).
  std::vector<std::uint32_t> group;
  std::vector<std::uint32_t> step;
  std::vector<std::int64_t> timestamp;
  std::vector<double> score;
  std::vector<double> ci_lo;
  std::vector<double> ci_up;
  std::vector<double> xi;
  std::vector<std::uint8_t> is_change;
  /// 1 iff the detector scored this step (the score/interval columns are
  /// meaningful); 0 for warm-up/tail rows.
  std::vector<std::uint8_t> has_score;

  /// One entry per group the run could not score: malformed at build time
  /// (ragged dimensions, conflicting profile rows), an unknown or
  /// conflicting profile route, or a detector failure mid-group.
  struct Quarantined {
    std::string key;
    Status status;
    /// Input steps the group held — the rows the caller must account for.
    std::size_t steps = 0;
  };
  std::vector<Quarantined> quarantined;

  /// One entry per input step whose bag held a non-finite value. The step is
  /// never pushed into the detector — its row stays in the table with
  /// has_score = 0 and NaN score columns — and the group keeps scoring its
  /// later steps. Entries appear in table group order, steps ascending.
  struct Skipped {
    std::string key;
    /// 0-based step within the group (matches the `step` column).
    std::uint32_t step = 0;
    Status status;
  };
  std::vector<Skipped> skipped;

  std::size_t row_count() const { return step.size(); }
  std::size_t group_count() const { return keys.size(); }
};

/// \brief Runs one detector per table group and collects every result into a
/// flat BatchResultTable (see the file header for the determinism and
/// row-accounting guarantees).
Result<BatchResultTable> RunBatchColumnar(const BatchTable& table,
                                          const BatchRunnerOptions& options);

}  // namespace bagcpd

#endif  // BAGCPD_BATCH_BATCH_RUNNER_H_
