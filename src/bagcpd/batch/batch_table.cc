#include "bagcpd/batch/batch_table.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <utility>

namespace bagcpd {
namespace {

// Total order on two equal-length value rows via their IEEE-754 bit patterns.
// Bit patterns (rather than operator<) keep the comparator a strict weak
// ordering even if a row carries NaN, and any fixed total order suffices: the
// canonical layout only needs to be a pure function of the row multiset.
int CompareValues(const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t ua, ub;
    std::memcpy(&ua, &a[i], sizeof(ua));
    std::memcpy(&ub, &b[i], sizeof(ub));
    if (ua != ub) return ua < ub ? -1 : 1;
  }
  return 0;
}

}  // namespace

BatchTableBuilder::BatchTableBuilder(BufferArena* arena) : arena_(arena) {
  staging_ = PooledBuffer::AcquireFrom(arena_, 0);
}

void BatchTableBuilder::Reserve(std::size_t rows, std::size_t dim) {
  rows_.reserve(rows);
  staging_.vec().reserve(rows * dim);
}

Status BatchTableBuilder::AddRow(const std::string& key, std::int64_t timestamp,
                                 PointView point, const std::string& profile) {
  if (key.empty()) {
    return Status::Invalid("BatchTableBuilder: row key must be non-empty");
  }
  if (point.empty()) {
    return Status::Invalid("BatchTableBuilder: row for key '" + key +
                           "' has a zero-dimensional point");
  }
  std::uint32_t group;
  auto it = group_ids_.find(key);
  if (it == group_ids_.end()) {
    group = static_cast<std::uint32_t>(group_keys_.size());
    group_ids_.emplace(key, group);
    group_keys_.push_back(key);
    group_profiles_.push_back(profile);
    group_profile_status_.push_back(Status::OK());
  } else {
    group = it->second;
    if (group_profile_status_[group].ok() &&
        profile != group_profiles_[group]) {
      group_profile_status_[group] = Status::Invalid(
          "group '" + key + "' carries conflicting profiles '" +
          group_profiles_[group] + "' and '" + profile + "'");
    }
  }
  RowRef row;
  row.group = group;
  row.dim = static_cast<std::uint32_t>(point.size());
  row.timestamp = timestamp;
  row.value_begin = staging_.vec().size();
  rows_.push_back(row);
  staging_.vec().insert(staging_.vec().end(), point.begin(), point.end());
  return Status::OK();
}

BatchTable BatchTableBuilder::Build() {
  BatchTable table;
  const std::size_t num_groups = group_keys_.size();
  const std::size_t num_rows = rows_.size();

  // Canonical group order: by key. rank[old_id] -> position in the table.
  std::vector<std::uint32_t> by_key(num_groups);
  std::iota(by_key.begin(), by_key.end(), 0u);
  std::sort(by_key.begin(), by_key.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return group_keys_[a] < group_keys_[b];
            });
  std::vector<std::uint32_t> rank(num_groups);
  for (std::size_t i = 0; i < num_groups; ++i) rank[by_key[i]] = i;

  // Canonical row order: (group rank, timestamp, dim, values). Rows that tie
  // on all four are identical, so the order is a pure function of the
  // multiset of appended rows regardless of append order.
  const double* staged = staging_.vec().data();
  std::vector<std::size_t> order(num_rows);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const RowRef& ra = rows_[a];
    const RowRef& rb = rows_[b];
    if (rank[ra.group] != rank[rb.group]) return rank[ra.group] < rank[rb.group];
    if (ra.timestamp != rb.timestamp) return ra.timestamp < rb.timestamp;
    if (ra.dim != rb.dim) return ra.dim < rb.dim;
    return CompareValues(staged + ra.value_begin, staged + rb.value_begin,
                         ra.dim) < 0;
  });

  table.groups_.resize(num_groups);
  table.step_timestamps_.reserve(num_rows);
  table.step_row_begin_.reserve(num_rows + 1);
  table.row_value_begin_.reserve(num_rows + 1);
  table.values_ = PooledBuffer::AcquireFrom(arena_, staging_.vec().size());
  std::vector<double>& values = table.values_.vec();

  for (std::size_t i = 0; i < num_groups; ++i) {
    BatchTable::Group& g = table.groups_[i];
    const std::uint32_t old_id = by_key[i];
    g.key = std::move(group_keys_[old_id]);
    g.profile = std::move(group_profiles_[old_id]);
    g.status = group_profile_status_[old_id];
    g.step_begin = g.step_end = table.step_timestamps_.size();
    g.row_begin = g.row_end = 0;  // filled below
  }

  std::size_t row_out = 0;
  std::size_t group_cursor = num_groups;  // "no open group" sentinel
  for (std::size_t idx : order) {
    const RowRef& row = rows_[idx];
    const std::size_t g = rank[row.group];
    BatchTable::Group& group = table.groups_[g];
    if (g != group_cursor) {
      group_cursor = g;
      group.step_begin = table.step_timestamps_.size();
      group.step_end = group.step_begin;
      group.row_begin = row_out;
      group.dim = row.dim;
    }
    if (row.dim != group.dim && group.status.ok()) {
      group.status = Status::Invalid(
          "group '" + group.key + "' has ragged point dimensions (" +
          std::to_string(group.dim) + " vs " + std::to_string(row.dim) + ")");
    }
    // Open a new step when the timestamp changes (rows of one step are
    // adjacent after the sort).
    if (group.step_end == group.step_begin ||
        table.step_timestamps_.back() != row.timestamp) {
      table.step_timestamps_.push_back(row.timestamp);
      table.step_row_begin_.push_back(row_out);
      group.step_end = table.step_timestamps_.size();
    }
    table.row_value_begin_.push_back(values.size());
    values.insert(values.end(), staged + row.value_begin,
                  staged + row.value_begin + row.dim);
    group.row_end = ++row_out;
  }
  if (num_rows > 0) {
    table.step_row_begin_.push_back(row_out);
    table.row_value_begin_.push_back(values.size());
  }
  // A ragged group has no single dimension; report 0 so callers cannot build
  // a bogus rectangular view from it.
  for (BatchTable::Group& g : table.groups_) {
    if (!g.status.ok()) g.dim = 0;
  }

  // Reset for reuse.
  group_ids_.clear();
  group_keys_.clear();
  group_profiles_.clear();
  group_profile_status_.clear();
  rows_.clear();
  staging_ = PooledBuffer::AcquireFrom(arena_, 0);
  return table;
}

}  // namespace bagcpd
