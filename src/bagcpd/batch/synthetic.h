// Synthetic grouped-series generator for batch benchmarks and tests — the
// library's analogue of anofox-forecast's generate_10k_series fixture: many
// independent keyed series, a configurable fraction carrying one mid-series
// distribution change, emitted time-major (all keys at t, then all keys at
// t+1, ...) so ingest paths are exercised on realistically interleaved,
// unsorted row order.
//
// Fully deterministic: every series draws from its own fork of the spec
// seed, so the data for key k is independent of how many other keys exist
// and of emission order.

#ifndef BAGCPD_BATCH_SYNTHETIC_H_
#define BAGCPD_BATCH_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bagcpd/batch/batch_table.h"
#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Shape of one synthetic grouped-series corpus.
struct BatchSeriesSpec {
  /// Number of keyed series ("series-000000", "series-000001", ...).
  std::size_t num_groups = 10000;
  /// Time steps per series; timestamps are 0, 1, ..., steps_per_group - 1.
  std::size_t steps_per_group = 16;
  /// Observations (rows) per step — the bag size.
  std::size_t points_per_step = 4;
  /// Point dimension.
  std::size_t dim = 2;
  /// Fraction of series whose generating Gaussian jumps at the midpoint
  /// (every 1/change_fraction-th series changes; 0 = none).
  double change_fraction = 0.5;
  /// Mean shift applied to every coordinate after the change point.
  double drift = 4.0;
  std::uint64_t seed = 0;
};

/// \brief A synthetic corpus in raw row form (pre-BatchTable), time-major:
/// row r is observation (keys[group[r]], timestamp[r], values[r*dim..]).
struct BatchSeriesRows {
  std::vector<std::string> keys;      // one per group
  std::vector<std::uint32_t> group;   // one per row
  std::vector<std::int64_t> timestamp;
  std::vector<double> values;         // row-major, dim values per row
  std::size_t dim = 0;
  std::size_t row_count() const { return group.size(); }
};

/// \brief Checks the spec describes a non-degenerate corpus.
Status ValidateBatchSeriesSpec(const BatchSeriesSpec& spec);

/// \brief Generates the raw interleaved rows.
Result<BatchSeriesRows> GenerateBatchSeriesRows(const BatchSeriesSpec& spec);

/// \brief Builds a canonical BatchTable from raw rows (the columnar ingest
/// path the micro_batch benchmark times).
BatchTable BuildBatchTable(const BatchSeriesRows& rows,
                           BufferArena* arena = nullptr);

/// \brief Convenience: GenerateBatchSeriesRows + BuildBatchTable.
Result<BatchTable> GenerateBatchSeries(const BatchSeriesSpec& spec,
                                       BufferArena* arena = nullptr);

}  // namespace bagcpd

#endif  // BAGCPD_BATCH_SYNTHETIC_H_
