// BatchTable: the columnar ingest container behind the batch frontend. One
// table holds thousands of grouped series in four contiguous buffers — group
// directory, per-step timestamps, per-step row extents, and one flat
// point-value buffer (arena-backed) — so an offline sweep over 10k+ series
// ("millions of users" worth of keys) is a single allocation-friendly value
// that RunBatchColumnar can walk with zero-copy BagViews.
//
// Shape: an input *row* is one observation (key, timestamp, point). Rows
// sharing a (key, timestamp) pair form the bag observed by that key at that
// step — the table-level analogue of the paper's bag-of-data per time step.
// A *group* is all rows of one key: one independent detector stream.
//
// BatchTableBuilder accepts rows in ANY order and Build() sorts them into a
// canonical layout: groups ordered by key, steps ordered by timestamp, and
// rows within a step ordered by their point values — a pure function of the
// row multiset, so shuffled ingest produces a bitwise-identical table (and
// therefore bitwise-identical detection results) to pre-sorted ingest.
//
// Malformed groups never fail the table: a group whose rows disagree on the
// point dimension (ragged) or on the profile column is retained but marked
// with a non-OK group_status(); RunBatchColumnar reports it as quarantined
// instead of crashing or silently dropping its rows.

#ifndef BAGCPD_BATCH_BATCH_TABLE_H_
#define BAGCPD_BATCH_BATCH_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief Immutable columnar container of grouped (key, timestamp, point)
/// rows in canonical sorted order. Built by BatchTableBuilder or the loaders
/// in batch/batch_io.h.
class BatchTable {
 public:
  /// \brief Empty table (no groups, no rows).
  BatchTable() = default;

  /// \brief Number of distinct keys.
  std::size_t group_count() const { return groups_.size(); }
  /// \brief Total input rows (observations) across all groups.
  std::size_t row_count() const {
    return row_value_begin_.empty() ? 0 : row_value_begin_.size() - 1;
  }
  /// \brief Total distinct (key, timestamp) steps across all groups.
  std::size_t step_count() const { return step_timestamps_.size(); }
  bool empty() const { return groups_.empty(); }

  /// \brief Key of group `g`; groups are sorted by key.
  const std::string& group_key(std::size_t g) const { return groups_[g].key; }
  /// \brief Detector-profile name carried by group `g`'s rows (empty when the
  /// rows named none; resolution to the default profile happens at run time).
  const std::string& group_profile(std::size_t g) const {
    return groups_[g].profile;
  }
  /// \brief OK iff the group is well-formed (uniform point dimension, one
  /// profile). A non-OK group is carried for reporting: RunBatchColumnar
  /// quarantines it with exactly this status.
  const Status& group_status(std::size_t g) const { return groups_[g].status; }
  /// \brief Point dimension shared by the group's rows (0 for ragged groups).
  std::size_t group_dim(std::size_t g) const { return groups_[g].dim; }
  std::size_t group_step_count(std::size_t g) const {
    return groups_[g].step_end - groups_[g].step_begin;
  }
  std::size_t group_row_count(std::size_t g) const {
    return groups_[g].row_end - groups_[g].row_begin;
  }

  /// \brief Timestamp of step `s` (0-based, time-ordered) of group `g`.
  std::int64_t step_timestamp(std::size_t g, std::size_t s) const {
    return step_timestamps_[groups_[g].step_begin + s];
  }
  /// \brief Number of rows merged into the step's bag.
  std::size_t step_row_count(std::size_t g, std::size_t s) const {
    const std::size_t gs = groups_[g].step_begin + s;
    return step_row_begin_[gs + 1] - step_row_begin_[gs];
  }
  /// \brief Global index of the step's first row (rows of one step — and of
  /// one group — are contiguous).
  std::size_t step_first_row(std::size_t g, std::size_t s) const {
    return step_row_begin_[groups_[g].step_begin + s];
  }

  /// \brief Zero-copy view of the bag observed at step `s` of group `g`.
  /// Only meaningful when group_status(g).ok() (a ragged group has no
  /// rectangular bag to view).
  BagView step_bag(std::size_t g, std::size_t s) const {
    const std::size_t first = step_first_row(g, s);
    return BagView(values_.vec().data() + row_value_begin_[first],
                   step_row_count(g, s), groups_[g].dim);
  }

  /// \brief Values of one global row (works for ragged groups too; the view's
  /// size is that row's own dimension).
  PointView row_values(std::size_t row) const {
    return PointView(values_.vec().data() + row_value_begin_[row],
                     row_value_begin_[row + 1] - row_value_begin_[row]);
  }

  /// \brief The flat value buffer (row values back to back in table order).
  const std::vector<double>& values() const { return values_.vec(); }

 private:
  friend class BatchTableBuilder;

  struct Group {
    std::string key;
    std::string profile;
    Status status = Status::OK();
    // Half-open ranges into the flat step arrays / global row index space.
    std::size_t step_begin = 0;
    std::size_t step_end = 0;
    std::size_t row_begin = 0;
    std::size_t row_end = 0;
    std::size_t dim = 0;
  };

  std::vector<Group> groups_;
  // One entry per step, concatenated in group order.
  std::vector<std::int64_t> step_timestamps_;
  // step_row_begin_[s] is the global index of step s's first row; one
  // sentinel entry at the end holds row_count(). Empty tables keep it empty.
  std::vector<std::size_t> step_row_begin_;
  // row_value_begin_[r] is the offset of row r's values in values_; sentinel
  // at the end. Per-row offsets (not row * dim) so ragged groups still have
  // addressable storage.
  std::vector<std::size_t> row_value_begin_;
  // All point values back to back; returns to its arena (if any) with the
  // table.
  PooledBuffer values_;
};

/// \brief Accumulates rows in any order; Build() produces the canonical
/// sorted BatchTable. Reusable after Build() (starts a fresh table).
class BatchTableBuilder {
 public:
  /// \brief With a non-null `arena` the final value buffer (and the staging
  /// buffer) recycle through it; contents are identical either way.
  explicit BatchTableBuilder(BufferArena* arena = nullptr);

  /// \brief Pre-sizes the staging buffers for `rows` rows of `dim` values.
  void Reserve(std::size_t rows, std::size_t dim);

  /// \brief Appends one observation row. The empty profile means "unnamed" —
  /// such a group resolves to the runner's default or per-key profile.
  /// Rejects empty keys and zero-dimensional points outright (malformed
  /// input, not group raggedness).
  Status AddRow(const std::string& key, std::int64_t timestamp, PointView point,
                const std::string& profile = std::string());

  /// \brief Rows appended since construction / the last Build().
  std::size_t row_count() const { return rows_.size(); }

  /// \brief Sorts, groups, validates per group, and emits the table. Never
  /// fails as a whole: malformed groups are marked via group_status().
  BatchTable Build();

 private:
  struct RowRef {
    std::uint32_t group = 0;
    std::uint32_t dim = 0;
    std::int64_t timestamp = 0;
    std::size_t value_begin = 0;
  };

  BufferArena* arena_ = nullptr;
  // Group ids in first-seen order; sorted by key at Build().
  std::unordered_map<std::string, std::uint32_t> group_ids_;
  std::vector<std::string> group_keys_;
  std::vector<std::string> group_profiles_;
  std::vector<Status> group_profile_status_;
  std::vector<RowRef> rows_;
  PooledBuffer staging_;
};

}  // namespace bagcpd

#endif  // BAGCPD_BATCH_BATCH_TABLE_H_
