// Loaders and writers feeding BatchTable: a columnar CSV form (one
// observation row per line, round-tripping io/csv's quoting) and a compact
// little-endian binary form for large sweeps where CSV parse time dominates.
//
// CSV layout: header `key,timestamp,v0,...,v{D-1}[,profile]`, one line per
// observation row. The whole file shares one point dimension D (CSV has no
// per-row shape), so WriteBatchTableCsv refuses ragged tables; the binary
// form below carries per-row dimensions and round-trips ragged (quarantined)
// groups exactly.
//
// Binary layout (all integers little-endian, doubles IEEE-754 LE):
//   magic   "BAGCPDBT" (8 bytes)
//   u32     version (currently 1)
//   u64     group count
//   per group:
//     u64 key length, key bytes
//     u64 profile length, profile bytes
//     u64 step count
//     per step:
//       i64 timestamp
//       u64 row count
//       per row: u32 dim, dim * f64 values
//
// Both readers rebuild through BatchTableBuilder, so a loaded table is in
// canonical sorted order regardless of file row order and round-trips
// bitwise (write → read → write is byte-identical).

#ifndef BAGCPD_BATCH_BATCH_IO_H_
#define BAGCPD_BATCH_BATCH_IO_H_

#include <string>

#include "bagcpd/batch/batch_table.h"
#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Writes `table` in the CSV layout above. Fails on a ragged table
/// (groups of differing dimensions — or internally ragged quarantined
/// groups), which CSV cannot represent; use the binary form for those. The
/// profile column is emitted only when some group carries a profile.
Status WriteBatchTableCsv(const std::string& path, const BatchTable& table);

/// \brief Reads the CSV layout above into a canonical table. `arena`
/// (optional) backs the table's value buffer. Column order is fixed; the
/// trailing profile column is optional. Timestamps must parse as integers
/// and values as finite doubles — a NaN/Inf value fails the load with
/// kInvalidArgument naming the offending row.
Result<BatchTable> ReadBatchTableCsv(const std::string& path,
                                     BufferArena* arena = nullptr);

/// \brief Writes `table` in the binary layout above (handles ragged groups
/// and profiles exactly).
Status WriteBatchTableBinary(const std::string& path, const BatchTable& table);

/// \brief Reads the binary layout above into a canonical table. Values must
/// be finite — a NaN/Inf fails the load with kInvalidArgument naming the
/// offending group/step/row.
Result<BatchTable> ReadBatchTableBinary(const std::string& path,
                                        BufferArena* arena = nullptr);

}  // namespace bagcpd

#endif  // BAGCPD_BATCH_BATCH_IO_H_
