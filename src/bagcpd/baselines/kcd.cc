#include "bagcpd/baselines/kcd.h"

#include <algorithm>
#include <cmath>

#include "bagcpd/common/check.h"

namespace bagcpd {

Result<double> KcdDissimilarity(const OneClassSvmModel& ref,
                                const OneClassSvmModel& test) {
  // Cross inner product <w_ref, w_test> = sum_ij a_i b_j k(x_i, y_j).
  // Bandwidths can differ slightly (median heuristic per window); use their
  // geometric mean for the cross kernel so the product stays a valid kernel.
  const double sigma = std::sqrt(ref.sigma * test.sigma);
  double cross = 0.0;
  for (std::size_t i = 0; i < ref.support.size(); ++i) {
    if (ref.alpha[i] <= 0.0) continue;
    for (std::size_t j = 0; j < test.support.size(); ++j) {
      if (test.alpha[j] <= 0.0) continue;
      cross += ref.alpha[i] * test.alpha[j] *
               RbfKernel(ref.support[i], test.support[j], sigma);
    }
  }
  const double norm_ref = ref.WeightNormSquared();
  const double norm_test = test.WeightNormSquared();
  if (norm_ref <= 0.0 || norm_test <= 0.0) {
    return Status::Internal("degenerate one-class SVM solution");
  }
  const double cosine =
      std::clamp(cross / std::sqrt(norm_ref * norm_test), -1.0, 1.0);
  return 1.0 - cosine;
}

Result<std::vector<double>> RunKcd(const std::vector<Point>& series,
                                   const KcdOptions& options) {
  if (options.window < 2) return Status::Invalid("window must be >= 2");
  std::vector<double> scores(series.size(), 0.0);
  const std::size_t w = options.window;
  if (series.size() < 2 * w) return scores;

  for (std::size_t t = w; t + w <= series.size(); ++t) {
    std::vector<Point> ref(series.begin() + static_cast<long>(t - w),
                           series.begin() + static_cast<long>(t));
    std::vector<Point> test(series.begin() + static_cast<long>(t),
                            series.begin() + static_cast<long>(t + w));
    BAGCPD_ASSIGN_OR_RETURN(OneClassSvmModel ref_model,
                            TrainOneClassSvm(ref, options.svm));
    BAGCPD_ASSIGN_OR_RETURN(OneClassSvmModel test_model,
                            TrainOneClassSvm(test, options.svm));
    BAGCPD_ASSIGN_OR_RETURN(scores[t], KcdDissimilarity(ref_model, test_model));
  }
  return scores;
}

}  // namespace bagcpd
