#include "bagcpd/baselines/sdar.h"

#include <cmath>

#include "bagcpd/common/check.h"
#include "bagcpd/common/matrix.h"
#include "bagcpd/common/stats.h"

namespace bagcpd {

SdarModel::SdarModel(const SdarOptions& options) : options_(options) {
  BAGCPD_CHECK_MSG(options.order >= 1, "SDAR order must be >= 1");
  BAGCPD_CHECK_MSG(options.discount > 0.0 && options.discount < 1.0,
                   "discount must be in (0, 1)");
  Reset();
}

void SdarModel::Reset() {
  mean_ = 0.0;
  variance_ = 1.0;
  autocov_.assign(static_cast<std::size_t>(options_.order) + 1, 0.0);
  coefficients_.assign(static_cast<std::size_t>(options_.order), 0.0);
  history_.clear();
  observed_ = 0;
}

void SdarModel::RefitCoefficients() {
  // Yule-Walker with the discounted autocovariances: solve R a = c where
  // R_ij = C_|i-j| and c_i = C_{i+1}. Ridge-regularized for stability.
  const int k = options_.order;
  Matrix r(static_cast<std::size_t>(k), static_cast<std::size_t>(k));
  std::vector<double> c(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      r(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          autocov_[static_cast<std::size_t>(std::abs(i - j))];
    }
    r(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += 1e-6;
    c[static_cast<std::size_t>(i)] = autocov_[static_cast<std::size_t>(i) + 1];
  }
  Result<std::vector<double>> solved = r.SolveLu(c);
  if (solved.ok()) {
    coefficients_ = solved.MoveValueUnsafe();
  }
  // On a singular system, keep the previous coefficients.
}

double SdarModel::Update(double x) {
  const double r = options_.discount;
  const int k = options_.order;

  double logloss = 0.0;
  if (observed_ >= k) {
    // One-step prediction from the current model.
    double pred = mean_;
    for (int i = 0; i < k; ++i) {
      pred += coefficients_[static_cast<std::size_t>(i)] *
              history_[static_cast<std::size_t>(i)];
    }
    const double err = x - pred;
    const double var = std::max(variance_, options_.min_variance);
    logloss = 0.5 * std::log(2.0 * kPi * var) +
              0.5 * err * err / var;
    // Update the innovation variance with the observed error.
    variance_ = (1.0 - r) * variance_ + r * err * err;
  }

  // Discounted mean and autocovariance updates.
  mean_ = (1.0 - r) * mean_ + r * x;
  const double centered = x - mean_;
  autocov_[0] = (1.0 - r) * autocov_[0] + r * centered * centered;
  for (int j = 1; j <= k; ++j) {
    if (static_cast<std::size_t>(j) <= history_.size()) {
      autocov_[static_cast<std::size_t>(j)] =
          (1.0 - r) * autocov_[static_cast<std::size_t>(j)] +
          r * centered * history_[static_cast<std::size_t>(j) - 1];
    }
  }
  RefitCoefficients();

  history_.push_front(centered);
  if (history_.size() > static_cast<std::size_t>(k)) history_.pop_back();
  ++observed_;
  return logloss;
}

VectorSdarModel::VectorSdarModel(std::size_t dim, const SdarOptions& options) {
  BAGCPD_CHECK(dim >= 1);
  models_.reserve(dim);
  for (std::size_t j = 0; j < dim; ++j) models_.emplace_back(options);
}

Result<double> VectorSdarModel::Update(const std::vector<double>& x) {
  if (x.size() != models_.size()) {
    return Status::Invalid("dimension mismatch in VectorSdarModel::Update");
  }
  double total = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) total += models_[j].Update(x[j]);
  return total;
}

void VectorSdarModel::Reset() {
  for (SdarModel& m : models_) m.Reset();
}

}  // namespace bagcpd
