// Kernel change detection (Desobry, Davy & Doncarli, "An online kernel change
// detection algorithm", IEEE TSP 2005 — paper reference [9]). Two one-class
// SVMs are trained on the reference and test windows; the change score is the
// angular dissimilarity between the two weight vectors in the RKHS:
//
//   score(t) = 1 - <w_ref, w_test> / (||w_ref|| ||w_test||)
//
// which is the core of Desobry's dissimilarity index (their arc-length
// normalization changes the scale, not the ordering). Used on the sample-mean
// sequence for the Fig. 1 comparison.

#ifndef BAGCPD_BASELINES_KCD_H_
#define BAGCPD_BASELINES_KCD_H_

#include "bagcpd/baselines/one_class_svm.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Options for the kernel change detector.
struct KcdOptions {
  /// Reference / test window lengths.
  std::size_t window = 25;
  OneClassSvmOptions svm;
};

/// \brief Cosine dissimilarity between two trained one-class SVMs sharing a
/// kernel bandwidth.
Result<double> KcdDissimilarity(const OneClassSvmModel& ref,
                                const OneClassSvmModel& test);

/// \brief Scores an entire series offline: score[t] compares the window
/// ending at t-1 with the window starting at t. Scores are 0 where a full
/// pair of windows does not fit.
Result<std::vector<double>> RunKcd(const std::vector<Point>& series,
                                   const KcdOptions& options);

}  // namespace bagcpd

#endif  // BAGCPD_BASELINES_KCD_H_
