// ChangeFinder (Takeuchi & Yamanishi, "A unifying framework for detecting
// outliers and change points from time series", TKDE 2006 — paper reference
// [8]). Two-stage SDAR: stage one scores each observation by its log-loss;
// the smoothed outlier scores form a derived series whose own SDAR log-loss
// (smoothed again) is the change-point score. Applied to the sample-mean
// sequence in the Fig. 1 comparison.

#ifndef BAGCPD_BASELINES_CHANGEFINDER_H_
#define BAGCPD_BASELINES_CHANGEFINDER_H_

#include <deque>

#include "bagcpd/baselines/sdar.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Options for ChangeFinder.
struct ChangeFinderOptions {
  SdarOptions sdar;
  /// Smoothing window T for both stages.
  int smoothing_window = 5;
};

/// \brief Online ChangeFinder over d-dimensional observations.
class ChangeFinder {
 public:
  ChangeFinder(std::size_t dim, const ChangeFinderOptions& options);

  /// \brief Consumes x_t and returns the current change-point score (0 during
  /// warm-up).
  Result<double> Update(const Point& x);

  /// \brief Scores a whole series (resets first).
  Result<std::vector<double>> Run(const std::vector<Point>& series);

  void Reset();

 private:
  ChangeFinderOptions options_;
  VectorSdarModel stage1_;
  SdarModel stage2_;
  std::deque<double> outlier_window_;
  std::deque<double> change_window_;
};

}  // namespace bagcpd

#endif  // BAGCPD_BASELINES_CHANGEFINDER_H_
