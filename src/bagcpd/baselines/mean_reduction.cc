#include "bagcpd/baselines/mean_reduction.h"

#include <cmath>

#include "bagcpd/common/check.h"

namespace bagcpd {

Result<std::vector<Point>> ReduceBags(const BagSequence& bags,
                                      BagReduction reduction) {
  BAGCPD_RETURN_NOT_OK(ValidateBagSequence(bags));
  std::vector<Point> series;
  series.reserve(bags.size());
  for (const Bag& bag : bags) {
    const Point mean = BagMean(bag);
    switch (reduction) {
      case BagReduction::kMean:
        series.push_back(mean);
        break;
      case BagReduction::kMeanAndStd: {
        Point out = mean;
        out.resize(2 * mean.size());
        for (std::size_t j = 0; j < mean.size(); ++j) {
          double acc = 0.0;
          for (const Point& x : bag) {
            acc += (x[j] - mean[j]) * (x[j] - mean[j]);
          }
          out[mean.size() + j] =
              std::sqrt(acc / static_cast<double>(bag.size()));
        }
        series.push_back(std::move(out));
        break;
      }
      case BagReduction::kCount:
        series.push_back({static_cast<double>(bag.size())});
        break;
    }
  }
  return series;
}

}  // namespace bagcpd
