#include "bagcpd/baselines/one_class_svm.h"

#include <algorithm>
#include <cmath>

#include "bagcpd/common/check.h"
#include "bagcpd/common/stats.h"

namespace bagcpd {

double RbfKernel(const Point& a, const Point& b, double sigma) {
  BAGCPD_DCHECK(sigma > 0.0);
  return std::exp(-SquaredDistance(a, b) / (2.0 * sigma * sigma));
}

double MedianPairwiseDistance(const std::vector<Point>& points) {
  if (points.size() < 2) return 1.0;
  std::vector<double> dists;
  dists.reserve(points.size() * (points.size() - 1) / 2);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      dists.push_back(EuclideanDistance(points[i], points[j]));
    }
  }
  const double med = Quantile(std::move(dists), 0.5).ValueOr(1.0);
  return med > 1e-12 ? med : 1.0;
}

double OneClassSvmModel::Decision(const Point& x) const {
  double value = 0.0;
  for (std::size_t i = 0; i < support.size(); ++i) {
    if (alpha[i] <= 0.0) continue;
    value += alpha[i] * RbfKernel(support[i], x, sigma);
  }
  return value - rho;
}

double OneClassSvmModel::WeightNormSquared() const {
  double norm = 0.0;
  for (std::size_t i = 0; i < support.size(); ++i) {
    if (alpha[i] <= 0.0) continue;
    for (std::size_t j = 0; j < support.size(); ++j) {
      if (alpha[j] <= 0.0) continue;
      norm += alpha[i] * alpha[j] * RbfKernel(support[i], support[j], sigma);
    }
  }
  return norm;
}

Result<OneClassSvmModel> TrainOneClassSvm(const std::vector<Point>& window,
                                          const OneClassSvmOptions& options) {
  if (window.empty()) return Status::Invalid("empty training window");
  if (options.nu <= 0.0 || options.nu > 1.0) {
    return Status::Invalid("nu must be in (0, 1]");
  }
  const std::size_t n = window.size();
  const double box = 1.0 / (options.nu * static_cast<double>(n));
  if (box * static_cast<double>(n) < 1.0 - 1e-12) {
    return Status::Invalid("infeasible: nu too large for window size");
  }

  OneClassSvmModel model;
  model.support = window;
  model.sigma = options.rbf_sigma > 0.0 ? options.rbf_sigma
                                        : MedianPairwiseDistance(window);

  // Gram matrix.
  Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double k = RbfKernel(window[i], window[j], model.sigma);
      gram(i, j) = k;
      gram(j, i) = k;
    }
  }

  // Feasible start: uniform weights (respects the box since 1/n <= box).
  model.alpha.assign(n, 1.0 / static_cast<double>(n));
  // Gradient g = K alpha, maintained incrementally.
  std::vector<double> grad(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += gram(i, j) * model.alpha[j];
    grad[i] = acc;
  }

  // Pairwise coordinate descent: for each (i, j), move delta mass from j to i
  // minimizing the quadratic along the feasible segment.
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    double max_update = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double curvature = gram(i, i) + gram(j, j) - 2.0 * gram(i, j);
        if (curvature <= 1e-14) continue;
        // Unconstrained optimum of f(delta) with alpha_i += delta,
        // alpha_j -= delta.
        double delta = (grad[j] - grad[i]) / curvature;
        // Box constraints.
        delta = std::min(delta, box - model.alpha[i]);
        delta = std::min(delta, model.alpha[j]);
        delta = std::max(delta, -model.alpha[i]);
        delta = std::max(delta, model.alpha[j] - box);
        if (std::abs(delta) < 1e-15) continue;
        model.alpha[i] += delta;
        model.alpha[j] -= delta;
        for (std::size_t m = 0; m < n; ++m) {
          grad[m] += delta * (gram(m, i) - gram(m, j));
        }
        max_update = std::max(max_update, std::abs(delta));
      }
    }
    if (max_update < options.tolerance) break;
  }

  // rho = decision threshold: the average of <w, phi(x_i)> over margin
  // support vectors (0 < alpha_i < box); falls back to the weighted mean.
  double rho_acc = 0.0;
  int rho_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (model.alpha[i] > 1e-10 && model.alpha[i] < box - 1e-10) {
      rho_acc += grad[i];
      ++rho_count;
    }
  }
  if (rho_count > 0) {
    model.rho = rho_acc / rho_count;
  } else {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += model.alpha[i] * grad[i];
    model.rho = acc;
  }
  return model;
}

}  // namespace bagcpd
