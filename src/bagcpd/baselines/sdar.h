// Sequentially Discounting Auto-Regressive (SDAR) model: the online AR
// estimator underlying ChangeFinder (Takeuchi & Yamanishi 2006, paper
// reference [8]). Parameters are updated with exponential discounting factor
// r, and each observation is scored by its negative log-likelihood under the
// one-step-ahead predictive Gaussian.

#ifndef BAGCPD_BASELINES_SDAR_H_
#define BAGCPD_BASELINES_SDAR_H_

#include <deque>
#include <vector>

#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Options for a scalar SDAR model.
struct SdarOptions {
  /// AR order k.
  int order = 2;
  /// Discounting factor r in (0, 1); smaller adapts slower.
  double discount = 0.02;
  /// Variance floor keeping the log-loss finite.
  double min_variance = 1e-6;
};

/// \brief Online scalar SDAR model.
class SdarModel {
 public:
  explicit SdarModel(const SdarOptions& options);

  /// \brief Consumes x_t and returns its log-loss -log p(x_t | past). The
  /// first `order` observations return 0 (warm-up).
  double Update(double x);

  /// \brief Current mean estimate.
  double mean() const { return mean_; }

  /// \brief Current innovation variance estimate.
  double variance() const { return variance_; }

  /// \brief Current AR coefficients (size = order).
  const std::vector<double>& coefficients() const { return coefficients_; }

  void Reset();

 private:
  void RefitCoefficients();

  SdarOptions options_;
  double mean_ = 0.0;
  double variance_ = 1.0;
  // Autocovariances C_0 .. C_k.
  std::vector<double> autocov_;
  std::vector<double> coefficients_;
  // The last `order` centered observations, newest first.
  std::deque<double> history_;
  long observed_ = 0;
};

/// \brief Vector SDAR: independent scalar SDAR per dimension; the log-loss of
/// a d-dimensional observation is the sum of per-dimension log-losses. This
/// is the standard practical simplification for multi-dimensional
/// ChangeFinder.
class VectorSdarModel {
 public:
  VectorSdarModel(std::size_t dim, const SdarOptions& options);

  /// \brief Consumes x_t (size dim) and returns its total log-loss.
  Result<double> Update(const std::vector<double>& x);

  void Reset();

 private:
  std::vector<SdarModel> models_;
};

}  // namespace bagcpd

#endif  // BAGCPD_BASELINES_SDAR_H_
