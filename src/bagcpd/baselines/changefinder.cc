#include "bagcpd/baselines/changefinder.h"

#include <numeric>

#include "bagcpd/common/check.h"

namespace bagcpd {

namespace {

double WindowMean(const std::deque<double>& window) {
  if (window.empty()) return 0.0;
  const double sum = std::accumulate(window.begin(), window.end(), 0.0);
  return sum / static_cast<double>(window.size());
}

}  // namespace

ChangeFinder::ChangeFinder(std::size_t dim, const ChangeFinderOptions& options)
    : options_(options), stage1_(dim, options.sdar), stage2_(options.sdar) {
  BAGCPD_CHECK_MSG(options.smoothing_window >= 1,
                   "smoothing window must be >= 1");
}

void ChangeFinder::Reset() {
  stage1_.Reset();
  stage2_.Reset();
  outlier_window_.clear();
  change_window_.clear();
}

Result<double> ChangeFinder::Update(const Point& x) {
  // Stage 1: outlier score.
  BAGCPD_ASSIGN_OR_RETURN(double outlier_score, stage1_.Update(x));
  outlier_window_.push_back(outlier_score);
  if (outlier_window_.size() >
      static_cast<std::size_t>(options_.smoothing_window)) {
    outlier_window_.pop_front();
  }
  const double smoothed = WindowMean(outlier_window_);

  // Stage 2: SDAR over the smoothed outlier scores.
  const double change_score = stage2_.Update(smoothed);
  change_window_.push_back(change_score);
  if (change_window_.size() >
      static_cast<std::size_t>(options_.smoothing_window)) {
    change_window_.pop_front();
  }
  return WindowMean(change_window_);
}

Result<std::vector<double>> ChangeFinder::Run(const std::vector<Point>& series) {
  Reset();
  std::vector<double> scores;
  scores.reserve(series.size());
  for (const Point& x : series) {
    BAGCPD_ASSIGN_OR_RETURN(double s, Update(x));
    scores.push_back(s);
  }
  return scores;
}

}  // namespace bagcpd
