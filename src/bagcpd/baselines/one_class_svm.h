// nu-one-class SVM (Schoelkopf et al. 2001): the per-window model of the
// kernel change detection baseline (paper reference [9]). Solves the dual
//
//   min_alpha 1/2 alpha^T K alpha
//   s.t.      0 <= alpha_i <= 1 / (nu n),  sum_i alpha_i = 1
//
// with pairwise (SMO-style) coordinate descent, which is exact in the limit
// and plenty for the n <= 100 windows used by the baseline.

#ifndef BAGCPD_BASELINES_ONE_CLASS_SVM_H_
#define BAGCPD_BASELINES_ONE_CLASS_SVM_H_

#include <vector>

#include "bagcpd/common/matrix.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Options for the one-class SVM solver.
struct OneClassSvmOptions {
  /// nu in (0, 1]: upper bound on the outlier fraction.
  double nu = 0.5;
  /// RBF kernel bandwidth; <= 0 selects the median-distance heuristic.
  double rbf_sigma = -1.0;
  /// Full sweeps of pairwise coordinate descent.
  int max_sweeps = 60;
  /// Stop early when the largest alpha update in a sweep falls below this.
  double tolerance = 1e-8;
};

/// \brief RBF kernel value exp(-||a-b||^2 / (2 sigma^2)).
double RbfKernel(const Point& a, const Point& b, double sigma);

/// \brief Median pairwise distance of a point set (bandwidth heuristic);
/// falls back to 1.0 for degenerate sets.
double MedianPairwiseDistance(const std::vector<Point>& points);

/// \brief A trained one-class SVM (dual weights over its training set).
struct OneClassSvmModel {
  std::vector<Point> support;     // The full training window.
  std::vector<double> alpha;      // Dual weights, on the scaled simplex.
  double sigma = 1.0;             // RBF bandwidth used.
  double rho = 0.0;               // Offset (decision threshold).

  /// \brief Decision value <w, phi(x)> - rho (>= 0 inside the support region).
  double Decision(const Point& x) const;

  /// \brief Squared RKHS norm of the weight vector, alpha^T K alpha.
  double WeightNormSquared() const;
};

/// \brief Trains a one-class SVM on `window`.
Result<OneClassSvmModel> TrainOneClassSvm(const std::vector<Point>& window,
                                          const OneClassSvmOptions& options);

}  // namespace bagcpd

#endif  // BAGCPD_BASELINES_ONE_CLASS_SVM_H_
