// The information-losing reduction the paper argues against (Section 1 /
// Fig. 1b): collapse each bag to a descriptive statistic so single-vector
// methods can be applied. Provided as the input pipeline for the baseline
// comparisons.

#ifndef BAGCPD_BASELINES_MEAN_REDUCTION_H_
#define BAGCPD_BASELINES_MEAN_REDUCTION_H_

#include <vector>

#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Which statistic summarizes each bag.
enum class BagReduction {
  /// Component-wise sample mean (Fig. 1b).
  kMean,
  /// Mean plus per-dimension standard deviation (doubles the dimension).
  kMeanAndStd,
  /// Bag size only (1-d).
  kCount,
};

/// \brief Reduces every bag of the sequence to one vector.
Result<std::vector<Point>> ReduceBags(const BagSequence& bags,
                                      BagReduction reduction = BagReduction::kMean);

}  // namespace bagcpd

#endif  // BAGCPD_BASELINES_MEAN_REDUCTION_H_
