// bagcpd.h — the library's single public facade.
//
// Applications include this one header and get the whole supported surface:
// the online change-point detector, the concurrent multi-stream engine, the
// spec builders / component registry, and the data generators, analysis
// helpers and baselines the examples and experiment harnesses are written
// against. All five examples (and the CI api-surface job) compile against
// only this header.
//
//   #include "bagcpd/bagcpd.h"
//
//   auto detector = bagcpd::api::DetectorSpec::FromKeyValues(
//                       "quantizer=kmeans,k=8,tau=5,tau_prime=5,score=kl")
//                       ->Create();
//
// Deep includes ("bagcpd/core/detector.h", ...) keep working and stay the
// right choice inside the library itself; external code should prefer the
// facade so internal file moves never break it.

#ifndef BAGCPD_BAGCPD_H_
#define BAGCPD_BAGCPD_H_

// Foundations: status/result error channel, points, bags, flat storage,
// matrices, RNG, pooled buffers.
#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/macros.h"
#include "bagcpd/common/matrix.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/common/stats.h"
#include "bagcpd/common/status.h"

// Signatures: quantizers and their shared-buffer containers.
#include "bagcpd/signature/builder.h"
#include "bagcpd/signature/histogram.h"
#include "bagcpd/signature/kmeans.h"
#include "bagcpd/signature/kmedoids.h"
#include "bagcpd/signature/lvq.h"
#include "bagcpd/signature/signature.h"
#include "bagcpd/signature/signature_set.h"

// Earth Mover's Distance and the information estimators over it.
#include "bagcpd/emd/distance_cache.h"
#include "bagcpd/emd/emd.h"
#include "bagcpd/emd/emd_1d.h"
#include "bagcpd/emd/ground_distance.h"
#include "bagcpd/emd/min_cost_flow.h"
#include "bagcpd/info/estimators.h"
#include "bagcpd/info/weighted_set.h"

// The detector core: scores, bootstrap CIs, the online detector, offline
// segmentation, feature selection.
#include "bagcpd/core/bootstrap.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/core/feature_selector.h"
#include "bagcpd/core/scores.h"
#include "bagcpd/core/segmentation.h"

// Deterministic fault injection: the named fault points behind the engine's
// `fault=` option and the recovery drills in tests/ and tools/fault_drill.
#include "bagcpd/fault/fault_injector.h"

// Concurrent runtime: thread pool + keyed multi-stream engine.
#include "bagcpd/runtime/stream_engine.h"
#include "bagcpd/runtime/thread_pool.h"

// Checkpoint subsystem: wire format, blob inspection, and the file helpers
// behind detector snapshot/restore, engine checkpoints, and spill-to-disk.
#include "bagcpd/serialize/checkpoint.h"
#include "bagcpd/serialize/wire.h"

// Columnar batch frontend: grouped-table ingest, the one-call batch runner,
// its file formats, and the synthetic corpus generator.
#include "bagcpd/batch/batch_io.h"
#include "bagcpd/batch/batch_runner.h"
#include "bagcpd/batch/batch_table.h"
#include "bagcpd/batch/synthetic.h"

// Public API layer: component registry and spec builders.
#include "bagcpd/api/registry.h"
#include "bagcpd/api/spec.h"

// Analysis / evaluation helpers.
#include "bagcpd/analysis/ascii_plot.h"
#include "bagcpd/analysis/mds.h"
#include "bagcpd/analysis/metrics.h"

// Baselines of the paper's comparison section.
#include "bagcpd/baselines/changefinder.h"
#include "bagcpd/baselines/kcd.h"
#include "bagcpd/baselines/mean_reduction.h"
#include "bagcpd/baselines/one_class_svm.h"
#include "bagcpd/baselines/sdar.h"

// Synthetic data / graph generators used by the examples and experiments.
#include "bagcpd/data/bag_generators.h"
#include "bagcpd/data/ci_datasets.h"
#include "bagcpd/data/fig1.h"
#include "bagcpd/data/gmm.h"
#include "bagcpd/data/pamap_simulator.h"
#include "bagcpd/graph/bipartite_graph.h"
#include "bagcpd/graph/enron_simulator.h"
#include "bagcpd/graph/features.h"
#include "bagcpd/graph/generators.h"

// Tabular IO.
#include "bagcpd/io/csv.h"
#include "bagcpd/io/table.h"

#endif  // BAGCPD_BAGCPD_H_
