// Shared worker behind the per-enum Parse* functions: match a name against
// an All*() value table (via the enum's Name function) or fail listing the
// known names. Keeping the loop in one place means a new enum value only
// needs its All*/Name entries — the parser and its error message follow.

#ifndef BAGCPD_COMMON_ENUM_NAMES_H_
#define BAGCPD_COMMON_ENUM_NAMES_H_

#include <string>
#include <vector>

#include "bagcpd/common/result.h"

namespace bagcpd {

template <typename E, typename NameFn>
Result<E> ParseNamedEnum(const std::string& name, const std::vector<E>& values,
                         NameFn name_fn, const char* what) {
  std::string known;
  for (E value : values) {
    if (name == name_fn(value)) return value;
    if (!known.empty()) known += ", ";
    known += name_fn(value);
  }
  return Status::Invalid(std::string("unknown ") + what + " '" + name +
                         "' (known: " + known + ")");
}

}  // namespace bagcpd

#endif  // BAGCPD_COMMON_ENUM_NAMES_H_
