// Descriptive statistics shared by the bootstrap machinery, evaluation
// metrics, and tests.

#ifndef BAGCPD_COMMON_STATS_H_
#define BAGCPD_COMMON_STATS_H_

#include <cstddef>
#include <vector>

#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Pi (C++17 has no std::numbers::pi).
inline constexpr double kPi = 3.14159265358979323846;

/// \brief Arithmetic mean of a non-empty vector.
double Mean(const std::vector<double>& xs);

/// \brief Unbiased sample variance (n-1 denominator); 0 for n < 2.
double Variance(const std::vector<double>& xs);

/// \brief Square root of Variance().
double StdDev(const std::vector<double>& xs);

/// \brief Sample covariance of two equal-length vectors (n-1 denominator).
double Covariance(const std::vector<double>& xs, const std::vector<double>& ys);

/// \brief Pearson correlation; 0 when either side is constant.
double Correlation(const std::vector<double>& xs, const std::vector<double>& ys);

/// \brief Linear-interpolation quantile (type-7, the R default) of `xs` at
/// probability `p` in [0, 1]. The input need not be sorted.
/// Fails with Invalid on an empty input or p outside [0, 1].
Result<double> Quantile(std::vector<double> xs, double p);

/// \brief Both quantile endpoints of a central (1 - alpha) interval, i.e. the
/// alpha/2 and 1 - alpha/2 quantiles. Used for bootstrap confidence intervals.
struct Interval {
  double lo;
  double up;
};
Result<Interval> CentralInterval(std::vector<double> xs, double alpha);

/// \brief Median absolute deviation, scaled by 1.4826 for Gaussian consistency.
double Mad(std::vector<double> xs);

/// \brief Min and max of a non-empty vector.
Interval MinMax(const std::vector<double>& xs);

/// \brief log(sum(exp(xs))) computed stably.
double LogSumExp(const std::vector<double>& xs);

}  // namespace bagcpd

#endif  // BAGCPD_COMMON_STATS_H_
