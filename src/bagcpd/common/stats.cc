#include "bagcpd/common/stats.h"

#include <algorithm>
#include <cmath>

#include "bagcpd/common/check.h"

namespace bagcpd {

double Mean(const std::vector<double>& xs) {
  BAGCPD_CHECK_MSG(!xs.empty(), "Mean of empty vector");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Covariance(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  BAGCPD_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += (xs[i] - mx) * (ys[i] - my);
  }
  return acc / static_cast<double>(xs.size() - 1);
}

double Correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  const double sx = StdDev(xs);
  const double sy = StdDev(ys);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return Covariance(xs, ys) / (sx * sy);
}

Result<double> Quantile(std::vector<double> xs, double p) {
  if (xs.empty()) return Status::Invalid("Quantile of empty vector");
  if (p < 0.0 || p > 1.0) {
    return Status::Invalid("quantile probability must be in [0, 1]");
  }
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double h = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

Result<Interval> CentralInterval(std::vector<double> xs, double alpha) {
  if (alpha <= 0.0 || alpha >= 1.0) {
    return Status::Invalid("alpha must be in (0, 1)");
  }
  BAGCPD_ASSIGN_OR_RETURN(double lo, Quantile(xs, alpha / 2.0));
  BAGCPD_ASSIGN_OR_RETURN(double up, Quantile(std::move(xs), 1.0 - alpha / 2.0));
  return Interval{lo, up};
}

double Mad(std::vector<double> xs) {
  BAGCPD_CHECK(!xs.empty());
  Result<double> med = Quantile(xs, 0.5);
  const double m = med.ValueOrDie();
  for (double& x : xs) x = std::abs(x - m);
  return 1.4826 * Quantile(std::move(xs), 0.5).ValueOrDie();
}

Interval MinMax(const std::vector<double>& xs) {
  BAGCPD_CHECK(!xs.empty());
  auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  return Interval{*mn, *mx};
}

double LogSumExp(const std::vector<double>& xs) {
  BAGCPD_CHECK(!xs.empty());
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double acc = 0.0;
  for (double x : xs) acc += std::exp(x - m);
  return m + std::log(acc);
}

}  // namespace bagcpd
