#include "bagcpd/common/flat_bag.h"

#include <cstdio>
#include <functional>

namespace bagcpd {

Result<FlatBag> FlatBag::FromFlat(std::vector<double> values,
                                  std::size_t dim) {
  if (dim == 0) {
    if (!values.empty()) {
      return Status::Invalid("flat bag with dimension 0 must be empty");
    }
    return FlatBag();
  }
  if (values.size() % dim != 0) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "flat buffer of %zu values is not a multiple of dim %zu",
                  values.size(), dim);
    return Status::Invalid(buf);
  }
  return FlatBag(std::move(values), dim);
}

Result<FlatBag> FlatBag::FromBag(const Bag& bag, BufferArena* arena) {
  BAGCPD_RETURN_NOT_OK(ValidateBag(bag));
  const std::size_t dim = bag.front().size();
  PooledBuffer buffer = PooledBuffer::AcquireFrom(arena, bag.size() * dim);
  std::vector<double>& values = buffer.vec();
  values.reserve(bag.size() * dim);
  for (const Point& x : bag) {
    values.insert(values.end(), x.begin(), x.end());
  }
  return FlatBag(std::move(buffer), dim);
}

Status FlatBag::Append(PointView x) {
  if (x.empty()) {
    return Status::Invalid("cannot append a zero-dimensional point");
  }
  if (dim_ == 0) {
    dim_ = x.size();
  } else if (x.size() != dim_) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "point has dimension %zu, expected %zu", x.size(), dim_);
    return Status::Invalid(buf);
  }
  AppendRow(&data_.vec(), x);
  return Status::OK();
}

void AppendRow(std::vector<double>* buffer, PointView row) {
  // std::less gives the total pointer order the raw operators don't
  // guarantee for unrelated objects.
  const std::less<const double*> before;
  if (buffer->size() + row.size() > buffer->capacity() && !buffer->empty() &&
      !before(row.data(), buffer->data()) &&
      before(row.data(), buffer->data() + buffer->size())) {
    const Point copy = row.ToPoint();
    buffer->insert(buffer->end(), copy.begin(), copy.end());
  } else {
    buffer->insert(buffer->end(), row.begin(), row.end());
  }
}

Result<FlatBagSequence> FlattenSequence(const BagSequence& bags) {
  FlatBagSequence out;
  out.reserve(bags.size());
  for (std::size_t t = 0; t < bags.size(); ++t) {
    Result<FlatBag> flat = FlatBag::FromBag(bags[t]);
    if (!flat.ok()) {
      return Status::Invalid("bag at time " + std::to_string(t) + ": " +
                             flat.status().message());
    }
    out.push_back(flat.MoveValueUnsafe());
  }
  return out;
}

}  // namespace bagcpd
