// Deterministic random-number facility. Every stochastic component of the
// library draws from an explicitly seeded Rng so experiments are reproducible.

#ifndef BAGCPD_COMMON_RNG_H_
#define BAGCPD_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "bagcpd/common/matrix.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief Seedable pseudo-random generator with the distributions used across
/// the library (Gaussian, multivariate Gaussian, Poisson, Dirichlet, ...).
///
/// Wraps std::mt19937_64. Not thread-safe; clone one per thread with
/// `Fork()` which derives an independent stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// \brief Derives an independent generator (seed mixed with `stream_id`).
  ///
  /// Forking depends only on the construction seed, never on how much of the
  /// stream has been consumed, so `rng.Fork(k)` is stable over time. This is
  /// the primitive behind per-replicate and per-stream determinism in the
  /// concurrent runtime: give every unit of parallel work its own fork and
  /// results are bitwise-identical for any thread count.
  Rng Fork(std::uint64_t stream_id) const;

  /// \brief Draws one raw 64-bit word from the engine (advances the state).
  ///
  /// Use to derive a fresh sub-seed from a sequential generator:
  /// `Rng base(rng.NextUInt64());` then `base.Fork(i)` per parallel unit.
  std::uint64_t NextUInt64();

  /// \brief SplitMix64 finalizer; the avalanche mix used by Fork(). Exposed so
  /// callers can derive decorrelated seeds from structured ids.
  static std::uint64_t MixSeed64(std::uint64_t x);

  /// \brief Deterministic, platform-stable FNV-1a hash of a string key.
  ///
  /// Unlike std::hash, the value is fixed by the standard's byte sequence, so
  /// stream-keyed seeds reproduce across runs, shard counts, and platforms.
  static std::uint64_t StableHash64(const std::string& key);

  /// \brief Uniform double in [0, 1).
  double Uniform();

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  /// \brief Standard normal draw.
  double Gaussian();

  /// \brief Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// \brief Poisson draw with rate `lambda`; returns at least `min_value`
  /// (the paper's bag sizes must be >= 1 for estimation to be defined).
  int Poisson(double lambda, int min_value = 0);

  /// \brief Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// \brief Exponential draw with the given rate.
  double Exponential(double rate);

  /// \brief Gamma draw with the given shape and scale.
  double Gamma(double shape, double scale);

  /// \brief Dirichlet draw with concentration vector `alpha`; the result sums
  /// to one. Used by the Bayesian bootstrap (paper Eqs. 21-22, Appendix A/B).
  std::vector<double> Dirichlet(const std::vector<double>& alpha);

  /// \brief Symmetric Dirichlet Dir(alpha, ..., alpha) of dimension n.
  std::vector<double> SymmetricDirichlet(std::size_t n, double alpha = 1.0);

  /// \brief Multinomial counts: n trials over the probability vector `probs`.
  std::vector<int> Multinomial(int n, const std::vector<double>& probs);

  /// \brief Draws an index in [0, weights.size()) with probability
  /// proportional to weights[i].
  std::size_t Categorical(const std::vector<double>& weights);

  /// \brief Isotropic multivariate normal N(mean, sigma^2 I).
  Point MultivariateGaussianIso(const Point& mean, double sigma);

  /// \brief Diagonal-covariance multivariate normal.
  Point MultivariateGaussianDiag(const Point& mean, const Point& stddevs);

  /// \brief Full-covariance multivariate normal via the Cholesky factor of
  /// `covariance` (must be symmetric positive definite).
  Point MultivariateGaussian(const Point& mean, const Matrix& covariance);

  /// \brief Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> Permutation(std::size_t n);

  /// \brief The seed this generator was constructed with.
  std::uint64_t seed() const { return seed_; }

  /// \brief The complete generator state — construction seed plus the
  /// mt19937_64 stream position — as a portable text string (the standard's
  /// own `operator<<` engine encoding). A generator restored from it
  /// continues the draw sequence bitwise where this one stands; every
  /// distribution helper above builds its std:: distribution fresh per call,
  /// so the engine stream is the whole state. Used by the checkpoint
  /// subsystem (serialize/) to freeze a detector's RNG position.
  std::string SerializeState() const;

  /// \brief Restores a state captured by SerializeState(); rejects malformed
  /// text without touching the current state.
  Status DeserializeState(const std::string& state);

  /// \brief Access to the underlying engine (for std distributions in tests).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace bagcpd

#endif  // BAGCPD_COMMON_RNG_H_
