// Minimal leveled logging to stderr. Intended for diagnostics in examples and
// long-running benches; the core algorithms never log on hot paths.

#ifndef BAGCPD_COMMON_LOGGING_H_
#define BAGCPD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace bagcpd {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the global minimum level that will be emitted (default: Info).
void SetLogLevel(LogLevel level);

/// \brief Current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// \brief Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace bagcpd

#define BAGCPD_LOG(level)                                              \
  ::bagcpd::internal::LogMessage(::bagcpd::LogLevel::k##level,         \
                                 __FILE__, __LINE__)

#endif  // BAGCPD_COMMON_LOGGING_H_
