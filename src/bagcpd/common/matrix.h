// Small dense linear-algebra substrate: row-major double matrices with the
// factorizations the library needs (Cholesky for Gaussian sampling, symmetric
// Jacobi eigendecomposition for classical MDS and the baselines). Not a BLAS;
// problem sizes here are tens to a few hundreds.

#ifndef BAGCPD_COMMON_MATRIX_H_
#define BAGCPD_COMMON_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Creates an empty (0 x 0) matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer data (rows of equal length).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// \brief The n x n identity.
  static Matrix Identity(std::size_t n);

  /// \brief Diagonal matrix from a vector.
  static Matrix Diagonal(const std::vector<double>& diag);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t i, std::size_t j);
  double operator()(std::size_t i, std::size_t j) const;

  /// \brief Raw row-major storage.
  const std::vector<double>& data() const { return data_; }

  Matrix Transpose() const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  /// \brief Matrix-vector product.
  std::vector<double> MatVec(const std::vector<double>& v) const;

  /// \brief Sum of diagonal entries (square matrices).
  double Trace() const;

  /// \brief Frobenius norm.
  double FrobeniusNorm() const;

  /// \brief Max |a_ij - b_ij|; matrices must have equal shape.
  double MaxAbsDiff(const Matrix& other) const;

  /// \brief True if |a_ij - a_ji| <= tol for all entries.
  bool IsSymmetric(double tol = 1e-12) const;

  /// \brief Lower-triangular Cholesky factor L with A = L L^T.
  /// Fails with Invalid if the matrix is not symmetric positive definite.
  Result<Matrix> Cholesky() const;

  /// \brief Solves A x = b for symmetric positive-definite A via Cholesky.
  Result<std::vector<double>> SolveSpd(const std::vector<double>& b) const;

  /// \brief Solves A x = b for general square A via partially pivoted LU.
  /// Fails with Invalid if the matrix is singular to working precision.
  Result<std::vector<double>> SolveLu(const std::vector<double>& b) const;

  /// \brief Human-readable rendering for diagnostics.
  std::string ToString(int precision = 4) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// \brief Eigendecomposition of a symmetric matrix.
struct SymmetricEigen {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column k of `vectors` (i.e. vectors(i, k)) is the unit eigenvector for
  /// values[k].
  Matrix vectors;
};

/// \brief Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Converges quadratically; suitable for the n <= few-hundred matrices used by
/// classical MDS. Fails with Invalid if `a` is not square/symmetric.
Result<SymmetricEigen> JacobiEigenSymmetric(const Matrix& a,
                                            int max_sweeps = 64,
                                            double tol = 1e-12);

}  // namespace bagcpd

#endif  // BAGCPD_COMMON_MATRIX_H_
