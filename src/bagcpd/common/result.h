// Result<T>: value-or-Status, the return type of fallible factories.
// Modeled after arrow::Result.

#ifndef BAGCPD_COMMON_RESULT_H_
#define BAGCPD_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "bagcpd/common/check.h"
#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// Usage:
/// \code
///   Result<Signature> r = builder.Build(bag);
///   if (!r.ok()) return r.status();
///   Signature sig = r.MoveValueUnsafe();
/// \endcode
/// or with the BAGCPD_ASSIGN_OR_RETURN macro below.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so `return st;` works).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    BAGCPD_CHECK_MSG(!std::get<Status>(repr_).ok(),
                     "Result constructed from OK status");
  }

  /// \brief True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The status; OK() when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \brief Const access to the value. Aborts if not ok().
  const T& ValueOrDie() const {
    BAGCPD_CHECK_MSG(ok(), "Result::ValueOrDie on error: %s",
                     std::get<Status>(repr_).ToString().c_str());
    return std::get<T>(repr_);
  }

  /// \brief Mutable access to the value. Aborts if not ok().
  T& ValueOrDie() {
    BAGCPD_CHECK_MSG(ok(), "Result::ValueOrDie on error: %s",
                     std::get<Status>(repr_).ToString().c_str());
    return std::get<T>(repr_);
  }

  /// \brief Moves the value out. Caller must have verified ok().
  T MoveValueUnsafe() {
    BAGCPD_CHECK(ok());
    return std::move(std::get<T>(repr_));
  }

  /// \brief Value if ok, otherwise `fallback`.
  T ValueOr(T fallback) const { return ok() ? std::get<T>(repr_) : fallback; }

  const T& operator*() const { return ValueOrDie(); }
  T& operator*() { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace bagcpd

/// \brief Assigns the value of a Result expression to `lhs`, or returns its
/// Status from the enclosing function.
#define BAGCPD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = tmp.MoveValueUnsafe()

#define BAGCPD_ASSIGN_OR_RETURN_CONCAT_INNER(x, y) x##y
#define BAGCPD_ASSIGN_OR_RETURN_CONCAT(x, y) \
  BAGCPD_ASSIGN_OR_RETURN_CONCAT_INNER(x, y)

#define BAGCPD_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  BAGCPD_ASSIGN_OR_RETURN_IMPL(                                               \
      BAGCPD_ASSIGN_OR_RETURN_CONCAT(_bagcpd_result_, __LINE__), lhs, rexpr)

#endif  // BAGCPD_COMMON_RESULT_H_
