#include "bagcpd/common/buffer_arena.h"

#include "bagcpd/common/check.h"

namespace bagcpd {

namespace {

bool IsPowerOfTwo(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

Status ValidateBufferArenaOptions(const BufferArenaOptions& options) {
  if (!IsPowerOfTwo(options.min_buffer_capacity) ||
      options.min_buffer_capacity < 2) {
    return Status::Invalid("min_buffer_capacity must be a power of two >= 2");
  }
  if (options.max_buffer_capacity < options.min_buffer_capacity) {
    return Status::Invalid("max_buffer_capacity below min_buffer_capacity");
  }
  return Status::OK();
}

BufferArena::BufferArena(const BufferArenaOptions& options)
    : options_(options) {
  const Status valid = ValidateBufferArenaOptions(options_);
  BAGCPD_CHECK_MSG(valid.ok(), "BufferArena: %s", valid.message().c_str());
  std::size_t cap = options_.min_buffer_capacity;
  num_classes_ = 1;
  while (cap < options_.max_buffer_capacity) {
    cap <<= 1;
    ++num_classes_;
  }
  // Normalize max to the top class's nominal capacity so a buffer handed out
  // by the top class is always pool-eligible on release (otherwise requests
  // just under a non-power-of-two max would reserve past it and every
  // release in that range would be silently dropped).
  options_.max_buffer_capacity = cap;
  classes_.resize(num_classes_);
}

std::size_t BufferArena::ClassForAcquire(std::size_t min_capacity) const {
  std::size_t cap = options_.min_buffer_capacity;
  std::size_t c = 0;
  while (cap < min_capacity && c + 1 < num_classes_) {
    cap <<= 1;
    ++c;
  }
  return c;
}

std::vector<double> BufferArena::Acquire(std::size_t min_capacity) {
  const std::size_t class_capacity = options_.min_buffer_capacity
                                     << ClassForAcquire(min_capacity);
  if (min_capacity > options_.max_buffer_capacity) {
    // Outside the poolable range: plain allocation, never recycled.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.acquires;
    std::vector<double> buffer;
    buffer.reserve(min_capacity);
    return buffer;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.acquires;
    // Exact class first, then any larger class (its buffers also satisfy the
    // request) — a hit anywhere beats a fresh allocation.
    for (std::size_t c = ClassForAcquire(min_capacity); c < num_classes_; ++c) {
      std::vector<std::vector<double>>& freelist = classes_[c];
      if (!freelist.empty()) {
        std::vector<double> buffer = std::move(freelist.back());
        freelist.pop_back();
        ++stats_.pool_hits;
        stats_.pooled_buffers -= 1;
        stats_.pooled_doubles -= buffer.capacity();
        buffer.clear();
        return buffer;
      }
    }
  }
  std::vector<double> buffer;
  buffer.reserve(class_capacity);
  return buffer;
}

void BufferArena::Release(std::vector<double>&& buffer) {
  const std::size_t capacity = buffer.capacity();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.releases;
  if (capacity < options_.min_buffer_capacity ||
      capacity > options_.max_buffer_capacity) {
    ++stats_.dropped_releases;
    return;  // Buffer frees on scope exit.
  }
  // Floor class: the largest class whose nominal capacity the buffer still
  // satisfies, so an Acquire from that class never gets an undersized buffer.
  std::size_t cap = options_.min_buffer_capacity;
  std::size_t c = 0;
  while ((cap << 1) <= capacity && c + 1 < num_classes_) {
    cap <<= 1;
    ++c;
  }
  std::vector<std::vector<double>>& freelist = classes_[c];
  if (freelist.size() >= options_.max_buffers_per_class) {
    ++stats_.dropped_releases;
    return;
  }
  buffer.clear();
  stats_.pooled_buffers += 1;
  stats_.pooled_doubles += capacity;
  freelist.push_back(std::move(buffer));
}

void BufferArena::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& freelist : classes_) freelist.clear();
  stats_.pooled_buffers = 0;
  stats_.pooled_doubles = 0;
}

BufferArenaStats BufferArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

PooledBuffer PooledBuffer::AcquireFrom(BufferArena* arena,
                                       std::size_t min_capacity) {
  if (arena == nullptr) {
    std::vector<double> buffer;
    buffer.reserve(min_capacity);
    return PooledBuffer(std::move(buffer), nullptr);
  }
  return PooledBuffer(arena->Acquire(min_capacity), arena);
}

}  // namespace bagcpd
