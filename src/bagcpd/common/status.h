// Arrow-style Status: the uniform recoverable-error channel of the library.
// Public APIs that can fail on caller input return Status or Result<T>
// (see result.h); they never throw.

#ifndef BAGCPD_COMMON_STATUS_H_
#define BAGCPD_COMMON_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace bagcpd {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotImplemented = 3,
  kInternal = 4,
  kIoError = 5,
  kUnknown = 6,
  /// A resource is transiently full/busy; retrying later may succeed
  /// (e.g. StreamEngine::TrySubmit on a full shard queue).
  kUnavailable = 7,
};

/// \brief Returns a human-readable name for a StatusCode ("OK", "Invalid", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK (cheap, no allocation) or an error code
/// with a message.
///
/// The OK state is represented by a null internal pointer so that returning
/// Status::OK() costs nothing. Modeled after arrow::Status.
class Status {
 public:
  /// Creates an OK status.
  Status() = default;

  /// Creates a status with the given code and message.
  Status(StatusCode code, std::string message);

  /// \brief The success singleton.
  static Status OK() { return Status(); }

  static Status Invalid(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status NotImplemented(std::string message) {
    return Status(StatusCode::kNotImplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  /// \brief True iff the status carries the transient-unavailability code.
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// \brief True iff the status is OK.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// \brief The error message; empty for OK.
  const std::string& message() const;

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    if (ok() || other.ok()) return ok() == other.ok();
    return code() == other.code() && message() == other.message();
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null iff OK.
  std::shared_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace bagcpd

/// \brief Propagates a non-OK Status to the caller.
#define BAGCPD_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::bagcpd::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

#endif  // BAGCPD_COMMON_STATUS_H_
