// Fatal assertion macros for internal invariants. Following the Arrow/Google
// convention, programming errors abort the process; recoverable conditions are
// reported through bagcpd::Status instead (see status.h).

#ifndef BAGCPD_COMMON_CHECK_H_
#define BAGCPD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \brief Aborts with a diagnostic if `condition` is false.
///
/// Use for invariants that can only fail due to a bug inside this library,
/// never for conditions triggered by caller input (those return Status).
#define BAGCPD_CHECK(condition)                                                 \
  do {                                                                          \
    if (!(condition)) {                                                         \
      std::fprintf(stderr, "BAGCPD_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #condition);                                       \
      std::abort();                                                             \
    }                                                                           \
  } while (0)

/// \brief BAGCPD_CHECK with a custom printf-style message appended.
#define BAGCPD_CHECK_MSG(condition, ...)                                        \
  do {                                                                          \
    if (!(condition)) {                                                         \
      std::fprintf(stderr, "BAGCPD_CHECK failed at %s:%d: %s: ", __FILE__,      \
                   __LINE__, #condition);                                       \
      std::fprintf(stderr, __VA_ARGS__);                                        \
      std::fprintf(stderr, "\n");                                               \
      std::abort();                                                             \
    }                                                                           \
  } while (0)

#ifdef NDEBUG
#define BAGCPD_DCHECK(condition) \
  do {                           \
  } while (0)
#else
#define BAGCPD_DCHECK(condition) BAGCPD_CHECK(condition)
#endif

#endif  // BAGCPD_COMMON_CHECK_H_
