#include "bagcpd/common/rng.h"

#include <algorithm>
#include <cmath>
#include <locale>
#include <sstream>

#include "bagcpd/common/check.h"

namespace bagcpd {

std::uint64_t Rng::MixSeed64(std::uint64_t x) {
  // SplitMix64 finalizer; decorrelates fork streams from the parent seed.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t Rng::StableHash64(const std::string& key) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : key) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

Rng Rng::Fork(std::uint64_t stream_id) const {
  return Rng(MixSeed64(seed_ ^ MixSeed64(stream_id + 1)));
}

std::uint64_t Rng::NextUInt64() { return engine_(); }

double Rng::Uniform() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  BAGCPD_DCHECK(lo <= hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int Rng::UniformInt(int lo, int hi) {
  BAGCPD_DCHECK(lo <= hi);
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian() {
  std::normal_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  BAGCPD_DCHECK(stddev >= 0.0);
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int Rng::Poisson(double lambda, int min_value) {
  BAGCPD_DCHECK(lambda > 0.0);
  std::poisson_distribution<int> dist(lambda);
  return std::max(min_value, dist(engine_));
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

double Rng::Exponential(double rate) {
  BAGCPD_DCHECK(rate > 0.0);
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

double Rng::Gamma(double shape, double scale) {
  BAGCPD_DCHECK(shape > 0.0 && scale > 0.0);
  std::gamma_distribution<double> dist(shape, scale);
  return dist(engine_);
}

std::vector<double> Rng::Dirichlet(const std::vector<double>& alpha) {
  BAGCPD_CHECK_MSG(!alpha.empty(), "Dirichlet with empty alpha");
  std::vector<double> draws(alpha.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    BAGCPD_DCHECK(alpha[i] > 0.0);
    draws[i] = Gamma(alpha[i], 1.0);
    total += draws[i];
  }
  // All-zero draws are possible for tiny alpha due to underflow; fall back to
  // the uniform simplex point rather than dividing by zero.
  if (total <= 0.0) {
    const double u = 1.0 / static_cast<double>(alpha.size());
    std::fill(draws.begin(), draws.end(), u);
    return draws;
  }
  for (double& v : draws) v /= total;
  return draws;
}

std::vector<double> Rng::SymmetricDirichlet(std::size_t n, double alpha) {
  return Dirichlet(std::vector<double>(n, alpha));
}

std::vector<int> Rng::Multinomial(int n, const std::vector<double>& probs) {
  BAGCPD_CHECK(!probs.empty());
  std::vector<int> counts(probs.size(), 0);
  double remaining_prob = 0.0;
  for (double p : probs) remaining_prob += p;
  int remaining = n;
  // Sequential binomial thinning: exact multinomial sampling.
  for (std::size_t i = 0; i + 1 < probs.size() && remaining > 0; ++i) {
    const double p = remaining_prob > 0.0
                         ? std::clamp(probs[i] / remaining_prob, 0.0, 1.0)
                         : 0.0;
    std::binomial_distribution<int> dist(remaining, p);
    counts[i] = dist(engine_);
    remaining -= counts[i];
    remaining_prob -= probs[i];
  }
  counts.back() += remaining;
  return counts;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  BAGCPD_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    BAGCPD_DCHECK(w >= 0.0);
    total += w;
  }
  BAGCPD_CHECK_MSG(total > 0.0, "Categorical with all-zero weights");
  double u = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

Point Rng::MultivariateGaussianIso(const Point& mean, double sigma) {
  Point x(mean.size());
  for (std::size_t j = 0; j < mean.size(); ++j) {
    x[j] = Gaussian(mean[j], sigma);
  }
  return x;
}

Point Rng::MultivariateGaussianDiag(const Point& mean, const Point& stddevs) {
  BAGCPD_DCHECK(mean.size() == stddevs.size());
  Point x(mean.size());
  for (std::size_t j = 0; j < mean.size(); ++j) {
    x[j] = Gaussian(mean[j], stddevs[j]);
  }
  return x;
}

Point Rng::MultivariateGaussian(const Point& mean, const Matrix& covariance) {
  BAGCPD_CHECK(covariance.rows() == covariance.cols());
  BAGCPD_CHECK(covariance.rows() == mean.size());
  Result<Matrix> chol = covariance.Cholesky();
  BAGCPD_CHECK_MSG(chol.ok(), "covariance is not positive definite: %s",
                   chol.status().ToString().c_str());
  const Matrix& l = chol.ValueOrDie();
  Point z(mean.size());
  for (double& v : z) v = Gaussian();
  Point x(mean);
  for (std::size_t i = 0; i < mean.size(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      x[i] += l(i, j) * z[j];
    }
  }
  return x;
}

std::string Rng::SerializeState() const {
  // The classic locale pins the text form ("group by 3 digits" locales would
  // corrupt the round-trip); the engine encoding itself is specified by the
  // standard, so the string is portable across platforms and libstdc++/libc++.
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << seed_ << ' ' << engine_;
  return os.str();
}

Status Rng::DeserializeState(const std::string& state) {
  std::istringstream is(state);
  is.imbue(std::locale::classic());
  std::uint64_t seed = 0;
  std::mt19937_64 engine;
  if (!(is >> seed >> engine)) {
    return Status::Invalid("corrupt Rng state string");
  }
  seed_ = seed;
  engine_ = engine;
  return Status::OK();
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(UniformInt(0, static_cast<int>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace bagcpd
