// FlatBag: the owning, contiguous bag representation behind BagView. One
// contiguous buffer holds all n observations row-major (n x d), so the
// whole bag is a single allocation that moves through queues and shards
// without copying, and every kernel walks it linearly through the cache.
//
// The buffer lives behind a PooledBuffer handle: flattening at a high-rate
// ingest boundary can draw the buffer from a BufferArena (FromBag's arena
// parameter), and the storage returns to that arena automatically when the
// FlatBag dies — on whichever thread that happens. Without an arena the
// handle degrades to a plain malloc'd vector.
//
// The nested `Bag` (std::vector<std::vector<double>>) stays as the
// convenience/interchange type; FromBag/ToBag convert between the two. The
// intended flow is: flatten once at the ingest boundary (FromBag or
// Append), then hand out zero-copy BagViews to quantizers and distance
// kernels.

#ifndef BAGCPD_COMMON_FLAT_BAG_H_
#define BAGCPD_COMMON_FLAT_BAG_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief Owning flat bag storage: n observations of dimension d in one
/// contiguous row-major buffer. Rectangular by construction.
class FlatBag {
 public:
  /// \brief Empty bag of unknown dimension (fixed by the first Append).
  FlatBag() = default;

  /// \brief Empty bag whose observations will have dimension `dim`.
  explicit FlatBag(std::size_t dim) : dim_(dim) {}

  /// \brief Adopts an already-flat buffer. `values.size()` must be a
  /// positive multiple of `dim` (or empty).
  static Result<FlatBag> FromFlat(std::vector<double> values, std::size_t dim);

  /// \brief Flattens a nested bag, validating it exactly like ValidateBag
  /// (non-empty, no zero-dimensional points, not ragged). With a non-null
  /// `arena` the flat buffer is acquired from (and returns to) that arena;
  /// the contents and all downstream results are identical either way.
  static Result<FlatBag> FromBag(const Bag& bag, BufferArena* arena = nullptr);

  /// \brief Materializes the nested convenience form.
  Bag ToBag() const { return view().ToBag(); }

  /// \brief Zero-copy view over the storage.
  BagView view() const { return BagView(data_.vec().data(), size(), dim_); }

  /// \brief Implicit view conversion so FlatBag can be passed anywhere a
  /// BagView is accepted.
  operator BagView() const { return view(); }  // NOLINT(runtime/explicit)

  /// \brief Number of observations n.
  std::size_t size() const {
    return dim_ == 0 ? 0 : data_.vec().size() / dim_;
  }
  /// \brief Dimension d (0 until the first Append fixes it).
  std::size_t dim() const { return dim_; }
  bool empty() const { return data_.vec().empty(); }

  PointView operator[](std::size_t i) const {
    return PointView(data_.vec().data() + i * dim_, dim_);
  }

  const double* data() const { return data_.vec().data(); }
  const std::vector<double>& storage() const { return data_.vec(); }

  /// \brief Appends one observation. The first Append fixes the dimension
  /// when it was not set at construction; later dimension mismatches fail.
  Status Append(PointView x);

 private:
  FlatBag(std::vector<double> values, std::size_t dim)
      : data_(std::move(values), nullptr), dim_(dim) {}
  FlatBag(PooledBuffer values, std::size_t dim)
      : data_(std::move(values)), dim_(dim) {}

  // One contiguous n x d buffer; returns to its arena (if any) on
  // destruction, copies degrade to unpooled storage.
  PooledBuffer data_;
  std::size_t dim_ = 0;
};

/// \brief A time-ordered sequence of flat bags.
using FlatBagSequence = std::vector<FlatBag>;

/// \brief Appends `row` to `buffer`, copying through a temporary when `row`
/// points into `buffer` and the insert would reallocate (which would
/// invalidate the view mid-copy). Shared by FlatBag and Signature storage.
void AppendRow(std::vector<double>* buffer, PointView row);

/// \brief Flattens every bag of a nested sequence (validating each).
Result<FlatBagSequence> FlattenSequence(const BagSequence& bags);

}  // namespace bagcpd

#endif  // BAGCPD_COMMON_FLAT_BAG_H_
