// Shared public-API macros.

#ifndef BAGCPD_COMMON_MACROS_H_
#define BAGCPD_COMMON_MACROS_H_

/// \brief Marks a legacy entry point kept as a migration shim.
///
/// The attribute is opt-in: compile with -DBAGCPD_ENABLE_DEPRECATION_WARNINGS
/// to have the compiler flag every remaining use of a shimmed API (the
/// default build stays quiet so existing code keeps building warning-free).
/// The shims themselves remain fully functional; see the README migration
/// table for the replacement of each one.
#ifdef BAGCPD_ENABLE_DEPRECATION_WARNINGS
#define BAGCPD_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define BAGCPD_DEPRECATED(msg)
#endif

#endif  // BAGCPD_COMMON_MACROS_H_
