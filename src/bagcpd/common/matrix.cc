#include "bagcpd/common/matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "bagcpd/common/check.h"

namespace bagcpd {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    BAGCPD_CHECK_MSG(rows[i].size() == m.cols_, "ragged rows in FromRows");
    for (std::size_t j = 0; j < m.cols_; ++j) m(i, j) = rows[i][j];
  }
  return m;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const std::vector<double>& diag) {
  Matrix m(diag.size(), diag.size(), 0.0);
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

double& Matrix::operator()(std::size_t i, std::size_t j) {
  BAGCPD_DCHECK(i < rows_ && j < cols_);
  return data_[i * cols_ + j];
}

double Matrix::operator()(std::size_t i, std::size_t j) const {
  BAGCPD_DCHECK(i < rows_ && j < cols_);
  return data_[i * cols_ + j];
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::operator+(const Matrix& other) const {
  BAGCPD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t k = 0; k < data_.size(); ++k) {
    out.data_[k] = data_[k] + other.data_[k];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  BAGCPD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t k = 0; k < data_.size(); ++k) {
    out.data_[k] = data_[k] - other.data_[k];
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  BAGCPD_CHECK_MSG(cols_ == other.rows_, "shape mismatch in matmul");
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out(rows_, cols_);
  for (std::size_t k = 0; k < data_.size(); ++k) out.data_[k] = data_[k] * scalar;
  return out;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& v) const {
  BAGCPD_CHECK(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

double Matrix::Trace() const {
  BAGCPD_CHECK(rows_ == cols_);
  double acc = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) acc += (*this)(i, i);
  return acc;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  BAGCPD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (std::size_t k = 0; k < data_.size(); ++k) {
    m = std::max(m, std::abs(data_[k] - other.data_[k]));
  }
  return m;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

Result<Matrix> Matrix::Cholesky() const {
  if (rows_ != cols_) return Status::Invalid("Cholesky of non-square matrix");
  const std::size_t n = rows_;
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = (*this)(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::Invalid("matrix is not positive definite (pivot " +
                                 std::to_string(i) + " = " +
                                 std::to_string(sum) + ")");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

Result<std::vector<double>> Matrix::SolveSpd(
    const std::vector<double>& b) const {
  if (b.size() != rows_) return Status::Invalid("rhs size mismatch");
  BAGCPD_ASSIGN_OR_RETURN(Matrix l, Cholesky());
  const std::size_t n = rows_;
  // Forward solve L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back solve L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

Result<std::vector<double>> Matrix::SolveLu(const std::vector<double>& b) const {
  if (rows_ != cols_) return Status::Invalid("SolveLu of non-square matrix");
  if (b.size() != rows_) return Status::Invalid("rhs size mismatch");
  const std::size_t n = rows_;
  Matrix a = *this;
  std::vector<double> x = b;
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) return Status::Invalid("matrix is numerically singular");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      std::swap(x[col], x[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) a(r, j) -= factor * a(col, j);
      x[r] -= factor * x[col];
    }
  }
  // Back substitution.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = x[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= a(i, j) * x[j];
    x[i] = sum / a(i, i);
  }
  return x;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (std::size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[[" : " [");
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j) os << ", ";
      os << (*this)(i, j);
    }
    os << (i + 1 == rows_ ? "]]" : "]\n");
  }
  return os.str();
}

Result<SymmetricEigen> JacobiEigenSymmetric(const Matrix& a, int max_sweeps,
                                            double tol) {
  if (a.rows() != a.cols()) return Status::Invalid("matrix is not square");
  if (!a.IsSymmetric(1e-9)) return Status::Invalid("matrix is not symmetric");
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&]() {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) acc += d(i, j) * d(i, j);
    }
    return std::sqrt(acc);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tol * (1.0 + d.FrobeniusNorm())) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  SymmetricEigen eig;
  eig.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) eig.values[i] = d(i, i);

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return eig.values[x] > eig.values[y];
  });
  std::vector<double> sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    sorted_values[k] = eig.values[order[k]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted_vectors(i, k) = v(i, order[k]);
    }
  }
  eig.values = std::move(sorted_values);
  eig.vectors = std::move(sorted_vectors);
  return eig;
}

}  // namespace bagcpd
