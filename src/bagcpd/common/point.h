// Core data vocabulary of the library: a Point is one d-dimensional
// observation, a Bag is the collection of Points observed at one time step
// (paper Eq. 3), and a BagSequence is the stream the detector consumes.
//
// Two representations coexist:
//  * the nested convenience types (Point / Bag) — one heap allocation per
//    observation, kept for examples, data generators, and incremental
//    migration;
//  * the flat, cache-friendly views (PointView / BagView, backed by FlatBag
//    in flat_bag.h) — a single contiguous row-major buffer that all hot
//    kernels consume with zero per-point allocations.
//
// The distance kernels below accept views; `const Point&` converts to a
// PointView implicitly and at zero cost, so nested callers keep working.

#ifndef BAGCPD_COMMON_POINT_H_
#define BAGCPD_COMMON_POINT_H_

#include <cstddef>
#include <vector>

#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief One d-dimensional observation x in R^d (owning, nested form).
using Point = std::vector<double>;

/// \brief The bag B_t = {x_i^(t)} of observations at one time step. Bags in a
/// sequence may have different sizes n_t but must share the dimension d.
using Bag = std::vector<Point>;

/// \brief A time-ordered sequence of bags.
using BagSequence = std::vector<Bag>;

/// \brief Non-owning view of one observation: a pointer into contiguous
/// storage plus the dimension. Trivially copyable; pass by value.
///
/// Implicitly constructible from `const Point&` so every kernel taking a
/// PointView also accepts the nested type with no conversion cost. The view
/// never outlives the buffer it points into.
class PointView {
 public:
  constexpr PointView() = default;
  constexpr PointView(const double* data, std::size_t dim)
      : data_(data), dim_(dim) {}
  // Implicit: a Point is already contiguous storage.
  PointView(const Point& p)  // NOLINT(runtime/explicit)
      : data_(p.data()), dim_(p.size()) {}

  std::size_t size() const { return dim_; }
  bool empty() const { return dim_ == 0; }
  const double* data() const { return data_; }
  double operator[](std::size_t i) const { return data_[i]; }
  const double* begin() const { return data_; }
  const double* end() const { return data_ + dim_; }

  /// \brief Materializes an owning copy.
  Point ToPoint() const { return Point(data_, data_ + dim_); }

 private:
  const double* data_ = nullptr;
  std::size_t dim_ = 0;
};

/// \brief Non-owning view of a whole bag as one row-major `n x d` buffer.
/// Rectangular by construction: every row has the same dimension.
class BagView {
 public:
  constexpr BagView() = default;
  constexpr BagView(const double* data, std::size_t size, std::size_t dim)
      : data_(data), size_(size), dim_(dim) {}

  /// \brief Number of observations n.
  std::size_t size() const { return size_; }
  /// \brief Dimension d of each observation.
  std::size_t dim() const { return dim_; }
  bool empty() const { return size_ == 0; }
  /// \brief The underlying contiguous buffer (n * dim doubles).
  const double* data() const { return data_; }
  std::size_t value_count() const { return size_ * dim_; }

  PointView operator[](std::size_t i) const {
    return PointView(data_ + i * dim_, dim_);
  }

  /// \brief Iterates rows as PointViews (enables range-for).
  class const_iterator {
   public:
    const_iterator(const double* p, std::size_t dim) : p_(p), dim_(dim) {}
    PointView operator*() const { return PointView(p_, dim_); }
    const_iterator& operator++() {
      p_ += dim_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return p_ != o.p_; }
    bool operator==(const const_iterator& o) const { return p_ == o.p_; }

   private:
    const double* p_;
    std::size_t dim_;
  };
  const_iterator begin() const { return const_iterator(data_, dim_); }
  const_iterator end() const {
    return const_iterator(data_ + size_ * dim_, dim_);
  }

  /// \brief Materializes an owning nested copy.
  Bag ToBag() const;

 private:
  const double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t dim_ = 0;
};

/// \brief Squared Euclidean distance between two points of equal dimension.
double SquaredDistance(PointView a, PointView b);

/// \brief Euclidean distance between two points of equal dimension.
double EuclideanDistance(PointView a, PointView b);

/// \brief L1 (Manhattan) distance between two points of equal dimension.
double ManhattanDistance(PointView a, PointView b);

/// \brief Component-wise mean of a non-empty bag (nested form).
Point BagMean(const Bag& bag);

/// \brief Component-wise mean of a non-empty bag (flat form).
Point BagMean(BagView bag);

/// \brief Verifies that `bag` is non-empty and every point has dimension
/// `expected_dim` (or that all points agree if `expected_dim` == 0).
Status ValidateBag(const Bag& bag, std::size_t expected_dim = 0);

/// \brief Flat-form counterpart of ValidateBag. Raggedness is unrepresentable
/// in a BagView, so only emptiness / dimension checks remain.
Status ValidateBagView(BagView bag, std::size_t expected_dim = 0);

/// \brief Verifies that every value of `bag` is finite, naming the first
/// offending observation with kInvalidArgument otherwise. This is the
/// boundary sanitization the ingest paths (detector Push, engine Submit,
/// batch runner, loaders) apply so NaN/Inf never reaches a distance kernel.
Status CheckBagViewFinite(BagView bag);

/// \brief Verifies that every bag in the sequence is non-empty and all points
/// across all bags share one dimension.
Status ValidateBagSequence(const BagSequence& bags);

}  // namespace bagcpd

#endif  // BAGCPD_COMMON_POINT_H_
