// Core data vocabulary of the library: a Point is one d-dimensional
// observation, a Bag is the collection of Points observed at one time step
// (paper Eq. 3), and a BagSequence is the stream the detector consumes.

#ifndef BAGCPD_COMMON_POINT_H_
#define BAGCPD_COMMON_POINT_H_

#include <cstddef>
#include <vector>

#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief One d-dimensional observation x in R^d.
using Point = std::vector<double>;

/// \brief The bag B_t = {x_i^(t)} of observations at one time step. Bags in a
/// sequence may have different sizes n_t but must share the dimension d.
using Bag = std::vector<Point>;

/// \brief A time-ordered sequence of bags.
using BagSequence = std::vector<Bag>;

/// \brief Squared Euclidean distance between two points of equal dimension.
double SquaredDistance(const Point& a, const Point& b);

/// \brief Euclidean distance between two points of equal dimension.
double EuclideanDistance(const Point& a, const Point& b);

/// \brief L1 (Manhattan) distance between two points of equal dimension.
double ManhattanDistance(const Point& a, const Point& b);

/// \brief Component-wise mean of a non-empty bag.
Point BagMean(const Bag& bag);

/// \brief Verifies that `bag` is non-empty and every point has dimension
/// `expected_dim` (or that all points agree if `expected_dim` == 0).
Status ValidateBag(const Bag& bag, std::size_t expected_dim = 0);

/// \brief Verifies that every bag in the sequence is non-empty and all points
/// across all bags share one dimension.
Status ValidateBagSequence(const BagSequence& bags);

}  // namespace bagcpd

#endif  // BAGCPD_COMMON_POINT_H_
