// BufferArena: a size-class freelist pool of double buffers, the allocator
// behind the flat storage layer. The ingest boundary (FlatBag flattening) and
// the quantizers (packed Signature buffers) churn through short-lived buffers
// of a handful of recurring sizes at high rates; the arena recycles those
// buffers so the steady-state hot path never touches malloc.
//
// Ownership model:
//  * An arena owns nothing while a buffer is out: Acquire() hands the caller
//    an ordinary std::vector<double> (empty, with capacity) and Release()
//    takes it back into the matching size-class freelist.
//  * PooledBuffer is the RAII handle pairing a buffer with the arena it came
//    from; its destructor releases automatically. FlatBag and Signature store
//    their data through PooledBuffer, so a bag or signature built from an
//    arena returns its storage the moment it dies — on any thread.
//  * The arena must outlive every buffer acquired from it. StreamEngine owns
//    one arena per shard and destroys them only after all shard state (queued
//    bags, detectors and their windows) is gone.
//
// Thread-safety: Acquire/Release/stats are mutex-protected and may be called
// from any thread; the common cross-thread pattern (flatten on the producer
// thread, release on the shard worker) is explicitly supported. Per-shard
// arena instances keep contention to one producer/consumer pair.
//
// Pooling never changes results: a recycled buffer is handed out empty and
// every consumer fully overwrites it, so outputs are bitwise-identical to the
// malloc path.

#ifndef BAGCPD_COMMON_BUFFER_ARENA_H_
#define BAGCPD_COMMON_BUFFER_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief Configuration of a BufferArena.
struct BufferArenaOptions {
  /// Smallest size class, in doubles; smaller requests round up to it.
  /// Must be a power of two >= 2.
  std::size_t min_buffer_capacity = 64;
  /// Largest capacity (in doubles) the arena will pool; rounded up to the
  /// enclosing power-of-two size class at construction. Buffers above it are
  /// served by and returned to the general allocator.
  std::size_t max_buffer_capacity = std::size_t{1} << 20;
  /// Bound on each size class's freelist; releases beyond it are dropped
  /// (freed) so a burst cannot pin memory forever.
  std::size_t max_buffers_per_class = 64;
};

/// \brief Recoverable validation of arena tuning (the BufferArena
/// constructor aborts on the same conditions; embedders like StreamEngine
/// check first and surface the error through their init status).
Status ValidateBufferArenaOptions(const BufferArenaOptions& options);

/// \brief Counters describing arena behaviour (diagnostics / benchmarks).
struct BufferArenaStats {
  /// Acquire() calls served, split into freelist reuses and fresh mallocs.
  std::uint64_t acquires = 0;
  std::uint64_t pool_hits = 0;
  /// Release() calls accepted into a freelist vs dropped (class full or the
  /// buffer was outside the poolable capacity range).
  std::uint64_t releases = 0;
  std::uint64_t dropped_releases = 0;
  /// Buffers and doubles currently sitting in freelists.
  std::size_t pooled_buffers = 0;
  std::size_t pooled_doubles = 0;
};

/// \brief Size-class freelist pool of std::vector<double> buffers.
class BufferArena {
 public:
  explicit BufferArena(const BufferArenaOptions& options = {});

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  /// \brief Returns an empty vector with capacity >= `min_capacity` (rounded
  /// up to the size class), reusing a pooled buffer when one is available.
  std::vector<double> Acquire(std::size_t min_capacity);

  /// \brief Takes `buffer` back into the freelist of its capacity class.
  /// The buffer is cleared; its values are never observed again.
  void Release(std::vector<double>&& buffer);

  /// \brief Drops every pooled buffer (memory back to the allocator).
  void Clear();

  BufferArenaStats stats() const;
  const BufferArenaOptions& options() const { return options_; }

 private:
  std::size_t ClassForAcquire(std::size_t min_capacity) const;

  BufferArenaOptions options_;
  std::size_t num_classes_ = 0;
  mutable std::mutex mu_;
  // classes_[c] pools buffers with capacity in [min_capacity << c,
  // min_capacity << (c + 1)); every buffer in class c satisfies an Acquire
  // rounded up to min_capacity << c.
  std::vector<std::vector<std::vector<double>>> classes_;
  BufferArenaStats stats_;
};

/// \brief RAII pairing of a buffer with the arena that pooled it (or none).
///
/// Move-aware value type: moves transfer the pooling relationship, copies
/// produce an unpooled deep copy (so types embedding a PooledBuffer stay
/// copyable without ever double-releasing). A default-constructed or
/// detached handle is an ordinary, arena-free vector.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(std::vector<double> data, BufferArena* arena)
      : data_(std::move(data)), arena_(arena) {}

  /// \brief Acquires from `arena` (nullptr falls back to a plain vector with
  /// reserved capacity).
  static PooledBuffer AcquireFrom(BufferArena* arena, std::size_t min_capacity);

  ~PooledBuffer() { ReleaseToArena(); }

  PooledBuffer(const PooledBuffer& other) : data_(other.data_) {}
  PooledBuffer& operator=(const PooledBuffer& other) {
    if (this != &other) {
      ReleaseToArena();
      data_ = other.data_;
    }
    return *this;
  }
  PooledBuffer(PooledBuffer&& other) noexcept
      : data_(std::move(other.data_)), arena_(other.arena_) {
    other.arena_ = nullptr;
    other.data_.clear();
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      ReleaseToArena();
      data_ = std::move(other.data_);
      arena_ = other.arena_;
      other.arena_ = nullptr;
      other.data_.clear();
    }
    return *this;
  }

  std::vector<double>& vec() { return data_; }
  const std::vector<double>& vec() const { return data_; }
  BufferArena* arena() const { return arena_; }

  /// \brief Severs the arena relationship and moves the buffer out.
  std::vector<double> Detach() {
    arena_ = nullptr;
    return std::move(data_);
  }

 private:
  void ReleaseToArena() {
    if (arena_ != nullptr) {
      arena_->Release(std::move(data_));
      arena_ = nullptr;
    }
  }

  std::vector<double> data_;
  BufferArena* arena_ = nullptr;
};

}  // namespace bagcpd

#endif  // BAGCPD_COMMON_BUFFER_ARENA_H_
