#include "bagcpd/common/point.h"

#include <cmath>
#include <cstdio>

#include "bagcpd/common/check.h"

namespace bagcpd {

Bag BagView::ToBag() const {
  Bag out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i].ToPoint());
  return out;
}

double SquaredDistance(PointView a, PointView b) {
  BAGCPD_DCHECK(a.size() == b.size());
  const double* pa = a.data();
  const double* pb = b.data();
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = pa[i] - pb[i];
    acc += diff * diff;
  }
  return acc;
}

double EuclideanDistance(PointView a, PointView b) {
  return std::sqrt(SquaredDistance(a, b));
}

double ManhattanDistance(PointView a, PointView b) {
  BAGCPD_DCHECK(a.size() == b.size());
  const double* pa = a.data();
  const double* pb = b.data();
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::abs(pa[i] - pb[i]);
  }
  return acc;
}

Point BagMean(const Bag& bag) {
  BAGCPD_CHECK_MSG(!bag.empty(), "BagMean of empty bag");
  Point mean(bag.front().size(), 0.0);
  for (const Point& x : bag) {
    BAGCPD_DCHECK(x.size() == mean.size());
    for (std::size_t j = 0; j < mean.size(); ++j) mean[j] += x[j];
  }
  const double inv = 1.0 / static_cast<double>(bag.size());
  for (double& v : mean) v *= inv;
  return mean;
}

Point BagMean(BagView bag) {
  BAGCPD_CHECK_MSG(!bag.empty(), "BagMean of empty bag");
  Point mean(bag.dim(), 0.0);
  const double* row = bag.data();
  for (std::size_t i = 0; i < bag.size(); ++i, row += bag.dim()) {
    for (std::size_t j = 0; j < mean.size(); ++j) mean[j] += row[j];
  }
  const double inv = 1.0 / static_cast<double>(bag.size());
  for (double& v : mean) v *= inv;
  return mean;
}

Status ValidateBag(const Bag& bag, std::size_t expected_dim) {
  if (bag.empty()) return Status::Invalid("bag is empty");
  std::size_t dim = expected_dim != 0 ? expected_dim : bag.front().size();
  if (dim == 0) return Status::Invalid("bag contains zero-dimensional points");
  for (std::size_t i = 0; i < bag.size(); ++i) {
    if (bag[i].size() != dim) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "point %zu has dimension %zu, expected %zu", i,
                    bag[i].size(), dim);
      return Status::Invalid(buf);
    }
  }
  return Status::OK();
}

Status ValidateBagView(BagView bag, std::size_t expected_dim) {
  if (bag.empty()) return Status::Invalid("bag is empty");
  if (bag.dim() == 0) {
    return Status::Invalid("bag contains zero-dimensional points");
  }
  if (expected_dim != 0 && bag.dim() != expected_dim) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "bag has dimension %zu, expected %zu",
                  bag.dim(), expected_dim);
    return Status::Invalid(buf);
  }
  return Status::OK();
}

Status CheckBagViewFinite(BagView bag) {
  const double* values = bag.data();
  const std::size_t count = bag.value_count();
  for (std::size_t v = 0; v < count; ++v) {
    if (!std::isfinite(values[v])) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "point %zu holds a non-finite coordinate (index %zu)",
                    bag.dim() == 0 ? std::size_t{0} : v / bag.dim(),
                    bag.dim() == 0 ? std::size_t{0} : v % bag.dim());
      return Status::Invalid(buf);
    }
  }
  return Status::OK();
}

Status ValidateBagSequence(const BagSequence& bags) {
  if (bags.empty()) return Status::Invalid("bag sequence is empty");
  const std::size_t dim = bags.front().empty() ? 0 : bags.front().front().size();
  for (std::size_t t = 0; t < bags.size(); ++t) {
    Status st = ValidateBag(bags[t], dim);
    if (!st.ok()) {
      return Status::Invalid("bag at time " + std::to_string(t) + ": " +
                             st.message());
    }
  }
  return Status::OK();
}

}  // namespace bagcpd
