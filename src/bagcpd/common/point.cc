#include "bagcpd/common/point.h"

#include <cmath>
#include <cstdio>

#include "bagcpd/common/check.h"

namespace bagcpd {

double SquaredDistance(const Point& a, const Point& b) {
  BAGCPD_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

double EuclideanDistance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double ManhattanDistance(const Point& a, const Point& b) {
  BAGCPD_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::abs(a[i] - b[i]);
  }
  return acc;
}

Point BagMean(const Bag& bag) {
  BAGCPD_CHECK_MSG(!bag.empty(), "BagMean of empty bag");
  Point mean(bag.front().size(), 0.0);
  for (const Point& x : bag) {
    BAGCPD_DCHECK(x.size() == mean.size());
    for (std::size_t j = 0; j < mean.size(); ++j) mean[j] += x[j];
  }
  const double inv = 1.0 / static_cast<double>(bag.size());
  for (double& v : mean) v *= inv;
  return mean;
}

Status ValidateBag(const Bag& bag, std::size_t expected_dim) {
  if (bag.empty()) return Status::Invalid("bag is empty");
  std::size_t dim = expected_dim != 0 ? expected_dim : bag.front().size();
  if (dim == 0) return Status::Invalid("bag contains zero-dimensional points");
  for (std::size_t i = 0; i < bag.size(); ++i) {
    if (bag[i].size() != dim) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "point %zu has dimension %zu, expected %zu", i,
                    bag[i].size(), dim);
      return Status::Invalid(buf);
    }
  }
  return Status::OK();
}

Status ValidateBagSequence(const BagSequence& bags) {
  if (bags.empty()) return Status::Invalid("bag sequence is empty");
  const std::size_t dim = bags.front().empty() ? 0 : bags.front().front().size();
  for (std::size_t t = 0; t < bags.size(); ++t) {
    Status st = ValidateBag(bags[t], dim);
    if (!st.ok()) {
      return Status::Invalid("bag at time " + std::to_string(t) + ": " +
                             st.message());
    }
  }
  return Status::OK();
}

}  // namespace bagcpd
