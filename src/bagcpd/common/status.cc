#include "bagcpd/common/status.h"

#include <ostream>

namespace bagcpd {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<State>(State{code, std::move(message)})) {}

const std::string& Status::message() const {
  return ok() ? kEmptyString : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace bagcpd
