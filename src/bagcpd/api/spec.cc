#include "bagcpd/api/spec.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <iomanip>
#include <locale>
#include <sstream>

#include "bagcpd/api/registry.h"

namespace bagcpd {
namespace api {

namespace {

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Status BadValue(const std::string& key, const std::string& value,
                const char* expected) {
  return Status::Invalid("key '" + key + "': expected " + expected +
                         ", got '" + value + "'");
}

// All numeric parsing/formatting goes through <charconv>: locale-independent
// (a host app calling setlocale() can't break config strings) and with real
// range errors (an out-of-range literal is rejected, never wrapped/clamped).

Result<std::uint64_t> ParseUnsigned(const std::string& key,
                                    const std::string& value) {
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed, 10);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    return BadValue(key, value, "a non-negative integer");
  }
  return parsed;
}

Result<int> ParseInt(const std::string& key, const std::string& value) {
  int parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed, 10);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    return BadValue(key, value, "an integer");
  }
  return parsed;
}

// Floating-point from_chars/to_chars is missing on older standard libraries
// (notably libc++ before LLVM 20); there the fallback streams through the
// classic locale, which is just as locale-independent, only slower.
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
#define BAGCPD_HAS_FP_CHARCONV 1
#else
#define BAGCPD_HAS_FP_CHARCONV 0
#endif

bool ParseDoubleRaw(const std::string& value, double* out) {
#if BAGCPD_HAS_FP_CHARCONV
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), *out);
  return ec == std::errc() && ptr == value.data() + value.size();
#else
  std::istringstream stream(value);
  stream.imbue(std::locale::classic());
  stream >> *out;
  return !stream.fail() && stream.eof();
#endif
}

Result<double> ParseDouble(const std::string& key, const std::string& value) {
  double parsed = 0.0;
  if (value.empty() || !ParseDoubleRaw(value, &parsed) ||
      !std::isfinite(parsed)) {
    return BadValue(key, value, "a finite number");
  }
  return parsed;
}

Result<bool> ParseBool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  return BadValue(key, value, "true/false");
}

// Shortest decimal form that parses back to exactly `v`, locale-independent
// like the parsers above (std::to_chars' round-trip guarantee where
// available; elsewhere the fewest classic-locale digits that survive a
// parse-back).
std::string FormatDouble(double v) {
#if BAGCPD_HAS_FP_CHARCONV
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, ec == std::errc() ? ptr : buf);
#else
  for (int precision = 6; precision <= 17; ++precision) {
    std::ostringstream stream;
    stream.imbue(std::locale::classic());
    stream << std::setprecision(precision) << v;
    double back = 0.0;
    if (ParseDoubleRaw(stream.str(), &back) && back == v) return stream.str();
  }
  std::ostringstream stream;
  stream.imbue(std::locale::classic());
  stream << std::setprecision(17) << v;
  return stream.str();
#endif
}

}  // namespace

// ---------------------------------------------------------------------------
// DetectorSpec
// ---------------------------------------------------------------------------

DetectorSpec& DetectorSpec::Tau(std::size_t tau) {
  options_.tau = tau;
  return *this;
}

DetectorSpec& DetectorSpec::TauPrime(std::size_t tau_prime) {
  options_.tau_prime = tau_prime;
  return *this;
}

DetectorSpec& DetectorSpec::Score(ScoreType type) {
  options_.score_type = type;
  return *this;
}

DetectorSpec& DetectorSpec::Score(const std::string& name) {
  Result<ScoreType> parsed = ParseScoreType(name);
  if (parsed.ok()) {
    options_.score_type = parsed.ValueOrDie();
  } else if (error_.ok()) {
    error_ = parsed.status();
  }
  return *this;
}

DetectorSpec& DetectorSpec::Weights(WeightScheme scheme) {
  options_.weight_scheme = scheme;
  return *this;
}

DetectorSpec& DetectorSpec::Weights(const std::string& name) {
  Result<WeightScheme> parsed = ParseWeightScheme(name);
  if (parsed.ok()) {
    options_.weight_scheme = parsed.ValueOrDie();
  } else if (error_.ok()) {
    error_ = parsed.status();
  }
  return *this;
}

DetectorSpec& DetectorSpec::Ground(GroundDistance kind) {
  options_.ground = kind;
  return *this;
}

DetectorSpec& DetectorSpec::Ground(const std::string& name) {
  Result<GroundDistance> parsed = ParseGroundDistance(name);
  if (parsed.ok()) {
    options_.ground = parsed.ValueOrDie();
  } else if (error_.ok()) {
    error_ = parsed.status();
  }
  return *this;
}

DetectorSpec& DetectorSpec::DistanceFloor(double floor) {
  options_.info.distance_floor = floor;
  return *this;
}

DetectorSpec& DetectorSpec::Emd(EmdSolverKind kind) {
  options_.emd.kind = kind;
  return *this;
}

DetectorSpec& DetectorSpec::Emd(const EmdSolverOptions& options) {
  options_.emd = options;
  return *this;
}

DetectorSpec& DetectorSpec::Emd(const std::string& spec) {
  Result<EmdSolverOptions> parsed = ParseEmdSolverSpec(spec);
  if (parsed.ok()) {
    // Mirrors Set("emd", ...): the spec string never carries heap_at, the
    // exact-fallback flag, or the fault scope (each has its own key/setter —
    // or, for fault_scope, is stamped by the owning detector), so previously
    // chosen values survive re-selecting the solver kind.
    const std::size_t heap_at = options_.emd.heap_at;
    const bool fallback_exact = options_.emd.fallback_exact;
    const std::uint64_t fault_scope = options_.emd.fault_scope;
    options_.emd = parsed.ValueOrDie();
    options_.emd.heap_at = heap_at;
    options_.emd.fallback_exact = fallback_exact;
    options_.emd.fault_scope = fault_scope;
  } else if (error_.ok()) {
    error_ = parsed.status();
  }
  return *this;
}

DetectorSpec& DetectorSpec::EmdHeapAt(std::size_t k_plus_l) {
  options_.emd.heap_at = k_plus_l;
  return *this;
}

DetectorSpec& DetectorSpec::EmdFallbackExact(bool fallback) {
  options_.emd.fallback_exact = fallback;
  return *this;
}

DetectorSpec& DetectorSpec::Quantizer(SignatureMethod method) {
  options_.signature.method = method;
  return *this;
}

DetectorSpec& DetectorSpec::Quantizer(const std::string& name) {
  Result<SignatureMethod> parsed = ParseSignatureMethod(name);
  if (parsed.ok()) {
    options_.signature.method = parsed.ValueOrDie();
  } else if (error_.ok()) {
    error_ = parsed.status();
  }
  return *this;
}

DetectorSpec& DetectorSpec::K(std::size_t k) {
  options_.signature.k = k;
  return *this;
}

DetectorSpec& DetectorSpec::BinWidth(double width) {
  options_.signature.bin_width = width;
  return *this;
}

DetectorSpec& DetectorSpec::HistogramOrigin(double origin) {
  options_.signature.histogram_origin = origin;
  return *this;
}

DetectorSpec& DetectorSpec::Normalize(bool normalize) {
  options_.signature.normalize = normalize;
  return *this;
}

DetectorSpec& DetectorSpec::Replicates(int replicates) {
  options_.bootstrap.replicates = replicates;
  return *this;
}

DetectorSpec& DetectorSpec::Alpha(double alpha) {
  options_.bootstrap.alpha = alpha;
  return *this;
}

DetectorSpec& DetectorSpec::Bootstrap(BootstrapMethod method) {
  options_.bootstrap.method = method;
  return *this;
}

DetectorSpec& DetectorSpec::Bootstrap(const std::string& name) {
  Result<BootstrapMethod> parsed = ParseBootstrapMethod(name);
  if (parsed.ok()) {
    options_.bootstrap.method = parsed.ValueOrDie();
  } else if (error_.ok()) {
    error_ = parsed.status();
  }
  return *this;
}

DetectorSpec& DetectorSpec::Seed(std::uint64_t seed) {
  options_.seed = seed;
  return *this;
}

Status DetectorSpec::Set(const std::string& key, const std::string& value) {
  if (key == "tau") {
    BAGCPD_ASSIGN_OR_RETURN(std::uint64_t v, ParseUnsigned(key, value));
    options_.tau = static_cast<std::size_t>(v);
  } else if (key == "tau_prime") {
    BAGCPD_ASSIGN_OR_RETURN(std::uint64_t v, ParseUnsigned(key, value));
    options_.tau_prime = static_cast<std::size_t>(v);
  } else if (key == "score") {
    BAGCPD_ASSIGN_OR_RETURN(options_.score_type, ParseScoreType(value));
  } else if (key == "weights") {
    BAGCPD_ASSIGN_OR_RETURN(options_.weight_scheme, ParseWeightScheme(value));
  } else if (key == "ground") {
    BAGCPD_ASSIGN_OR_RETURN(options_.ground, ParseGroundDistance(value));
  } else if (key == "quantizer") {
    BAGCPD_ASSIGN_OR_RETURN(options_.signature.method,
                            ParseSignatureMethod(value));
  } else if (key == "k") {
    BAGCPD_ASSIGN_OR_RETURN(std::uint64_t v, ParseUnsigned(key, value));
    options_.signature.k = static_cast<std::size_t>(v);
  } else if (key == "bin_width") {
    BAGCPD_ASSIGN_OR_RETURN(options_.signature.bin_width,
                            ParseDouble(key, value));
  } else if (key == "histogram_origin") {
    BAGCPD_ASSIGN_OR_RETURN(options_.signature.histogram_origin,
                            ParseDouble(key, value));
  } else if (key == "normalize") {
    BAGCPD_ASSIGN_OR_RETURN(options_.signature.normalize,
                            ParseBool(key, value));
  } else if (key == "replicates") {
    BAGCPD_ASSIGN_OR_RETURN(options_.bootstrap.replicates,
                            ParseInt(key, value));
  } else if (key == "alpha") {
    BAGCPD_ASSIGN_OR_RETURN(options_.bootstrap.alpha, ParseDouble(key, value));
  } else if (key == "bootstrap") {
    BAGCPD_ASSIGN_OR_RETURN(options_.bootstrap.method,
                            ParseBootstrapMethod(value));
  } else if (key == "distance_floor") {
    BAGCPD_ASSIGN_OR_RETURN(options_.info.distance_floor,
                            ParseDouble(key, value));
  } else if (key == "emd") {
    // The value is a full solver spec ("exact", "sinkhorn:0.05:200:1e-8",
    // "sliced:32"); ParseEmdSolverSpec validates kind and knobs together.
    // Parsing replaces the whole EmdSolverOptions EXCEPT heap_at and the
    // exact-fallback flag, which have their own keys — "emd=...,emd-heap-at=N"
    // and the reverse order both land on the same options (fault_scope is
    // stamped by the owning detector, never spec-carried).
    const std::size_t heap_at = options_.emd.heap_at;
    const bool fallback_exact = options_.emd.fallback_exact;
    const std::uint64_t fault_scope = options_.emd.fault_scope;
    BAGCPD_ASSIGN_OR_RETURN(options_.emd, ParseEmdSolverSpec(value));
    options_.emd.heap_at = heap_at;
    options_.emd.fallback_exact = fallback_exact;
    options_.emd.fault_scope = fault_scope;
  } else if (key == "emd-fallback") {
    // Graceful degradation: "exact" re-solves a failed approximate pair with
    // the exact solver; "none" (the default) surfaces the failure.
    if (value == "exact") {
      options_.emd.fallback_exact = true;
    } else if (value == "none") {
      options_.emd.fallback_exact = false;
    } else {
      return BadValue(key, value, "exact/none");
    }
  } else if (key == "emd-heap-at") {
    // K+L crossover for the exact solver's heap Dijkstra; 0 = always the
    // dense scan. A performance knob only — results are bitwise-identical
    // either way. ParseUnsigned rejects negative values.
    BAGCPD_ASSIGN_OR_RETURN(std::uint64_t v, ParseUnsigned(key, value));
    options_.emd.heap_at = static_cast<std::size_t>(v);
  } else if (key == "seed") {
    BAGCPD_ASSIGN_OR_RETURN(options_.seed, ParseUnsigned(key, value));
  } else {
    return Status::Invalid(
        "unknown key '" + key +
        "' (known: quantizer, k, bin_width, histogram_origin, normalize, "
        "tau, tau_prime, score, weights, ground, bootstrap, replicates, "
        "alpha, distance_floor, emd, emd-heap-at, emd-fallback, seed)");
  }
  return Status::OK();
}

Result<DetectorSpec> DetectorSpec::FromKeyValues(const std::string& text) {
  DetectorSpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = Trim(text.substr(pos, comma - pos));
    pos = comma + 1;
    if (token.empty()) continue;  // Tolerates trailing/duplicate commas.
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::Invalid("malformed token '" + token +
                             "' (expected key=value)");
    }
    const std::string key = Trim(token.substr(0, eq));
    const std::string value = Trim(token.substr(eq + 1));
    BAGCPD_RETURN_NOT_OK(spec.Set(key, value));
  }
  return spec;
}

DetectorSpec DetectorSpec::FromOptions(const DetectorOptions& options) {
  DetectorSpec spec;
  spec.options_ = options;
  return spec;
}

Result<DetectorOptions> DetectorSpec::Build() const {
  BAGCPD_RETURN_NOT_OK(error_);
  BAGCPD_RETURN_NOT_OK(ValidateDetectorOptions(options_));
  return options_;
}

Result<std::unique_ptr<BagStreamDetector>> DetectorSpec::Create() const {
  BAGCPD_ASSIGN_OR_RETURN(DetectorOptions options, Build());
  return BagStreamDetector::Create(options);
}

std::string DetectorSpec::ToKeyValues() const {
  std::string out;
  out += "quantizer=";
  out += SignatureMethodName(options_.signature.method);
  out += ",k=" + std::to_string(options_.signature.k);
  out += ",bin_width=" + FormatDouble(options_.signature.bin_width);
  out += ",histogram_origin=" + FormatDouble(options_.signature.histogram_origin);
  out += std::string(",normalize=") +
         (options_.signature.normalize ? "true" : "false");
  out += ",tau=" + std::to_string(options_.tau);
  out += ",tau_prime=" + std::to_string(options_.tau_prime);
  out += ",score=";
  out += ScoreTypeName(options_.score_type);
  out += ",weights=";
  out += WeightSchemeName(options_.weight_scheme);
  out += ",ground=";
  out += GroundDistanceName(options_.ground);
  out += ",bootstrap=";
  out += BootstrapMethodName(options_.bootstrap.method);
  out += ",replicates=" + std::to_string(options_.bootstrap.replicates);
  out += ",alpha=" + FormatDouble(options_.bootstrap.alpha);
  out += ",distance_floor=" + FormatDouble(options_.info.distance_floor);
  out += ",emd=" + EmdSolverSpecString(options_.emd);
  out += ",emd-heap-at=" + std::to_string(options_.emd.heap_at);
  // Emitted only when set: legacy canonical strings (and every checkpoint
  // blob's embedded options spec) stay byte-identical for configs that never
  // enable the fallback.
  if (options_.emd.fallback_exact) out += ",emd-fallback=exact";
  out += ",seed=" + std::to_string(options_.seed);
  return out;
}

// ---------------------------------------------------------------------------
// EngineSpec
// ---------------------------------------------------------------------------

Result<EngineSpec> EngineSpec::FromKeyValues(const std::string& text) {
  EngineSpec spec;
  // Engine-level keys are peeled off here; every other token is forwarded to
  // the default detector's parser in one pass so its error messages (and its
  // last-occurrence-wins semantics) apply unchanged — the same split
  // BatchSpec::FromKeyValues performs for its batch-level keys.
  std::string detector_text;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = Trim(text.substr(pos, comma - pos));
    pos = comma + 1;
    if (token.empty()) continue;  // Tolerates trailing/duplicate commas.
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::Invalid("malformed token '" + token +
                             "' (expected key=value)");
    }
    const std::string key = Trim(token.substr(0, eq));
    const std::string value = Trim(token.substr(eq + 1));
    if (key == "shards") {
      BAGCPD_ASSIGN_OR_RETURN(std::uint64_t v, ParseUnsigned(key, value));
      spec.options_.num_shards = static_cast<std::size_t>(v);
    } else if (key == "queue") {
      BAGCPD_ASSIGN_OR_RETURN(std::uint64_t v, ParseUnsigned(key, value));
      spec.options_.shard_queue_capacity = static_cast<std::size_t>(v);
    } else if (key == "collect") {
      BAGCPD_ASSIGN_OR_RETURN(spec.options_.collect_results,
                              ParseBool(key, value));
    } else if (key == "max_idle") {
      BAGCPD_ASSIGN_OR_RETURN(spec.options_.max_idle_submissions,
                              ParseUnsigned(key, value));
    } else if (key == "seed") {
      // The ENGINE seed: per-stream seeds derive from it, the stream key,
      // and the profile name. Detector seeds stay 0 (Build() enforces it).
      BAGCPD_ASSIGN_OR_RETURN(spec.options_.seed, ParseUnsigned(key, value));
    } else if (key == "spill_dir") {
      // A path (commas cannot appear in it — the text form's separator).
      spec.options_.spill_directory = value;
    } else if (key == "spill_budget") {
      BAGCPD_ASSIGN_OR_RETURN(std::uint64_t v, ParseUnsigned(key, value));
      spec.options_.spill_resident_bytes = static_cast<std::size_t>(v);
    } else if (key == "spill_gc") {
      BAGCPD_ASSIGN_OR_RETURN(spec.options_.spill_gc_submissions,
                              ParseUnsigned(key, value));
    } else if (key == "fault_budget") {
      BAGCPD_ASSIGN_OR_RETURN(std::uint64_t v, ParseUnsigned(key, value));
      spec.options_.max_stream_faults = static_cast<std::size_t>(v);
    } else if (key == "fault_backoff") {
      BAGCPD_ASSIGN_OR_RETURN(spec.options_.fault_backoff_submissions,
                              ParseUnsigned(key, value));
    } else if (key == "snapshot_every") {
      BAGCPD_ASSIGN_OR_RETURN(spec.options_.snapshot_interval,
                              ParseUnsigned(key, value));
    } else if (key == "fault") {
      // A fault-injection spec ("point:mode:arg[:seed]"); colons are fine,
      // commas cannot appear in it (the text form's separator). Validated by
      // Build() with the rest of the options.
      spec.options_.fault = value;
    } else {
      if (!detector_text.empty()) detector_text += ',';
      detector_text += key + "=" + value;
    }
  }
  BAGCPD_ASSIGN_OR_RETURN(spec.detector_,
                          DetectorSpec::FromKeyValues(detector_text));
  return spec;
}

std::string EngineSpec::ToKeyValues() const {
  std::string out = "shards=" + std::to_string(options_.num_shards) +
                    ",queue=" + std::to_string(options_.shard_queue_capacity) +
                    std::string(",collect=") +
                    (options_.collect_results ? "true" : "false") +
                    ",max_idle=" + std::to_string(options_.max_idle_submissions) +
                    ",seed=" + std::to_string(options_.seed);
  // Spill keys appear only when spilling is configured, so legacy configs
  // echo byte-identically (and an empty value never has to be parsed).
  if (!options_.spill_directory.empty()) {
    out += ",spill_dir=" + options_.spill_directory;
    if (options_.spill_resident_bytes > 0) {
      out += ",spill_budget=" + std::to_string(options_.spill_resident_bytes);
    }
    if (options_.spill_gc_submissions > 0) {
      out += ",spill_gc=" + std::to_string(options_.spill_gc_submissions);
    }
  }
  // Fault-containment keys appear only when configured, for the same
  // byte-identical-legacy-echo reason as the spill keys.
  if (options_.max_stream_faults > 0) {
    out += ",fault_budget=" + std::to_string(options_.max_stream_faults);
    if (options_.fault_backoff_submissions > 0) {
      out +=
          ",fault_backoff=" + std::to_string(options_.fault_backoff_submissions);
    }
    if (options_.snapshot_interval > 0) {
      out += ",snapshot_every=" + std::to_string(options_.snapshot_interval);
    }
  }
  if (!options_.fault.empty()) out += ",fault=" + options_.fault;
  out += ",";
  // The detector's canonical form ends with its own ",seed=0" (enforced 0
  // under an engine); strip it so the one `seed` key in the output is
  // unambiguously the engine seed.
  std::string detector = detector_.ToKeyValues();
  const std::string suffix = ",seed=0";
  if (detector.size() >= suffix.size() &&
      detector.compare(detector.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
    detector.erase(detector.size() - suffix.size());
  }
  return out + detector;
}

EngineSpec& EngineSpec::NumShards(std::size_t num_shards) {
  options_.num_shards = num_shards;
  return *this;
}

EngineSpec& EngineSpec::QueueCapacity(std::size_t capacity) {
  options_.shard_queue_capacity = capacity;
  return *this;
}

EngineSpec& EngineSpec::Seed(std::uint64_t seed) {
  options_.seed = seed;
  return *this;
}

EngineSpec& EngineSpec::CollectResults(bool collect) {
  options_.collect_results = collect;
  return *this;
}

EngineSpec& EngineSpec::MaxIdleSubmissions(std::uint64_t max_idle) {
  options_.max_idle_submissions = max_idle;
  return *this;
}

EngineSpec& EngineSpec::Arena(const BufferArenaOptions& arena) {
  options_.arena = arena;
  return *this;
}

EngineSpec& EngineSpec::SpillDirectory(const std::string& directory) {
  options_.spill_directory = directory;
  return *this;
}

EngineSpec& EngineSpec::SpillBudget(std::size_t bytes) {
  options_.spill_resident_bytes = bytes;
  return *this;
}

EngineSpec& EngineSpec::FaultBudget(std::size_t budget) {
  options_.max_stream_faults = budget;
  return *this;
}

EngineSpec& EngineSpec::FaultBackoff(std::uint64_t submissions) {
  options_.fault_backoff_submissions = submissions;
  return *this;
}

EngineSpec& EngineSpec::SnapshotEvery(std::uint64_t pushes) {
  options_.snapshot_interval = pushes;
  return *this;
}

EngineSpec& EngineSpec::MaxRestoreFailures(std::size_t attempts) {
  options_.max_restore_failures = attempts;
  return *this;
}

EngineSpec& EngineSpec::SpillGc(std::uint64_t submissions) {
  options_.spill_gc_submissions = submissions;
  return *this;
}

EngineSpec& EngineSpec::Fault(const std::string& spec) {
  options_.fault = spec;
  return *this;
}

EngineSpec& EngineSpec::Detector(const DetectorSpec& spec) {
  detector_ = spec;
  return *this;
}

EngineSpec& EngineSpec::Profile(const std::string& name,
                                const DetectorSpec& spec) {
  profiles_.emplace_back(name, spec);
  return *this;
}

Result<StreamEngineOptions> EngineSpec::Build() const {
  StreamEngineOptions options = options_;
  BAGCPD_ASSIGN_OR_RETURN(options.detector, detector_.Build());
  BAGCPD_RETURN_NOT_OK(ValidateStreamEngineOptions(options));
  return options;
}

Result<std::unique_ptr<StreamEngine>> EngineSpec::Create() const {
  BAGCPD_ASSIGN_OR_RETURN(StreamEngineOptions options, Build());
  BAGCPD_ASSIGN_OR_RETURN(std::unique_ptr<StreamEngine> engine,
                          StreamEngine::Create(options));
  for (const auto& [name, spec] : profiles_) {
    BAGCPD_ASSIGN_OR_RETURN(DetectorOptions profile, spec.Build());
    BAGCPD_RETURN_NOT_OK(engine->RegisterProfile(name, profile));
  }
  return engine;
}

// ---------------------------------------------------------------------------
// BatchSpec
// ---------------------------------------------------------------------------

Result<BatchSpec> BatchSpec::FromKeyValues(const std::string& text) {
  BatchSpec spec;
  // Batch-level keys are peeled off here; every other token is forwarded to
  // the default detector's parser in one pass so its error messages (and its
  // last-occurrence-wins semantics) apply unchanged.
  std::string detector_text;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = Trim(text.substr(pos, comma - pos));
    pos = comma + 1;
    if (token.empty()) continue;  // Tolerates trailing/duplicate commas.
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::Invalid("malformed token '" + token +
                             "' (expected key=value)");
    }
    const std::string key = Trim(token.substr(0, eq));
    const std::string value = Trim(token.substr(eq + 1));
    if (key == "shards") {
      BAGCPD_ASSIGN_OR_RETURN(std::uint64_t v, ParseUnsigned(key, value));
      spec.options_.num_shards = static_cast<std::size_t>(v);
    } else if (key == "seed") {
      // The run seed, matching the engine convention: detector seeds stay 0
      // and per-group seeds derive from this.
      BAGCPD_ASSIGN_OR_RETURN(spec.options_.seed, ParseUnsigned(key, value));
    } else {
      if (!detector_text.empty()) detector_text += ',';
      detector_text += key + "=" + value;
    }
  }
  BAGCPD_ASSIGN_OR_RETURN(spec.detector_,
                          DetectorSpec::FromKeyValues(detector_text));
  return spec;
}

BatchSpec& BatchSpec::NumShards(std::size_t num_shards) {
  options_.num_shards = num_shards;
  return *this;
}

BatchSpec& BatchSpec::Seed(std::uint64_t seed) {
  options_.seed = seed;
  return *this;
}

BatchSpec& BatchSpec::Pool(ThreadPool* pool) {
  options_.pool = pool;
  return *this;
}

BatchSpec& BatchSpec::Arena(const BufferArenaOptions& arena) {
  options_.arena = arena;
  return *this;
}

BatchSpec& BatchSpec::Detector(const DetectorSpec& spec) {
  detector_ = spec;
  return *this;
}

BatchSpec& BatchSpec::Profile(const std::string& name,
                              const DetectorSpec& spec) {
  profiles_.emplace_back(name, spec);
  return *this;
}

BatchSpec& BatchSpec::ProfileForKey(const std::string& key,
                                    const std::string& name) {
  options_.profile_by_key[key] = name;
  return *this;
}

Result<BatchRunnerOptions> BatchSpec::Build() const {
  BatchRunnerOptions options = options_;
  BAGCPD_ASSIGN_OR_RETURN(options.detector, detector_.Build());
  options.profiles.clear();
  for (const auto& [name, spec] : profiles_) {
    if (options.profiles.count(name) > 0) {
      return Status::Invalid("profile '" + name + "' is already registered");
    }
    BAGCPD_ASSIGN_OR_RETURN(DetectorOptions profile, spec.Build());
    options.profiles.emplace(name, profile);
  }
  BAGCPD_RETURN_NOT_OK(ValidateBatchRunnerOptions(options));
  return options;
}

std::string BatchSpec::ToKeyValues() const {
  std::string out = "shards=" + std::to_string(options_.num_shards) +
                    ",seed=" + std::to_string(options_.seed) + ",";
  // The detector's canonical form ends with its own ",seed=0" (enforced 0
  // under a batch run); strip it so the one `seed` key in the output is
  // unambiguously the run seed.
  std::string detector = detector_.ToKeyValues();
  const std::string suffix = ",seed=0";
  if (detector.size() >= suffix.size() &&
      detector.compare(detector.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
    detector.erase(detector.size() - suffix.size());
  }
  return out + detector;
}

}  // namespace api
}  // namespace bagcpd
