#include "bagcpd/api/registry.h"

namespace bagcpd {
namespace api {

namespace {

template <typename E>
ComponentInfo InfoFor() {
  ComponentInfo info;
  info.kind = Component<E>::kKind;
  for (E value : Component<E>::Values()) {
    info.names.push_back(Component<E>::Name(value));
  }
  return info;
}

template <typename E>
Result<std::string> RoundTrip(const std::string& name) {
  BAGCPD_ASSIGN_OR_RETURN(E value, Component<E>::Parse(name));
  return std::string(Component<E>::Name(value));
}

}  // namespace

std::vector<ComponentInfo> KnownComponents() {
  return {InfoFor<SignatureMethod>(), InfoFor<ScoreType>(),
          InfoFor<GroundDistance>(), InfoFor<WeightScheme>(),
          InfoFor<BootstrapMethod>(), InfoFor<EmdSolverKind>()};
}

Result<std::string> CanonicalName(const std::string& kind,
                                  const std::string& name) {
  if (kind == Component<SignatureMethod>::kKind) {
    return RoundTrip<SignatureMethod>(name);
  }
  if (kind == Component<ScoreType>::kKind) return RoundTrip<ScoreType>(name);
  if (kind == Component<GroundDistance>::kKind) {
    return RoundTrip<GroundDistance>(name);
  }
  if (kind == Component<WeightScheme>::kKind) {
    return RoundTrip<WeightScheme>(name);
  }
  if (kind == Component<BootstrapMethod>::kKind) {
    return RoundTrip<BootstrapMethod>(name);
  }
  if (kind == Component<EmdSolverKind>::kKind) {
    return RoundTrip<EmdSolverKind>(name);
  }
  // Derive the kind list from the same table a new registration extends, so
  // the message can never go stale.
  std::string known;
  for (const ComponentInfo& info : KnownComponents()) {
    if (!known.empty()) known += ", ";
    known += info.kind;
  }
  return Status::Invalid("unknown component kind '" + kind + "' (known: " +
                         known + ")");
}

}  // namespace api
}  // namespace bagcpd
