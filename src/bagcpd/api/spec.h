// Fluent, validated specs for the two public entry points. A DetectorSpec /
// EngineSpec is a plain value describing a configuration: setters accept
// either enum values or registry names (api/registry.h), errors are deferred
// to Build()/Create() so call chains stay clean, and every spec can be
// produced from a config string (FromKeyValues) and echoed back canonically
// (ToKeyValues) — the text form benches, tools, and services pass around.
//
//   auto detector = DetectorSpec()
//                       .Tau(5).TauPrime(5)
//                       .Quantizer("kmeans").K(8)
//                       .Score("kl").Replicates(300).Seed(42)
//                       .Create();                 // Result<unique_ptr<...>>
//
//   auto engine = EngineSpec()
//                     .NumShards(8).Seed(42)
//                     .Detector(DetectorSpec().Tau(5).TauPrime(5))
//                     .Profile("network", DetectorSpec().Score("lr"))
//                     .Create();                   // profiles pre-registered

#ifndef BAGCPD_API_SPEC_H_
#define BAGCPD_API_SPEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bagcpd/batch/batch_runner.h"
#include "bagcpd/common/result.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/runtime/stream_engine.h"

namespace bagcpd {
namespace api {

/// \brief Builder for DetectorOptions.
///
/// Defaults equal a default-constructed DetectorOptions. String overloads
/// parse through the component registry; a bad name (or key=value token) is
/// remembered and surfaced by Build()/Create() — the first error wins.
class DetectorSpec {
 public:
  DetectorSpec() = default;

  /// \brief Parses a comma-separated "key=value" config string, e.g.
  ///   "quantizer=kmeans,tau=5,score=skl,replicates=300,seed=42".
  /// Keys are the ToKeyValues() names; values go through the registry for
  /// enum-valued keys. Unknown keys, malformed tokens, and unparsable values
  /// fail immediately with a message naming the offending token. Later
  /// occurrences of a key overwrite earlier ones.
  static Result<DetectorSpec> FromKeyValues(const std::string& text);

  /// \brief Wraps already-built options so they can be echoed canonically:
  /// FromOptions(o).ToKeyValues() is the options wire form the checkpoint
  /// subsystem embeds in every detector snapshot. No validation happens here
  /// (Build() still validates as usual).
  static DetectorSpec FromOptions(const DetectorOptions& options);

  // -- Window / scoring ------------------------------------------------
  DetectorSpec& Tau(std::size_t tau);
  DetectorSpec& TauPrime(std::size_t tau_prime);
  DetectorSpec& Score(ScoreType type);
  DetectorSpec& Score(const std::string& name);
  DetectorSpec& Weights(WeightScheme scheme);
  DetectorSpec& Weights(const std::string& name);
  DetectorSpec& Ground(GroundDistance kind);
  DetectorSpec& Ground(const std::string& name);
  DetectorSpec& DistanceFloor(double floor);

  // -- EMD solver ------------------------------------------------------
  DetectorSpec& Emd(EmdSolverKind kind);
  DetectorSpec& Emd(const EmdSolverOptions& options);
  /// \brief Full spec-string form: "exact", "sinkhorn:0.05", "sliced:32",
  /// ... (ParseEmdSolverSpec grammar, the `emd=` key's value). Preserves a
  /// previously chosen EmdHeapAt() crossover, like the `emd=` key does.
  DetectorSpec& Emd(const std::string& spec);
  /// \brief K+L crossover for the exact solver's 4-ary-heap Dijkstra
  /// (`emd-heap-at=` key); 0 = always the dense scan. A performance knob
  /// only — results are bitwise-identical at any value.
  DetectorSpec& EmdHeapAt(std::size_t k_plus_l);
  /// \brief Graceful degradation: when true, an approximate EMD solve that
  /// fails (Sinkhorn underflow / non-finite transport) silently re-solves
  /// the pair with the exact solver instead of failing the push (`emd-fallback`
  /// key: "exact" / "none"). Deterministic — whether a pair falls back is a
  /// pure function of that pair's inputs, so results are identical across
  /// thread pools and shard counts. Preserved by Emd(spec-string), like the
  /// heap crossover.
  DetectorSpec& EmdFallbackExact(bool fallback);

  // -- Quantizer -------------------------------------------------------
  DetectorSpec& Quantizer(SignatureMethod method);
  DetectorSpec& Quantizer(const std::string& name);
  DetectorSpec& K(std::size_t k);
  DetectorSpec& BinWidth(double width);
  DetectorSpec& HistogramOrigin(double origin);
  DetectorSpec& Normalize(bool normalize);

  // -- Bootstrap -------------------------------------------------------
  DetectorSpec& Replicates(int replicates);
  DetectorSpec& Alpha(double alpha);
  DetectorSpec& Bootstrap(BootstrapMethod method);
  DetectorSpec& Bootstrap(const std::string& name);

  DetectorSpec& Seed(std::uint64_t seed);

  /// \brief The validated options: surfaces any deferred setter error, then
  /// runs ValidateDetectorOptions — so Build() fails exactly when
  /// BagStreamDetector::Create would.
  Result<DetectorOptions> Build() const;

  /// \brief Build() + BagStreamDetector::Create in one step.
  Result<std::unique_ptr<BagStreamDetector>> Create() const;

  /// \brief Canonical "key=value,..." form covering every field;
  /// FromKeyValues(spec.ToKeyValues()) reproduces the spec exactly.
  std::string ToKeyValues() const;

 private:
  // Applies one key=value pair (the FromKeyValues worker).
  Status Set(const std::string& key, const std::string& value);

  DetectorOptions options_;
  Status error_;  // First deferred fluent-setter error; OK when clean.
};

/// \brief Builder for StreamEngineOptions plus the engine's named detector
/// profiles (which live on the engine, not in the options struct):
/// Create() constructs the engine and registers every Profile() before any
/// traffic can race it.
///
/// Seeding rule (applies to Detector() and every Profile()): the detector
/// spec's seed must stay 0. Per-stream seeds always derive from the engine
/// Seed(), the stream key, and the profile name; a nonzero detector seed is
/// rejected at Build()/Create() so it can never be silently ignored.
class EngineSpec {
 public:
  EngineSpec() = default;

  /// \brief Parses a comma-separated config string covering the engine
  /// topology plus the default detector. `shards`, `queue`, `collect`,
  /// `max_idle`, `spill_dir`, `spill_budget`, `spill_gc`, `fault_budget`,
  /// `fault_backoff`, `snapshot_every`, `fault`, and `seed` are engine-level
  /// keys (seed is the ENGINE seed —
  /// detector seeds stay 0 under an engine, as Build() enforces); every
  /// other key=value token configures the default detector exactly as
  /// DetectorSpec::FromKeyValues would, e.g.
  ///   "shards=8,seed=42,quantizer=kmeans,tau=5,emd=sinkhorn:0.1".
  /// Profiles and the arena are API-only, like BatchSpec's pool.
  static Result<EngineSpec> FromKeyValues(const std::string& text);

  DetectorSpec& detector() { return detector_; }

  EngineSpec& NumShards(std::size_t num_shards);
  EngineSpec& QueueCapacity(std::size_t capacity);
  EngineSpec& Seed(std::uint64_t seed);
  EngineSpec& CollectResults(bool collect);
  EngineSpec& MaxIdleSubmissions(std::uint64_t max_idle);
  EngineSpec& Arena(const BufferArenaOptions& arena);
  /// \brief Spill-to-disk checkpoint eviction (StreamEngineOptions
  /// .spill_directory); text-form key `spill_dir`. The path may not contain
  /// a comma (the text form's separator).
  EngineSpec& SpillDirectory(const std::string& directory);
  /// \brief Resident-state byte budget for the spill LRU (StreamEngineOptions
  /// .spill_resident_bytes); text-form key `spill_budget`; needs
  /// SpillDirectory.
  EngineSpec& SpillBudget(std::size_t bytes);
  /// \brief Per-stream fault budget (StreamEngineOptions.max_stream_faults);
  /// key `fault_budget`. 0 = historical quarantine-on-first-failure.
  EngineSpec& FaultBudget(std::size_t budget);
  /// \brief Backoff window per contained fault, in engine-wide submissions
  /// (.fault_backoff_submissions); key `fault_backoff`; needs FaultBudget.
  EngineSpec& FaultBackoff(std::uint64_t submissions);
  /// \brief Rolling recovery-snapshot interval in pushes
  /// (.snapshot_interval); key `snapshot_every`; needs FaultBudget.
  EngineSpec& SnapshotEvery(std::uint64_t pushes);
  /// \brief Failed restores tolerated before a snapshot is discarded
  /// (.max_restore_failures). API-only, like Arena().
  EngineSpec& MaxRestoreFailures(std::size_t attempts);
  /// \brief Spill-file GC horizon in engine-wide submissions
  /// (.spill_gc_submissions); key `spill_gc`; needs SpillDirectory.
  EngineSpec& SpillGc(std::uint64_t submissions);
  /// \brief Fault-injection spec armed at Create() (StreamEngineOptions
  /// .fault, syntax in fault/fault_injector.h); key `fault`.
  EngineSpec& Fault(const std::string& spec);
  /// \brief The default profile every unqualified Submit routes to.
  EngineSpec& Detector(const DetectorSpec& spec);
  /// \brief Adds a named profile; Submit(key, bag, name) routes to it.
  EngineSpec& Profile(const std::string& name, const DetectorSpec& spec);

  /// \brief The validated engine options (profiles are not part of the
  /// options struct; use Create() to get them registered). Fails exactly
  /// when StreamEngine::Create would, including on a nonzero detector seed.
  Result<StreamEngineOptions> Build() const;

  /// \brief Build() + StreamEngine::Create + RegisterProfile for every
  /// Profile() in registration order.
  Result<std::unique_ptr<StreamEngine>> Create() const;

  /// \brief Canonical "shards=...,queue=...,collect=...,max_idle=...,
  /// seed=...,<detector keys>" form. FromKeyValues(spec.ToKeyValues())
  /// reproduces the engine-level and default-detector configuration.
  std::string ToKeyValues() const;

 private:
  StreamEngineOptions options_;
  DetectorSpec detector_;
  std::vector<std::pair<std::string, DetectorSpec>> profiles_;
};

/// \brief Builder for BatchRunnerOptions — the offline, table-driven
/// counterpart of EngineSpec, sharing its seeding rule: detector and profile
/// seeds must stay 0, per-group seeds derive from Seed(), the group key, and
/// the profile name.
///
///   auto options = BatchSpec()
///                      .NumShards(8).Seed(42)
///                      .Detector(DetectorSpec().Tau(4).TauPrime(4))
///                      .Profile("network", DetectorSpec().Score("lr"))
///                      .ProfileForKey("fw-01", "network")
///                      .Build();               // Result<BatchRunnerOptions>
class BatchSpec {
 public:
  BatchSpec() = default;

  /// \brief Parses a comma-separated config string. `shards` and `seed` are
  /// batch-level keys; every other key=value token configures the default
  /// detector exactly as DetectorSpec::FromKeyValues would, e.g.
  ///   "shards=8,seed=42,quantizer=kmeans,tau=4,replicates=0".
  static Result<BatchSpec> FromKeyValues(const std::string& text);

  DetectorSpec& detector() { return detector_; }

  BatchSpec& NumShards(std::size_t num_shards);
  BatchSpec& Seed(std::uint64_t seed);
  /// \brief Compute pool the run executes on (non-owning; must outlive the
  /// RunBatchColumnar call). Not representable in the text form.
  BatchSpec& Pool(ThreadPool* pool);
  BatchSpec& Arena(const BufferArenaOptions& arena);
  /// \brief The default profile groups resolve to when unrouted.
  BatchSpec& Detector(const DetectorSpec& spec);
  /// \brief Adds a named profile for the table's profile column /
  /// ProfileForKey routes.
  BatchSpec& Profile(const std::string& name, const DetectorSpec& spec);
  /// \brief Routes `key` to profile `name` (BatchRunnerOptions
  /// .profile_by_key).
  BatchSpec& ProfileForKey(const std::string& key, const std::string& name);

  /// \brief The validated options; fails exactly when RunBatchColumnar
  /// would reject them.
  Result<BatchRunnerOptions> Build() const;

  /// \brief Canonical "shards=...,seed=...,<detector keys>" form.
  /// FromKeyValues(spec.ToKeyValues()) reproduces the batch-level and
  /// default-detector configuration (profiles and the pool are API-only).
  std::string ToKeyValues() const;

 private:
  BatchRunnerOptions options_;
  DetectorSpec detector_;
  std::vector<std::pair<std::string, DetectorSpec>> profiles_;
};

}  // namespace api
}  // namespace bagcpd

#endif  // BAGCPD_API_SPEC_H_
