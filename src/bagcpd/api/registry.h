// Named-component registry: the string-addressable view of every
// interchangeable piece of the detector (quantizer, score, ground distance,
// weight scheme, bootstrap method). Each component kind maps a stable
// lowercase name to its enum value and back — the name tables live with the
// enums themselves (SignatureMethodName/ParseSignatureMethod, ...); this
// header is the uniform bridge the spec builders, tools, and config-driven
// services drive. Names are stable API: benches and CI artifacts key on
// them.

#ifndef BAGCPD_API_REGISTRY_H_
#define BAGCPD_API_REGISTRY_H_

#include <string>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/core/bootstrap.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/core/scores.h"
#include "bagcpd/emd/ground_distance.h"
#include "bagcpd/signature/builder.h"

namespace bagcpd {
namespace api {

/// \brief Compile-time traits tying one component enum to its kind string,
/// value list, and name round-trip. Specialized for every registered enum;
/// generic code (the spec builders, the registry tests) is written once
/// against this interface.
template <typename E>
struct Component;

template <>
struct Component<SignatureMethod> {
  static constexpr const char* kKind = "quantizer";
  static const std::vector<SignatureMethod>& Values() {
    return AllSignatureMethods();
  }
  static const char* Name(SignatureMethod v) { return SignatureMethodName(v); }
  static Result<SignatureMethod> Parse(const std::string& name) {
    return ParseSignatureMethod(name);
  }
};

template <>
struct Component<ScoreType> {
  static constexpr const char* kKind = "score";
  static const std::vector<ScoreType>& Values() { return AllScoreTypes(); }
  static const char* Name(ScoreType v) { return ScoreTypeName(v); }
  static Result<ScoreType> Parse(const std::string& name) {
    return ParseScoreType(name);
  }
};

template <>
struct Component<GroundDistance> {
  static constexpr const char* kKind = "ground";
  static const std::vector<GroundDistance>& Values() {
    return AllGroundDistances();
  }
  static const char* Name(GroundDistance v) { return GroundDistanceName(v); }
  static Result<GroundDistance> Parse(const std::string& name) {
    return ParseGroundDistance(name);
  }
};

template <>
struct Component<WeightScheme> {
  static constexpr const char* kKind = "weights";
  static const std::vector<WeightScheme>& Values() {
    return AllWeightSchemes();
  }
  static const char* Name(WeightScheme v) { return WeightSchemeName(v); }
  static Result<WeightScheme> Parse(const std::string& name) {
    return ParseWeightScheme(name);
  }
};

template <>
struct Component<BootstrapMethod> {
  static constexpr const char* kKind = "bootstrap";
  static const std::vector<BootstrapMethod>& Values() {
    return AllBootstrapMethods();
  }
  static const char* Name(BootstrapMethod v) { return BootstrapMethodName(v); }
  static Result<BootstrapMethod> Parse(const std::string& name) {
    return ParseBootstrapMethod(name);
  }
};

template <>
struct Component<EmdSolverKind> {
  static constexpr const char* kKind = "emd";
  static const std::vector<EmdSolverKind>& Values() {
    return AllEmdSolverKinds();
  }
  static const char* Name(EmdSolverKind v) { return EmdSolverKindName(v); }
  static Result<EmdSolverKind> Parse(const std::string& name) {
    return ParseEmdSolverKind(name);
  }
};

/// \brief One component kind with the canonical names it accepts.
struct ComponentInfo {
  std::string kind;
  std::vector<std::string> names;
};

/// \brief Every registered component kind ("quantizer", "score", "ground",
/// "weights", "bootstrap", "emd") with its canonical names, for --help
/// output and config validation in tools.
std::vector<ComponentInfo> KnownComponents();

/// \brief Parses `name` as a component of `kind` and echoes its canonical
/// name back — the generic round-trip entry point for tools that only have
/// strings. Fails on an unknown kind or name.
Result<std::string> CanonicalName(const std::string& kind,
                                  const std::string& name);

}  // namespace api
}  // namespace bagcpd

#endif  // BAGCPD_API_REGISTRY_H_
