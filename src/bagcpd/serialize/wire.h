// Wire layer of the checkpoint subsystem: a little-endian, checksummed,
// sectioned binary container. Every bagcpd checkpoint artifact — a detector
// snapshot, an engine stream record, a whole-engine checkpoint file — is one
// *blob* in this format:
//
//   [magic "BAGCPDCK" (8)] [format version u32] [blob kind u32]
//   [section]*
//   [CRC-32 u32 over every preceding byte]
//
// where a section is [tag u32][payload length u64][payload bytes]. Readers
// skip sections with unknown tags, so later format versions can add sections
// without breaking version-1 readers; the version field is bumped only for
// incompatible layout changes. All integers and IEEE-754 doubles are
// little-endian regardless of host byte order.
//
// WireWriter appends to a caller-owned std::string; WireReader walks a
// non-owning view with bounds-checked, Status-returning accessors — a
// truncated or corrupt blob is always a recoverable error, never UB.

#ifndef BAGCPD_SERIALIZE_WIRE_H_
#define BAGCPD_SERIALIZE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/common/status.h"

namespace bagcpd {
namespace serialize {

/// \brief The 8-byte magic opening every checkpoint blob.
inline constexpr char kBlobMagic[8] = {'B', 'A', 'G', 'C', 'P', 'D', 'C', 'K'};

/// \brief Current (and only) format version.
inline constexpr std::uint32_t kFormatVersion = 1;

/// \brief What a blob contains (the header's kind field).
enum class BlobKind : std::uint32_t {
  /// One BagStreamDetector's complete state.
  kDetector = 1,
  /// One engine stream: key + profile binding + nested detector blob.
  kEngineStream = 2,
  /// A whole-engine checkpoint: engine metadata + one stream record per
  /// resident (or spilled) stream.
  kEngineCheckpoint = 3,
};

/// \brief IEEE CRC-32 (reflected, polynomial 0xEDB88320) of `size` bytes,
/// continuing from `crc` (pass 0 to start).
std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t crc = 0);

/// \brief Appends wire-format primitives to a caller-owned buffer.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  /// \brief Writes the blob header (magic + version + kind). Call first.
  void BeginBlob(BlobKind kind);

  /// \brief Appends the CRC-32 footer over everything written since
  /// construction. Call last; the blob is complete afterwards.
  void EndBlob();

  /// \brief Opens a section; exactly one EndSection() must follow. Sections
  /// do not nest (nest whole blobs inside a section payload instead).
  void BeginSection(std::uint32_t tag);
  void EndSection();

  void PutU8(std::uint8_t v);
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutF64(double v);
  void PutF64Array(const double* data, std::size_t n);
  void PutBytes(const void* data, std::size_t n);
  /// \brief u64 length prefix + raw bytes.
  void PutString(std::string_view s);

 private:
  std::string* out_;
  std::size_t blob_base_ = 0;
  // Offset of the open section's length field; npos when none is open.
  std::size_t section_len_at_ = std::string::npos;
};

/// \brief Bounds-checked cursor over a wire-format byte range. Every read
/// fails with Status::IoError (never reads past the end) on truncation.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Status ReadU8(std::uint8_t* v);
  Status ReadU32(std::uint32_t* v);
  Status ReadU64(std::uint64_t* v);
  Status ReadF64(double* v);
  Status ReadF64Array(double* out, std::size_t n);
  /// \brief Hands out a non-owning view of the next `n` raw bytes.
  Status ReadBytes(std::size_t n, std::string_view* out);
  /// \brief u64 length prefix + raw bytes, as a view into the buffer.
  Status ReadString(std::string_view* out);

  /// \brief Reads one section header + payload; `*tag` and `*payload` are
  /// filled and the cursor moves past the section. Call AtEnd() first.
  Status NextSection(std::uint32_t* tag, std::string_view* payload);

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// \brief Validates a complete blob — size, magic, version, kind, CRC footer
/// — and returns a reader positioned at the first section. The returned
/// reader covers exactly the section region (header and footer excluded).
/// Errors: IoError for truncation/corruption (checksum), NotImplemented for
/// a format version newer than this build, Invalid for a kind mismatch.
Result<WireReader> OpenBlob(std::string_view blob, BlobKind expected_kind);

/// \brief Reads just the kind field of a blob (magic/version/size are still
/// validated; the CRC is not, so this is cheap on large files).
Result<BlobKind> PeekBlobKind(std::string_view blob);

}  // namespace serialize
}  // namespace bagcpd

#endif  // BAGCPD_SERIALIZE_WIRE_H_
