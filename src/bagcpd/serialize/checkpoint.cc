#include "bagcpd/serialize/checkpoint.h"

#include <cstdio>

namespace bagcpd {
namespace serialize {

void BuildStreamBlob(const std::string& key, const std::string& profile,
                     const std::string& detector_blob, std::string* out) {
  WireWriter w(out);
  w.BeginBlob(BlobKind::kEngineStream);
  w.BeginSection(kSecStreamKey);
  w.PutString(key);
  w.EndSection();
  w.BeginSection(kSecStreamProfile);
  w.PutString(profile);
  w.EndSection();
  w.BeginSection(kSecStreamDetector);
  w.PutBytes(detector_blob.data(), detector_blob.size());
  w.EndSection();
  w.EndBlob();
}

Result<StreamBlobParts> ParseStreamBlob(std::string_view blob) {
  BAGCPD_ASSIGN_OR_RETURN(WireReader reader,
                          OpenBlob(blob, BlobKind::kEngineStream));
  StreamBlobParts parts;
  bool have_key = false, have_profile = false, have_detector = false;
  while (!reader.AtEnd()) {
    std::uint32_t tag = 0;
    std::string_view payload;
    BAGCPD_RETURN_NOT_OK(reader.NextSection(&tag, &payload));
    WireReader section(payload);
    switch (tag) {
      case kSecStreamKey:
        BAGCPD_RETURN_NOT_OK(section.ReadString(&parts.key));
        have_key = true;
        break;
      case kSecStreamProfile:
        BAGCPD_RETURN_NOT_OK(section.ReadString(&parts.profile));
        have_profile = true;
        break;
      case kSecStreamDetector:
        parts.detector_blob = payload;
        have_detector = true;
        break;
      default:
        break;  // Unknown sections are skippable by design.
    }
  }
  if (!have_key || !have_profile || !have_detector) {
    return Status::IoError(
        "engine stream blob is missing a required section (key, profile, or "
        "detector snapshot)");
  }
  return parts;
}

Result<std::string> PeekDetectorSpec(std::string_view blob) {
  BAGCPD_ASSIGN_OR_RETURN(WireReader reader,
                          OpenBlob(blob, BlobKind::kDetector));
  while (!reader.AtEnd()) {
    std::uint32_t tag = 0;
    std::string_view payload;
    BAGCPD_RETURN_NOT_OK(reader.NextSection(&tag, &payload));
    if (tag == kSecSpec) {
      WireReader section(payload);
      std::string_view spec;
      BAGCPD_RETURN_NOT_OK(section.ReadString(&spec));
      return std::string(spec);
    }
  }
  return Status::IoError("detector blob has no options-spec section");
}

Result<DetectorBlobInfo> InspectDetectorBlob(std::string_view blob) {
  BAGCPD_ASSIGN_OR_RETURN(WireReader reader,
                          OpenBlob(blob, BlobKind::kDetector));
  DetectorBlobInfo info;
  info.blob_bytes = blob.size();
  while (!reader.AtEnd()) {
    std::uint32_t tag = 0;
    std::string_view payload;
    BAGCPD_RETURN_NOT_OK(reader.NextSection(&tag, &payload));
    WireReader section(payload);
    switch (tag) {
      case kSecSpec: {
        std::string_view spec;
        BAGCPD_RETURN_NOT_OK(section.ReadString(&spec));
        info.spec = std::string(spec);
        break;
      }
      case kSecRing: {
        std::uint32_t dim = 0, count = 0;
        BAGCPD_RETURN_NOT_OK(section.ReadU32(&dim));
        BAGCPD_RETURN_NOT_OK(section.ReadU32(&count));
        info.window_fill = count;
        break;
      }
      case kSecTable: {
        std::uint32_t w = 0;
        BAGCPD_RETURN_NOT_OK(section.ReadU32(&w));
        info.window_capacity = w;
        break;
      }
      case kSecCounters:
        BAGCPD_RETURN_NOT_OK(section.ReadU64(&info.next_index));
        break;
      default:
        break;
    }
  }
  return info;
}

Result<StreamBlobInfo> InspectStreamBlob(std::string_view blob) {
  BAGCPD_ASSIGN_OR_RETURN(StreamBlobParts parts, ParseStreamBlob(blob));
  StreamBlobInfo info;
  info.blob_bytes = blob.size();
  info.key = std::string(parts.key);
  info.profile = std::string(parts.profile);
  BAGCPD_ASSIGN_OR_RETURN(info.detector,
                          InspectDetectorBlob(parts.detector_blob));
  return info;
}

Result<CheckpointInfo> InspectCheckpoint(std::string_view blob) {
  BAGCPD_ASSIGN_OR_RETURN(BlobKind kind, PeekBlobKind(blob));
  CheckpointInfo info;
  info.kind = kind;
  switch (kind) {
    case BlobKind::kDetector: {
      StreamBlobInfo stream;
      BAGCPD_ASSIGN_OR_RETURN(stream.detector, InspectDetectorBlob(blob));
      stream.blob_bytes = blob.size();
      info.streams.push_back(std::move(stream));
      return info;
    }
    case BlobKind::kEngineStream: {
      BAGCPD_ASSIGN_OR_RETURN(StreamBlobInfo stream, InspectStreamBlob(blob));
      info.streams.push_back(std::move(stream));
      return info;
    }
    case BlobKind::kEngineCheckpoint:
      break;
  }
  BAGCPD_ASSIGN_OR_RETURN(WireReader reader,
                          OpenBlob(blob, BlobKind::kEngineCheckpoint));
  std::uint64_t declared_streams = 0;
  while (!reader.AtEnd()) {
    std::uint32_t tag = 0;
    std::string_view payload;
    BAGCPD_RETURN_NOT_OK(reader.NextSection(&tag, &payload));
    WireReader section(payload);
    switch (tag) {
      case kSecEngineMeta:
        BAGCPD_RETURN_NOT_OK(section.ReadU64(&info.engine_seed));
        BAGCPD_RETURN_NOT_OK(section.ReadU64(&declared_streams));
        break;
      case kSecEngineStream: {
        BAGCPD_ASSIGN_OR_RETURN(StreamBlobInfo stream,
                                InspectStreamBlob(payload));
        info.streams.push_back(std::move(stream));
        break;
      }
      default:
        break;
    }
  }
  if (declared_streams != info.streams.size()) {
    return Status::IoError(
        "engine checkpoint declares " + std::to_string(declared_streams) +
        " streams but contains " + std::to_string(info.streams.size()));
  }
  return info;
}

Status WriteFileBytes(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    std::remove(path.c_str());
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<std::size_t> ReadFileBytes(const std::string& path, BufferArena* arena,
                                  std::vector<double>* storage) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek '" + path + "'");
  }
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot size '" + path + "'");
  }
  std::rewind(f);
  const std::size_t bytes = static_cast<std::size_t>(size);
  const std::size_t doubles = bytes / sizeof(double) + 1;
  // The file lands in a pooled double buffer: the spill rehydrate path reads
  // through the shard arena (warm = zero mallocs), and the blob's f64
  // payloads stay 8-byte aligned for free.
  if (arena != nullptr) {
    if (storage->capacity() < doubles) {
      *storage = arena->Acquire(doubles);
    }
  }
  storage->resize(doubles);
  const std::size_t got = std::fread(storage->data(), 1, bytes, f);
  std::fclose(f);
  if (got != bytes) {
    return Status::IoError("short read from '" + path + "'");
  }
  return bytes;
}

}  // namespace serialize
}  // namespace bagcpd
