// Checkpoint containers built on the wire layer (serialize/wire.h): section
// tags for the three blob kinds, the engine-stream record that wraps a
// detector snapshot with its key and profile binding, non-instantiating
// inspection (tools/ckpt_inspect prints a checkpoint without ever building a
// detector), and the small file helpers the spill path and the recovery
// tooling share.
//
// Layouts (all inside the wire container of serialize/wire.h):
//
//  detector blob (BlobKind::kDetector) — written by
//  BagStreamDetector::ExportState:
//    SPEC     canonical DetectorSpec key-value string (the options wire form)
//    RING     u32 dim, u32 count, count x { u32 k, k*dim centers, k weights }
//    TABLE    u32 w, u8 primed, w*w log-EMD doubles in logical (p, q) order
//    COUNTERS u64 next_index
//    HISTORY  u32 n, n theta_up doubles (oldest first)
//    RNG      length-prefixed engine-state string (seed + mt19937_64 stream)
//
//  engine stream blob (BlobKind::kEngineStream) — one stream of an engine:
//    KEY      stream key string
//    PROFILE  canonical profile name string
//    DETECTOR nested detector blob (complete, own magic and checksum)
//
//  engine checkpoint (BlobKind::kEngineCheckpoint) — whole engine:
//    ENGINE_META u64 engine seed, u64 stream count
//    STREAM      one per stream, payload = nested engine stream blob;
//                streams appear shard-by-shard, keys sorted within a shard,
//                so the byte stream is deterministic for a given engine state

#ifndef BAGCPD_SERIALIZE_CHECKPOINT_H_
#define BAGCPD_SERIALIZE_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/result.h"
#include "bagcpd/common/status.h"
#include "bagcpd/serialize/wire.h"

namespace bagcpd {
namespace serialize {

// Section tags. Detector sections live in [1, 16), engine-stream sections in
// [16, 32), engine-checkpoint sections in [32, 48); readers skip unknown
// tags, so new sections can be added without a version bump.
inline constexpr std::uint32_t kSecSpec = 1;
inline constexpr std::uint32_t kSecRing = 2;
inline constexpr std::uint32_t kSecTable = 3;
inline constexpr std::uint32_t kSecCounters = 4;
inline constexpr std::uint32_t kSecHistory = 5;
inline constexpr std::uint32_t kSecRng = 6;
inline constexpr std::uint32_t kSecStreamKey = 16;
inline constexpr std::uint32_t kSecStreamProfile = 17;
inline constexpr std::uint32_t kSecStreamDetector = 18;
inline constexpr std::uint32_t kSecEngineMeta = 32;
inline constexpr std::uint32_t kSecEngineStream = 33;

/// \brief Wraps a detector snapshot with its stream identity into one
/// engine-stream blob (appended to `*out`).
void BuildStreamBlob(const std::string& key, const std::string& profile,
                     const std::string& detector_blob, std::string* out);

/// \brief The three sections of an engine-stream blob, as views into it.
struct StreamBlobParts {
  std::string_view key;
  std::string_view profile;
  std::string_view detector_blob;
};

/// \brief Validates (magic, version, checksum) and splits an engine-stream
/// blob. The views alias `blob`, which must outlive them.
Result<StreamBlobParts> ParseStreamBlob(std::string_view blob);

/// \brief Reads the canonical options-spec string out of a detector blob
/// without restoring anything else (validates the container first).
Result<std::string> PeekDetectorSpec(std::string_view blob);

// ---------------------------------------------------------------------------
// Inspection (tools/ckpt_inspect): summaries without detector construction.
// ---------------------------------------------------------------------------

/// \brief Summary of one detector blob.
struct DetectorBlobInfo {
  std::string spec;
  /// Signatures currently buffered / window capacity (tau + tau').
  std::size_t window_fill = 0;
  std::size_t window_capacity = 0;
  /// Bags pushed so far (the stream resumes at this index).
  std::uint64_t next_index = 0;
  std::size_t blob_bytes = 0;
};

/// \brief Summary of one engine-stream record.
struct StreamBlobInfo {
  std::string key;
  std::string profile;
  DetectorBlobInfo detector;
  std::size_t blob_bytes = 0;
};

/// \brief Summary of any checkpoint artifact (single blobs are reported as a
/// one-stream checkpoint with no engine metadata).
struct CheckpointInfo {
  std::uint32_t version = kFormatVersion;
  BlobKind kind = BlobKind::kDetector;
  /// Engine seed; only meaningful for kEngineCheckpoint.
  std::uint64_t engine_seed = 0;
  std::vector<StreamBlobInfo> streams;
};

Result<DetectorBlobInfo> InspectDetectorBlob(std::string_view blob);
Result<StreamBlobInfo> InspectStreamBlob(std::string_view blob);
/// \brief Accepts all three blob kinds (dispatches on the header).
Result<CheckpointInfo> InspectCheckpoint(std::string_view blob);

// ---------------------------------------------------------------------------
// File helpers (spill path, recovery tooling).
// ---------------------------------------------------------------------------

/// \brief Writes `data` to `path` (truncating), fsync-free: a torn write is
/// detected by the checksum on read, and a spill file is always recreatable
/// from live traffic.
Status WriteFileBytes(const std::string& path, std::string_view data);

/// \brief Reads all of `path` into `*storage`, a double buffer acquired from
/// `arena` (plain allocation when null) so the spill re-import hot path never
/// touches malloc once the arena is warm. Returns the byte count; view the
/// payload via FileBytesView. The caller releases `*storage` back to the
/// arena when done.
Result<std::size_t> ReadFileBytes(const std::string& path, BufferArena* arena,
                                  std::vector<double>* storage);

/// \brief The byte view over a ReadFileBytes result.
inline std::string_view FileBytesView(const std::vector<double>& storage,
                                      std::size_t bytes) {
  return std::string_view(reinterpret_cast<const char*>(storage.data()),
                          bytes);
}

}  // namespace serialize
}  // namespace bagcpd

#endif  // BAGCPD_SERIALIZE_CHECKPOINT_H_
