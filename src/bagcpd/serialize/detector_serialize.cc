// BagStreamDetector::ExportState / ImportState / CreateFromState — the
// detector half of the checkpoint subsystem. Lives in serialize/ (not core/)
// so the detector's own translation unit stays free of wire-format and
// api-spec concerns; these are ordinary member functions with full access to
// the private window/table/RNG state they freeze.
//
// Bitwise-restore invariants this file relies on (and the serialize/ tests
// pin):
//  * Checkpoints happen between pushes, where the pairwise EMD cache is
//    always empty (Push evicts it after folding every pair into the rolling
//    table), so the cache is deliberately NOT part of the format.
//  * The rolling log-EMD table is stored in logical (p, q) position order
//    and rebased to table_base_ = 0 on import; the slot rotation is an
//    addressing detail, never observable in scores.
//  * The signature ring stores values only — stride and slot layout are
//    rebuilt by re-pushing, and a stride shrunk by the departure of an
//    outsized signature changes no view contents.
//  * EmdSolver scratch and the signature builder are stateless across pushes
//    (per-bag seeds derive from the bag index), so neither is serialized.

#include <algorithm>
#include <string>
#include <string_view>

#include "bagcpd/api/spec.h"
#include "bagcpd/core/detector.h"
#include "bagcpd/serialize/checkpoint.h"
#include "bagcpd/serialize/wire.h"

namespace bagcpd {

using serialize::BlobKind;
using serialize::WireReader;
using serialize::WireWriter;

Status BagStreamDetector::ExportState(std::string* blob) const {
  BAGCPD_RETURN_NOT_OK(init_status_);
  blob->clear();
  const std::size_t w = options_.tau + options_.tau_prime;
  WireWriter writer(blob);
  writer.BeginBlob(BlobKind::kDetector);

  writer.BeginSection(serialize::kSecSpec);
  writer.PutString(api::DetectorSpec::FromOptions(options_).ToKeyValues());
  writer.EndSection();

  writer.BeginSection(serialize::kSecRing);
  writer.PutU32(static_cast<std::uint32_t>(window_.dim()));
  writer.PutU32(static_cast<std::uint32_t>(window_.size()));
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const SignatureView sig = window_.view(i);
    writer.PutU32(static_cast<std::uint32_t>(sig.size()));
    writer.PutF64Array(sig.centers().data(), sig.size() * sig.dim());
    writer.PutF64Array(sig.weights().data(), sig.size());
  }
  writer.EndSection();

  writer.BeginSection(serialize::kSecTable);
  writer.PutU32(static_cast<std::uint32_t>(w));
  writer.PutU8(table_primed_ ? 1 : 0);
  // Logical (p, q) order: position p lives in physical slot
  // (table_base_ + p) % w. The import rebuilds the table with base 0.
  for (std::size_t p = 0; p < w; ++p) {
    const std::size_t sp = (table_base_ + p) % w;
    for (std::size_t q = 0; q < w; ++q) {
      writer.PutF64(log_table_[sp * w + (table_base_ + q) % w]);
    }
  }
  writer.EndSection();

  writer.BeginSection(serialize::kSecCounters);
  writer.PutU64(next_index_);
  writer.EndSection();

  writer.BeginSection(serialize::kSecHistory);
  writer.PutU32(static_cast<std::uint32_t>(upper_history_.size()));
  for (double v : upper_history_) writer.PutF64(v);
  writer.EndSection();

  writer.BeginSection(serialize::kSecRng);
  writer.PutString(rng_.SerializeState());
  writer.EndSection();

  writer.EndBlob();
  return Status::OK();
}

Status BagStreamDetector::ImportState(std::string_view blob) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  BAGCPD_ASSIGN_OR_RETURN(WireReader reader,
                          serialize::OpenBlob(blob, BlobKind::kDetector));
  const std::size_t w = options_.tau + options_.tau_prime;

  // Phase 1 — locate and validate every section before touching any state,
  // so a bad blob can never leave the detector half-restored.
  std::string_view spec, ring, table, counters, history, rng_state;
  bool have_spec = false, have_ring = false, have_table = false;
  bool have_counters = false, have_history = false, have_rng = false;
  while (!reader.AtEnd()) {
    std::uint32_t tag = 0;
    std::string_view payload;
    BAGCPD_RETURN_NOT_OK(reader.NextSection(&tag, &payload));
    switch (tag) {
      case serialize::kSecSpec:
        spec = payload;
        have_spec = true;
        break;
      case serialize::kSecRing:
        ring = payload;
        have_ring = true;
        break;
      case serialize::kSecTable:
        table = payload;
        have_table = true;
        break;
      case serialize::kSecCounters:
        counters = payload;
        have_counters = true;
        break;
      case serialize::kSecHistory:
        history = payload;
        have_history = true;
        break;
      case serialize::kSecRng:
        rng_state = payload;
        have_rng = true;
        break;
      default:
        break;  // Unknown sections are forward-compatible extensions.
    }
  }
  if (!have_spec || !have_ring || !have_table || !have_counters ||
      !have_history || !have_rng) {
    return Status::IoError("detector blob is missing a required section");
  }

  // The spec gate: restoring into a differently-configured detector would
  // not crash, it would quietly produce different scores — exactly the
  // failure mode the bitwise-restore contract exists to prevent.
  std::string_view blob_spec;
  {
    WireReader section(spec);
    BAGCPD_RETURN_NOT_OK(section.ReadString(&blob_spec));
  }
  const std::string my_spec =
      api::DetectorSpec::FromOptions(options_).ToKeyValues();
  if (blob_spec != my_spec) {
    return Status::Invalid(
        "checkpoint options-spec mismatch: blob was exported from a detector "
        "configured as '" +
        std::string(blob_spec) + "' but this detector is '" + my_spec + "'");
  }

  WireReader ring_reader(ring);
  std::uint32_t dim = 0, count = 0;
  BAGCPD_RETURN_NOT_OK(ring_reader.ReadU32(&dim));
  BAGCPD_RETURN_NOT_OK(ring_reader.ReadU32(&count));
  if (count > w) {
    return Status::IoError("detector blob window holds " +
                           std::to_string(count) + " signatures, capacity " +
                           std::to_string(w));
  }
  if (count > 0 && dim == 0) {
    return Status::IoError("detector blob window has dimension 0");
  }

  WireReader table_reader(table);
  std::uint32_t table_w = 0;
  std::uint8_t primed = 0;
  BAGCPD_RETURN_NOT_OK(table_reader.ReadU32(&table_w));
  BAGCPD_RETURN_NOT_OK(table_reader.ReadU8(&primed));
  if (table_w != w) {
    return Status::IoError("detector blob table is " + std::to_string(table_w) +
                           " wide, expected " + std::to_string(w));
  }

  WireReader counters_reader(counters);
  std::uint64_t next_index = 0;
  BAGCPD_RETURN_NOT_OK(counters_reader.ReadU64(&next_index));
  if (next_index < count) {
    return Status::IoError("detector blob counters are inconsistent: " +
                           std::to_string(count) + " buffered signatures but "
                           "only " + std::to_string(next_index) + " pushes");
  }

  WireReader history_reader(history);
  std::uint32_t history_n = 0;
  BAGCPD_RETURN_NOT_OK(history_reader.ReadU32(&history_n));
  if (history_n > options_.tau_prime) {
    return Status::IoError("detector blob alarm history holds " +
                           std::to_string(history_n) + " entries, at most " +
                           std::to_string(options_.tau_prime) + " possible");
  }

  Rng restored_rng(0);
  {
    WireReader section(rng_state);
    std::string_view text;
    BAGCPD_RETURN_NOT_OK(section.ReadString(&text));
    BAGCPD_RETURN_NOT_OK(restored_rng.DeserializeState(std::string(text)));
  }

  // Phase 2 — decode the bulk payloads into temporaries. A CRC-valid blob
  // can still be internally inconsistent (a slot count its ring payload does
  // not actually hold), and those reads must not leave the detector
  // half-restored: nothing below touches members until every read succeeded.
  SignatureRing restored_window(w);
  PooledBuffer staging;  // Slot staging recycles through the arena when set.
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t k = 0;
    BAGCPD_RETURN_NOT_OK(ring_reader.ReadU32(&k));
    if (k == 0) {
      return Status::IoError("detector blob window slot " + std::to_string(i) +
                             " is empty");
    }
    const std::size_t doubles = static_cast<std::size_t>(k) * (dim + 1);
    if (staging.vec().capacity() < doubles) {
      staging = PooledBuffer::AcquireFrom(arena_, doubles);
    }
    staging.vec().resize(doubles);
    double* base = staging.vec().data();
    BAGCPD_RETURN_NOT_OK(
        ring_reader.ReadF64Array(base, static_cast<std::size_t>(k) * dim));
    BAGCPD_RETURN_NOT_OK(
        ring_reader.ReadF64Array(base + static_cast<std::size_t>(k) * dim, k));
    restored_window.PushBack(SignatureView(
        base, base + static_cast<std::size_t>(k) * dim, k, dim));
  }
  std::vector<double> restored_table(w * w);
  BAGCPD_RETURN_NOT_OK(
      table_reader.ReadF64Array(restored_table.data(), w * w));
  std::deque<double> restored_history;
  for (std::uint32_t i = 0; i < history_n; ++i) {
    double v = 0.0;
    BAGCPD_RETURN_NOT_OK(history_reader.ReadF64(&v));
    restored_history.push_back(v);
  }

  // Phase 3 — commit. Reset() first so the cache is empty and the solver
  // scratch is back at its ceiling, exactly the between-pushes state every
  // export is taken from.
  Reset();
  window_ = std::move(restored_window);
  log_table_ = std::move(restored_table);
  table_base_ = 0;
  table_primed_ = primed != 0;
  next_index_ = next_index;
  upper_history_ = std::move(restored_history);
  rng_ = restored_rng;
  return Status::OK();
}

Result<std::unique_ptr<BagStreamDetector>> BagStreamDetector::CreateFromState(
    std::string_view blob) {
  BAGCPD_ASSIGN_OR_RETURN(std::string spec,
                          serialize::PeekDetectorSpec(blob));
  BAGCPD_ASSIGN_OR_RETURN(api::DetectorSpec parsed,
                          api::DetectorSpec::FromKeyValues(spec));
  BAGCPD_ASSIGN_OR_RETURN(DetectorOptions options, parsed.Build());
  BAGCPD_ASSIGN_OR_RETURN(std::unique_ptr<BagStreamDetector> detector,
                          Create(options));
  BAGCPD_RETURN_NOT_OK(detector->ImportState(blob));
  return detector;
}

std::size_t BagStreamDetector::EstimatedStateBytes() const {
  // mt19937_64 is 312 64-bit words plus the position; the text encoding the
  // blob actually carries is about 2.5x that, but the estimate tracks the
  // RESIDENT footprint (what spilling frees), not the file size.
  constexpr std::size_t kRngBytes = 313 * sizeof(std::uint64_t);
  return sizeof(*this) + window_.memory_bytes() +
         log_table_.capacity() * sizeof(double) +
         upper_history_.size() * sizeof(double) + kRngBytes;
}

}  // namespace bagcpd
