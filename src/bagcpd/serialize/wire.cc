#include "bagcpd/serialize/wire.h"

#include <cstring>

#include "bagcpd/common/check.h"

namespace bagcpd {
namespace serialize {

namespace {

const std::uint32_t* Crc32Table() {
  static const std::uint32_t* table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t crc) {
  const std::uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void WireWriter::BeginBlob(BlobKind kind) {
  blob_base_ = out_->size();
  out_->append(kBlobMagic, sizeof(kBlobMagic));
  PutU32(kFormatVersion);
  PutU32(static_cast<std::uint32_t>(kind));
}

void WireWriter::EndBlob() {
  BAGCPD_CHECK_MSG(section_len_at_ == std::string::npos,
                   "EndBlob with an open section");
  const std::uint32_t crc =
      Crc32(out_->data() + blob_base_, out_->size() - blob_base_);
  PutU32(crc);
}

void WireWriter::BeginSection(std::uint32_t tag) {
  BAGCPD_CHECK_MSG(section_len_at_ == std::string::npos,
                   "sections do not nest");
  PutU32(tag);
  section_len_at_ = out_->size();
  PutU64(0);  // Patched by EndSection.
}

void WireWriter::EndSection() {
  BAGCPD_CHECK_MSG(section_len_at_ != std::string::npos,
                   "EndSection without BeginSection");
  const std::uint64_t len = out_->size() - section_len_at_ - 8;
  for (int i = 0; i < 8; ++i) {
    (*out_)[section_len_at_ + i] =
        static_cast<char>((len >> (8 * i)) & 0xFFu);
  }
  section_len_at_ = std::string::npos;
}

void WireWriter::PutU8(std::uint8_t v) {
  out_->push_back(static_cast<char>(v));
}

void WireWriter::PutU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void WireWriter::PutU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void WireWriter::PutF64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutF64Array(const double* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) PutF64(data[i]);
}

void WireWriter::PutBytes(const void* data, std::size_t n) {
  out_->append(static_cast<const char*>(data), n);
}

void WireWriter::PutString(std::string_view s) {
  PutU64(s.size());
  out_->append(s.data(), s.size());
}

Status WireReader::ReadU8(std::uint8_t* v) {
  if (remaining() < 1) return Status::IoError("truncated blob: expected u8");
  *v = static_cast<std::uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status WireReader::ReadU32(std::uint32_t* v) {
  if (remaining() < 4) return Status::IoError("truncated blob: expected u32");
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status WireReader::ReadU64(std::uint64_t* v) {
  if (remaining() < 8) return Status::IoError("truncated blob: expected u64");
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status WireReader::ReadF64(double* v) {
  std::uint64_t bits = 0;
  BAGCPD_RETURN_NOT_OK(ReadU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status WireReader::ReadF64Array(double* out, std::size_t n) {
  if (remaining() < 8 * n) {
    return Status::IoError("truncated blob: expected f64 array of " +
                           std::to_string(n));
  }
  for (std::size_t i = 0; i < n; ++i) {
    BAGCPD_RETURN_NOT_OK(ReadF64(out + i));
  }
  return Status::OK();
}

Status WireReader::ReadBytes(std::size_t n, std::string_view* out) {
  if (remaining() < n) {
    return Status::IoError("truncated blob: expected " + std::to_string(n) +
                           " bytes, have " + std::to_string(remaining()));
  }
  *out = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status WireReader::ReadString(std::string_view* out) {
  std::uint64_t len = 0;
  BAGCPD_RETURN_NOT_OK(ReadU64(&len));
  if (len > remaining()) {
    return Status::IoError("truncated blob: string length " +
                           std::to_string(len) + " exceeds remaining " +
                           std::to_string(remaining()));
  }
  return ReadBytes(static_cast<std::size_t>(len), out);
}

Status WireReader::NextSection(std::uint32_t* tag, std::string_view* payload) {
  BAGCPD_RETURN_NOT_OK(ReadU32(tag));
  std::uint64_t len = 0;
  BAGCPD_RETURN_NOT_OK(ReadU64(&len));
  if (len > remaining()) {
    return Status::IoError("truncated blob: section " + std::to_string(*tag) +
                           " declares " + std::to_string(len) +
                           " bytes, only " + std::to_string(remaining()) +
                           " remain");
  }
  return ReadBytes(static_cast<std::size_t>(len), payload);
}

namespace {

// Header = magic + version + kind; footer = CRC.
constexpr std::size_t kHeaderBytes = sizeof(kBlobMagic) + 4 + 4;
constexpr std::size_t kFooterBytes = 4;

Status CheckHeader(std::string_view blob, std::uint32_t* kind) {
  if (blob.size() < kHeaderBytes + kFooterBytes) {
    return Status::IoError("truncated blob: " + std::to_string(blob.size()) +
                           " bytes is smaller than the minimal container");
  }
  if (std::memcmp(blob.data(), kBlobMagic, sizeof(kBlobMagic)) != 0) {
    return Status::IoError("bad magic: not a BAGCPDCK checkpoint blob");
  }
  WireReader header(blob.substr(sizeof(kBlobMagic), 8));
  std::uint32_t version = 0;
  BAGCPD_RETURN_NOT_OK(header.ReadU32(&version));
  BAGCPD_RETURN_NOT_OK(header.ReadU32(kind));
  if (version != kFormatVersion) {
    return Status::NotImplemented(
        "checkpoint format version " + std::to_string(version) +
        " is not supported by this build (expected " +
        std::to_string(kFormatVersion) + ")");
  }
  return Status::OK();
}

}  // namespace

Result<WireReader> OpenBlob(std::string_view blob, BlobKind expected_kind) {
  std::uint32_t kind = 0;
  BAGCPD_RETURN_NOT_OK(CheckHeader(blob, &kind));
  const std::size_t body = blob.size() - kFooterBytes;
  WireReader footer(blob.substr(body));
  std::uint32_t stored_crc = 0;
  BAGCPD_RETURN_NOT_OK(footer.ReadU32(&stored_crc));
  const std::uint32_t actual_crc = Crc32(blob.data(), body);
  if (stored_crc != actual_crc) {
    return Status::IoError("checksum mismatch: blob is corrupt");
  }
  if (kind != static_cast<std::uint32_t>(expected_kind)) {
    return Status::Invalid("blob kind " + std::to_string(kind) +
                           " where kind " +
                           std::to_string(
                               static_cast<std::uint32_t>(expected_kind)) +
                           " was expected");
  }
  return WireReader(blob.substr(kHeaderBytes, body - kHeaderBytes));
}

Result<BlobKind> PeekBlobKind(std::string_view blob) {
  std::uint32_t kind = 0;
  BAGCPD_RETURN_NOT_OK(CheckHeader(blob, &kind));
  switch (static_cast<BlobKind>(kind)) {
    case BlobKind::kDetector:
    case BlobKind::kEngineStream:
    case BlobKind::kEngineCheckpoint:
      return static_cast<BlobKind>(kind);
  }
  return Status::Invalid("unknown blob kind " + std::to_string(kind));
}

}  // namespace serialize
}  // namespace bagcpd
