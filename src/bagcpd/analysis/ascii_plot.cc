#include "bagcpd/analysis/ascii_plot.h"

#include <algorithm>
#include <cmath>

#include "bagcpd/common/check.h"

namespace bagcpd {

namespace {

// Maps v in [lo, hi] to a row in [0, rows).
int RowOf(double v, double lo, double hi, int rows) {
  if (hi <= lo) return rows / 2;
  const double unit = (v - lo) / (hi - lo);
  int row = static_cast<int>(std::lround(unit * (rows - 1)));
  return std::clamp(row, 0, rows - 1);
}

}  // namespace

std::string RenderLineChart(const std::vector<double>& series,
                            const std::vector<double>& lo,
                            const std::vector<double>& up,
                            const std::vector<std::uint64_t>& marks,
                            const std::vector<std::size_t>& vlines,
                            const PlotOptions& options) {
  if (series.empty()) return "(empty series)\n";
  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);
  const bool has_band = lo.size() == series.size() && up.size() == series.size();

  double vmin = series[0];
  double vmax = series[0];
  for (double v : series) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  if (has_band) {
    for (double v : lo) vmin = std::min(vmin, v);
    for (double v : up) vmax = std::max(vmax, v);
  }
  if (vmax <= vmin) vmax = vmin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  const std::size_t n = series.size();
  auto col_of = [&](std::size_t t) {
    return static_cast<int>(t * static_cast<std::size_t>(w - 1) /
                            std::max<std::size_t>(1, n - 1));
  };

  // True change-point vlines first (underneath everything).
  for (std::size_t cp : vlines) {
    if (cp >= n) continue;
    const int col = col_of(cp);
    for (int r = 0; r < h; ++r) {
      grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)] = ':';
    }
  }
  // Confidence band.
  if (has_band) {
    for (std::size_t t = 0; t < n; ++t) {
      const int col = col_of(t);
      const int r_lo = RowOf(lo[t], vmin, vmax, h);
      const int r_up = RowOf(up[t], vmin, vmax, h);
      for (int r = std::min(r_lo, r_up); r <= std::max(r_lo, r_up); ++r) {
        char& cell = grid[static_cast<std::size_t>(h - 1 - r)]
                         [static_cast<std::size_t>(col)];
        if (cell == ' ' || cell == ':') cell = '.';
      }
    }
  }
  // The score line.
  for (std::size_t t = 0; t < n; ++t) {
    const int col = col_of(t);
    const int row = RowOf(series[t], vmin, vmax, h);
    grid[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(col)] =
        '*';
  }
  // Alarm marks on top.
  for (std::uint64_t mark : marks) {
    if (mark >= n) continue;
    const int col = col_of(static_cast<std::size_t>(mark));
    const int row = RowOf(series[static_cast<std::size_t>(mark)], vmin, vmax, h);
    grid[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(col)] =
        'X';
  }

  std::string out;
  char label[64];
  std::snprintf(label, sizeof(label), "%10.3f ", vmax);
  out += label;
  out += "+";
  out += std::string(static_cast<std::size_t>(w), '-');
  out += "+\n";
  for (int r = 0; r < h; ++r) {
    out += "           |";
    out += grid[static_cast<std::size_t>(r)];
    out += "|\n";
  }
  std::snprintf(label, sizeof(label), "%10.3f ", vmin);
  out += label;
  out += "+";
  out += std::string(static_cast<std::size_t>(w), '-');
  out += "+\n";
  out +=
      "            legend: * score, . CI band, X alarm, : true change point\n";
  return out;
}

std::string RenderHeatMap(const Matrix& m, const PlotOptions& options) {
  if (m.empty()) return "(empty matrix)\n";
  static const char kShades[] = " .:-=+*#%@";
  const int levels = 9;
  double vmin = m(0, 0);
  double vmax = m(0, 0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      vmin = std::min(vmin, m(i, j));
      vmax = std::max(vmax, m(i, j));
    }
  }
  const double range = vmax > vmin ? vmax - vmin : 1.0;
  // Downsample to at most options.width columns / height*2 rows.
  const std::size_t max_cols =
      static_cast<std::size_t>(std::max(8, options.width));
  const std::size_t max_rows =
      static_cast<std::size_t>(std::max(8, options.height * 2));
  const std::size_t rstep = std::max<std::size_t>(1, m.rows() / max_rows);
  const std::size_t cstep = std::max<std::size_t>(1, m.cols() / max_cols);

  std::string out;
  for (std::size_t i = 0; i < m.rows(); i += rstep) {
    out += "  ";
    for (std::size_t j = 0; j < m.cols(); j += cstep) {
      const int level = static_cast<int>(
          std::lround((m(i, j) - vmin) / range * levels));
      out += kShades[std::clamp(level, 0, levels)];
      out += kShades[std::clamp(level, 0, levels)];  // Square-ish aspect.
    }
    out += "\n";
  }
  char label[96];
  std::snprintf(label, sizeof(label), "  scale: ' '=%.3f .. '@'=%.3f\n", vmin,
                vmax);
  out += label;
  return out;
}

std::string RenderScatter2d(const Matrix& coordinates,
                            const PlotOptions& options) {
  if (coordinates.empty() || coordinates.cols() < 2) {
    return "(no 2-d coordinates)\n";
  }
  const int w = std::max(16, options.width);
  const int h = std::max(8, options.height);
  double xmin = coordinates(0, 0), xmax = coordinates(0, 0);
  double ymin = coordinates(0, 1), ymax = coordinates(0, 1);
  for (std::size_t i = 0; i < coordinates.rows(); ++i) {
    xmin = std::min(xmin, coordinates(i, 0));
    xmax = std::max(xmax, coordinates(i, 0));
    ymin = std::min(ymin, coordinates(i, 1));
    ymax = std::max(ymax, coordinates(i, 1));
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  const std::size_t n = coordinates.rows();
  for (std::size_t i = 0; i < n; ++i) {
    const int col = RowOf(coordinates(i, 0), xmin, xmax, w);
    const int row = RowOf(coordinates(i, 1), ymin, ymax, h);
    // First half of the sequence plotted as digits, second half as letters
    // (the paper's circles vs triangles).
    char symbol;
    if (i < n / 2) {
      symbol = static_cast<char>('0' + ((i + 1) % 10));
    } else {
      symbol = static_cast<char>('a' + ((i - n / 2) % 26));
    }
    grid[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(col)] =
        symbol;
  }
  std::string out;
  out += "  +" + std::string(static_cast<std::size_t>(w), '-') + "+\n";
  for (int r = 0; r < h; ++r) {
    out += "  |" + grid[static_cast<std::size_t>(r)] + "|\n";
  }
  out += "  +" + std::string(static_cast<std::size_t>(w), '-') + "+\n";
  out += "  legend: digits = first half of bags (1..n/2), letters = second "
         "half (a = bag n/2+1)\n";
  return out;
}

std::string RenderSparkline(const std::vector<double>& series) {
  if (series.empty()) return "";
  static const char kLevels[] = "_.-=+*#@";
  double vmin = series[0], vmax = series[0];
  for (double v : series) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  const double range = vmax > vmin ? vmax - vmin : 1.0;
  std::string out;
  out.reserve(series.size());
  for (double v : series) {
    const int level =
        static_cast<int>(std::lround((v - vmin) / range * 7.0));
    out += kLevels[std::clamp(level, 0, 7)];
  }
  return out;
}

}  // namespace bagcpd
