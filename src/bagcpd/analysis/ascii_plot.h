// Terminal rendering of the paper's figures: line charts with confidence
// bands and alarm marks (Fig. 6 right panels, Fig. 7, Fig. 10), distance-
// matrix heat maps (Fig. 6 left panels), and scatter plots of MDS embeddings
// (Fig. 6 center panels). The bench harnesses print these so the figure
// shapes can be inspected without a plotting stack.

#ifndef BAGCPD_ANALYSIS_ASCII_PLOT_H_
#define BAGCPD_ANALYSIS_ASCII_PLOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bagcpd/common/matrix.h"

namespace bagcpd {

/// \brief Options shared by the chart renderers.
struct PlotOptions {
  int width = 72;
  int height = 16;
};

/// \brief Line chart of `series` (x = index). Optional `lo`/`up` draw a
/// confidence band (pass empty vectors to skip); `marks` places an 'X' at the
/// given x positions (alarm times); `vlines` draws '|' columns (true change
/// points).
std::string RenderLineChart(const std::vector<double>& series,
                            const std::vector<double>& lo,
                            const std::vector<double>& up,
                            const std::vector<std::uint64_t>& marks,
                            const std::vector<std::size_t>& vlines,
                            const PlotOptions& options = {});

/// \brief Shade heat map of a matrix (darker = larger).
std::string RenderHeatMap(const Matrix& m, const PlotOptions& options = {});

/// \brief Scatter plot of n x 2 coordinates; points are labeled with the last
/// character of their 1-based index, first half 'o'-family, second half
/// distinguished (Fig. 6 circles vs triangles analogue).
std::string RenderScatter2d(const Matrix& coordinates,
                            const PlotOptions& options = {});

/// \brief One-line sparkline of a series.
std::string RenderSparkline(const std::vector<double>& series);

}  // namespace bagcpd

#endif  // BAGCPD_ANALYSIS_ASCII_PLOT_H_
