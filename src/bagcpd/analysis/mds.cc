#include "bagcpd/analysis/mds.h"

#include <cmath>

#include "bagcpd/emd/emd.h"

namespace bagcpd {

Result<MdsEmbedding> ClassicalMds(const Matrix& distances, std::size_t dims) {
  if (distances.rows() != distances.cols()) {
    return Status::Invalid("distance matrix is not square");
  }
  if (!distances.IsSymmetric(1e-8)) {
    return Status::Invalid("distance matrix is not symmetric");
  }
  const std::size_t n = distances.rows();
  if (dims == 0 || dims > n) return Status::Invalid("invalid embedding dims");

  // B = -1/2 J D^2 J with J = I - 11^T / n (double centering).
  Matrix d2(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d2(i, j) = distances(i, j) * distances(i, j);
    }
  }
  std::vector<double> row_mean(n, 0.0);
  double grand_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) row_mean[i] += d2(i, j);
    row_mean[i] /= static_cast<double>(n);
    grand_mean += row_mean[i];
  }
  grand_mean /= static_cast<double>(n);
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      b(i, j) = -0.5 * (d2(i, j) - row_mean[i] - row_mean[j] + grand_mean);
    }
  }

  BAGCPD_ASSIGN_OR_RETURN(SymmetricEigen eig, JacobiEigenSymmetric(b));

  MdsEmbedding out;
  out.eigenvalues = eig.values;
  out.coordinates = Matrix(n, dims, 0.0);
  for (std::size_t k = 0; k < dims; ++k) {
    const double lambda = eig.values[k];
    if (lambda <= 0.0) continue;  // Non-Euclidean remainder; leave zero.
    const double scale = std::sqrt(lambda);
    for (std::size_t i = 0; i < n; ++i) {
      out.coordinates(i, k) = scale * eig.vectors(i, k);
    }
  }
  return out;
}

Result<MdsEmbedding> EmdMds(const SignatureSet& signatures, std::size_t dims,
                            GroundDistance ground, ThreadPool* pool) {
  BAGCPD_ASSIGN_OR_RETURN(Matrix distances,
                          PairwiseEmdMatrix(signatures, ground, pool));
  return ClassicalMds(distances, dims);
}

}  // namespace bagcpd
