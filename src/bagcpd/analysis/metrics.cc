#include "bagcpd/analysis/metrics.h"

#include <algorithm>

namespace bagcpd {

DetectionReport EvaluateAlarms(const std::vector<std::uint64_t>& alarms,
                               const std::vector<std::size_t>& change_points,
                               std::size_t tolerance) {
  DetectionReport report;
  std::vector<bool> alarm_used(alarms.size(), false);
  double delay_acc = 0.0;

  for (std::size_t cp : change_points) {
    bool matched = false;
    for (std::size_t a = 0; a < alarms.size(); ++a) {
      if (alarm_used[a]) continue;
      const std::uint64_t alarm = alarms[a];
      if (alarm >= cp && alarm <= cp + tolerance) {
        alarm_used[a] = true;
        matched = true;
        delay_acc += static_cast<double>(alarm - cp);
        break;
      }
    }
    if (matched) {
      ++report.true_positives;
    } else {
      ++report.missed;
    }
  }
  for (bool used : alarm_used) {
    if (!used) ++report.false_positives;
  }

  const std::size_t alarm_total = alarms.size();
  const std::size_t truth_total = change_points.size();
  report.precision =
      alarm_total == 0
          ? 0.0
          : static_cast<double>(report.true_positives) / alarm_total;
  report.recall = truth_total == 0
                      ? 0.0
                      : static_cast<double>(report.true_positives) / truth_total;
  report.f1 = (report.precision + report.recall) == 0.0
                  ? 0.0
                  : 2.0 * report.precision * report.recall /
                        (report.precision + report.recall);
  report.mean_delay = report.true_positives == 0
                          ? 0.0
                          : delay_acc / report.true_positives;
  return report;
}

Result<double> RocAuc(const std::vector<double>& scores,
                      const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    return Status::Invalid("scores/labels size mismatch");
  }
  std::size_t positives = 0;
  std::size_t negatives = 0;
  for (int label : labels) {
    if (label != 0) {
      ++positives;
    } else {
      ++negatives;
    }
  }
  if (positives == 0 || negatives == 0) {
    return Status::Invalid("RocAuc needs both classes present");
  }

  // Rank-sum (Mann-Whitney) formulation with midranks for ties.
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> rank(scores.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double mid = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  double rank_sum_pos = 0.0;
  for (std::size_t idx = 0; idx < scores.size(); ++idx) {
    if (labels[idx] != 0) rank_sum_pos += rank[idx];
  }
  const double auc =
      (rank_sum_pos - static_cast<double>(positives) *
                          (static_cast<double>(positives) + 1.0) / 2.0) /
      (static_cast<double>(positives) * static_cast<double>(negatives));
  return auc;
}

std::vector<int> LabelNearChangePoints(
    std::size_t series_length, const std::vector<std::size_t>& change_points,
    std::size_t tolerance) {
  std::vector<int> labels(series_length, 0);
  for (std::size_t cp : change_points) {
    for (std::size_t t = cp; t <= cp + tolerance && t < series_length; ++t) {
      labels[t] = 1;
    }
  }
  return labels;
}

}  // namespace bagcpd
