// Classical multidimensional scaling (Torgerson): embeds a distance matrix
// into a low-dimensional Euclidean space. Used to render the Fig. 6 center
// panels (bags mapped to 2-d from their pairwise EMDs).

#ifndef BAGCPD_ANALYSIS_MDS_H_
#define BAGCPD_ANALYSIS_MDS_H_

#include "bagcpd/common/matrix.h"
#include "bagcpd/common/result.h"
#include "bagcpd/emd/ground_distance.h"
#include "bagcpd/signature/signature_set.h"

namespace bagcpd {

class ThreadPool;

/// \brief Classical MDS output.
struct MdsEmbedding {
  /// n x dims coordinate matrix.
  Matrix coordinates;
  /// The eigenvalues of the doubly-centered Gram matrix (descending); the
  /// leading `dims` were used. Negative tail values measure how non-Euclidean
  /// the distances are.
  std::vector<double> eigenvalues;
};

/// \brief Embeds the symmetric distance matrix `distances` into `dims`
/// dimensions. Components with non-positive eigenvalues are zeroed.
Result<MdsEmbedding> ClassicalMds(const Matrix& distances, std::size_t dims = 2);

/// \brief Convenience for the Fig. 6 center panels: computes the pairwise
/// EMD matrix of a shared-buffer SignatureSet and embeds it. Identical to
/// calling PairwiseEmdMatrix + ClassicalMds by hand. With a non-null `pool`
/// the EMD matrix is solved over the pool (bitwise-identical for any pool
/// size).
Result<MdsEmbedding> EmdMds(const SignatureSet& signatures,
                            std::size_t dims = 2,
                            GroundDistance ground = GroundDistance::kEuclidean,
                            ThreadPool* pool = nullptr);

}  // namespace bagcpd

#endif  // BAGCPD_ANALYSIS_MDS_H_
