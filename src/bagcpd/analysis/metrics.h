// Evaluation metrics for change-point detection: tolerance-matched
// precision/recall/F1, detection delay, and score-based ROC AUC. These back
// the quantitative columns of EXPERIMENTS.md.

#ifndef BAGCPD_ANALYSIS_METRICS_H_
#define BAGCPD_ANALYSIS_METRICS_H_

#include <cstdint>
#include <vector>

#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Alarm-versus-truth evaluation with a matching tolerance.
struct DetectionReport {
  /// An alarm within `tolerance` steps at-or-after a true change point counts
  /// as detecting it; each true point is matched at most once.
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t missed = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// Mean delay (alarm time - change time) over matched pairs.
  double mean_delay = 0.0;
};

/// \brief Matches alarms to true change points within a window of
/// [cp, cp + tolerance] steps (alarms can only trail changes in this online
/// setting).
DetectionReport EvaluateAlarms(const std::vector<std::uint64_t>& alarms,
                               const std::vector<std::size_t>& change_points,
                               std::size_t tolerance);

/// \brief ROC AUC of `scores` against binary `labels` (1 = near a true change
/// point). Ties are handled by the rank formulation. Fails with Invalid when
/// either class is empty.
Result<double> RocAuc(const std::vector<double>& scores,
                      const std::vector<int>& labels);

/// \brief Labels each time step 1 if it lies within [cp, cp + tolerance] for
/// some true change point cp (helper for RocAuc over score series).
std::vector<int> LabelNearChangePoints(std::size_t series_length,
                                       const std::vector<std::size_t>& change_points,
                                       std::size_t tolerance);

}  // namespace bagcpd

#endif  // BAGCPD_ANALYSIS_METRICS_H_
