// Minimum-cost flow with real-valued capacities, used to solve the
// transportation problem behind the Earth Mover's Distance (paper Eqs. 7-11).
//
// Algorithm: successive shortest augmenting paths with Johnson potentials and
// Dijkstra. All arc costs supplied by the EMD construction are non-negative,
// so initial potentials of zero are valid. Each augmentation saturates at
// least one arc, bounding the number of iterations by the number of arcs.

#ifndef BAGCPD_EMD_MIN_COST_FLOW_H_
#define BAGCPD_EMD_MIN_COST_FLOW_H_

#include <cstddef>
#include <vector>

#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Flow amounts below this are treated as zero, keeping real-valued
/// augmentation terminating in the presence of rounding noise. Shared by
/// this reference solver and the EmdWorkspace fast path
/// (emd/transport_solver.h) — the two must augment at identical points for
/// their bitwise-equivalence contract to hold.
inline constexpr double kFlowEpsilon = 1e-12;

/// \brief Outcome of a min-cost-flow computation.
struct FlowSolution {
  /// Units actually routed (== requested amount on success).
  double flow = 0.0;
  /// Total cost sum(flow_e * cost_e).
  double cost = 0.0;
  /// Number of augmenting-path iterations used.
  int iterations = 0;
};

/// \brief A directed flow network with real capacities and costs.
class MinCostFlow {
 public:
  /// Creates a network with `num_nodes` nodes and no arcs.
  explicit MinCostFlow(std::size_t num_nodes);

  /// \brief Adds a directed arc and returns its id for later FlowOn queries.
  /// Capacity must be >= 0 and cost must be finite and >= 0; a violation is
  /// recorded (not aborted on) and surfaces as an Invalid status from
  /// Solve() — corrupt observation data must degrade into a typed error, not
  /// crash the process. Out-of-range node indices remain a programming error
  /// and still abort.
  int AddArc(std::size_t from, std::size_t to, double capacity, double cost);

  /// \brief Routes `amount` units from `source` to `sink` at minimum cost.
  ///
  /// Fails with Invalid if the network cannot carry `amount` units or if any
  /// AddArc call supplied a non-finite/negative cost or negative capacity.
  /// May be called once per instance (flows persist in the arcs).
  Result<FlowSolution> Solve(std::size_t source, std::size_t sink,
                             double amount);

  /// \brief OK unless an AddArc call supplied invalid capacity/cost (the
  /// first such violation, which Solve() also returns).
  const Status& build_status() const { return build_status_; }

  /// \brief Flow routed on the arc returned by AddArc.
  double FlowOn(int arc_id) const;

  std::size_t num_nodes() const { return graph_.size(); }

 private:
  struct Arc {
    std::size_t to;
    double capacity;  // Residual capacity.
    double cost;
    std::size_t rev;  // Index of the reverse arc in graph_[to].
  };

  // graph_[v] holds the arcs leaving v (forward and residual).
  std::vector<std::vector<Arc>> graph_;
  // (node, index into graph_[node]) for each arc id, in insertion order.
  std::vector<std::pair<std::size_t, std::size_t>> arc_handles_;
  // First AddArc input violation, deferred so construction from untrusted
  // data cannot abort; checked by Solve().
  Status build_status_;
};

}  // namespace bagcpd

#endif  // BAGCPD_EMD_MIN_COST_FLOW_H_
