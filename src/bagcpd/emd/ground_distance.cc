#include "bagcpd/emd/ground_distance.h"

namespace bagcpd {

GroundDistanceFn MakeGroundDistance(GroundDistance kind) {
  switch (kind) {
    case GroundDistance::kEuclidean:
      return [](PointView a, PointView b) { return EuclideanDistance(a, b); };
    case GroundDistance::kSquaredEuclidean:
      return [](PointView a, PointView b) { return SquaredDistance(a, b); };
    case GroundDistance::kManhattan:
      return [](PointView a, PointView b) { return ManhattanDistance(a, b); };
  }
  return [](PointView a, PointView b) { return EuclideanDistance(a, b); };
}

const char* GroundDistanceName(GroundDistance kind) {
  switch (kind) {
    case GroundDistance::kEuclidean:
      return "euclidean";
    case GroundDistance::kSquaredEuclidean:
      return "sq_euclidean";
    case GroundDistance::kManhattan:
      return "manhattan";
  }
  return "unknown";
}

}  // namespace bagcpd
