#include "bagcpd/emd/ground_distance.h"

#include "bagcpd/common/enum_names.h"

namespace bagcpd {

GroundDistanceFn MakeGroundDistance(GroundDistance kind) {
  switch (kind) {
    case GroundDistance::kEuclidean:
      return [](PointView a, PointView b) { return EuclideanDistance(a, b); };
    case GroundDistance::kSquaredEuclidean:
      return [](PointView a, PointView b) { return SquaredDistance(a, b); };
    case GroundDistance::kManhattan:
      return [](PointView a, PointView b) { return ManhattanDistance(a, b); };
  }
  return [](PointView a, PointView b) { return EuclideanDistance(a, b); };
}

const char* GroundDistanceName(GroundDistance kind) {
  switch (kind) {
    case GroundDistance::kEuclidean:
      return "euclidean";
    case GroundDistance::kSquaredEuclidean:
      return "sq_euclidean";
    case GroundDistance::kManhattan:
      return "manhattan";
  }
  return "unknown";
}

const std::vector<GroundDistance>& AllGroundDistances() {
  static const std::vector<GroundDistance> kAll = {
      GroundDistance::kEuclidean, GroundDistance::kSquaredEuclidean,
      GroundDistance::kManhattan};
  return kAll;
}

Result<GroundDistance> ParseGroundDistance(const std::string& name) {
  if (name == "l2") return GroundDistance::kEuclidean;
  if (name == "l1") return GroundDistance::kManhattan;
  return ParseNamedEnum(name, AllGroundDistances(), GroundDistanceName,
                        "ground distance");
}

}  // namespace bagcpd
