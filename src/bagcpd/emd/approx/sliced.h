// Sliced approximate EMD: project both signatures' centers onto n fixed
// unit directions, solve the exact 1-d transport on each line with a sorted
// CDF sweep (the emd_1d algorithm), and average.
//
// In d = 1 a single slice IS the exact EMD between the mass-normalized
// signatures. In d > 1 the sliced value is a well-defined transport metric
// of its own that lower-bounds the exact EMD (projection is 1-Lipschitz for
// the Euclidean-family grounds) and stabilizes as n grows; it is NOT a
// consistent estimator of the exact value, which is why the property tests
// pin exactness in d = 1 and Cauchy-stabilization — not convergence to
// exact — in d > 1.
//
// Directions are generated from a fixed seed as normalized Gaussian draws,
// so two solvers with the same (n, d) use identical directions: results are
// bitwise-deterministic across solver instances, threads, and shards.

#ifndef BAGCPD_EMD_APPROX_SLICED_H_
#define BAGCPD_EMD_APPROX_SLICED_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/emd/approx/options.h"
#include "bagcpd/signature/signature.h"

namespace bagcpd {

/// \brief Reusable sliced-EMD state: the cached direction matrix plus the
/// per-solve projection/sort scratch. Same monotonic-growth + counter
/// discipline as EmdWorkspace/SinkhornScratch.
class SlicedScratch {
 public:
  std::uint64_t allocation_count() const { return allocation_count_; }
  std::uint64_t solve_count() const { return solve_count_; }
  std::size_t retained_bytes() const;
  void Release();

 private:
  friend Result<double> SlicedEmd(SignatureView a, SignatureView b,
                                  const EmdSolverOptions& options,
                                  SlicedScratch* scratch);

  template <typename T>
  void Ensure(std::vector<T>* v, std::size_t count) {
    if (v->size() >= count) return;
    if (v->capacity() < count) ++allocation_count_;
    v->resize(count);
  }

  void EnsureDirections(std::size_t n, std::size_t dim);

  std::vector<double> directions_;  // n x dim unit vectors, row-major.
  std::size_t directions_n_ = 0;    // Shape the cache currently holds.
  std::size_t directions_dim_ = 0;

  std::vector<double> proj_a_;          // Projected supply positions (K).
  std::vector<double> proj_b_;          // Projected demand positions (L).
  std::vector<double> p_;               // Unit-mass supply weights (K).
  std::vector<double> q_;               // Unit-mass demand weights (L).
  std::vector<std::size_t> order_a_;    // Sort permutations per slice.
  std::vector<std::size_t> order_b_;

  std::uint64_t allocation_count_ = 0;
  std::uint64_t solve_count_ = 0;
};

/// \brief Sliced approximate EMD between two signatures of equal dimension.
///
/// Weights are normalized to unit mass (same distribution semantics as
/// SinkhornEmd). The projected 1-d transport always uses the absolute
/// positional difference as its line cost — the Euclidean-family
/// approximation — regardless of the configured GroundDistance.
Result<double> SlicedEmd(SignatureView a, SignatureView b,
                         const EmdSolverOptions& options,
                         SlicedScratch* scratch);

}  // namespace bagcpd

#endif  // BAGCPD_EMD_APPROX_SLICED_H_
