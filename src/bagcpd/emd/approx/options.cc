#include "bagcpd/emd/approx/options.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "bagcpd/common/enum_names.h"

namespace bagcpd {

namespace {

// Locale-independent numeric parsing/formatting, same policy as
// api/spec.cc: <charconv> where available, a classic-locale stringstream
// fallback elsewhere. Spec strings must mean the same thing on every host.
bool ParseSizeRaw(const std::string& text, std::size_t* out) {
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed, 10);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  *out = static_cast<std::size_t>(parsed);
  return true;
}

bool ParseDoubleRaw(const std::string& text, double* out) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
#else
  std::istringstream stream(text);
  stream.imbue(std::locale::classic());
  stream >> *out;
  return !stream.fail() && stream.eof();
#endif
}

std::string FormatDouble(double v) {
  char buf[64];
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc()) return std::string(buf, ptr);
#endif
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

Result<double> ParsePositiveDouble(const std::string& what,
                                   const std::string& text) {
  double v = 0.0;
  if (text.empty() || !ParseDoubleRaw(text, &v) || !std::isfinite(v) ||
      v <= 0.0) {
    return Status::Invalid("emd solver spec: '" + text +
                           "' is not a positive number for " + what);
  }
  return v;
}

Result<double> ParseNonNegativeDouble(const std::string& what,
                                      const std::string& text) {
  double v = 0.0;
  if (text.empty() || !ParseDoubleRaw(text, &v) || !std::isfinite(v) ||
      v < 0.0) {
    return Status::Invalid("emd solver spec: '" + text +
                           "' is not a non-negative number for " + what);
  }
  return v;
}

Result<std::size_t> ParsePositiveSize(const std::string& what,
                                      const std::string& text) {
  std::size_t v = 0;
  if (text.empty() || !ParseSizeRaw(text, &v) || v == 0) {
    return Status::Invalid("emd solver spec: '" + text +
                           "' is not a positive integer for " + what);
  }
  return v;
}

}  // namespace

const char* EmdSolverKindName(EmdSolverKind kind) {
  switch (kind) {
    case EmdSolverKind::kExact:
      return "exact";
    case EmdSolverKind::kSinkhorn:
      return "sinkhorn";
    case EmdSolverKind::kSliced:
      return "sliced";
  }
  return "unknown";
}

const std::vector<EmdSolverKind>& AllEmdSolverKinds() {
  static const std::vector<EmdSolverKind> kAll = {EmdSolverKind::kExact,
                                                  EmdSolverKind::kSinkhorn,
                                                  EmdSolverKind::kSliced};
  return kAll;
}

Result<EmdSolverKind> ParseEmdSolverKind(const std::string& name) {
  return ParseNamedEnum(name, AllEmdSolverKinds(), EmdSolverKindName,
                        "emd solver");
}

Status ValidateEmdSolverOptions(const EmdSolverOptions& options) {
  if (!(options.sinkhorn_eps > 0.0) || !std::isfinite(options.sinkhorn_eps)) {
    return Status::Invalid("sinkhorn_eps must be a positive finite number");
  }
  if (options.sinkhorn_max_iters == 0) {
    return Status::Invalid("sinkhorn_max_iters must be at least 1");
  }
  if (!(options.sinkhorn_tolerance >= 0.0) ||
      !std::isfinite(options.sinkhorn_tolerance)) {
    return Status::Invalid(
        "sinkhorn_tolerance must be a non-negative finite number");
  }
  if (options.sliced_projections == 0) {
    return Status::Invalid("sliced_projections must be at least 1");
  }
  return Status::OK();
}

Result<EmdSolverOptions> ParseEmdSolverSpec(const std::string& spec) {
  // Split on ':' — the first token names the kind, the rest are its knobs.
  std::vector<std::string> parts;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t colon = spec.find(':', begin);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(begin));
      break;
    }
    parts.push_back(spec.substr(begin, colon - begin));
    begin = colon + 1;
  }

  EmdSolverOptions options;
  BAGCPD_ASSIGN_OR_RETURN(options.kind, ParseEmdSolverKind(parts[0]));
  switch (options.kind) {
    case EmdSolverKind::kExact:
      if (parts.size() > 1) {
        return Status::Invalid(
            "emd solver spec: 'exact' takes no parameters, got '" + spec +
            "'");
      }
      break;
    case EmdSolverKind::kSinkhorn:
      if (parts.size() > 4) {
        return Status::Invalid(
            "emd solver spec: expected 'sinkhorn[:eps[:iters[:tol]]]', got '" +
            spec + "'");
      }
      if (parts.size() > 1) {
        BAGCPD_ASSIGN_OR_RETURN(
            options.sinkhorn_eps,
            ParsePositiveDouble("sinkhorn eps", parts[1]));
      }
      if (parts.size() > 2) {
        BAGCPD_ASSIGN_OR_RETURN(
            options.sinkhorn_max_iters,
            ParsePositiveSize("sinkhorn iteration cap", parts[2]));
      }
      if (parts.size() > 3) {
        BAGCPD_ASSIGN_OR_RETURN(
            options.sinkhorn_tolerance,
            ParseNonNegativeDouble("sinkhorn tolerance", parts[3]));
      }
      break;
    case EmdSolverKind::kSliced:
      if (parts.size() > 2) {
        return Status::Invalid(
            "emd solver spec: expected 'sliced[:n]', got '" + spec + "'");
      }
      if (parts.size() > 1) {
        BAGCPD_ASSIGN_OR_RETURN(
            options.sliced_projections,
            ParsePositiveSize("sliced projection count", parts[1]));
      }
      break;
  }
  BAGCPD_RETURN_NOT_OK(ValidateEmdSolverOptions(options));
  return options;
}

std::string EmdSolverSpecString(const EmdSolverOptions& options) {
  const EmdSolverOptions defaults;
  switch (options.kind) {
    case EmdSolverKind::kExact:
      return "exact";
    case EmdSolverKind::kSinkhorn: {
      std::string out = "sinkhorn:" + FormatDouble(options.sinkhorn_eps);
      if (options.sinkhorn_max_iters != defaults.sinkhorn_max_iters ||
          options.sinkhorn_tolerance != defaults.sinkhorn_tolerance) {
        out += ":" + std::to_string(options.sinkhorn_max_iters);
        out += ":" + FormatDouble(options.sinkhorn_tolerance);
      }
      return out;
    }
    case EmdSolverKind::kSliced:
      return "sliced:" + std::to_string(options.sliced_projections);
  }
  return "exact";
}

}  // namespace bagcpd
