#include "bagcpd/emd/approx/sinkhorn.h"

#include <cmath>

#include "bagcpd/fault/fault_injector.h"

namespace bagcpd {

namespace {

// A scaling denominator below this means the Gibbs kernel has underflowed
// for an entire row/column — the regularization is too sharp for the cost
// spread and continuing would divide by (near-)zero.
constexpr double kUnderflowFloor = 1e-290;

}  // namespace

std::size_t SinkhornScratch::retained_bytes() const {
  return (kernel_.capacity() + p_.capacity() + q_.capacity() + u_.capacity() +
          v_.capacity() + kv_.capacity() + ktu_.capacity()) *
         sizeof(double);
}

void SinkhornScratch::Release() {
  std::vector<double>().swap(kernel_);
  std::vector<double>().swap(p_);
  std::vector<double>().swap(q_);
  std::vector<double>().swap(u_);
  std::vector<double>().swap(v_);
  std::vector<double>().swap(kv_);
  std::vector<double>().swap(ktu_);
}

Result<double> SinkhornEmd(const double* cost, std::size_t k, std::size_t l,
                           const double* wa, const double* wb,
                           const EmdSolverOptions& options,
                           SinkhornScratch* scratch) {
  scratch->Ensure(&scratch->kernel_, k * l);
  scratch->Ensure(&scratch->p_, k);
  scratch->Ensure(&scratch->q_, l);
  scratch->Ensure(&scratch->u_, k);
  scratch->Ensure(&scratch->v_, l);
  scratch->Ensure(&scratch->kv_, k);
  scratch->Ensure(&scratch->ktu_, l);
  double* kernel = scratch->kernel_.data();
  double* p = scratch->p_.data();
  double* q = scratch->q_.data();
  double* u = scratch->u_.data();
  double* v = scratch->v_.data();
  double* kv = scratch->kv_.data();
  double* ktu = scratch->ktu_.data();

  // Unit-mass normalization (signature weights are strictly positive, so
  // both totals are > 0).
  double total_a = 0.0;
  for (std::size_t i = 0; i < k; ++i) total_a += wa[i];
  double total_b = 0.0;
  for (std::size_t j = 0; j < l; ++j) total_b += wb[j];
  for (std::size_t i = 0; i < k; ++i) p[i] = wa[i] / total_a;
  for (std::size_t j = 0; j < l; ++j) q[j] = wb[j] / total_b;

  // eps is relative to the mean ground distance so the iteration behaves
  // identically under a global rescaling of the coordinates.
  double cost_sum = 0.0;
  for (std::size_t e = 0; e < k * l; ++e) cost_sum += cost[e];
  const double mean_cost = cost_sum / static_cast<double>(k * l);
  if (mean_cost == 0.0) {
    // Every pairwise distance is zero, so no transport costs anything.
    ++scratch->solve_count_;
    return 0.0;
  }
  const double eps_abs = options.sinkhorn_eps * mean_cost;

  const double inv_eps = 1.0 / eps_abs;
  for (std::size_t e = 0; e < k * l; ++e) {
    kernel[e] = std::exp(-cost[e] * inv_eps);
  }

  for (std::size_t j = 0; j < l; ++j) v[j] = 1.0;

  // Scaling iterations. Each round satisfies the row marginals exactly and
  // measures the remaining column violation; the loop ends on tolerance or
  // on the hard cap, both pure functions of the inputs.
  for (std::size_t iter = 0; iter < options.sinkhorn_max_iters; ++iter) {
    // `sinkhorn.iterate` fault point: keyed to the iteration ordinal (and
    // the owner's fault_scope), so an armed drill fails the same pairs no
    // matter which thread or pool size runs the solve. Surfaces as the
    // underflow-style error, exercising the `emd-fallback=exact` path.
    if (fault::FaultFires(fault::FaultPoint::kSinkhornIterate,
                          options.fault_scope, iter + 1)) {
      return Status::Invalid(
          "fault-injected: sinkhorn.iterate (simulated scaling underflow)");
    }
    for (std::size_t i = 0; i < k; ++i) {
      const double* row = kernel + i * l;
      double acc = 0.0;
      for (std::size_t j = 0; j < l; ++j) acc += row[j] * v[j];
      kv[i] = acc;
    }
    for (std::size_t i = 0; i < k; ++i) {
      if (!(kv[i] > kUnderflowFloor)) {
        return Status::Invalid(
            "sinkhorn scaling underflowed: eps is too small for the cost "
            "spread of this pair (increase sinkhorn eps)");
      }
      u[i] = p[i] / kv[i];
    }
    for (std::size_t j = 0; j < l; ++j) ktu[j] = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double* row = kernel + i * l;
      const double ui = u[i];
      for (std::size_t j = 0; j < l; ++j) ktu[j] += row[j] * ui;
    }
    // Column violation under the CURRENT v — if already within tolerance the
    // coupling is (numerically) doubly stochastic and iterating further
    // would only change the result below the requested accuracy.
    double err = 0.0;
    for (std::size_t j = 0; j < l; ++j) {
      err += std::abs(v[j] * ktu[j] - q[j]);
    }
    if (err <= options.sinkhorn_tolerance) break;
    for (std::size_t j = 0; j < l; ++j) {
      if (!(ktu[j] > kUnderflowFloor)) {
        return Status::Invalid(
            "sinkhorn scaling underflowed: eps is too small for the cost "
            "spread of this pair (increase sinkhorn eps)");
      }
      v[j] = q[j] / ktu[j];
    }
  }

  // Transport cost of the (approximately) optimal coupling
  // P_ij = u_i K_ij v_j; the coupling carries unit mass, so Eq. 12's
  // moved-mass normalization is the identity here.
  double transport = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double* krow = kernel + i * l;
    const double* crow = cost + i * l;
    double acc = 0.0;
    for (std::size_t j = 0; j < l; ++j) acc += krow[j] * v[j] * crow[j];
    transport += u[i] * acc;
  }
  if (!std::isfinite(transport)) {
    return Status::Invalid(
        "sinkhorn transport cost is non-finite (eps too small for this "
        "pair)");
  }
  ++scratch->solve_count_;
  return transport;
}

}  // namespace bagcpd
