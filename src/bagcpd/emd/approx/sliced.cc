#include "bagcpd/emd/approx/sliced.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "bagcpd/common/rng.h"

namespace bagcpd {

namespace {

// Fixed seed for the projection directions: every SlicedScratch everywhere
// derives the identical direction set for a given (n, dim), which is what
// makes sliced results comparable across solver instances and processes.
constexpr std::uint64_t kSlicedDirectionSeed = 0x51D15EEDCA7B0A6DULL;

// Exact 1-d balanced transport between two sorted weighted point lists:
// integrate |F_a - F_b| over the merged event positions (the emd_1d
// algorithm, running on borrowed scratch instead of local vectors).
// Ties take the a-side event first — a fixed rule, so the accumulation
// order (and its rounding) is a pure function of the inputs.
double SweepLine(const double* pa, const double* p, const std::size_t* oa,
                 std::size_t k, const double* pb, const double* q,
                 const std::size_t* ob, std::size_t l) {
  std::size_t ia = 0;
  std::size_t ib = 0;
  double cdf_gap = 0.0;
  double cost = 0.0;
  double prev_pos = 0.0;
  bool first = true;
  while (ia < k || ib < l) {
    const bool take_a =
        ib >= l || (ia < k && pa[oa[ia]] <= pb[ob[ib]]);
    const double pos = take_a ? pa[oa[ia]] : pb[ob[ib]];
    if (!first) cost += std::abs(cdf_gap) * (pos - prev_pos);
    first = false;
    if (take_a) {
      cdf_gap += p[oa[ia]];
      ++ia;
    } else {
      cdf_gap -= q[ob[ib]];
      ++ib;
    }
    prev_pos = pos;
  }
  return cost;
}

}  // namespace

std::size_t SlicedScratch::retained_bytes() const {
  return (directions_.capacity() + proj_a_.capacity() + proj_b_.capacity() +
          p_.capacity() + q_.capacity()) *
             sizeof(double) +
         (order_a_.capacity() + order_b_.capacity()) * sizeof(std::size_t);
}

void SlicedScratch::Release() {
  std::vector<double>().swap(directions_);
  directions_n_ = 0;
  directions_dim_ = 0;
  std::vector<double>().swap(proj_a_);
  std::vector<double>().swap(proj_b_);
  std::vector<double>().swap(p_);
  std::vector<double>().swap(q_);
  std::vector<std::size_t>().swap(order_a_);
  std::vector<std::size_t>().swap(order_b_);
}

void SlicedScratch::EnsureDirections(std::size_t n, std::size_t dim) {
  if (directions_n_ == n && directions_dim_ == dim) return;
  Ensure(&directions_, n * dim);
  Rng rng(kSlicedDirectionSeed);
  for (std::size_t r = 0; r < n; ++r) {
    double* dir = directions_.data() + r * dim;
    double norm = 0.0;
    do {
      double sq = 0.0;
      for (std::size_t t = 0; t < dim; ++t) {
        dir[t] = rng.Gaussian();
        sq += dir[t] * dir[t];
      }
      norm = std::sqrt(sq);
    } while (!(norm > 1e-12));  // Resample the (measure-zero) degenerate draw.
    for (std::size_t t = 0; t < dim; ++t) dir[t] /= norm;
  }
  directions_n_ = n;
  directions_dim_ = dim;
}

Result<double> SlicedEmd(SignatureView a, SignatureView b,
                         const EmdSolverOptions& options,
                         SlicedScratch* scratch) {
  BAGCPD_RETURN_NOT_OK(a.Validate());
  BAGCPD_RETURN_NOT_OK(b.Validate());
  if (a.dim() != b.dim()) {
    return Status::Invalid("signatures have different dimensions");
  }
  const std::size_t k = a.size();
  const std::size_t l = b.size();
  const std::size_t d = a.dim();
  const std::size_t n = options.sliced_projections;

  scratch->EnsureDirections(n, d);
  scratch->Ensure(&scratch->proj_a_, k);
  scratch->Ensure(&scratch->proj_b_, l);
  scratch->Ensure(&scratch->p_, k);
  scratch->Ensure(&scratch->q_, l);
  scratch->Ensure(&scratch->order_a_, k);
  scratch->Ensure(&scratch->order_b_, l);

  const double* ac = a.centers_data();
  const double* bc = b.centers_data();
  const double* wa = a.weights_data();
  const double* wb = b.weights_data();
  double* pa = scratch->proj_a_.data();
  double* pb = scratch->proj_b_.data();
  double* p = scratch->p_.data();
  double* q = scratch->q_.data();
  std::size_t* oa = scratch->order_a_.data();
  std::size_t* ob = scratch->order_b_.data();

  double total_a = 0.0;
  for (std::size_t i = 0; i < k; ++i) total_a += wa[i];
  double total_b = 0.0;
  for (std::size_t j = 0; j < l; ++j) total_b += wb[j];
  for (std::size_t i = 0; i < k; ++i) p[i] = wa[i] / total_a;
  for (std::size_t j = 0; j < l; ++j) q[j] = wb[j] / total_b;

  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double* dir = scratch->directions_.data() + r * d;
    for (std::size_t i = 0; i < k; ++i) {
      const double* ci = ac + i * d;
      double dot = 0.0;
      for (std::size_t t = 0; t < d; ++t) dot += ci[t] * dir[t];
      pa[i] = dot;
    }
    for (std::size_t j = 0; j < l; ++j) {
      const double* cj = bc + j * d;
      double dot = 0.0;
      for (std::size_t t = 0; t < d; ++t) dot += cj[t] * dir[t];
      pb[j] = dot;
    }
    std::iota(oa, oa + k, std::size_t{0});
    std::iota(ob, ob + l, std::size_t{0});
    // Index tie-break pins the event order (and its rounding) even with
    // duplicate positions.
    std::sort(oa, oa + k, [pa](std::size_t x, std::size_t y) {
      return pa[x] != pa[y] ? pa[x] < pa[y] : x < y;
    });
    std::sort(ob, ob + l, [pb](std::size_t x, std::size_t y) {
      return pb[x] != pb[y] ? pb[x] < pb[y] : x < y;
    });
    acc += SweepLine(pa, p, oa, k, pb, q, ob, l);
  }
  ++scratch->solve_count_;
  return acc / static_cast<double>(n);
}

}  // namespace bagcpd
