#include "bagcpd/emd/approx/emd_solver.h"

namespace bagcpd {

Result<double> EmdSolver::Compute(SignatureView a, SignatureView b,
                                  GroundDistance ground) {
  return Compute(a, b, ground, options_);
}

Result<double> EmdSolver::Compute(SignatureView a, SignatureView b,
                                  GroundDistance ground,
                                  const EmdSolverOptions& options) {
  switch (options.kind) {
    case EmdSolverKind::kExact:
      // Applied per call: thread-local solvers serve streams with different
      // `emd-heap-at=` selections through this one workspace.
      workspace_.set_heap_threshold(options.heap_at);
      return workspace_.Compute(a, b, ground);
    case EmdSolverKind::kSinkhorn: {
      BAGCPD_RETURN_NOT_OK(workspace_.PrepareCost(a, b, ground));
      Result<double> approx = SinkhornEmd(
          workspace_.cost_matrix(), workspace_.cost_rows(),
          workspace_.cost_cols(), a.weights_data(), b.weights_data(), options,
          &sinkhorn_);
      if (!approx.ok() && options.fallback_exact) {
        // Graceful degradation (`emd-fallback=exact`): underflow at small
        // eps / non-convergence retries the SAME pair exactly. Deterministic
        // — the Sinkhorn outcome is a pure function of the pair and options.
        ++fallback_count_;
        workspace_.set_heap_threshold(options.heap_at);
        return workspace_.Compute(a, b, ground);
      }
      return approx;
    }
    case EmdSolverKind::kSliced:
      return SlicedEmd(a, b, options, &sliced_);
  }
  return Status::Invalid("unknown emd solver kind");
}

Status EmdSolver::ComputeBatch(const SignatureView* as, std::size_t count,
                               SignatureView b, GroundDistance ground,
                               double* out) {
  if (options_.kind == EmdSolverKind::kExact) {
    workspace_.set_heap_threshold(options_.heap_at);
    return workspace_.ComputeBatch(as, count, b, ground, out);
  }
  // The approximate kinds have no cross-pair structure to exploit; a serial
  // loop in pair order is already their batch-optimal form and keeps every
  // value (and the first surfaced error) identical to per-pair calls.
  for (std::size_t p = 0; p < count; ++p) {
    BAGCPD_ASSIGN_OR_RETURN(out[p], Compute(as[p], b, ground, options_));
  }
  return Status::OK();
}

Status EmdSolver::ComputeBatch(const SignatureView* as,
                               const SignatureView* bs, std::size_t count,
                               GroundDistance ground,
                               const EmdSolverOptions& options, double* out) {
  if (options.kind == EmdSolverKind::kExact) {
    workspace_.set_heap_threshold(options.heap_at);
    return workspace_.ComputeBatch(as, bs, count, ground, out);
  }
  for (std::size_t p = 0; p < count; ++p) {
    BAGCPD_ASSIGN_OR_RETURN(out[p], Compute(as[p], bs[p], ground, options));
  }
  return Status::OK();
}

void EmdSolver::ShrinkToCeiling() {
  if (retained_byte_ceiling_ == 0) return;
  if (retained_bytes() <= retained_byte_ceiling_) return;
  workspace_.ReleaseBuffers();
  sinkhorn_.Release();
  sliced_.Release();
}

EmdSolver& ThreadLocalEmdSolver() {
  static thread_local EmdSolver solver;
  return solver;
}

}  // namespace bagcpd
