#include "bagcpd/emd/approx/emd_solver.h"

namespace bagcpd {

Result<double> EmdSolver::Compute(SignatureView a, SignatureView b,
                                  GroundDistance ground) {
  return Compute(a, b, ground, options_);
}

Result<double> EmdSolver::Compute(SignatureView a, SignatureView b,
                                  GroundDistance ground,
                                  const EmdSolverOptions& options) {
  switch (options.kind) {
    case EmdSolverKind::kExact:
      return workspace_.Compute(a, b, ground);
    case EmdSolverKind::kSinkhorn:
      BAGCPD_RETURN_NOT_OK(workspace_.PrepareCost(a, b, ground));
      return SinkhornEmd(workspace_.cost_matrix(), workspace_.cost_rows(),
                         workspace_.cost_cols(), a.weights_data(),
                         b.weights_data(), options, &sinkhorn_);
    case EmdSolverKind::kSliced:
      return SlicedEmd(a, b, options, &sliced_);
  }
  return Status::Invalid("unknown emd solver kind");
}

void EmdSolver::ShrinkToCeiling() {
  if (retained_byte_ceiling_ == 0) return;
  if (retained_bytes() <= retained_byte_ceiling_) return;
  workspace_.ReleaseBuffers();
  sinkhorn_.Release();
  sliced_.Release();
}

EmdSolver& ThreadLocalEmdSolver() {
  static thread_local EmdSolver solver;
  return solver;
}

}  // namespace bagcpd
