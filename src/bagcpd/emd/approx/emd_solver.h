// The one EMD entry point the detector scoring path goes through: an
// EmdWorkspace plus the approximate-solver scratch, dispatched on
// EmdSolverOptions. `emd=exact` forwards straight to
// EmdWorkspace::Compute — the identical code path, bit for bit — while
// `emd=sinkhorn:*` reuses the workspace's packed cost buffer (one
// PrepareCost, then scaling iterations) and `emd=sliced:*` runs projected
// 1-d sweeps without touching the cost matrix at all.
//
// Ownership mirrors EmdWorkspace (see README "Performance"): a
// BagStreamDetector owns one EmdSolver for its serial scoring path; pool
// workers use ThreadLocalEmdSolver() with the explicit-options Compute
// overload. Not thread-safe; never share one across concurrent solves.

#ifndef BAGCPD_EMD_APPROX_EMD_SOLVER_H_
#define BAGCPD_EMD_APPROX_EMD_SOLVER_H_

#include <cstddef>
#include <cstdint>

#include "bagcpd/common/result.h"
#include "bagcpd/emd/approx/options.h"
#include "bagcpd/emd/approx/sinkhorn.h"
#include "bagcpd/emd/approx/sliced.h"
#include "bagcpd/emd/ground_distance.h"
#include "bagcpd/emd/transport_solver.h"
#include "bagcpd/signature/signature.h"

namespace bagcpd {

/// \brief Exact-or-approximate EMD solver with reusable scratch. Steady
/// state performs zero heap allocations for any fixed solver kind and
/// signature shape (allocation_count() pins it, bench/micro_emd gates it).
class EmdSolver {
 public:
  EmdSolver() = default;
  explicit EmdSolver(const EmdSolverOptions& options) : options_(options) {}

  EmdSolver(const EmdSolver&) = delete;
  EmdSolver& operator=(const EmdSolver&) = delete;
  EmdSolver(EmdSolver&&) = default;
  EmdSolver& operator=(EmdSolver&&) = default;

  const EmdSolverOptions& options() const { return options_; }
  void set_options(const EmdSolverOptions& options) { options_ = options; }

  /// \brief EMD between two signatures under the stored options.
  Result<double> Compute(SignatureView a, SignatureView b,
                         GroundDistance ground);

  /// \brief Same solve under explicit options — the thread-local prefill
  /// path, where one shared per-thread solver serves streams with different
  /// `emd=` selections.
  Result<double> Compute(SignatureView a, SignatureView b,
                         GroundDistance ground,
                         const EmdSolverOptions& options);

  /// \brief Multi-pair solve under the stored options with a shared right
  /// operand — the detector's rolling-table shape, where every new solve
  /// pairs an older window signature with the newest one. `out[p]` is
  /// bitwise-identical to `Compute(as[p], b, ground)`: the exact kind runs
  /// EmdWorkspace::ComputeBatch (hoisted transpose, scratch reuse, zero
  /// steady-state allocations), the approximate kinds run their per-pair
  /// solves in pair order.
  Status ComputeBatch(const SignatureView* as, std::size_t count,
                      SignatureView b, GroundDistance ground, double* out);

  /// \brief General pair-span batch under explicit options (the pooled
  /// prefill path). `out[p]` == `Compute(as[p], bs[p], ground, options)`.
  Status ComputeBatch(const SignatureView* as, const SignatureView* bs,
                      std::size_t count, GroundDistance ground,
                      const EmdSolverOptions& options, double* out);

  /// \brief The exact-path workspace (also the cost-matrix provider for
  /// sinkhorn). Exposed for tests and detailed/flow computations.
  EmdWorkspace& workspace() { return workspace_; }

  /// \brief Successful solves across all three kinds.
  std::uint64_t solve_count() const {
    return workspace_.solve_count() + sinkhorn_.solve_count() +
           sliced_.solve_count();
  }

  /// \brief Pairs that fell back from an approximate solve to the exact
  /// solver under `fallback_exact` (each also counts one exact solve).
  std::uint64_t fallback_count() const { return fallback_count_; }

  /// \brief Buffer growths across the workspace and both approx scratches;
  /// freezes once the largest shape has been seen (the zero-steady-state
  /// -allocations invariant).
  std::uint64_t allocation_count() const {
    return workspace_.allocation_count() + sinkhorn_.allocation_count() +
           sliced_.allocation_count();
  }

  /// \brief Per-owner byte ceiling over ALL retained scratch (workspace +
  /// sinkhorn + sliced). 0 = unlimited. Owners trigger the release at quiet
  /// points via ShrinkToCeiling() (BagStreamDetector::Reset does).
  void set_retained_byte_ceiling(std::size_t bytes) {
    retained_byte_ceiling_ = bytes;
  }
  std::size_t retained_byte_ceiling() const { return retained_byte_ceiling_; }
  std::size_t retained_bytes() const {
    return workspace_.retained_bytes() + sinkhorn_.retained_bytes() +
           sliced_.retained_bytes();
  }

  /// \brief Releases every scratch buffer if a ceiling is set and
  /// retained_bytes() exceeds it; otherwise a no-op.
  void ShrinkToCeiling();

 private:
  EmdSolverOptions options_;
  EmdWorkspace workspace_;
  SinkhornScratch sinkhorn_;
  SlicedScratch sliced_;
  std::size_t retained_byte_ceiling_ = 0;  // 0 = never shrink.
  std::uint64_t fallback_count_ = 0;
};

/// \brief Per-thread solver for pool workers (detector prefill, parallel
/// matrix fills). Same caveats as ThreadLocalEmdWorkspace — never call from
/// code that can run inside another solve.
EmdSolver& ThreadLocalEmdSolver();

}  // namespace bagcpd

#endif  // BAGCPD_EMD_APPROX_EMD_SOLVER_H_
