// Solver selection for the EMD evaluation behind every detector score
// (paper Eqs. 8-12): the exact transportation solve, or one of the
// approximate solvers in this layer that trade a bounded score error for a
// large per-pair speedup. The selection is spec-addressable
// (`emd=exact|sinkhorn:eps|sliced:n`) so an engine profile or batch column
// can pick a point on the accuracy/throughput curve per stream.

#ifndef BAGCPD_EMD_APPROX_OPTIONS_H_
#define BAGCPD_EMD_APPROX_OPTIONS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/emd/transport_solver.h"  // kDefaultEmdHeapAt

namespace bagcpd {

/// \brief Which solver computes EMD(P, Q) from a signature pair.
enum class EmdSolverKind {
  /// The exact successive-shortest-path transportation solve (EmdWorkspace).
  kExact,
  /// Entropic-regularized Sinkhorn iterations over the K x L cost matrix.
  kSinkhorn,
  /// Sliced-1D: average of exact 1-d EMDs over deterministic projections.
  kSliced,
};

/// \brief Short lowercase name ("exact", "sinkhorn", "sliced").
const char* EmdSolverKindName(EmdSolverKind kind);

/// \brief Every solver kind, in declaration order (registry name table).
const std::vector<EmdSolverKind>& AllEmdSolverKinds();

/// \brief Inverse of EmdSolverKindName; rejects unknown names with a message
/// listing the known ones.
Result<EmdSolverKind> ParseEmdSolverKind(const std::string& name);

/// \brief Full solver selection: the kind plus its tuning knobs. Every field
/// has a deterministic effect — two runs with equal options, equal inputs,
/// and equal ground distance produce bitwise-identical values regardless of
/// thread-pool size or shard count.
struct EmdSolverOptions {
  EmdSolverKind kind = EmdSolverKind::kExact;

  /// Sinkhorn regularization strength, RELATIVE to the mean ground distance
  /// of the pair being solved (scale-free: doubling all coordinates does not
  /// change the iteration count or the relative error). Smaller = closer to
  /// exact EMD but slower to converge; below ~0.01 the Gibbs kernel can
  /// underflow and the solve reports an error instead of returning noise.
  double sinkhorn_eps = 0.1;
  /// Hard iteration cap — with the tolerance below, this makes the iteration
  /// count (and therefore the result) a pure function of the inputs.
  std::size_t sinkhorn_max_iters = 100;
  /// L1 marginal-violation threshold (on unit-mass-normalized weights) that
  /// ends the iteration early.
  double sinkhorn_tolerance = 1e-6;

  /// Sliced-1D: number of fixed, seed-derived projection directions. More
  /// directions = a more stable estimate (exact in d = 1 for any n).
  std::size_t sliced_projections = 16;

  /// Exact-solver K+L crossover for the indexed 4-ary-heap Dijkstra inside
  /// EmdWorkspace (spec key `emd-heap-at=`, NOT part of the `emd=` value —
  /// it tunes HOW the exact solve runs, never WHAT it returns: the heap is
  /// bitwise-identical to the dense scan by construction). 0 = always the
  /// dense scan. Ignored by the approximate kinds.
  std::size_t heap_at = kDefaultEmdHeapAt;

  /// Graceful degradation (spec key `emd-fallback=exact`, NOT part of the
  /// `emd=` value): when true, an approximate solve that fails with a typed
  /// error — Sinkhorn underflow at small eps, non-convergence into a
  /// non-finite transport — is transparently retried with the exact solver
  /// on the same pair instead of surfacing the error. Deterministic: whether
  /// a pair falls back is a pure function of the pair and these options.
  bool fallback_exact = false;

  /// Deterministic scope identifier threaded to the fault injector by the
  /// solves running under these options (the owning detector stamps its seed
  /// here; see fault/fault_injector.h). Not a spec key, never serialized;
  /// has no effect unless a fault is armed.
  std::uint64_t fault_scope = 0;
};

/// \brief Validates the tuning knobs (eps > 0, at least one iteration /
/// projection, finite tolerance >= 0). Knobs of non-selected kinds are still
/// validated so a spec round-trips without losing errors.
Status ValidateEmdSolverOptions(const EmdSolverOptions& options);

/// \brief Parses the spec-string form used by the `emd=` key:
///   "exact"
///   "sinkhorn" | "sinkhorn:EPS" | "sinkhorn:EPS:ITERS" |
///   "sinkhorn:EPS:ITERS:TOL"
///   "sliced" | "sliced:N"
/// Omitted parameters keep their defaults. Numbers are parsed
/// locale-independently.
Result<EmdSolverOptions> ParseEmdSolverSpec(const std::string& spec);

/// \brief Canonical spec string: "exact", "sinkhorn:EPS[:ITERS:TOL]" (the
/// long form only when iters/tol differ from the defaults), or "sliced:N".
/// ParseEmdSolverSpec(EmdSolverSpecString(o)) reproduces the selected kind's
/// knobs exactly.
std::string EmdSolverSpecString(const EmdSolverOptions& options);

}  // namespace bagcpd

#endif  // BAGCPD_EMD_APPROX_OPTIONS_H_
