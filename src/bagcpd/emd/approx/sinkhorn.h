// Entropic-regularized approximate EMD (Cuturi-style Sinkhorn scaling) over
// a prepared K x L ground-distance matrix.
//
// The exact transportation solve costs O(K^3)-ish per pair; Sinkhorn runs a
// fixed, data-independent sequence of dense vector/matrix products — two
// GEMV-shaped passes over the Gibbs kernel per iteration — which the
// compiler vectorizes the same way as the batched cost fill. The price is an
// entropic bias: the returned value upper-bounds the exact EMD and
// approaches it as eps -> 0.
//
// Determinism contract: for equal inputs and equal options the iteration
// count, every intermediate, and the returned value are bitwise-identical —
// no threading, no data-dependent reordering, a hard iteration cap, and a
// convergence test on exact floating-point comparisons.

#ifndef BAGCPD_EMD_APPROX_SINKHORN_H_
#define BAGCPD_EMD_APPROX_SINKHORN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/emd/approx/options.h"

namespace bagcpd {

/// \brief Reusable Sinkhorn iteration state. Buffers grow monotonically
/// (allocation_count pins zero steady-state allocations, same discipline as
/// EmdWorkspace); Release() drops them for the byte-ceiling policy.
class SinkhornScratch {
 public:
  std::uint64_t allocation_count() const { return allocation_count_; }
  std::uint64_t solve_count() const { return solve_count_; }
  std::size_t retained_bytes() const;
  void Release();

 private:
  friend Result<double> SinkhornEmd(const double* cost, std::size_t k,
                                    std::size_t l, const double* wa,
                                    const double* wb,
                                    const EmdSolverOptions& options,
                                    SinkhornScratch* scratch);

  void Ensure(std::vector<double>* v, std::size_t count) {
    if (v->size() >= count) return;
    if (v->capacity() < count) ++allocation_count_;
    v->resize(count);
  }

  std::vector<double> kernel_;  // K x L Gibbs kernel exp(-C / eps_abs).
  std::vector<double> p_;       // Unit-mass-normalized supply weights (K).
  std::vector<double> q_;       // Unit-mass-normalized demand weights (L).
  std::vector<double> u_;       // Row scaling vector (K).
  std::vector<double> v_;       // Column scaling vector (L).
  std::vector<double> kv_;      // kernel * v (K).
  std::vector<double> ktu_;     // kernel^T * u (L).

  std::uint64_t allocation_count_ = 0;
  std::uint64_t solve_count_ = 0;
};

/// \brief Approximate EMD between two weighted point sets whose K x L
/// ground-distance matrix is already computed (EmdWorkspace::PrepareCost).
///
/// Both weight vectors are normalized to unit mass first, so the result
/// approximates the EMD between the signatures viewed as probability
/// distributions — identical semantics to the exact partial-matching value
/// whenever the two signatures carry equal total weight (the detector path:
/// signatures are weight-normalized). eps is relative to the mean ground
/// distance (see EmdSolverOptions); an eps small enough to underflow the
/// Gibbs kernel returns an error rather than a garbage value.
Result<double> SinkhornEmd(const double* cost, std::size_t k, std::size_t l,
                           const double* wa, const double* wb,
                           const EmdSolverOptions& options,
                           SinkhornScratch* scratch);

}  // namespace bagcpd

#endif  // BAGCPD_EMD_APPROX_SINKHORN_H_
