// Earth Mover's Distance between signatures (paper Section 3.2, Eqs. 7-12;
// Rubner, Tomasi & Guibas 2000). Supports partial matching: when the two
// signatures carry different total weight, only min(W, W') mass is moved and
// the distance is normalized by the moved mass (Eq. 12), exactly as in the
// paper's formulation.
//
// All entry points take SignatureView, so owning Signatures (implicit
// conversion), SignatureSet members, and SignatureRing slots all flow through
// one code path. The batch helpers take SignatureSet — one shared buffer for
// the whole batch — with std::vector<Signature> shims for incremental
// migration; both produce bitwise-identical matrices.

#ifndef BAGCPD_EMD_EMD_H_
#define BAGCPD_EMD_EMD_H_

#include <vector>

#include "bagcpd/common/matrix.h"
#include "bagcpd/common/result.h"
#include "bagcpd/emd/ground_distance.h"
#include "bagcpd/signature/signature.h"
#include "bagcpd/signature/signature_set.h"

namespace bagcpd {

class ThreadPool;

/// \brief Detailed EMD output including the optimal flow.
struct EmdSolution {
  /// The Earth Mover's Distance (Eq. 12): cost / moved mass.
  double emd = 0.0;
  /// Total transported mass == min(total weight of a, total weight of b).
  double total_flow = 0.0;
  /// Total transportation cost sum_kl f*_kl d_kl.
  double cost = 0.0;
  /// flow(k, l) = optimal f*_kl (size K x L).
  Matrix flow;
};

/// \brief Computes the EMD and the optimal flow between two signatures.
///
/// Fails with Invalid if either signature is structurally invalid.
Result<EmdSolution> ComputeEmdDetailed(SignatureView a, SignatureView b,
                                       const GroundDistanceFn& ground);

/// \brief Convenience overload returning only the distance value, using the
/// given built-in ground distance (default: Euclidean, the paper's choice).
Result<double> ComputeEmd(SignatureView a, SignatureView b,
                          GroundDistance ground = GroundDistance::kEuclidean);

/// \brief Convenience overload with a custom ground distance.
Result<double> ComputeEmd(SignatureView a, SignatureView b,
                          const GroundDistanceFn& ground);

/// \brief Dense symmetric matrix of pairwise EMDs over a set of signatures
/// (used by the Fig. 6 EMD heat maps and MDS embeddings).
Result<Matrix> PairwiseEmdMatrix(const SignatureSet& signatures,
                                 GroundDistance ground = GroundDistance::kEuclidean);

/// \brief Parallel variant: solves the C(n, 2) transportation problems over
/// `pool` (ParallelFor with deterministic chunking — the chunk split is a
/// pure function of the pair count and pool size). Each EMD depends only on
/// its two signatures, so the matrix is bitwise-identical to the serial
/// overload for any pool size; `pool == nullptr` falls back to the serial
/// path outright.
Result<Matrix> PairwiseEmdMatrix(const SignatureSet& signatures,
                                 GroundDistance ground, ThreadPool* pool);

/// \brief AoS compatibility shim; identical output to the SignatureSet form.
Result<Matrix> PairwiseEmdMatrix(const std::vector<Signature>& signatures,
                                 GroundDistance ground = GroundDistance::kEuclidean);

/// \brief Dense |a| x |b| matrix of EMDs between two signature sets (the
/// cross-entropy table of the information estimators).
Result<Matrix> CrossDistanceMatrix(const SignatureSet& a,
                                   const SignatureSet& b,
                                   GroundDistance ground = GroundDistance::kEuclidean);

/// \brief Parallel variant: fills the |a| x |b| table over `pool` with
/// deterministic row chunking (the split is a pure function of the row count
/// and pool size; each worker fills whole rows). Bitwise-identical to the
/// serial overload for any pool size; `pool == nullptr` falls back to it
/// outright.
Result<Matrix> CrossDistanceMatrix(const SignatureSet& a,
                                   const SignatureSet& b,
                                   GroundDistance ground, ThreadPool* pool);

/// \brief AoS compatibility shim; identical output to the SignatureSet form.
Result<Matrix> CrossDistanceMatrix(const std::vector<Signature>& a,
                                   const std::vector<Signature>& b,
                                   GroundDistance ground = GroundDistance::kEuclidean);

}  // namespace bagcpd

#endif  // BAGCPD_EMD_EMD_H_
