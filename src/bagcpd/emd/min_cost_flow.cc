#include "bagcpd/emd/min_cost_flow.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "bagcpd/common/check.h"

namespace bagcpd {

MinCostFlow::MinCostFlow(std::size_t num_nodes) : graph_(num_nodes) {}

int MinCostFlow::AddArc(std::size_t from, std::size_t to, double capacity,
                        double cost) {
  BAGCPD_CHECK(from < graph_.size() && to < graph_.size());
  if (build_status_.ok()) {
    // Deferred, not aborted: capacities/costs come straight from observation
    // weights and ground distances, so corrupt input must surface as a typed
    // error from Solve() rather than kill the process.
    if (!(capacity >= 0.0)) {
      build_status_ = Status::Invalid("negative or NaN arc capacity");
    } else if (!(std::isfinite(cost) && cost >= 0.0)) {
      build_status_ =
          Status::Invalid("arc cost must be finite and non-negative");
    }
  }
  if (!std::isfinite(cost)) cost = 0.0;  // Keep the graph arithmetic-safe.
  if (!(capacity >= 0.0)) capacity = 0.0;
  const std::size_t fwd_index = graph_[from].size();
  const std::size_t rev_index = graph_[to].size();
  graph_[from].push_back(Arc{to, capacity, cost, rev_index});
  graph_[to].push_back(Arc{from, 0.0, -cost, fwd_index});
  arc_handles_.emplace_back(from, fwd_index);
  return static_cast<int>(arc_handles_.size()) - 1;
}

Result<FlowSolution> MinCostFlow::Solve(std::size_t source, std::size_t sink,
                                        double amount) {
  if (source >= graph_.size() || sink >= graph_.size()) {
    return Status::Invalid("source/sink out of range");
  }
  if (!build_status_.ok()) return build_status_;
  if (!(amount >= 0.0)) return Status::Invalid("negative or NaN flow amount");

  FlowSolution solution;
  if (amount <= kFlowEpsilon) return solution;

  const std::size_t n = graph_.size();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> potential(n, 0.0);
  std::vector<double> dist(n);
  std::vector<std::size_t> prev_node(n);
  std::vector<std::size_t> prev_arc(n);

  double remaining = amount;
  while (remaining > kFlowEpsilon) {
    // Dijkstra on reduced costs cost + h[u] - h[v] (all >= 0 by induction).
    std::fill(dist.begin(), dist.end(), inf);
    dist[source] = 0.0;
    using QueueItem = std::pair<double, std::size_t>;
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
    pq.emplace(0.0, source);
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u] + kFlowEpsilon) continue;
      for (std::size_t idx = 0; idx < graph_[u].size(); ++idx) {
        const Arc& arc = graph_[u][idx];
        if (arc.capacity <= kFlowEpsilon) continue;
        // Reduced cost; clamp tiny negatives from floating-point noise.
        double rc = arc.cost + potential[u] - potential[arc.to];
        if (rc < 0.0) rc = 0.0;
        const double nd = dist[u] + rc;
        if (nd + kFlowEpsilon < dist[arc.to]) {
          dist[arc.to] = nd;
          prev_node[arc.to] = u;
          prev_arc[arc.to] = idx;
          pq.emplace(nd, arc.to);
        }
      }
    }
    if (!std::isfinite(dist[sink])) {
      return Status::Invalid(
          "network cannot carry the requested flow (short by " +
          std::to_string(remaining) + " units)");
    }
    // Update potentials.
    for (std::size_t v = 0; v < n; ++v) {
      if (std::isfinite(dist[v])) potential[v] += dist[v];
    }
    // Find the bottleneck on the path.
    double push = remaining;
    for (std::size_t v = sink; v != source; v = prev_node[v]) {
      push = std::min(push, graph_[prev_node[v]][prev_arc[v]].capacity);
    }
    if (!(push > 0.0)) {
      // A zero/NaN bottleneck on a reachable path means the input weights
      // were degenerate (e.g. NaN propagated into capacities); typed error
      // instead of an abort so the caller can contain the stream.
      return Status::Internal("augmenting path has no positive bottleneck");
    }
    // Augment.
    for (std::size_t v = sink; v != source; v = prev_node[v]) {
      Arc& arc = graph_[prev_node[v]][prev_arc[v]];
      arc.capacity -= push;
      graph_[arc.to][arc.rev].capacity += push;
      solution.cost += push * arc.cost;
    }
    solution.flow += push;
    remaining -= push;
    ++solution.iterations;
  }
  return solution;
}

double MinCostFlow::FlowOn(int arc_id) const {
  BAGCPD_CHECK(arc_id >= 0 &&
               static_cast<std::size_t>(arc_id) < arc_handles_.size());
  const auto [node, index] = arc_handles_[static_cast<std::size_t>(arc_id)];
  const Arc& fwd = graph_[node][index];
  // Flow on the forward arc equals the residual capacity of its reverse arc.
  return graph_[fwd.to][fwd.rev].capacity;
}

}  // namespace bagcpd
