#include "bagcpd/emd/distance_cache.h"

#include <vector>

namespace bagcpd {

Result<double> PairwiseDistanceCache::Get(std::uint64_t i, std::uint64_t j) {
  if (i == j) return 0.0;
  const Key key = MakeKey(i, j);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  BAGCPD_ASSIGN_OR_RETURN(double value, compute_(i, j));
  cache_.emplace(key, value);
  return value;
}

bool PairwiseDistanceCache::Contains(std::uint64_t i, std::uint64_t j) const {
  if (i == j) return true;
  return cache_.find(MakeKey(i, j)) != cache_.end();
}

void PairwiseDistanceCache::Put(std::uint64_t i, std::uint64_t j,
                                double value) {
  if (i == j) return;
  if (cache_.emplace(MakeKey(i, j), value).second) ++misses_;
}

void PairwiseDistanceCache::EvictBefore(std::uint64_t min_index) {
  std::vector<Key> doomed;
  doomed.reserve(cache_.size());
  for (const auto& [key, value] : cache_) {
    if (key.first < min_index) doomed.push_back(key);
  }
  for (const Key& key : doomed) cache_.erase(key);
}

}  // namespace bagcpd
