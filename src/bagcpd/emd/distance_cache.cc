#include "bagcpd/emd/distance_cache.h"

#include <vector>

namespace bagcpd {

Result<double> PairwiseDistanceCache::Get(std::uint64_t i, std::uint64_t j) {
  if (i == j) return 0.0;
  const std::uint64_t key = Key(i, j);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  BAGCPD_ASSIGN_OR_RETURN(double value, compute_(i, j));
  cache_.emplace(key, value);
  return value;
}

void PairwiseDistanceCache::EvictBefore(std::uint64_t min_index) {
  std::vector<std::uint64_t> doomed;
  doomed.reserve(cache_.size());
  for (const auto& [key, value] : cache_) {
    const std::uint64_t lo = key >> 32;
    if (lo < min_index) doomed.push_back(key);
  }
  for (std::uint64_t key : doomed) cache_.erase(key);
}

}  // namespace bagcpd
