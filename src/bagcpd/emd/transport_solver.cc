#include "bagcpd/emd/transport_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "bagcpd/common/check.h"
#include "bagcpd/common/point.h"
#include "bagcpd/emd/min_cost_flow.h"  // kFlowEpsilon, shared with the reference.

namespace bagcpd {

template <typename T>
void EmdWorkspace::Ensure(std::vector<T>* v, std::size_t count) {
  if (v->size() >= count) return;
  if (v->capacity() < count) ++allocation_count_;
  v->resize(count);
}

void EmdWorkspace::LayoutShape(std::size_t k, std::size_t l) {
  k_ = k;
  l_ = l;
  nodes_ = k_ + l_ + 2;
  arcs_ = 2 * (k_ + l_ + k_ * l_);
  Ensure(&arc_to_, arcs_);
  Ensure(&arc_rev_, arcs_);
  Ensure(&arc_cap_, arcs_);
  Ensure(&arc_cost_, arcs_);
  Ensure(&dist_, nodes_);
  Ensure(&potential_, nodes_);
  Ensure(&prev_node_, nodes_);
  Ensure(&prev_arc_, nodes_);
  Ensure(&visited_, nodes_);
  Ensure(&heap_, nodes_);
  Ensure(&heap_pos_, nodes_);
}

Status EmdWorkspace::Layout(SignatureView a, SignatureView b) {
  BAGCPD_RETURN_NOT_OK(a.Validate());
  BAGCPD_RETURN_NOT_OK(b.Validate());
  if (a.dim() != b.dim()) {
    return Status::Invalid("signatures have different dimensions");
  }
  LayoutShape(a.size(), b.size());
  Ensure(&cost_matrix_, k_ * l_);
  // Sized in Layout (not just in the enum kernel) so that once a shape has
  // been seen through ANY path, no path allocates for it again.
  Ensure(&b_transposed_, a.dim() * l_);
  return Status::OK();
}

namespace {

// Batched ground-distance fill: cost is a row-major (k x width) block whose
// columns correspond to the transposed demand block `bt` (d x width). One
// enum dispatch for the whole block, unit-stride inner loops. Every entry
// accumulates its per-coordinate terms in the same t order with the same
// operations as the scalar PointView kernels (init with the t=0 term, then
// one squared/absolute difference per coordinate; 0 + x == x exactly for the
// non-negative terms involved), and the baseline x86-64 target has no FMA
// contraction to re-associate them — so each entry is bitwise-identical
// regardless of `width`. That invariance is what lets the batch path fill
// MANY pairs' cost matrices in one wide pass (width = sum of the pairs' L)
// and still match the per-pair fill bit for bit.
void FillCostBlock(const double* ac, std::size_t k, std::size_t d,
                   const double* bt, std::size_t width, GroundDistance ground,
                   double* cost) {
  switch (ground) {
    case GroundDistance::kSquaredEuclidean:
      for (std::size_t i = 0; i < k; ++i) {
        const double* ai = ac + i * d;
        double* row = cost + i * width;
        const double a0 = ai[0];
        for (std::size_t j = 0; j < width; ++j) {
          const double diff = a0 - bt[j];
          row[j] = diff * diff;
        }
        for (std::size_t t = 1; t < d; ++t) {
          const double at = ai[t];
          const double* btr = bt + t * width;
          for (std::size_t j = 0; j < width; ++j) {
            const double diff = at - btr[j];
            row[j] += diff * diff;
          }
        }
      }
      break;
    case GroundDistance::kManhattan:
      for (std::size_t i = 0; i < k; ++i) {
        const double* ai = ac + i * d;
        double* row = cost + i * width;
        const double a0 = ai[0];
        for (std::size_t j = 0; j < width; ++j) {
          row[j] = std::abs(a0 - bt[j]);
        }
        for (std::size_t t = 1; t < d; ++t) {
          const double at = ai[t];
          const double* btr = bt + t * width;
          for (std::size_t j = 0; j < width; ++j) {
            row[j] += std::abs(at - btr[j]);
          }
        }
      }
      break;
    case GroundDistance::kEuclidean:
    default:  // MakeGroundDistance falls back to Euclidean as well.
      for (std::size_t i = 0; i < k; ++i) {
        const double* ai = ac + i * d;
        double* row = cost + i * width;
        const double a0 = ai[0];
        for (std::size_t j = 0; j < width; ++j) {
          const double diff = a0 - bt[j];
          row[j] = diff * diff;
        }
        for (std::size_t t = 1; t < d; ++t) {
          const double at = ai[t];
          const double* btr = bt + t * width;
          for (std::size_t j = 0; j < width; ++j) {
            const double diff = at - btr[j];
            row[j] += diff * diff;
          }
        }
        for (std::size_t j = 0; j < width; ++j) {
          row[j] = std::sqrt(row[j]);
        }
      }
      break;
  }
}

// Same rejection the reference applies per transport arc, in the same
// row-major order, so the surfaced error is identical. `stride` lets the
// batch path validate a pair whose rows live inside a wider block.
Status ValidateCostBlock(const double* cost, std::size_t k, std::size_t l,
                         std::size_t stride) {
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      const double dist = cost[i * stride + j];
      if (!(dist >= 0.0) || !std::isfinite(dist)) {
        return Status::Invalid("ground distance produced a negative or "
                               "non-finite value");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status EmdWorkspace::PrepareCost(SignatureView a, SignatureView b,
                                 GroundDistance ground) {
  BAGCPD_RETURN_NOT_OK(Layout(a, b));
  // Batched kernel: one dispatch for the whole K x L matrix, streaming both
  // packed center blocks, instead of a GroundDistanceFn call per arc. The
  // demand centers are transposed once into a (d x L) block so every inner
  // loop walks unit-stride over j — straight-line code the compiler
  // auto-vectorizes. See FillCostBlock for the bitwise-identity argument.
  const std::size_t d = a.dim();
  const double* bc = b.centers_data();
  double* bt = b_transposed_.data();
  for (std::size_t j = 0; j < l_; ++j) {
    for (std::size_t t = 0; t < d; ++t) {
      bt[t * l_ + j] = bc[j * d + t];
    }
  }
  FillCostBlock(a.centers_data(), k_, d, bt, l_, ground, cost_matrix_.data());
  return ValidateCostBlock(cost_matrix_.data(), k_, l_, l_);
}

Status EmdWorkspace::Prepare(SignatureView a, SignatureView b,
                             const GroundDistanceFn& ground) {
  BAGCPD_RETURN_NOT_OK(Layout(a, b));
  double* cost = cost_matrix_.data();
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = 0; j < l_; ++j) {
      const double dist = ground(a.center(i), b.center(j));
      if (!(dist >= 0.0) || !std::isfinite(dist)) {
        return Status::Invalid("ground distance produced a negative or "
                               "non-finite value");
      }
      cost[i * l_ + j] = dist;
    }
  }
  return Status::OK();
}

void EmdWorkspace::BuildNetwork(SignatureView a, SignatureView b,
                                const double* cost_block,
                                std::size_t cost_stride) {
  // Node layout (identical to the reference construction): source = 0,
  // supply nodes 1..K, demand nodes K+1..K+L, sink = K+L+1. Per-node arc
  // order also matches the reference adjacency lists exactly — forward and
  // residual arcs land where MinCostFlow::AddArc would have appended them —
  // so Dijkstra relaxes arcs in the identical sequence:
  //   source:    K forward arcs to the supply nodes.
  //   supply i:  residual to source, then L forward transport arcs.
  //   demand j:  K residual transport arcs (one per supply), then the
  //              forward arc to the sink.
  //   sink:      L residual arcs to the demand nodes.
  const double* wa = a.weights_data();
  const double* wb = b.weights_data();
  const std::size_t supply_base = k_;                    // First supply arc.
  const std::size_t demand_base = k_ + k_ * (l_ + 1);    // First demand arc.
  const std::size_t sink_base = demand_base + l_ * (k_ + 1);
  const std::size_t sink = nodes_ - 1;
  for (std::size_t i = 0; i < k_; ++i) {
    const std::size_t fwd = i;                      // source -> supply i.
    const std::size_t rev = supply_base + i * (l_ + 1);
    arc_to_[fwd] = 1 + i;
    arc_cap_[fwd] = wa[i];
    arc_cost_[fwd] = 0.0;
    arc_rev_[fwd] = rev;
    arc_to_[rev] = 0;
    arc_cap_[rev] = 0.0;
    arc_cost_[rev] = -0.0;
    arc_rev_[rev] = fwd;
  }
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = 0; j < l_; ++j) {
      const std::size_t fwd = supply_base + i * (l_ + 1) + 1 + j;
      const std::size_t rev = demand_base + j * (k_ + 1) + i;
      const double cost = cost_block[i * cost_stride + j];
      arc_to_[fwd] = 1 + k_ + j;
      arc_cap_[fwd] = std::min(wa[i], wb[j]);
      arc_cost_[fwd] = cost;
      arc_rev_[fwd] = rev;
      arc_to_[rev] = 1 + i;
      arc_cap_[rev] = 0.0;
      arc_cost_[rev] = -cost;
      arc_rev_[rev] = fwd;
    }
  }
  for (std::size_t j = 0; j < l_; ++j) {
    const std::size_t fwd = demand_base + j * (k_ + 1) + k_;
    const std::size_t rev = sink_base + j;
    arc_to_[fwd] = sink;
    arc_cap_[fwd] = wb[j];
    arc_cost_[fwd] = 0.0;
    arc_rev_[fwd] = rev;
    arc_to_[rev] = 1 + k_ + j;
    arc_cap_[rev] = 0.0;
    arc_cost_[rev] = -0.0;
    arc_rev_[rev] = fwd;
  }
}

void EmdWorkspace::DijkstraDense() {
  // Dense O(n^2) selection: the network is complete bipartite and, at the
  // paper's signature sizes, tiny — a branch-light scan beats a heap. The
  // strict `<` makes the lowest-index node win among equal distances, which
  // reproduces the reference heap's (distance, node) pop order exactly,
  // augmentation for augmentation.
  const std::size_t supply_base = k_;
  const std::size_t demand_base = k_ + k_ * (l_ + 1);
  const std::size_t sink_base = demand_base + l_ * (k_ + 1);
  const std::size_t source = 0;
  const std::size_t sink = nodes_ - 1;
  const double inf = std::numeric_limits<double>::infinity();
  std::fill(visited_.begin(), visited_.begin() + nodes_, 0);
  for (;;) {
    std::size_t u = nodes_;
    double best = inf;
    for (std::size_t v = 0; v < nodes_; ++v) {
      if (!visited_[v] && dist_[v] < best) {
        best = dist_[v];
        u = v;
      }
    }
    if (u == nodes_) break;  // Remaining nodes are unreachable.
    visited_[u] = 1;
    std::size_t begin;
    std::size_t end;
    if (u == source) {
      begin = 0;
      end = k_;
    } else if (u <= k_) {
      begin = supply_base + (u - 1) * (l_ + 1);
      end = begin + l_ + 1;
    } else if (u < sink) {
      begin = demand_base + (u - 1 - k_) * (k_ + 1);
      end = begin + k_ + 1;
    } else {
      begin = sink_base;
      end = arcs_;
    }
    const double du = dist_[u];
    const double pu = potential_[u];
    for (std::size_t e = begin; e < end; ++e) {
      if (arc_cap_[e] <= kFlowEpsilon) continue;
      const std::size_t to = arc_to_[e];
      // Reduced cost; clamp tiny negatives from floating-point noise.
      double rc = arc_cost_[e] + pu - potential_[to];
      if (rc < 0.0) rc = 0.0;
      const double nd = du + rc;
      if (nd + kFlowEpsilon < dist_[to]) {
        dist_[to] = nd;
        prev_node_[to] = u;
        prev_arc_[to] = e;
      }
    }
  }
}

void EmdWorkspace::HeapSiftUp(std::size_t pos) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!HeapLess(heap_[pos], heap_[parent])) break;
    std::swap(heap_[pos], heap_[parent]);
    heap_pos_[heap_[pos]] = pos + 1;
    heap_pos_[heap_[parent]] = parent + 1;
    pos = parent;
  }
}

void EmdWorkspace::HeapSiftDown(std::size_t pos) {
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= heap_size_) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, heap_size_);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (HeapLess(heap_[c], heap_[best])) best = c;
    }
    if (!HeapLess(heap_[best], heap_[pos])) break;
    std::swap(heap_[pos], heap_[best]);
    heap_pos_[heap_[pos]] = pos + 1;
    heap_pos_[heap_[best]] = best + 1;
    pos = best;
  }
}

void EmdWorkspace::DijkstraHeap() {
  // Indexed 4-ary heap with decrease-key, keyed by the exact (dist, node)
  // pairs the dense scan minimizes. At any step the heap holds precisely the
  // unvisited nodes with finite tentative distance (a node enters when first
  // relaxed, leaves when popped; a popped node can never be relaxed again
  // because reduced costs are clamped >= 0, so nd >= du >= its final dist).
  // The pop sequence — and therefore every relaxation, prev pointer, and
  // augmentation downstream — is bitwise-identical to DijkstraDense; only
  // the selection cost changes. 4-ary beats binary here: sift-downs touch
  // one cache line of children per level and the tree is half as deep.
  const std::size_t supply_base = k_;
  const std::size_t demand_base = k_ + k_ * (l_ + 1);
  const std::size_t sink_base = demand_base + l_ * (k_ + 1);
  const std::size_t source = 0;
  const std::size_t sink = nodes_ - 1;
  std::fill(heap_pos_.begin(), heap_pos_.begin() + nodes_, 0);
  heap_[0] = source;
  heap_pos_[source] = 1;
  heap_size_ = 1;
  while (heap_size_ > 0) {
    const std::size_t u = heap_[0];
    heap_pos_[u] = 0;
    --heap_size_;
    if (heap_size_ > 0) {
      heap_[0] = heap_[heap_size_];
      heap_pos_[heap_[0]] = 1;
      HeapSiftDown(0);
    }
    std::size_t begin;
    std::size_t end;
    if (u == source) {
      begin = 0;
      end = k_;
    } else if (u <= k_) {
      begin = supply_base + (u - 1) * (l_ + 1);
      end = begin + l_ + 1;
    } else if (u < sink) {
      begin = demand_base + (u - 1 - k_) * (k_ + 1);
      end = begin + k_ + 1;
    } else {
      begin = sink_base;
      end = arcs_;
    }
    const double du = dist_[u];
    const double pu = potential_[u];
    for (std::size_t e = begin; e < end; ++e) {
      if (arc_cap_[e] <= kFlowEpsilon) continue;
      const std::size_t to = arc_to_[e];
      // Identical relaxation to the dense scan, plus the heap bookkeeping.
      double rc = arc_cost_[e] + pu - potential_[to];
      if (rc < 0.0) rc = 0.0;
      const double nd = du + rc;
      if (nd + kFlowEpsilon < dist_[to]) {
        dist_[to] = nd;
        prev_node_[to] = u;
        prev_arc_[to] = e;
        if (heap_pos_[to] != 0) {
          HeapSiftUp(heap_pos_[to] - 1);  // Decrease-key.
        } else {
          heap_[heap_size_] = to;
          heap_pos_[to] = heap_size_ + 1;
          ++heap_size_;
          HeapSiftUp(heap_size_ - 1);
        }
      }
    }
  }
}

Status EmdWorkspace::SolveNetwork(SignatureView a, SignatureView b,
                                  const double* cost_block,
                                  std::size_t cost_stride, double* emd_out,
                                  double* total_flow_out, double* cost_out) {
  const double supply = a.TotalWeight();
  const double demand = b.TotalWeight();
  // Requesting min(W, W') units enforces Eq. 11 (partial matching).
  const double amount = std::min(supply, demand);
  BuildNetwork(a, b, cost_block, cost_stride);

  const std::size_t source = 0;
  const std::size_t sink = nodes_ - 1;
  const double inf = std::numeric_limits<double>::infinity();
  // Both strategies pop the same (dist, node) order — the heap just pays
  // O(log n) per pop instead of an O(n) scan, which wins once the network
  // outgrows the paper's typical signature sizes.
  const bool use_heap = heap_threshold_ != 0 && k_ + l_ >= heap_threshold_;

  double flow = 0.0;
  double cost = 0.0;
  if (amount > kFlowEpsilon) {
    std::fill(potential_.begin(), potential_.begin() + nodes_, 0.0);
    double remaining = amount;
    while (remaining > kFlowEpsilon) {
      // Dijkstra on reduced costs cost + h[u] - h[v] (all >= 0 by
      // induction).
      std::fill(dist_.begin(), dist_.begin() + nodes_, inf);
      dist_[source] = 0.0;
      if (use_heap) {
        DijkstraHeap();
      } else {
        DijkstraDense();
      }
      if (!std::isfinite(dist_[sink])) {
        return Status::Invalid(
            "network cannot carry the requested flow (short by " +
            std::to_string(remaining) + " units)");
      }
      // Update potentials.
      for (std::size_t v = 0; v < nodes_; ++v) {
        if (std::isfinite(dist_[v])) potential_[v] += dist_[v];
      }
      // Find the bottleneck on the path.
      double push = remaining;
      for (std::size_t v = sink; v != source; v = prev_node_[v]) {
        push = std::min(push, arc_cap_[prev_arc_[v]]);
      }
      if (!(push > 0.0)) {
        // A zero/NaN bottleneck on a reachable path means degenerate input
        // (e.g. NaN weights turned the requested amount NaN); surface it as
        // a typed error so the stream can be contained, never an abort.
        return Status::Internal("augmenting path has no positive bottleneck");
      }
      // Augment.
      for (std::size_t v = sink; v != source; v = prev_node_[v]) {
        const std::size_t e = prev_arc_[v];
        arc_cap_[e] -= push;
        arc_cap_[arc_rev_[e]] += push;
        cost += push * arc_cost_[e];
      }
      flow += push;
      remaining -= push;
    }
  }
  // Eq. 12. The moved mass is positive whenever signature weights are
  // strictly positive; anything else (NaN weights leave flow at 0) is
  // degenerate input reported as a typed error, never an abort.
  if (!(flow > 0.0)) {
    return Status::Invalid("no transportable mass (degenerate weights)");
  }
  *emd_out = cost / flow;
  *total_flow_out = flow;
  *cost_out = cost;
  ++solve_count_;
  return Status::OK();
}

std::size_t EmdWorkspace::retained_bytes() const {
  std::size_t bytes = 0;
  bytes += cost_matrix_.capacity() * sizeof(double);
  bytes += b_transposed_.capacity() * sizeof(double);
  bytes += arc_to_.capacity() * sizeof(std::size_t);
  bytes += arc_rev_.capacity() * sizeof(std::size_t);
  bytes += arc_cap_.capacity() * sizeof(double);
  bytes += arc_cost_.capacity() * sizeof(double);
  bytes += dist_.capacity() * sizeof(double);
  bytes += potential_.capacity() * sizeof(double);
  bytes += prev_node_.capacity() * sizeof(std::size_t);
  bytes += prev_arc_.capacity() * sizeof(std::size_t);
  bytes += visited_.capacity() * sizeof(char);
  bytes += heap_.capacity() * sizeof(std::size_t);
  bytes += heap_pos_.capacity() * sizeof(std::size_t);
  bytes += batch_cost_.capacity() * sizeof(double);
  bytes += batch_off_.capacity() * sizeof(std::size_t);
  return bytes;
}

void EmdWorkspace::ShrinkToCeiling() {
  if (retained_byte_ceiling_ == 0) return;
  if (retained_bytes() <= retained_byte_ceiling_) return;
  ReleaseBuffers();
}

void EmdWorkspace::ReleaseBuffers() {
  // Drop everything rather than trimming individual arrays: partial trimming
  // would leave the buffers inconsistent with (k_, l_) and save little — the
  // common cause of an oversized footprint is one outlier pair inflating
  // every array at once.
  std::vector<double>().swap(cost_matrix_);
  std::vector<double>().swap(b_transposed_);
  std::vector<std::size_t>().swap(arc_to_);
  std::vector<std::size_t>().swap(arc_rev_);
  std::vector<double>().swap(arc_cap_);
  std::vector<double>().swap(arc_cost_);
  std::vector<double>().swap(dist_);
  std::vector<double>().swap(potential_);
  std::vector<std::size_t>().swap(prev_node_);
  std::vector<std::size_t>().swap(prev_arc_);
  std::vector<char>().swap(visited_);
  std::vector<std::size_t>().swap(heap_);
  std::vector<std::size_t>().swap(heap_pos_);
  std::vector<double>().swap(batch_cost_);
  std::vector<std::size_t>().swap(batch_off_);
  k_ = 0;
  l_ = 0;
  nodes_ = 0;
  arcs_ = 0;
}

Result<double> EmdWorkspace::Compute(SignatureView a, SignatureView b,
                                     GroundDistance ground) {
  BAGCPD_RETURN_NOT_OK(PrepareCost(a, b, ground));
  double emd = 0.0;
  double total_flow = 0.0;
  double cost = 0.0;
  BAGCPD_RETURN_NOT_OK(SolveNetwork(a, b, cost_matrix_.data(), l_, &emd,
                                    &total_flow, &cost));
  return emd;
}

Result<double> EmdWorkspace::Compute(SignatureView a, SignatureView b,
                                     const GroundDistanceFn& ground) {
  BAGCPD_RETURN_NOT_OK(Prepare(a, b, ground));
  double emd = 0.0;
  double total_flow = 0.0;
  double cost = 0.0;
  BAGCPD_RETURN_NOT_OK(SolveNetwork(a, b, cost_matrix_.data(), l_, &emd,
                                    &total_flow, &cost));
  return emd;
}

Status EmdWorkspace::ComputeBatch(const SignatureView* as,
                                  const SignatureView* bs, std::size_t count,
                                  GroundDistance ground, double* out) {
  // Detect dynamically-shared operands (a span built from repeated views)
  // so callers that materialize pair lists still get the hoisted fills.
  const auto aliases = [](const SignatureView& x, const SignatureView& y) {
    return x.centers_data() == y.centers_data() &&
           x.weights_data() == y.weights_data() && x.size() == y.size() &&
           x.dim() == y.dim();
  };
  bool same_a = count > 0;
  bool same_b = count > 0;
  for (std::size_t p = 1; p < count && (same_a || same_b); ++p) {
    same_a = same_a && aliases(as[p], as[0]);
    same_b = same_b && aliases(bs[p], bs[0]);
  }
  return ComputeBatchImpl(as, same_a ? 0 : 1, bs, same_b ? 0 : 1, count,
                          ground, out);
}

Status EmdWorkspace::ComputeBatch(SignatureView a, const SignatureView* bs,
                                  std::size_t count, GroundDistance ground,
                                  double* out) {
  return ComputeBatchImpl(&a, 0, bs, 1, count, ground, out);
}

Status EmdWorkspace::ComputeBatch(const SignatureView* as, std::size_t count,
                                  SignatureView b, GroundDistance ground,
                                  double* out) {
  return ComputeBatchImpl(as, 1, &b, 0, count, ground, out);
}

Status EmdWorkspace::ComputeBatchImpl(const SignatureView* as,
                                      std::size_t as_stride,
                                      const SignatureView* bs,
                                      std::size_t bs_stride, std::size_t count,
                                      GroundDistance ground, double* out) {
  if (count == 0) return Status::OK();
  // Validate every pair up front, in pair order (a before b within a pair,
  // shared operands once at their first appearance) — the first error is
  // exactly the one the serial per-pair loop would surface. Shape maxima
  // and the flat cost-block offsets fall out of the same scan.
  std::size_t max_k = 0;
  std::size_t max_l = 0;
  std::size_t total_cost = 0;
  for (std::size_t p = 0; p < count; ++p) {
    const SignatureView& a = as[p * as_stride];
    const SignatureView& b = bs[p * bs_stride];
    if (as_stride != 0 || p == 0) BAGCPD_RETURN_NOT_OK(a.Validate());
    if (bs_stride != 0 || p == 0) BAGCPD_RETURN_NOT_OK(b.Validate());
    if (a.dim() != b.dim()) {
      return Status::Invalid("signatures have different dimensions");
    }
    max_k = std::max(max_k, a.size());
    max_l = std::max(max_l, b.size());
    total_cost += a.size() * b.size();
  }
  LayoutShape(max_k, max_l);
  Ensure(&batch_cost_, total_cost);
  Ensure(&batch_off_, count + 1);

  // Fill phase. batch_off_[p] addresses pair p's cost block: with a shared
  // left operand it is a COLUMN offset into one wide row-major
  // (k x sum L_p) matrix filled in a single kernel pass; otherwise it is a
  // flat offset to a contiguous (K_p x L_p) block.
  const bool shared_left = as_stride == 0;
  std::size_t wide_l = 0;
  if (shared_left) {
    const std::size_t d = as->dim();
    const std::size_t k = as->size();
    wide_l = total_cost / k;
    Ensure(&b_transposed_, d * wide_l);
    double* bt = b_transposed_.data();
    std::size_t off = 0;
    for (std::size_t p = 0; p < count; ++p) {
      const SignatureView& b = bs[p * bs_stride];
      const double* bc = b.centers_data();
      const std::size_t l = b.size();
      batch_off_[p] = off;
      for (std::size_t j = 0; j < l; ++j) {
        for (std::size_t t = 0; t < d; ++t) {
          bt[t * wide_l + off + j] = bc[j * d + t];
        }
      }
      off += l;
    }
    batch_off_[count] = off;
    // ONE vectorized pass fills every pair's K x L_p cost matrix: each wide
    // row is the concatenation of the per-pair rows, and FillCostBlock's
    // per-entry arithmetic is width-invariant (see its comment).
    FillCostBlock(as->centers_data(), k, d, bt, wide_l, ground,
                  batch_cost_.data());
  } else {
    const double* shared_bt = nullptr;
    if (bs_stride == 0) {
      // Shared right operand (the detector's rolling-table shape):
      // transpose B once, reuse it for every pair's fill.
      const std::size_t d = bs->dim();
      const std::size_t l = bs->size();
      Ensure(&b_transposed_, d * l);
      double* bt = b_transposed_.data();
      const double* bc = bs->centers_data();
      for (std::size_t j = 0; j < l; ++j) {
        for (std::size_t t = 0; t < d; ++t) {
          bt[t * l + j] = bc[j * d + t];
        }
      }
      shared_bt = bt;
    }
    std::size_t off = 0;
    for (std::size_t p = 0; p < count; ++p) {
      const SignatureView& a = as[p * as_stride];
      const SignatureView& b = bs[p * bs_stride];
      const std::size_t d = a.dim();
      const std::size_t l = b.size();
      batch_off_[p] = off;
      const double* bt = shared_bt;
      if (bt == nullptr) {
        Ensure(&b_transposed_, d * l);
        double* scratch = b_transposed_.data();
        const double* bc = b.centers_data();
        for (std::size_t j = 0; j < l; ++j) {
          for (std::size_t t = 0; t < d; ++t) {
            scratch[t * l + j] = bc[j * d + t];
          }
        }
        bt = scratch;
      }
      FillCostBlock(a.centers_data(), a.size(), d, bt, l, ground,
                    batch_cost_.data() + off);
      off += a.size() * l;
    }
    batch_off_[count] = off;
  }

  // Entry validation then solve, pair by pair in order — identical error
  // surfacing to the serial loop. The network/Dijkstra scratch is already
  // sized to the batch maxima, so per-pair LayoutShape never allocates; the
  // potentials are re-zeroed inside SolveNetwork for every pair (value
  // warm-starting would change augmentation order and break the bitwise
  // guarantee — only the scratch is warm).
  for (std::size_t p = 0; p < count; ++p) {
    const SignatureView& a = as[p * as_stride];
    const SignatureView& b = bs[p * bs_stride];
    const double* cost = batch_cost_.data() + batch_off_[p];
    const std::size_t stride = shared_left ? wide_l : b.size();
    BAGCPD_RETURN_NOT_OK(ValidateCostBlock(cost, a.size(), b.size(), stride));
    LayoutShape(a.size(), b.size());
    double emd = 0.0;
    double total_flow = 0.0;
    double path_cost = 0.0;
    BAGCPD_RETURN_NOT_OK(
        SolveNetwork(a, b, cost, stride, &emd, &total_flow, &path_cost));
    out[p] = emd;
  }
  return Status::OK();
}

Result<EmdSolution> EmdWorkspace::SolveDetailed(SignatureView a,
                                                SignatureView b) {
  EmdSolution out;
  BAGCPD_RETURN_NOT_OK(SolveNetwork(a, b, cost_matrix_.data(), l_, &out.emd,
                                    &out.total_flow, &out.cost));
  // The optimal flow on transport arc (i, j) is the residual capacity of its
  // reverse arc, exactly what the reference FlowOn() reads back.
  out.flow = Matrix(k_, l_);
  const std::size_t demand_base = k_ + k_ * (l_ + 1);
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = 0; j < l_; ++j) {
      out.flow(i, j) = arc_cap_[demand_base + j * (k_ + 1) + i];
    }
  }
  return out;
}

Result<EmdSolution> EmdWorkspace::ComputeDetailed(
    SignatureView a, SignatureView b, const GroundDistanceFn& ground) {
  BAGCPD_RETURN_NOT_OK(Prepare(a, b, ground));
  return SolveDetailed(a, b);
}

Result<EmdSolution> EmdWorkspace::ComputeDetailed(SignatureView a,
                                                  SignatureView b,
                                                  GroundDistance ground) {
  BAGCPD_RETURN_NOT_OK(PrepareCost(a, b, ground));
  return SolveDetailed(a, b);
}

EmdWorkspace& ThreadLocalEmdWorkspace() {
  static thread_local EmdWorkspace workspace;
  return workspace;
}

}  // namespace bagcpd
