#include "bagcpd/emd/transport_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "bagcpd/common/check.h"
#include "bagcpd/common/point.h"
#include "bagcpd/emd/min_cost_flow.h"  // kFlowEpsilon, shared with the reference.

namespace bagcpd {

template <typename T>
void EmdWorkspace::Ensure(std::vector<T>* v, std::size_t count) {
  if (v->size() >= count) return;
  if (v->capacity() < count) ++allocation_count_;
  v->resize(count);
}

Status EmdWorkspace::Layout(SignatureView a, SignatureView b) {
  BAGCPD_RETURN_NOT_OK(a.Validate());
  BAGCPD_RETURN_NOT_OK(b.Validate());
  if (a.dim() != b.dim()) {
    return Status::Invalid("signatures have different dimensions");
  }
  k_ = a.size();
  l_ = b.size();
  nodes_ = k_ + l_ + 2;
  arcs_ = 2 * (k_ + l_ + k_ * l_);
  Ensure(&cost_matrix_, k_ * l_);
  // Sized in Layout (not just in the enum kernel) so that once a shape has
  // been seen through ANY path, no path allocates for it again.
  Ensure(&b_transposed_, a.dim() * l_);
  Ensure(&arc_to_, arcs_);
  Ensure(&arc_rev_, arcs_);
  Ensure(&arc_cap_, arcs_);
  Ensure(&arc_cost_, arcs_);
  Ensure(&dist_, nodes_);
  Ensure(&potential_, nodes_);
  Ensure(&prev_node_, nodes_);
  Ensure(&prev_arc_, nodes_);
  Ensure(&visited_, nodes_);
  return Status::OK();
}

Status EmdWorkspace::PrepareCost(SignatureView a, SignatureView b,
                                 GroundDistance ground) {
  BAGCPD_RETURN_NOT_OK(Layout(a, b));
  // Batched kernel: one dispatch for the whole K x L matrix, streaming both
  // packed center blocks, instead of a GroundDistanceFn call per arc. The
  // demand centers are transposed once into a (d x L) block so every inner
  // loop below walks unit-stride over j — straight-line code the compiler
  // auto-vectorizes. Bitwise identity with the scalar PointView kernels
  // holds because each cost entry accumulates its per-coordinate terms in
  // the same t order with the same operations (init with the t=0 term, then
  // add one squared/absolute difference per coordinate; 0 + x == x exactly
  // for the non-negative terms involved), and the baseline x86-64 target has
  // no FMA contraction to re-associate them.
  const std::size_t d = a.dim();
  const double* ac = a.centers_data();
  const double* bc = b.centers_data();
  double* cost = cost_matrix_.data();
  double* bt = b_transposed_.data();
  for (std::size_t j = 0; j < l_; ++j) {
    for (std::size_t t = 0; t < d; ++t) {
      bt[t * l_ + j] = bc[j * d + t];
    }
  }
  switch (ground) {
    case GroundDistance::kSquaredEuclidean:
      for (std::size_t i = 0; i < k_; ++i) {
        const double* ai = ac + i * d;
        double* row = cost + i * l_;
        const double a0 = ai[0];
        for (std::size_t j = 0; j < l_; ++j) {
          const double diff = a0 - bt[j];
          row[j] = diff * diff;
        }
        for (std::size_t t = 1; t < d; ++t) {
          const double at = ai[t];
          const double* btr = bt + t * l_;
          for (std::size_t j = 0; j < l_; ++j) {
            const double diff = at - btr[j];
            row[j] += diff * diff;
          }
        }
      }
      break;
    case GroundDistance::kManhattan:
      for (std::size_t i = 0; i < k_; ++i) {
        const double* ai = ac + i * d;
        double* row = cost + i * l_;
        const double a0 = ai[0];
        for (std::size_t j = 0; j < l_; ++j) {
          row[j] = std::abs(a0 - bt[j]);
        }
        for (std::size_t t = 1; t < d; ++t) {
          const double at = ai[t];
          const double* btr = bt + t * l_;
          for (std::size_t j = 0; j < l_; ++j) {
            row[j] += std::abs(at - btr[j]);
          }
        }
      }
      break;
    case GroundDistance::kEuclidean:
    default:  // MakeGroundDistance falls back to Euclidean as well.
      for (std::size_t i = 0; i < k_; ++i) {
        const double* ai = ac + i * d;
        double* row = cost + i * l_;
        const double a0 = ai[0];
        for (std::size_t j = 0; j < l_; ++j) {
          const double diff = a0 - bt[j];
          row[j] = diff * diff;
        }
        for (std::size_t t = 1; t < d; ++t) {
          const double at = ai[t];
          const double* btr = bt + t * l_;
          for (std::size_t j = 0; j < l_; ++j) {
            const double diff = at - btr[j];
            row[j] += diff * diff;
          }
        }
        for (std::size_t j = 0; j < l_; ++j) {
          row[j] = std::sqrt(row[j]);
        }
      }
      break;
  }
  // Same rejection the reference applies per transport arc, in the same
  // row-major order, so the surfaced error is identical.
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = 0; j < l_; ++j) {
      const double dist = cost[i * l_ + j];
      if (!(dist >= 0.0) || !std::isfinite(dist)) {
        return Status::Invalid("ground distance produced a negative or "
                               "non-finite value");
      }
    }
  }
  return Status::OK();
}

Status EmdWorkspace::Prepare(SignatureView a, SignatureView b,
                             const GroundDistanceFn& ground) {
  BAGCPD_RETURN_NOT_OK(Layout(a, b));
  double* cost = cost_matrix_.data();
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = 0; j < l_; ++j) {
      const double dist = ground(a.center(i), b.center(j));
      if (!(dist >= 0.0) || !std::isfinite(dist)) {
        return Status::Invalid("ground distance produced a negative or "
                               "non-finite value");
      }
      cost[i * l_ + j] = dist;
    }
  }
  return Status::OK();
}

void EmdWorkspace::BuildNetwork(SignatureView a, SignatureView b) {
  // Node layout (identical to the reference construction): source = 0,
  // supply nodes 1..K, demand nodes K+1..K+L, sink = K+L+1. Per-node arc
  // order also matches the reference adjacency lists exactly — forward and
  // residual arcs land where MinCostFlow::AddArc would have appended them —
  // so Dijkstra relaxes arcs in the identical sequence:
  //   source:    K forward arcs to the supply nodes.
  //   supply i:  residual to source, then L forward transport arcs.
  //   demand j:  K residual transport arcs (one per supply), then the
  //              forward arc to the sink.
  //   sink:      L residual arcs to the demand nodes.
  const double* wa = a.weights_data();
  const double* wb = b.weights_data();
  const std::size_t supply_base = k_;                    // First supply arc.
  const std::size_t demand_base = k_ + k_ * (l_ + 1);    // First demand arc.
  const std::size_t sink_base = demand_base + l_ * (k_ + 1);
  const std::size_t sink = nodes_ - 1;
  for (std::size_t i = 0; i < k_; ++i) {
    const std::size_t fwd = i;                      // source -> supply i.
    const std::size_t rev = supply_base + i * (l_ + 1);
    arc_to_[fwd] = 1 + i;
    arc_cap_[fwd] = wa[i];
    arc_cost_[fwd] = 0.0;
    arc_rev_[fwd] = rev;
    arc_to_[rev] = 0;
    arc_cap_[rev] = 0.0;
    arc_cost_[rev] = -0.0;
    arc_rev_[rev] = fwd;
  }
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = 0; j < l_; ++j) {
      const std::size_t fwd = supply_base + i * (l_ + 1) + 1 + j;
      const std::size_t rev = demand_base + j * (k_ + 1) + i;
      const double cost = cost_matrix_[i * l_ + j];
      arc_to_[fwd] = 1 + k_ + j;
      arc_cap_[fwd] = std::min(wa[i], wb[j]);
      arc_cost_[fwd] = cost;
      arc_rev_[fwd] = rev;
      arc_to_[rev] = 1 + i;
      arc_cap_[rev] = 0.0;
      arc_cost_[rev] = -cost;
      arc_rev_[rev] = fwd;
    }
  }
  for (std::size_t j = 0; j < l_; ++j) {
    const std::size_t fwd = demand_base + j * (k_ + 1) + k_;
    const std::size_t rev = sink_base + j;
    arc_to_[fwd] = sink;
    arc_cap_[fwd] = wb[j];
    arc_cost_[fwd] = 0.0;
    arc_rev_[fwd] = rev;
    arc_to_[rev] = 1 + k_ + j;
    arc_cap_[rev] = 0.0;
    arc_cost_[rev] = -0.0;
    arc_rev_[rev] = fwd;
  }
}

Status EmdWorkspace::SolveNetwork(SignatureView a, SignatureView b,
                                  double* emd_out, double* total_flow_out,
                                  double* cost_out) {
  const double supply = a.TotalWeight();
  const double demand = b.TotalWeight();
  // Requesting min(W, W') units enforces Eq. 11 (partial matching).
  const double amount = std::min(supply, demand);
  BuildNetwork(a, b);

  const std::size_t supply_base = k_;
  const std::size_t demand_base = k_ + k_ * (l_ + 1);
  const std::size_t sink_base = demand_base + l_ * (k_ + 1);
  const std::size_t source = 0;
  const std::size_t sink = nodes_ - 1;
  const double inf = std::numeric_limits<double>::infinity();

  double flow = 0.0;
  double cost = 0.0;
  if (amount > kFlowEpsilon) {
    std::fill(potential_.begin(), potential_.begin() + nodes_, 0.0);
    double remaining = amount;
    while (remaining > kFlowEpsilon) {
      // Dijkstra on reduced costs cost + h[u] - h[v] (all >= 0 by
      // induction), as a dense scan: the network is complete bipartite and
      // tiny, so an O(n^2) selection beats a binary heap — and selecting the
      // lowest-index node among equal distances reproduces the reference
      // heap's (distance, node) pop order exactly, augmentation for
      // augmentation.
      std::fill(dist_.begin(), dist_.begin() + nodes_, inf);
      std::fill(visited_.begin(), visited_.begin() + nodes_, 0);
      dist_[source] = 0.0;
      for (;;) {
        std::size_t u = nodes_;
        double best = inf;
        for (std::size_t v = 0; v < nodes_; ++v) {
          if (!visited_[v] && dist_[v] < best) {
            best = dist_[v];
            u = v;
          }
        }
        if (u == nodes_) break;  // Remaining nodes are unreachable.
        visited_[u] = 1;
        std::size_t begin;
        std::size_t end;
        if (u == source) {
          begin = 0;
          end = k_;
        } else if (u <= k_) {
          begin = supply_base + (u - 1) * (l_ + 1);
          end = begin + l_ + 1;
        } else if (u < sink) {
          begin = demand_base + (u - 1 - k_) * (k_ + 1);
          end = begin + k_ + 1;
        } else {
          begin = sink_base;
          end = arcs_;
        }
        const double du = dist_[u];
        const double pu = potential_[u];
        for (std::size_t e = begin; e < end; ++e) {
          if (arc_cap_[e] <= kFlowEpsilon) continue;
          const std::size_t to = arc_to_[e];
          // Reduced cost; clamp tiny negatives from floating-point noise.
          double rc = arc_cost_[e] + pu - potential_[to];
          if (rc < 0.0) rc = 0.0;
          const double nd = du + rc;
          if (nd + kFlowEpsilon < dist_[to]) {
            dist_[to] = nd;
            prev_node_[to] = u;
            prev_arc_[to] = e;
          }
        }
      }
      if (!std::isfinite(dist_[sink])) {
        return Status::Invalid(
            "network cannot carry the requested flow (short by " +
            std::to_string(remaining) + " units)");
      }
      // Update potentials.
      for (std::size_t v = 0; v < nodes_; ++v) {
        if (std::isfinite(dist_[v])) potential_[v] += dist_[v];
      }
      // Find the bottleneck on the path.
      double push = remaining;
      for (std::size_t v = sink; v != source; v = prev_node_[v]) {
        push = std::min(push, arc_cap_[prev_arc_[v]]);
      }
      BAGCPD_CHECK(push > 0.0);
      // Augment.
      for (std::size_t v = sink; v != source; v = prev_node_[v]) {
        const std::size_t e = prev_arc_[v];
        arc_cap_[e] -= push;
        arc_cap_[arc_rev_[e]] += push;
        cost += push * arc_cost_[e];
      }
      flow += push;
      remaining -= push;
    }
  }
  // Eq. 12. The moved mass is positive because signature weights are
  // strictly positive (the reference asserts the same invariant).
  BAGCPD_CHECK(flow > 0.0);
  *emd_out = cost / flow;
  *total_flow_out = flow;
  *cost_out = cost;
  ++solve_count_;
  return Status::OK();
}

std::size_t EmdWorkspace::retained_bytes() const {
  std::size_t bytes = 0;
  bytes += cost_matrix_.capacity() * sizeof(double);
  bytes += b_transposed_.capacity() * sizeof(double);
  bytes += arc_to_.capacity() * sizeof(std::size_t);
  bytes += arc_rev_.capacity() * sizeof(std::size_t);
  bytes += arc_cap_.capacity() * sizeof(double);
  bytes += arc_cost_.capacity() * sizeof(double);
  bytes += dist_.capacity() * sizeof(double);
  bytes += potential_.capacity() * sizeof(double);
  bytes += prev_node_.capacity() * sizeof(std::size_t);
  bytes += prev_arc_.capacity() * sizeof(std::size_t);
  bytes += visited_.capacity() * sizeof(char);
  return bytes;
}

void EmdWorkspace::ShrinkToCeiling() {
  if (retained_byte_ceiling_ == 0) return;
  if (retained_bytes() <= retained_byte_ceiling_) return;
  ReleaseBuffers();
}

void EmdWorkspace::ReleaseBuffers() {
  // Drop everything rather than trimming individual arrays: partial trimming
  // would leave the buffers inconsistent with (k_, l_) and save little — the
  // common cause of an oversized footprint is one outlier pair inflating
  // every array at once.
  std::vector<double>().swap(cost_matrix_);
  std::vector<double>().swap(b_transposed_);
  std::vector<std::size_t>().swap(arc_to_);
  std::vector<std::size_t>().swap(arc_rev_);
  std::vector<double>().swap(arc_cap_);
  std::vector<double>().swap(arc_cost_);
  std::vector<double>().swap(dist_);
  std::vector<double>().swap(potential_);
  std::vector<std::size_t>().swap(prev_node_);
  std::vector<std::size_t>().swap(prev_arc_);
  std::vector<char>().swap(visited_);
  k_ = 0;
  l_ = 0;
  nodes_ = 0;
  arcs_ = 0;
}

Result<double> EmdWorkspace::Compute(SignatureView a, SignatureView b,
                                     GroundDistance ground) {
  BAGCPD_RETURN_NOT_OK(PrepareCost(a, b, ground));
  double emd = 0.0;
  double total_flow = 0.0;
  double cost = 0.0;
  BAGCPD_RETURN_NOT_OK(SolveNetwork(a, b, &emd, &total_flow, &cost));
  return emd;
}

Result<double> EmdWorkspace::Compute(SignatureView a, SignatureView b,
                                     const GroundDistanceFn& ground) {
  BAGCPD_RETURN_NOT_OK(Prepare(a, b, ground));
  double emd = 0.0;
  double total_flow = 0.0;
  double cost = 0.0;
  BAGCPD_RETURN_NOT_OK(SolveNetwork(a, b, &emd, &total_flow, &cost));
  return emd;
}

Result<EmdSolution> EmdWorkspace::SolveDetailed(SignatureView a,
                                                SignatureView b) {
  EmdSolution out;
  BAGCPD_RETURN_NOT_OK(SolveNetwork(a, b, &out.emd, &out.total_flow,
                                    &out.cost));
  // The optimal flow on transport arc (i, j) is the residual capacity of its
  // reverse arc, exactly what the reference FlowOn() reads back.
  out.flow = Matrix(k_, l_);
  const std::size_t demand_base = k_ + k_ * (l_ + 1);
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = 0; j < l_; ++j) {
      out.flow(i, j) = arc_cap_[demand_base + j * (k_ + 1) + i];
    }
  }
  return out;
}

Result<EmdSolution> EmdWorkspace::ComputeDetailed(
    SignatureView a, SignatureView b, const GroundDistanceFn& ground) {
  BAGCPD_RETURN_NOT_OK(Prepare(a, b, ground));
  return SolveDetailed(a, b);
}

Result<EmdSolution> EmdWorkspace::ComputeDetailed(SignatureView a,
                                                  SignatureView b,
                                                  GroundDistance ground) {
  BAGCPD_RETURN_NOT_OK(PrepareCost(a, b, ground));
  return SolveDetailed(a, b);
}

EmdWorkspace& ThreadLocalEmdWorkspace() {
  static thread_local EmdWorkspace workspace;
  return workspace;
}

}  // namespace bagcpd
