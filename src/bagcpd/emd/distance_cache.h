// Rolling cache of pairwise EMD values keyed by bag index. The detector slides
// a window of tau + tau' signatures; each new time step only requires EMDs
// between the newest signature and the window — everything else is reused.
// Bootstrap replicates never recompute distances at all (they only resample
// the Dirichlet weights), which is what makes the Section 4 procedure cheap.
//
// Keys are the full (i, j) index pair: a long-running stream pushes an
// unbounded number of bags, so packing two indices into one 64-bit word would
// silently collide once indices exceed 2^32.

#ifndef BAGCPD_EMD_DISTANCE_CACHE_H_
#define BAGCPD_EMD_DISTANCE_CACHE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>

#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Memoizes a symmetric pairwise distance over stream indices.
///
/// Not thread-safe; the concurrent runtime keeps each cache owned by exactly
/// one stream and fills it through Put() after computing distances in
/// parallel outside the cache.
class PairwiseDistanceCache {
 public:
  /// `compute(i, j)` produces the distance between stream items i and j; it is
  /// called at most once per unordered pair.
  using ComputeFn = std::function<Result<double>(std::uint64_t, std::uint64_t)>;

  explicit PairwiseDistanceCache(ComputeFn compute)
      : compute_(std::move(compute)) {}

  /// \brief The distance between items i and j (0 when i == j).
  Result<double> Get(std::uint64_t i, std::uint64_t j);

  /// \brief True iff the unordered pair (i, j) is already cached (the
  /// diagonal counts as cached). Does not touch the hit/miss counters.
  bool Contains(std::uint64_t i, std::uint64_t j) const;

  /// \brief Stores a distance computed externally (e.g. by a parallel
  /// prefill). Counts as a miss when the pair was absent — the value was
  /// computed either way — and is a no-op when already present.
  void Put(std::uint64_t i, std::uint64_t j, double value);

  /// \brief Drops every cached pair touching an index < `min_index`. Call as
  /// the window slides to keep memory proportional to the window size.
  void EvictBefore(std::uint64_t min_index);

  /// \brief Drops every cached pair, keeping the hit/miss counters and the
  /// map's bucket storage. Cheaper than EvictBefore(infinity) — no scan, no
  /// scratch allocation — for callers that consume every value each step
  /// (the detector folds distances into its rolling log table and never
  /// reads them again).
  void EvictAll() { cache_.clear(); }

  /// \brief Back to the freshly-constructed state — empty, zeroed counters —
  /// without touching the generator or releasing the map's bucket storage.
  /// Detector Reset() uses this so long-lived engine streams don't rebuild
  /// the cache (and its closure) on every reset.
  void Clear() {
    cache_.clear();
    hits_ = 0;
    misses_ = 0;
  }

  std::size_t size() const { return cache_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  // Unordered pair as (min, max): the full 128 bits of both indices.
  using Key = std::pair<std::uint64_t, std::uint64_t>;

  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      // SplitMix64-style avalanche over both words.
      std::uint64_t x = key.first * 0x9E3779B97F4A7C15ULL;
      x ^= key.second + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };

  static Key MakeKey(std::uint64_t i, std::uint64_t j) {
    if (i > j) std::swap(i, j);
    return Key(i, j);
  }

  ComputeFn compute_;
  std::unordered_map<Key, double, KeyHash> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace bagcpd

#endif  // BAGCPD_EMD_DISTANCE_CACHE_H_
