// Rolling cache of pairwise EMD values keyed by bag index. The detector slides
// a window of tau + tau' signatures; each new time step only requires EMDs
// between the newest signature and the window — everything else is reused.
// Bootstrap replicates never recompute distances at all (they only resample
// the Dirichlet weights), which is what makes the Section 4 procedure cheap.

#ifndef BAGCPD_EMD_DISTANCE_CACHE_H_
#define BAGCPD_EMD_DISTANCE_CACHE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Memoizes a symmetric pairwise distance over stream indices.
class PairwiseDistanceCache {
 public:
  /// `compute(i, j)` produces the distance between stream items i and j; it is
  /// called at most once per unordered pair.
  using ComputeFn = std::function<Result<double>(std::uint64_t, std::uint64_t)>;

  explicit PairwiseDistanceCache(ComputeFn compute)
      : compute_(std::move(compute)) {}

  /// \brief The distance between items i and j (0 when i == j).
  Result<double> Get(std::uint64_t i, std::uint64_t j);

  /// \brief Drops every cached pair touching an index < `min_index`. Call as
  /// the window slides to keep memory proportional to the window size.
  void EvictBefore(std::uint64_t min_index);

  std::size_t size() const { return cache_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  static std::uint64_t Key(std::uint64_t i, std::uint64_t j) {
    if (i > j) std::swap(i, j);
    return (i << 32) | (j & 0xFFFFFFFFULL);
  }

  ComputeFn compute_;
  std::unordered_map<std::uint64_t, double> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace bagcpd

#endif  // BAGCPD_EMD_DISTANCE_CACHE_H_
