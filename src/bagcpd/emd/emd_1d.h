// Exact fast path for one-dimensional EMD with |x - y| ground distance and
// equal total weights: the optimal transport cost on the line equals the L1
// distance between the two cumulative weight functions,
//
//   cost = integral |F_a(x) - F_b(x)| dx,
//
// computable by one sorted sweep in O((K + L) log(K + L)) instead of a
// min-cost-flow solve. This matters in practice: every bipartite-graph
// feature of Section 5.3 produces 1-d bags, and normalized signatures (unit
// total mass) always qualify.
//
// ComputeEmd() dispatches here automatically when the signatures are 1-d,
// the ground distance is Euclidean/Manhattan (identical in 1-d), and the
// totals match to relative precision; the transportation solver remains the
// general path (and the only one that reports the flow matrix).

#ifndef BAGCPD_EMD_EMD_1D_H_
#define BAGCPD_EMD_EMD_1D_H_

#include "bagcpd/common/result.h"
#include "bagcpd/signature/signature.h"

namespace bagcpd {

/// \brief True iff the fast path applies: both signatures 1-d with equal
/// total weight (relative tolerance 1e-9).
bool Emd1dApplicable(SignatureView a, SignatureView b);

/// \brief Exact 1-d balanced EMD (Eq. 12 value). Fails with Invalid if the
/// preconditions of Emd1dApplicable do not hold.
Result<double> ComputeEmd1d(SignatureView a, SignatureView b);

}  // namespace bagcpd

#endif  // BAGCPD_EMD_EMD_1D_H_
