#include "bagcpd/emd/emd_1d.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace bagcpd {

namespace {
constexpr double kRelativeTolerance = 1e-9;
}  // namespace

bool Emd1dApplicable(SignatureView a, SignatureView b) {
  if (a.dim() != 1 || b.dim() != 1) return false;
  const double wa = a.TotalWeight();
  const double wb = b.TotalWeight();
  return std::abs(wa - wb) <= kRelativeTolerance * std::max(wa, wb);
}

Result<double> ComputeEmd1d(SignatureView a, SignatureView b) {
  BAGCPD_RETURN_NOT_OK(a.Validate());
  BAGCPD_RETURN_NOT_OK(b.Validate());
  if (!Emd1dApplicable(a, b)) {
    return Status::Invalid(
        "1-d fast path needs 1-d signatures with equal total weight");
  }

  // Sweep events: position, signed weight (+ for a, - for b).
  struct Event {
    double position;
    double delta;
  };
  std::vector<Event> events;
  events.reserve(a.size() + b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    events.push_back(Event{a.center(k)[0], a.weight(k)});
  }
  for (std::size_t l = 0; l < b.size(); ++l) {
    events.push_back(Event{b.center(l)[0], -b.weight(l)});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& x, const Event& y) {
              return x.position < y.position;
            });

  // cost = sum over gaps of |F_a - F_b| * gap.
  double cost = 0.0;
  double cdf_gap = 0.0;  // F_a(x) - F_b(x) after processing events <= x.
  for (std::size_t i = 0; i + 1 <= events.size(); ++i) {
    cdf_gap += events[i].delta;
    if (i + 1 < events.size()) {
      cost += std::abs(cdf_gap) *
              (events[i + 1].position - events[i].position);
    }
  }
  // Eq. 12 normalization by the transported mass (= the common total).
  return cost / a.TotalWeight();
}

}  // namespace bagcpd
