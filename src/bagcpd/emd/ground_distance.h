// Ground distances d_kl between signature centers (paper Section 3.2): the
// per-pair dissimilarity the transportation problem minimizes over.

#ifndef BAGCPD_EMD_GROUND_DISTANCE_H_
#define BAGCPD_EMD_GROUND_DISTANCE_H_

#include <functional>

#include "bagcpd/common/point.h"

namespace bagcpd {

/// \brief A ground distance is any non-negative dissimilarity between centers.
/// It does not need to be a metric, but EMD between normalized signatures is a
/// metric iff the ground distance is (Rubner et al. 2000).
///
/// Centers are passed as zero-copy PointViews over the signatures' contiguous
/// storage; `const Point&` arguments convert implicitly.
using GroundDistanceFn = std::function<double(PointView, PointView)>;

/// \brief Built-in ground distances.
enum class GroundDistance {
  kEuclidean,
  kSquaredEuclidean,
  kManhattan,
};

/// \brief Returns the callable for a built-in ground distance.
GroundDistanceFn MakeGroundDistance(GroundDistance kind);

/// \brief Short lowercase name ("euclidean", ...).
const char* GroundDistanceName(GroundDistance kind);

}  // namespace bagcpd

#endif  // BAGCPD_EMD_GROUND_DISTANCE_H_
