// Ground distances d_kl between signature centers (paper Section 3.2): the
// per-pair dissimilarity the transportation problem minimizes over.

#ifndef BAGCPD_EMD_GROUND_DISTANCE_H_
#define BAGCPD_EMD_GROUND_DISTANCE_H_

#include <functional>
#include <string>
#include <vector>

#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief A ground distance is any non-negative dissimilarity between centers.
/// It does not need to be a metric, but EMD between normalized signatures is a
/// metric iff the ground distance is (Rubner et al. 2000).
///
/// Centers are passed as zero-copy PointViews over the signatures' contiguous
/// storage; `const Point&` arguments convert implicitly.
using GroundDistanceFn = std::function<double(PointView, PointView)>;

/// \brief Built-in ground distances.
enum class GroundDistance {
  kEuclidean,
  kSquaredEuclidean,
  kManhattan,
};

/// \brief Returns the callable for a built-in ground distance.
GroundDistanceFn MakeGroundDistance(GroundDistance kind);

/// \brief Short lowercase name ("euclidean", ...).
const char* GroundDistanceName(GroundDistance kind);

/// \brief Every built-in ground distance, in declaration order. Together with
/// GroundDistanceName/ParseGroundDistance this forms the stable name table the
/// api/ registry exposes.
const std::vector<GroundDistance>& AllGroundDistances();

/// \brief Inverse of GroundDistanceName. Accepts the alias "l2" for
/// kEuclidean and "l1" for kManhattan; rejects unknown names with a message
/// listing the known ones.
Result<GroundDistance> ParseGroundDistance(const std::string& name);

}  // namespace bagcpd

#endif  // BAGCPD_EMD_GROUND_DISTANCE_H_
