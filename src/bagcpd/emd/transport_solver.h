// Dedicated transportation-problem solver for the complete bipartite
// signature network behind every EMD evaluation (paper Eqs. 8-12).
//
// The generic MinCostFlow reference (min_cost_flow.h) rebuilds a
// vector-of-vectors adjacency, runs a binary-heap Dijkstra, and calls a
// `std::function` ground distance once per transport arc — from scratch for
// every signature pair. EmdWorkspace replaces all of that on the hot path:
//
//  * ONE reusable workspace holds flat CSR-style arc arrays (to / capacity /
//    cost / reverse-index), the Johnson potentials, the Dijkstra dist/prev
//    arrays, and the K x L ground-distance matrix. Buffers grow
//    monotonically, so steady-state solves perform ZERO heap allocations
//    (allocation_count() exposes the growth counter the perf gate pins).
//  * The EMD network is complete bipartite and tiny (K + L + 2 nodes), so
//    Dijkstra runs as a dense O(n^2) scan with index-ordered tie-breaking —
//    no heap, no per-entry allocations, and the exact processing order of
//    the reference heap (which pops (dist, node) pairs, i.e. breaks distance
//    ties by node index). Every augmentation therefore reproduces the
//    reference augmentation sequence — and every rounding — bit for bit.
//  * A batched ground-distance kernel fills the cost matrix directly from
//    the two packed signature buffers, dispatching ONCE on the
//    GroundDistance enum instead of through a GroundDistanceFn per arc.
//
// Ownership rules (see README "Performance"): a BagStreamDetector owns one
// workspace for its serial scoring path; batch entry points
// (PairwiseEmdMatrix / CrossDistanceMatrix) use one local workspace per
// call; pool workers (parallel matrices, detector prefill) use
// ThreadLocalEmdWorkspace(). A workspace is NOT thread-safe — never share
// one across concurrent solves.

#ifndef BAGCPD_EMD_TRANSPORT_SOLVER_H_
#define BAGCPD_EMD_TRANSPORT_SOLVER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/emd/emd.h"
#include "bagcpd/emd/ground_distance.h"
#include "bagcpd/signature/signature.h"

namespace bagcpd {

/// \brief Reusable, allocation-free-in-steady-state EMD transport solver.
///
/// Solves the full K x L transportation problem every time (no 1-d fast
/// path), exactly like the MinCostFlow reference construction in
/// ComputeEmdDetailed — results are bitwise-identical to it by design.
class EmdWorkspace {
 public:
  EmdWorkspace() = default;

  // The scratch buffers are the whole point of the type; accidental copies
  // would silently defeat reuse.
  EmdWorkspace(const EmdWorkspace&) = delete;
  EmdWorkspace& operator=(const EmdWorkspace&) = delete;
  EmdWorkspace(EmdWorkspace&&) = default;
  EmdWorkspace& operator=(EmdWorkspace&&) = default;

  /// \brief EMD between two signatures with a built-in ground distance
  /// (batched enum-dispatched cost kernel; the fastest path).
  Result<double> Compute(SignatureView a, SignatureView b,
                         GroundDistance ground);

  /// \brief EMD with a custom ground distance (called once per (k, l) cost
  /// matrix entry, not once per residual arc).
  Result<double> Compute(SignatureView a, SignatureView b,
                         const GroundDistanceFn& ground);

  /// \brief Full solution including the optimal flow matrix. The returned
  /// EmdSolution owns its flow Matrix (one allocation for the caller); the
  /// solve itself still runs entirely inside the workspace.
  Result<EmdSolution> ComputeDetailed(SignatureView a, SignatureView b,
                                      const GroundDistanceFn& ground);

  /// \brief Enum-dispatched variant of ComputeDetailed.
  Result<EmdSolution> ComputeDetailed(SignatureView a, SignatureView b,
                                      GroundDistance ground);

  /// \brief Validates the pair and fills the K x L ground-distance matrix
  /// through the batched vectorized kernel WITHOUT building the flow
  /// network. The approximate solvers (emd/approx/) run their iterations
  /// directly over cost_matrix() afterwards, reusing this workspace's packed
  /// cost buffer; the exact Compute() paths call it internally.
  Status PrepareCost(SignatureView a, SignatureView b, GroundDistance ground);

  /// \brief Row-major K x L cost matrix of the last PrepareCost/Compute.
  /// Valid until the next call that re-lays-out the workspace.
  const double* cost_matrix() const { return cost_matrix_.data(); }
  std::size_t cost_rows() const { return k_; }
  std::size_t cost_cols() const { return l_; }

  /// \brief Number of successful solves since construction.
  std::uint64_t solve_count() const { return solve_count_; }

  /// \brief Number of buffer growths since construction. Once the workspace
  /// has seen the largest (K, L) of its call site, this stops moving —
  /// "allocations per solve" in steady state is exactly zero, which
  /// bench/micro_emd measures and tools/check_perf_gate.py enforces.
  std::uint64_t allocation_count() const { return allocation_count_; }

  /// \brief Per-owner memory ceiling for the monotonically-growing scratch.
  /// 0 (the default) means unlimited — buffers never shrink, the historical
  /// behavior. With a ceiling set, ShrinkToCeiling() releases ALL scratch
  /// whenever the retained footprint exceeds the ceiling; owners call it at
  /// quiet points (BagStreamDetector::Reset), never mid-solve. The next
  /// solve regrows to its actual need and the regrowth is visible in
  /// allocation_count() — which is exactly what the regression test pins.
  void set_retained_byte_ceiling(std::size_t bytes) {
    retained_byte_ceiling_ = bytes;
  }
  std::size_t retained_byte_ceiling() const { return retained_byte_ceiling_; }

  /// \brief Bytes currently held across all scratch buffers (capacities, not
  /// sizes — what the allocator actually retains).
  std::size_t retained_bytes() const;

  /// \brief Releases every scratch buffer if a ceiling is set and
  /// retained_bytes() exceeds it; otherwise a no-op. Safe between solves.
  void ShrinkToCeiling();

  /// \brief Unconditionally releases all scratch (retained_bytes() drops to
  /// zero; the next solve regrows). Owners with a pooled policy of their own
  /// (EmdSolver) use this directly.
  void ReleaseBuffers();

 private:
  // Validates the pair, sizes the buffers for (K, L), and fills the cost
  // matrix via the batched kernel (enum; public as PrepareCost) or the
  // callback (fn).
  Status Prepare(SignatureView a, SignatureView b,
                 const GroundDistanceFn& ground);
  Status Layout(SignatureView a, SignatureView b);

  // Builds the CSR residual network (arc order identical to the MinCostFlow
  // reference construction) and runs successive shortest augmenting paths
  // for min(total weights) units. On success `emd_out` is Eq. 12's value and
  // the residual arc capacities hold the optimal flow.
  Status SolveNetwork(SignatureView a, SignatureView b, double* emd_out,
                      double* total_flow_out, double* cost_out);

  // SolveNetwork plus extraction of the optimal flow matrix (the shared
  // tail of both ComputeDetailed overloads; Prepare must have run).
  Result<EmdSolution> SolveDetailed(SignatureView a, SignatureView b);

  void BuildNetwork(SignatureView a, SignatureView b);

  // Grows `v` to at least `count` elements (never shrinks), counting real
  // reallocations into allocation_count_.
  template <typename T>
  void Ensure(std::vector<T>* v, std::size_t count);

  std::size_t k_ = 0;      // Supply-side cluster count of the current solve.
  std::size_t l_ = 0;      // Demand-side cluster count.
  std::size_t nodes_ = 0;  // k_ + l_ + 2.
  std::size_t arcs_ = 0;   // 2 * (k_ + l_ + k_ * l_), forward + residual.

  std::vector<double> cost_matrix_;  // k_ x l_ ground distances, row-major.
  std::vector<double> b_transposed_;  // d x l_ demand centers, for the
                                      // unit-stride batched cost kernel.

  // Flat residual network. Arc e leaves the node whose CSR range contains e;
  // arc_rev_[e] is the global index of its reverse arc.
  std::vector<std::size_t> arc_to_;
  std::vector<std::size_t> arc_rev_;
  std::vector<double> arc_cap_;
  std::vector<double> arc_cost_;

  // Dense Dijkstra + potentials scratch (nodes_ entries in use).
  std::vector<double> dist_;
  std::vector<double> potential_;
  std::vector<std::size_t> prev_node_;
  std::vector<std::size_t> prev_arc_;
  std::vector<char> visited_;

  std::uint64_t solve_count_ = 0;
  std::uint64_t allocation_count_ = 0;
  std::size_t retained_byte_ceiling_ = 0;  // 0 = never shrink.
};

/// \brief Per-thread workspace used by the free enum-dispatched ComputeEmd
/// entry point and by pool workers (parallel matrix fills, detector
/// prefill). Each thread gets its own instance, so concurrent solves never
/// share scratch state. Never solve through this from code that can run
/// INSIDE another solve (a custom GroundDistanceFn) — such paths must use a
/// local workspace, as the fn-based free entry points do.
EmdWorkspace& ThreadLocalEmdWorkspace();

}  // namespace bagcpd

#endif  // BAGCPD_EMD_TRANSPORT_SOLVER_H_
