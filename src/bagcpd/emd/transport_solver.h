// Dedicated transportation-problem solver for the complete bipartite
// signature network behind every EMD evaluation (paper Eqs. 8-12).
//
// The generic MinCostFlow reference (min_cost_flow.h) rebuilds a
// vector-of-vectors adjacency, runs a binary-heap Dijkstra, and calls a
// `std::function` ground distance once per transport arc — from scratch for
// every signature pair. EmdWorkspace replaces all of that on the hot path:
//
//  * ONE reusable workspace holds flat CSR-style arc arrays (to / capacity /
//    cost / reverse-index), the Johnson potentials, the Dijkstra dist/prev
//    arrays, and the K x L ground-distance matrix. Buffers grow
//    monotonically, so steady-state solves perform ZERO heap allocations
//    (allocation_count() exposes the growth counter the perf gate pins).
//  * The EMD network is complete bipartite and tiny (K + L + 2 nodes) at the
//    paper's signature sizes, so Dijkstra runs as a dense O(n^2) scan with
//    index-ordered tie-breaking — no heap, no per-entry allocations, and the
//    exact processing order of the reference heap (which pops (dist, node)
//    pairs, i.e. breaks distance ties by node index). Every augmentation
//    therefore reproduces the reference augmentation sequence — and every
//    rounding — bit for bit.
//  * Past a measured node-count crossover (large-K workloads: graph
//    features, high-dimensional bags-of-features), the same scratch runs an
//    indexed 4-ary heap with decrease-key instead. Its keys are the
//    (dist, node) pairs the dense scan minimizes, so the pop order — and
//    therefore every relaxation, augmentation, and rounding — is STILL
//    bitwise-identical to the dense scan; only the selection cost drops from
//    O(n) per pop to O(log n). The crossover is heap_threshold() (K + L;
//    0 = always dense), default kDefaultEmdHeapAt.
//  * A batched ground-distance kernel fills the cost matrix directly from
//    the two packed signature buffers, dispatching ONCE on the
//    GroundDistance enum instead of through a GroundDistanceFn per arc.
//  * ComputeBatch solves a span of (A, B) pairs in one call: shared operands
//    are detected (the detector's rolling-table refill shares its newest
//    signature; the matrix helpers share a row signature), the shared side's
//    transpose is hoisted out of the per-pair fill — one vectorized pass
//    over all K x L cost matrices per shared left signature — and the
//    potentials/dist/prev/heap scratch is reused across pairs without
//    re-allocation. Every per-pair value is bitwise-identical to the
//    corresponding serial Compute call.
//
// Ownership rules (see README "Performance"): a BagStreamDetector owns one
// workspace for its serial scoring path; batch entry points
// (PairwiseEmdMatrix / CrossDistanceMatrix) use one local workspace per
// call; pool workers (parallel matrices, detector prefill) use
// ThreadLocalEmdWorkspace(). A workspace is NOT thread-safe — never share
// one across concurrent solves.

#ifndef BAGCPD_EMD_TRANSPORT_SOLVER_H_
#define BAGCPD_EMD_TRANSPORT_SOLVER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/emd/emd.h"
#include "bagcpd/emd/ground_distance.h"
#include "bagcpd/signature/signature.h"

namespace bagcpd {

/// \brief Default K+L crossover at which the exact solver's Dijkstra switches
/// from the dense O(n^2) scan to the indexed 4-ary heap. Measured with
/// bench/micro_emd's large-K sweep on the reference container: the two tie
/// around K + L = 24, the heap wins ~12% by 48 and ~35% by 128, and the dense
/// scan's branch-free selection only wins below ~16 total clusters — so 32 is
/// the first clearly-winning point with margin above the tie. Both produce
/// bitwise-identical results — the threshold only trades selection cost.
/// 0 disables the heap entirely.
inline constexpr std::size_t kDefaultEmdHeapAt = 32;

/// \brief Reusable, allocation-free-in-steady-state EMD transport solver.
///
/// Solves the full K x L transportation problem every time (no 1-d fast
/// path), exactly like the MinCostFlow reference construction in
/// ComputeEmdDetailed — results are bitwise-identical to it by design.
class EmdWorkspace {
 public:
  EmdWorkspace() = default;

  // The scratch buffers are the whole point of the type; accidental copies
  // would silently defeat reuse.
  EmdWorkspace(const EmdWorkspace&) = delete;
  EmdWorkspace& operator=(const EmdWorkspace&) = delete;
  EmdWorkspace(EmdWorkspace&&) = default;
  EmdWorkspace& operator=(EmdWorkspace&&) = default;

  /// \brief EMD between two signatures with a built-in ground distance
  /// (batched enum-dispatched cost kernel; the fastest path).
  Result<double> Compute(SignatureView a, SignatureView b,
                         GroundDistance ground);

  /// \brief EMD with a custom ground distance (called once per (k, l) cost
  /// matrix entry, not once per residual arc).
  Result<double> Compute(SignatureView a, SignatureView b,
                         const GroundDistanceFn& ground);

  /// \brief Full solution including the optimal flow matrix. The returned
  /// EmdSolution owns its flow Matrix (one allocation for the caller); the
  /// solve itself still runs entirely inside the workspace.
  Result<EmdSolution> ComputeDetailed(SignatureView a, SignatureView b,
                                      const GroundDistanceFn& ground);

  /// \brief Enum-dispatched variant of ComputeDetailed.
  Result<EmdSolution> ComputeDetailed(SignatureView a, SignatureView b,
                                      GroundDistance ground);

  /// \brief Solves `count` signature pairs in one call: `out[p]` is
  /// bitwise-identical to `Compute(as[p], bs[p], ground)`. Shared operands
  /// across the span are detected and their transpose/validation hoisted out
  /// of the per-pair loop; all scratch (cost block, network, Dijkstra state)
  /// is reused across pairs, so steady-state batches allocate nothing. On
  /// error the batch stops at the first failing pair (pair order, then the
  /// same row-major entry order as the serial path) and `out` is only
  /// partially written.
  Status ComputeBatch(const SignatureView* as, const SignatureView* bs,
                      std::size_t count, GroundDistance ground, double* out);

  /// \brief Shared-left convenience: `out[p]` == `Compute(a, bs[p], ground)`.
  /// All cost matrices are filled in ONE vectorized pass over a concatenated
  /// (d x sum L_p) transposed demand block.
  Status ComputeBatch(SignatureView a, const SignatureView* bs,
                      std::size_t count, GroundDistance ground, double* out);

  /// \brief Shared-right convenience: `out[p]` == `Compute(as[p], b, ground)`
  /// — the detector's rolling-table shape, where the newest window signature
  /// is the right operand of every new solve. B is transposed once.
  Status ComputeBatch(const SignatureView* as, std::size_t count,
                      SignatureView b, GroundDistance ground, double* out);

  /// \brief Validates the pair and fills the K x L ground-distance matrix
  /// through the batched vectorized kernel WITHOUT building the flow
  /// network. The approximate solvers (emd/approx/) run their iterations
  /// directly over cost_matrix() afterwards, reusing this workspace's packed
  /// cost buffer; the exact Compute() paths call it internally.
  Status PrepareCost(SignatureView a, SignatureView b, GroundDistance ground);

  /// \brief Row-major K x L cost matrix of the last PrepareCost/Compute.
  /// Valid until the next call that re-lays-out the workspace.
  const double* cost_matrix() const { return cost_matrix_.data(); }
  std::size_t cost_rows() const { return k_; }
  std::size_t cost_cols() const { return l_; }

  /// \brief Number of successful solves since construction.
  std::uint64_t solve_count() const { return solve_count_; }

  /// \brief K+L at or above which SolveNetwork selects the indexed 4-ary
  /// heap Dijkstra instead of the dense O(n^2) scan. 0 forces the dense scan
  /// always (today's behavior, bit-for-bit — though the heap is also
  /// bitwise-identical by construction). Exposed through
  /// EmdSolverOptions::heap_at / the `emd-heap-at=` spec key.
  void set_heap_threshold(std::size_t k_plus_l) { heap_threshold_ = k_plus_l; }
  std::size_t heap_threshold() const { return heap_threshold_; }

  /// \brief Number of buffer growths since construction. Once the workspace
  /// has seen the largest (K, L) of its call site, this stops moving —
  /// "allocations per solve" in steady state is exactly zero, which
  /// bench/micro_emd measures and tools/check_perf_gate.py enforces.
  std::uint64_t allocation_count() const { return allocation_count_; }

  /// \brief Per-owner memory ceiling for the monotonically-growing scratch.
  /// 0 (the default) means unlimited — buffers never shrink, the historical
  /// behavior. With a ceiling set, ShrinkToCeiling() releases ALL scratch
  /// whenever the retained footprint exceeds the ceiling; owners call it at
  /// quiet points (BagStreamDetector::Reset), never mid-solve. The next
  /// solve regrows to its actual need and the regrowth is visible in
  /// allocation_count() — which is exactly what the regression test pins.
  void set_retained_byte_ceiling(std::size_t bytes) {
    retained_byte_ceiling_ = bytes;
  }
  std::size_t retained_byte_ceiling() const { return retained_byte_ceiling_; }

  /// \brief Bytes currently held across all scratch buffers (capacities, not
  /// sizes — what the allocator actually retains).
  std::size_t retained_bytes() const;

  /// \brief Releases every scratch buffer if a ceiling is set and
  /// retained_bytes() exceeds it; otherwise a no-op. Safe between solves.
  void ShrinkToCeiling();

  /// \brief Unconditionally releases all scratch (retained_bytes() drops to
  /// zero; the next solve regrows). Owners with a pooled policy of their own
  /// (EmdSolver) use this directly.
  void ReleaseBuffers();

 private:
  // Validates the pair, sizes the buffers for (K, L), and fills the cost
  // matrix via the batched kernel (enum; public as PrepareCost) or the
  // callback (fn).
  Status Prepare(SignatureView a, SignatureView b,
                 const GroundDistanceFn& ground);
  Status Layout(SignatureView a, SignatureView b);

  // Builds the CSR residual network (arc order identical to the MinCostFlow
  // reference construction) and runs successive shortest augmenting paths
  // for min(total weights) units. On success `emd_out` is Eq. 12's value and
  // the residual arc capacities hold the optimal flow. `cost` points at the
  // k_ x l_ ground-distance block with `cost_stride` doubles between rows
  // (the batched shared-left fill stores all pairs in one wide matrix).
  Status SolveNetwork(SignatureView a, SignatureView b, const double* cost,
                      std::size_t cost_stride, double* emd_out,
                      double* total_flow_out, double* cost_out);

  // SolveNetwork plus extraction of the optimal flow matrix (the shared
  // tail of both ComputeDetailed overloads; Prepare must have run).
  Result<EmdSolution> SolveDetailed(SignatureView a, SignatureView b);

  void BuildNetwork(SignatureView a, SignatureView b, const double* cost,
                    std::size_t cost_stride);

  // One Dijkstra over the residual network from the source, filling
  // dist_/prev_node_/prev_arc_. The two selection strategies pop the exact
  // same (dist, node)-lexicographic order, so they are interchangeable
  // bit for bit; SolveNetwork picks by heap_threshold_.
  void DijkstraDense();
  void DijkstraHeap();

  // Indexed 4-ary min-heap primitives over heap_ (node ids) keyed by
  // (dist_[node], node); heap_pos_[node] is position + 1, 0 = absent.
  bool HeapLess(std::size_t u, std::size_t v) const {
    return dist_[u] < dist_[v] || (dist_[u] == dist_[v] && u < v);
  }
  void HeapSiftUp(std::size_t pos);
  void HeapSiftDown(std::size_t pos);

  // Sets the (k, l) shape and sizes every network/Dijkstra buffer (but not
  // the cost/transpose blocks, which the batch paths manage separately).
  void LayoutShape(std::size_t k, std::size_t l);

  // Shared implementation behind the three public ComputeBatch overloads.
  // A stride of 0 means "every pair uses *as / *bs" (shared operand).
  Status ComputeBatchImpl(const SignatureView* as, std::size_t as_stride,
                          const SignatureView* bs, std::size_t bs_stride,
                          std::size_t count, GroundDistance ground,
                          double* out);

  // Grows `v` to at least `count` elements (never shrinks), counting real
  // reallocations into allocation_count_.
  template <typename T>
  void Ensure(std::vector<T>* v, std::size_t count);

  std::size_t k_ = 0;      // Supply-side cluster count of the current solve.
  std::size_t l_ = 0;      // Demand-side cluster count.
  std::size_t nodes_ = 0;  // k_ + l_ + 2.
  std::size_t arcs_ = 0;   // 2 * (k_ + l_ + k_ * l_), forward + residual.

  std::vector<double> cost_matrix_;  // k_ x l_ ground distances, row-major.
  std::vector<double> b_transposed_;  // d x l_ demand centers, for the
                                      // unit-stride batched cost kernel.

  // Flat residual network. Arc e leaves the node whose CSR range contains e;
  // arc_rev_[e] is the global index of its reverse arc.
  std::vector<std::size_t> arc_to_;
  std::vector<std::size_t> arc_rev_;
  std::vector<double> arc_cap_;
  std::vector<double> arc_cost_;

  // Dijkstra + potentials scratch (nodes_ entries in use).
  std::vector<double> dist_;
  std::vector<double> potential_;
  std::vector<std::size_t> prev_node_;
  std::vector<std::size_t> prev_arc_;
  std::vector<char> visited_;

  // Indexed 4-ary heap scratch (large-K selection; see DijkstraHeap).
  std::vector<std::size_t> heap_;      // Node ids in heap order.
  std::vector<std::size_t> heap_pos_;  // node -> heap position + 1; 0 = out.
  std::size_t heap_size_ = 0;

  // Multi-pair batch scratch: one flat cost block for all pairs (wide
  // row-major k x sum(L_p) for shared-left, per-pair contiguous otherwise)
  // plus the per-pair offsets into it.
  std::vector<double> batch_cost_;
  std::vector<std::size_t> batch_off_;

  std::size_t heap_threshold_ = kDefaultEmdHeapAt;
  std::uint64_t solve_count_ = 0;
  std::uint64_t allocation_count_ = 0;
  std::size_t retained_byte_ceiling_ = 0;  // 0 = never shrink.
};

/// \brief Per-thread workspace used by the free enum-dispatched ComputeEmd
/// entry point and by pool workers (parallel matrix fills, detector
/// prefill). Each thread gets its own instance, so concurrent solves never
/// share scratch state. Never solve through this from code that can run
/// INSIDE another solve (a custom GroundDistanceFn) — such paths must use a
/// local workspace, as the fn-based free entry points do.
EmdWorkspace& ThreadLocalEmdWorkspace();

}  // namespace bagcpd

#endif  // BAGCPD_EMD_TRANSPORT_SOLVER_H_
