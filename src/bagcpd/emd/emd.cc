#include "bagcpd/emd/emd.h"

#include <algorithm>
#include <cmath>

#include "bagcpd/common/check.h"
#include "bagcpd/emd/emd_1d.h"
#include "bagcpd/emd/min_cost_flow.h"

namespace bagcpd {

Result<EmdSolution> ComputeEmdDetailed(const Signature& a, const Signature& b,
                                       const GroundDistanceFn& ground) {
  BAGCPD_RETURN_NOT_OK(a.Validate());
  BAGCPD_RETURN_NOT_OK(b.Validate());
  if (a.dim() != b.dim()) {
    return Status::Invalid("signatures have different dimensions");
  }

  const std::size_t k = a.size();
  const std::size_t l = b.size();
  const double supply = a.TotalWeight();
  const double demand = b.TotalWeight();
  const double total_flow = std::min(supply, demand);

  // Network layout: source = 0, supply nodes 1..K, demand nodes K+1..K+L,
  // sink = K+L+1. Constraints (8)-(10) are the arc capacities; requesting
  // `total_flow` units enforces (11).
  const std::size_t source = 0;
  const std::size_t sink = k + l + 1;
  MinCostFlow network(k + l + 2);

  for (std::size_t i = 0; i < k; ++i) {
    network.AddArc(source, 1 + i, a.weights[i], 0.0);
  }
  // Arc ids of the transport arcs, for flow extraction.
  std::vector<std::vector<int>> transport_ids(k, std::vector<int>(l));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      const double dist = ground(a.center(i), b.center(j));
      if (!(dist >= 0.0) || !std::isfinite(dist)) {
        return Status::Invalid("ground distance produced a negative or "
                               "non-finite value");
      }
      transport_ids[i][j] = network.AddArc(
          1 + i, 1 + k + j, std::min(a.weights[i], b.weights[j]), dist);
    }
  }
  for (std::size_t j = 0; j < l; ++j) {
    network.AddArc(1 + k + j, sink, b.weights[j], 0.0);
  }

  BAGCPD_ASSIGN_OR_RETURN(FlowSolution flow_solution,
                          network.Solve(source, sink, total_flow));

  EmdSolution out;
  out.total_flow = flow_solution.flow;
  out.cost = flow_solution.cost;
  out.flow = Matrix(k, l);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      out.flow(i, j) = network.FlowOn(transport_ids[i][j]);
    }
  }
  // Eq. 12. total_flow > 0 because signature weights are strictly positive.
  BAGCPD_CHECK(out.total_flow > 0.0);
  out.emd = out.cost / out.total_flow;
  return out;
}

Result<double> ComputeEmd(const Signature& a, const Signature& b,
                          GroundDistance ground) {
  // In one dimension Euclidean and Manhattan coincide and the balanced
  // problem has a closed-form sweep solution; use it when it applies.
  if ((ground == GroundDistance::kEuclidean ||
       ground == GroundDistance::kManhattan) &&
      Emd1dApplicable(a, b)) {
    return ComputeEmd1d(a, b);
  }
  return ComputeEmd(a, b, MakeGroundDistance(ground));
}

Result<double> ComputeEmd(const Signature& a, const Signature& b,
                          const GroundDistanceFn& ground) {
  BAGCPD_ASSIGN_OR_RETURN(EmdSolution sol, ComputeEmdDetailed(a, b, ground));
  return sol.emd;
}

Result<Matrix> PairwiseEmdMatrix(const std::vector<Signature>& signatures,
                                 GroundDistance ground) {
  if (signatures.empty()) return Status::Invalid("no signatures");
  const GroundDistanceFn fn = MakeGroundDistance(ground);
  const std::size_t n = signatures.size();
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      BAGCPD_ASSIGN_OR_RETURN(double d,
                              ComputeEmd(signatures[i], signatures[j], fn));
      m(i, j) = d;
      m(j, i) = d;
    }
  }
  return m;
}

}  // namespace bagcpd
