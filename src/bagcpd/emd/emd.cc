#include "bagcpd/emd/emd.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <mutex>

#include "bagcpd/common/check.h"
#include "bagcpd/emd/emd_1d.h"
#include "bagcpd/emd/min_cost_flow.h"
#include "bagcpd/runtime/thread_pool.h"

namespace bagcpd {

Result<EmdSolution> ComputeEmdDetailed(SignatureView a, SignatureView b,
                                       const GroundDistanceFn& ground) {
  BAGCPD_RETURN_NOT_OK(a.Validate());
  BAGCPD_RETURN_NOT_OK(b.Validate());
  if (a.dim() != b.dim()) {
    return Status::Invalid("signatures have different dimensions");
  }

  const std::size_t k = a.size();
  const std::size_t l = b.size();
  const double supply = a.TotalWeight();
  const double demand = b.TotalWeight();
  const double total_flow = std::min(supply, demand);

  // Network layout: source = 0, supply nodes 1..K, demand nodes K+1..K+L,
  // sink = K+L+1. Constraints (8)-(10) are the arc capacities; requesting
  // `total_flow` units enforces (11).
  const std::size_t source = 0;
  const std::size_t sink = k + l + 1;
  MinCostFlow network(k + l + 2);

  for (std::size_t i = 0; i < k; ++i) {
    network.AddArc(source, 1 + i, a.weight(i), 0.0);
  }
  // Arc ids of the transport arcs, for flow extraction.
  std::vector<std::vector<int>> transport_ids(k, std::vector<int>(l));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      const double dist = ground(a.center(i), b.center(j));
      if (!(dist >= 0.0) || !std::isfinite(dist)) {
        return Status::Invalid("ground distance produced a negative or "
                               "non-finite value");
      }
      transport_ids[i][j] = network.AddArc(
          1 + i, 1 + k + j, std::min(a.weight(i), b.weight(j)), dist);
    }
  }
  for (std::size_t j = 0; j < l; ++j) {
    network.AddArc(1 + k + j, sink, b.weight(j), 0.0);
  }

  BAGCPD_ASSIGN_OR_RETURN(FlowSolution flow_solution,
                          network.Solve(source, sink, total_flow));

  EmdSolution out;
  out.total_flow = flow_solution.flow;
  out.cost = flow_solution.cost;
  out.flow = Matrix(k, l);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < l; ++j) {
      out.flow(i, j) = network.FlowOn(transport_ids[i][j]);
    }
  }
  // Eq. 12. total_flow > 0 because signature weights are strictly positive.
  BAGCPD_CHECK(out.total_flow > 0.0);
  out.emd = out.cost / out.total_flow;
  return out;
}

Result<double> ComputeEmd(SignatureView a, SignatureView b,
                          GroundDistance ground) {
  // In one dimension Euclidean and Manhattan coincide and the balanced
  // problem has a closed-form sweep solution; use it when it applies.
  if ((ground == GroundDistance::kEuclidean ||
       ground == GroundDistance::kManhattan) &&
      Emd1dApplicable(a, b)) {
    return ComputeEmd1d(a, b);
  }
  return ComputeEmd(a, b, MakeGroundDistance(ground));
}

Result<double> ComputeEmd(SignatureView a, SignatureView b,
                          const GroundDistanceFn& ground) {
  BAGCPD_ASSIGN_OR_RETURN(EmdSolution sol, ComputeEmdDetailed(a, b, ground));
  return sol.emd;
}

namespace {

// Shared batch kernels over any indexable source of views, so the
// SignatureSet and std::vector<Signature> entry points run the exact same
// EMD sequence (bitwise-identical matrices).
using ViewAt = std::function<SignatureView(std::size_t)>;

Result<Matrix> PairwiseEmdImpl(const ViewAt& at, std::size_t n,
                               GroundDistance ground) {
  if (n == 0) return Status::Invalid("no signatures");
  // Materialize the ground function once (this also pins the historical
  // behaviour of always solving the full transportation problem here).
  const GroundDistanceFn fn = MakeGroundDistance(ground);
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      BAGCPD_ASSIGN_OR_RETURN(double d, ComputeEmd(at(i), at(j), fn));
      m(i, j) = d;
      m(j, i) = d;
    }
  }
  return m;
}

Result<Matrix> CrossDistanceImpl(const ViewAt& at_a, std::size_t n,
                                 const ViewAt& at_b, std::size_t m,
                                 GroundDistance ground) {
  if (n == 0 || m == 0) return Status::Invalid("no signatures");
  const GroundDistanceFn fn = MakeGroundDistance(ground);
  Matrix out(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      BAGCPD_ASSIGN_OR_RETURN(double dij, ComputeEmd(at_a(i), at_b(j), fn));
      out(i, j) = dij;
    }
  }
  return out;
}

}  // namespace

Result<Matrix> PairwiseEmdMatrix(const SignatureSet& signatures,
                                 GroundDistance ground) {
  return PairwiseEmdImpl([&](std::size_t i) { return signatures.view(i); },
                         signatures.size(), ground);
}

Result<Matrix> PairwiseEmdMatrix(const SignatureSet& signatures,
                                 GroundDistance ground, ThreadPool* pool) {
  if (pool == nullptr) return PairwiseEmdMatrix(signatures, ground);
  const std::size_t n = signatures.size();
  if (n == 0) return Status::Invalid("no signatures");
  const GroundDistanceFn fn = MakeGroundDistance(ground);
  // ParallelFor over the flat index of the strict upper triangle so the
  // static chunking splits the actual workload; each worker recovers its
  // (i, j) arithmetically and writes its two (distinct) matrix cells
  // directly — no O(n^2) pair/status side tables next to the O(n^2) output.
  // Every pair's EMD depends only on its two signatures, so the matrix
  // matches the serial overload bit for bit for any pool size.
  const std::size_t total = n * (n - 1) / 2;
  Matrix m(n, n, 0.0);
  // Flat index of pair (i, i + 1), i.e. pairs with first index < i.
  auto start_of = [n](std::size_t i) {
    return i * (n - 1) - (i * (i - 1)) / 2;
  };
  std::mutex error_mu;
  std::size_t first_error_p = total;  // total == "no error".
  Status first_error;
  pool->ParallelFor(0, total, [&](std::size_t p) {
    // Largest i with start_of(i) <= p: solve the quadratic, then nudge for
    // floating-point error (the loops move at most a step or two).
    const double root = (n - 0.5) - std::sqrt((n - 0.5) * (n - 0.5) -
                                              2.0 * static_cast<double>(p));
    std::size_t i = static_cast<std::size_t>(
        std::max(0.0, std::min(static_cast<double>(n - 2), root)));
    while (i > 0 && start_of(i) > p) --i;
    while (i < n - 2 && start_of(i + 1) <= p) ++i;
    const std::size_t j = i + 1 + (p - start_of(i));
    Result<double> d = ComputeEmd(signatures.view(i), signatures.view(j), fn);
    if (d.ok()) {
      m(i, j) = d.ValueOrDie();
      m(j, i) = d.ValueOrDie();
    } else {
      // Deterministically surface the error the serial loop would hit first
      // (the smallest flat index), independent of thread timing.
      std::lock_guard<std::mutex> lock(error_mu);
      if (p < first_error_p) {
        first_error_p = p;
        first_error = d.status();
      }
    }
  });
  BAGCPD_RETURN_NOT_OK(first_error);
  return m;
}

Result<Matrix> PairwiseEmdMatrix(const std::vector<Signature>& signatures,
                                 GroundDistance ground) {
  return PairwiseEmdImpl(
      [&](std::size_t i) { return SignatureView(signatures[i]); },
      signatures.size(), ground);
}

Result<Matrix> CrossDistanceMatrix(const SignatureSet& a,
                                   const SignatureSet& b,
                                   GroundDistance ground) {
  return CrossDistanceImpl([&](std::size_t i) { return a.view(i); }, a.size(),
                           [&](std::size_t j) { return b.view(j); }, b.size(),
                           ground);
}

Result<Matrix> CrossDistanceMatrix(const std::vector<Signature>& a,
                                   const std::vector<Signature>& b,
                                   GroundDistance ground) {
  return CrossDistanceImpl(
      [&](std::size_t i) { return SignatureView(a[i]); }, a.size(),
      [&](std::size_t j) { return SignatureView(b[j]); }, b.size(), ground);
}

}  // namespace bagcpd
