#include "bagcpd/emd/emd.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <mutex>

#include "bagcpd/common/check.h"
#include "bagcpd/emd/emd_1d.h"
#include "bagcpd/emd/transport_solver.h"
#include "bagcpd/runtime/thread_pool.h"

namespace bagcpd {

// Every entry point below runs on an EmdWorkspace (emd/transport_solver.h):
// the serial batch helpers keep one workspace for the whole matrix, the
// parallel overloads use one workspace per pool thread, and the free
// enum-dispatched two-signature functions share the calling thread's
// workspace — so steady state everywhere is allocation-free. The fn-based
// overloads run user code inside the solve and therefore use a local
// workspace (re-entrancy safety over reuse). MinCostFlow remains as the
// reference implementation; the property tests pin bitwise agreement
// between the two.

Result<EmdSolution> ComputeEmdDetailed(SignatureView a, SignatureView b,
                                       const GroundDistanceFn& ground) {
  // A custom ground distance may itself call back into an EMD entry point
  // (e.g. a nested-EMD dissimilarity); the fn-based entry points therefore
  // solve on a local workspace so a re-entrant call cannot clobber the
  // thread-local one mid-fill. Only the enum paths — where no user code runs
  // inside the solve — share the per-thread workspace.
  EmdWorkspace workspace;
  return workspace.ComputeDetailed(a, b, ground);
}

Result<double> ComputeEmd(SignatureView a, SignatureView b,
                          GroundDistance ground) {
  // In one dimension Euclidean and Manhattan coincide and the balanced
  // problem has a closed-form sweep solution; use it when it applies.
  if ((ground == GroundDistance::kEuclidean ||
       ground == GroundDistance::kManhattan) &&
      Emd1dApplicable(a, b)) {
    return ComputeEmd1d(a, b);
  }
  return ThreadLocalEmdWorkspace().Compute(a, b, ground);
}

Result<double> ComputeEmd(SignatureView a, SignatureView b,
                          const GroundDistanceFn& ground) {
  // Local workspace for the same re-entrancy reason as ComputeEmdDetailed.
  EmdWorkspace workspace;
  return workspace.Compute(a, b, ground);
}

namespace {

// Shared batch kernels over any indexable source of views, so the
// SignatureSet and std::vector<Signature> entry points run the exact same
// EMD sequence (bitwise-identical matrices).
using ViewAt = std::function<SignatureView(std::size_t)>;

Result<Matrix> PairwiseEmdImpl(const ViewAt& at, std::size_t n,
                               GroundDistance ground) {
  if (n == 0) return Status::Invalid("no signatures");
  // One workspace reused across all C(n, 2) solves, batched one row at a
  // time: row i is a shared-left ComputeBatch over at(i) vs at(i+1..n-1), so
  // all of the row's cost matrices fill in one vectorized pass and the
  // upper-triangle cells are written contiguously. Pair order, and therefore
  // the first surfaced error, matches the historical per-pair loop; so do
  // the values, bit for bit (ComputeBatch always runs the full
  // transportation solve, never the 1-d sweep).
  EmdWorkspace workspace;
  Matrix m(n, n, 0.0);
  std::vector<SignatureView> rights;
  rights.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    rights.clear();
    for (std::size_t j = i + 1; j < n; ++j) rights.push_back(at(j));
    BAGCPD_RETURN_NOT_OK(workspace.ComputeBatch(
        at(i), rights.data(), rights.size(), ground, &m(i, i + 1)));
    for (std::size_t j = i + 1; j < n; ++j) m(j, i) = m(i, j);
  }
  return m;
}

Result<Matrix> CrossDistanceImpl(const ViewAt& at_a, std::size_t n,
                                 const ViewAt& at_b, std::size_t m,
                                 GroundDistance ground) {
  if (n == 0 || m == 0) return Status::Invalid("no signatures");
  // Row-batched like PairwiseEmdImpl: each output row is one shared-left
  // ComputeBatch writing straight into the row-major Matrix storage.
  EmdWorkspace workspace;
  Matrix out(n, m);
  std::vector<SignatureView> rights;
  rights.reserve(m);
  for (std::size_t j = 0; j < m; ++j) rights.push_back(at_b(j));
  for (std::size_t i = 0; i < n; ++i) {
    BAGCPD_RETURN_NOT_OK(workspace.ComputeBatch(at_a(i), rights.data(), m,
                                                ground, &out(i, 0)));
  }
  return out;
}

}  // namespace

Result<Matrix> PairwiseEmdMatrix(const SignatureSet& signatures,
                                 GroundDistance ground) {
  return PairwiseEmdImpl([&](std::size_t i) { return signatures.view(i); },
                         signatures.size(), ground);
}

Result<Matrix> PairwiseEmdMatrix(const SignatureSet& signatures,
                                 GroundDistance ground, ThreadPool* pool) {
  if (pool == nullptr) return PairwiseEmdMatrix(signatures, ground);
  const std::size_t n = signatures.size();
  if (n == 0) return Status::Invalid("no signatures");
  // ParallelFor over the flat index of the strict upper triangle so the
  // static chunking splits the actual workload; each worker recovers its
  // (i, j) arithmetically and writes its two (distinct) matrix cells
  // directly — no O(n^2) pair/status side tables next to the O(n^2) output.
  // Every pair's EMD depends only on its two signatures, so the matrix
  // matches the serial overload bit for bit for any pool size.
  const std::size_t total = n * (n - 1) / 2;
  Matrix m(n, n, 0.0);
  // Flat index of pair (i, i + 1), i.e. pairs with first index < i.
  auto start_of = [n](std::size_t i) {
    return i * (n - 1) - (i * (i - 1)) / 2;
  };
  std::mutex error_mu;
  std::size_t first_error_p = total;  // total == "no error".
  Status first_error;
  pool->ParallelFor(0, total, [&](std::size_t p) {
    // Largest i with start_of(i) <= p: solve the quadratic, then nudge for
    // floating-point error (the loops move at most a step or two).
    const double root = (n - 0.5) - std::sqrt((n - 0.5) * (n - 0.5) -
                                              2.0 * static_cast<double>(p));
    std::size_t i = static_cast<std::size_t>(
        std::max(0.0, std::min(static_cast<double>(n - 2), root)));
    while (i > 0 && start_of(i) > p) --i;
    while (i < n - 2 && start_of(i + 1) <= p) ++i;
    const std::size_t j = i + 1 + (p - start_of(i));
    Result<double> d = ThreadLocalEmdWorkspace().Compute(
        signatures.view(i), signatures.view(j), ground);
    if (d.ok()) {
      m(i, j) = d.ValueOrDie();
      m(j, i) = d.ValueOrDie();
    } else {
      // Deterministically surface the error the serial loop would hit first
      // (the smallest flat index), independent of thread timing.
      std::lock_guard<std::mutex> lock(error_mu);
      if (p < first_error_p) {
        first_error_p = p;
        first_error = d.status();
      }
    }
  });
  BAGCPD_RETURN_NOT_OK(first_error);
  return m;
}

Result<Matrix> PairwiseEmdMatrix(const std::vector<Signature>& signatures,
                                 GroundDistance ground) {
  return PairwiseEmdImpl(
      [&](std::size_t i) { return SignatureView(signatures[i]); },
      signatures.size(), ground);
}

Result<Matrix> CrossDistanceMatrix(const SignatureSet& a,
                                   const SignatureSet& b,
                                   GroundDistance ground) {
  return CrossDistanceImpl([&](std::size_t i) { return a.view(i); }, a.size(),
                           [&](std::size_t j) { return b.view(j); }, b.size(),
                           ground);
}

Result<Matrix> CrossDistanceMatrix(const SignatureSet& a,
                                   const SignatureSet& b,
                                   GroundDistance ground, ThreadPool* pool) {
  if (pool == nullptr) return CrossDistanceMatrix(a, b, ground);
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return Status::Invalid("no signatures");
  // Deterministic row chunking: ParallelFor splits the n rows purely as a
  // function of (n, pool size), each worker batch-solves whole rows through
  // its thread-local workspace (one shared-left ComputeBatch per row, same
  // as the serial impl), and every cell depends only on its two signatures —
  // so the matrix is bitwise-identical to the serial overload for any pool
  // size.
  Matrix out(n, m);
  std::vector<SignatureView> rights;
  rights.reserve(m);
  for (std::size_t j = 0; j < m; ++j) rights.push_back(b.view(j));
  std::mutex error_mu;
  std::size_t first_error_row = n;  // n == "no error".
  Status first_error;
  pool->ParallelFor(0, n, [&](std::size_t i) {
    const Status s = ThreadLocalEmdWorkspace().ComputeBatch(
        a.view(i), rights.data(), m, ground, &out(i, 0));
    if (s.ok()) return;
    // Surface the error the serial row-major loop would hit first,
    // independent of thread timing: ComputeBatch already stops a row at its
    // first failing column, and the lowest failing row wins here.
    std::lock_guard<std::mutex> lock(error_mu);
    if (i < first_error_row) {
      first_error_row = i;
      first_error = s;
    }
  });
  BAGCPD_RETURN_NOT_OK(first_error);
  return out;
}

Result<Matrix> CrossDistanceMatrix(const std::vector<Signature>& a,
                                   const std::vector<Signature>& b,
                                   GroundDistance ground) {
  return CrossDistanceImpl(
      [&](std::size_t i) { return SignatureView(a[i]); }, a.size(),
      [&](std::size_t j) { return SignatureView(b[j]); }, b.size(), ground);
}

}  // namespace bagcpd
