#include "bagcpd/runtime/thread_pool.h"

#include <algorithm>

#include "bagcpd/common/check.h"

namespace bagcpd {

namespace {

// The pool (if any) whose worker is executing on this thread. Lets
// ParallelFor detect re-entrant use from one of its own workers, where
// blocking on queued chunks could deadlock (the worker cannot drain its own
// queue while waiting on the latch).
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

bool ThreadPool::InWorkerThread() const { return tls_worker_pool == this; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  shards_.reserve(num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  for (auto& shard : shards_) {
    // Lock/unlock pairs with the worker's wait so the notify cannot be missed.
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->not_empty.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(std::size_t shard_index) {
  tls_worker_pool = this;
  Shard& shard = *shards_[shard_index];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.not_empty.wait(
          lock, [&] { return stop_.load() || !shard.tasks.empty(); });
      if (shard.tasks.empty()) return;  // stop_ set and queue drained.
      task = std::move(shard.tasks.front());
      shard.tasks.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (shards_.empty()) {
    task();
    return;
  }
  const std::size_t shard = next_shard_.fetch_add(1) % shards_.size();
  SubmitTo(shard, std::move(task));
}

void ThreadPool::SubmitTo(std::size_t shard_index, std::function<void()> task) {
  if (shards_.empty()) {
    task();
    return;
  }
  BAGCPD_CHECK_MSG(!stop_.load(), "Submit on a stopping ThreadPool");
  Shard& shard = *shards_[shard_index % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.tasks.push_back(std::move(task));
  }
  shard.not_empty.notify_one();
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body) {
  ParallelForChunked(begin, end,
                     [&body](std::size_t chunk_begin, std::size_t chunk_end) {
                       for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
                         body(i);
                       }
                     });
}

void ThreadPool::ParallelForChunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  // Re-entrant call from one of this pool's own workers: queueing chunks
  // back onto the pool and blocking on them can deadlock (this worker's own
  // shard queue cannot make progress while it waits). Run inline instead —
  // serial, deterministic, every index exactly once.
  if (InWorkerThread()) {
    body(begin, end);
    return;
  }
  const std::size_t n = end - begin;
  // The calling thread participates, so up to size() + 1 chunks. The chunk
  // layout depends only on (n, size()): deterministic for a fixed pool size,
  // and every index runs exactly once for any pool size.
  const std::size_t chunks = std::min(n, shards_.size() + 1);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;  // First `extra` chunks get +1.

  struct Latch {
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = chunks - 1;

  std::size_t chunk_begin = begin;
  std::size_t first_end = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t chunk_size = base + (c < extra ? 1 : 0);
    const std::size_t chunk_end = chunk_begin + chunk_size;
    if (c == 0) {
      first_end = chunk_end;  // Run inline after all chunks are queued.
    } else {
      SubmitTo(c - 1, [latch, &body, chunk_begin, chunk_end] {
        body(chunk_begin, chunk_end);
        std::lock_guard<std::mutex> lock(latch->mu);
        if (--latch->remaining == 0) latch->done.notify_all();
      });
    }
    chunk_begin = chunk_end;
  }
  body(begin, first_end);
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->done.wait(lock, [&] { return latch->remaining == 0; });
}

}  // namespace bagcpd
