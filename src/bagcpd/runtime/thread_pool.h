// Sharded fixed-size thread pool, the execution substrate of the concurrent
// runtime. Each worker owns its own task queue (no work stealing): Submit()
// round-robins across shards, SubmitTo() pins a task to one shard so that all
// tasks sharing a key run in submission order on one thread. ParallelFor()
// statically chunks an index range over the workers plus the calling thread
// and blocks until every index has run — chunking is a pure function of the
// range and pool size, never of timing, which is what lets callers guarantee
// bitwise-deterministic results for any thread count.

#ifndef BAGCPD_RUNTIME_THREAD_POOL_H_
#define BAGCPD_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bagcpd {

/// \brief Fixed-size pool of worker threads with per-worker (sharded) queues.
///
/// A pool of size 0 is valid and runs everything inline on the calling
/// thread; it is the degenerate serial mode used by determinism tests.
/// Tasks must not throw; report failures through captured state instead
/// (the library's Status/Result convention).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = fully inline execution).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains every queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Number of worker threads (and shards).
  std::size_t size() const { return shards_.size(); }

  /// \brief Enqueues `task` on the next shard (round-robin). With no workers
  /// the task runs inline before Submit returns.
  void Submit(std::function<void()> task);

  /// \brief Enqueues `task` on shard `shard % size()`. Tasks submitted to one
  /// shard run in FIFO order on a single thread.
  void SubmitTo(std::size_t shard, std::function<void()> task);

  /// \brief Runs `body(i)` for every i in [begin, end) across the pool and
  /// the calling thread; returns once all indices have completed.
  ///
  /// The range is split into at most size() + 1 contiguous chunks; the split
  /// depends only on (begin, end, size()), so any per-index work that is
  /// itself deterministic yields results independent of scheduling.
  ///
  /// Re-entrancy: calling this from inside a task running on this pool's own
  /// workers is detected and falls back to inline serial execution on the
  /// calling worker — correct (every index still runs exactly once) instead
  /// of deadlocking on the worker's own queue. Nesting across *different*
  /// pools parallelizes normally.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body);

  /// \brief Chunked variant: `body(chunk_begin, chunk_end)` per contiguous
  /// chunk. Useful when per-index dispatch overhead matters. Same
  /// re-entrancy fallback as ParallelFor.
  void ParallelForChunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// \brief True iff the calling thread is one of THIS pool's workers.
  bool InWorkerThread() const;

 private:
  struct Shard {
    std::mutex mu;
    std::condition_variable not_empty;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(std::size_t shard_index);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_shard_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace bagcpd

#endif  // BAGCPD_RUNTIME_THREAD_POOL_H_
