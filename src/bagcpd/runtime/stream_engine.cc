#include "bagcpd/runtime/stream_engine.h"

#include <algorithm>

#include "bagcpd/common/check.h"
#include "bagcpd/common/rng.h"

namespace bagcpd {

namespace {

// How many tasks a shard processes between idle-eviction sweeps. The sweep
// only reclaims memory: any detector it frees would also have been recreated
// from scratch by the lazy per-task check, so results are unaffected.
constexpr std::uint64_t kIdleSweepPeriod = 512;

Status ValidateEngineOptions(const StreamEngineOptions& options) {
  if (options.shard_queue_capacity < 1) {
    return Status::Invalid("shard_queue_capacity must be >= 1");
  }
  // Surface bad arena tuning like any other option (the BufferArena
  // constructor would abort on it).
  BAGCPD_RETURN_NOT_OK(ValidateBufferArenaOptions(options.arena));
  // Fail fast on a detector misconfiguration instead of quarantining every
  // stream on first push.
  BagStreamDetector probe(options.detector);
  return probe.init_status();
}

}  // namespace

StreamEngine::StreamEngine(const StreamEngineOptions& options)
    : options_(options), init_status_(ValidateEngineOptions(options)) {
  if (!init_status_.ok()) return;
  std::size_t n = options_.num_shards;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  arenas_.reserve(n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    arenas_.push_back(std::make_unique<BufferArena>(options_.arena));
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->arena = arenas_.back().get();
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

StreamEngine::~StreamEngine() { Shutdown(); }

void StreamEngine::set_callback(ResultCallback callback) {
  callback_ = std::move(callback);
}

std::size_t StreamEngine::ShardOf(const std::string& stream_id) const {
  // Stable hash: the shard assignment (and hence nothing observable) depends
  // on platform or process; the per-stream seed derives from the same hash.
  return static_cast<std::size_t>(Rng::StableHash64(stream_id)) %
         shards_.size();
}

Status StreamEngine::Submit(const std::string& stream_id, const Bag& bag) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  // Flatten exactly once at the ingest boundary, into a buffer recycled
  // through the target shard's arena (released on the shard thread when the
  // task dies — the cross-thread pattern the arena supports). A ragged bag
  // becomes an error task that quarantines the stream on its shard, matching
  // the detector-failure path.
  const std::size_t shard_index = ShardOf(stream_id);
  Result<FlatBag> flat = FlatBag::FromBag(bag, arenas_[shard_index].get());
  return SubmitImpl(stream_id, shard_index, &flat, /*blocking=*/true);
}

Status StreamEngine::Submit(const std::string& stream_id, FlatBag bag) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  Result<FlatBag> flat(std::move(bag));
  return SubmitImpl(stream_id, ShardOf(stream_id), &flat, /*blocking=*/true);
}

Status StreamEngine::TrySubmit(const std::string& stream_id, const Bag& bag) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  const std::size_t shard_index = ShardOf(stream_id);
  Result<FlatBag> flat = FlatBag::FromBag(bag, arenas_[shard_index].get());
  return SubmitImpl(stream_id, shard_index, &flat, /*blocking=*/false);
}

Status StreamEngine::TrySubmit(const std::string& stream_id, FlatBag&& bag) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  Result<FlatBag> flat(std::move(bag));
  const Status status =
      SubmitImpl(stream_id, ShardOf(stream_id), &flat, /*blocking=*/false);
  // Hand the payload back on a transient rejection so callers can retry
  // without re-flattening.
  if (status.IsUnavailable()) bag = flat.MoveValueUnsafe();
  return status;
}

Status StreamEngine::SubmitImpl(const std::string& stream_id,
                                std::size_t shard_index, Result<FlatBag>* bag,
                                bool blocking) {
  if (stop_.load()) {
    return Status::Invalid("Submit on a stopped StreamEngine");
  }
  Shard& shard = *shards_[shard_index];
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    if (blocking) {
      shard.not_full.wait(lock, [&] {
        return shard.queue.size() < options_.shard_queue_capacity ||
               stop_.load();
      });
    } else if (shard.queue.size() >= options_.shard_queue_capacity &&
               !stop_.load()) {
      return Status::Unavailable("shard queue full");
    }
    if (stop_.load()) {
      return Status::Invalid("Submit on a stopped StreamEngine");
    }
    // The sequence number is taken only once queue space is secured, so a
    // rejected TrySubmit never advances the idle clock.
    const std::uint64_t seq = submit_seq_.fetch_add(1) + 1;
    shard.queue.push_back(Task{stream_id, std::move(*bag), seq});
  }
  shard.not_empty.notify_one();
  return Status::OK();
}

void StreamEngine::WorkerLoop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.not_empty.wait(
          lock, [&] { return stop_.load() || !shard.queue.empty(); });
      if (shard.queue.empty()) return;  // Stopping and fully drained.
      task = std::move(shard.queue.front());
      shard.queue.pop_front();
      shard.busy = true;
    }
    shard.not_full.notify_one();
    const std::uint64_t seq = task.seq;
    Process(shard, std::move(task));
    if (options_.max_idle_submissions > 0 &&
        ++shard.processed_since_sweep >= kIdleSweepPeriod) {
      shard.processed_since_sweep = 0;
      SweepIdle(shard, seq);
    }
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.busy = false;
      if (shard.queue.empty()) shard.drained.notify_all();
    }
  }
}

void StreamEngine::SweepIdle(Shard& shard, std::uint64_t now_seq) {
  // Reclaims detectors idle past the threshold. Any stream erased here would
  // also be restarted by the lazy check on its next bag (its gap can only
  // grow), so the sweep changes memory usage, never results.
  const std::uint64_t max_idle = options_.max_idle_submissions;
  for (auto it = shard.detectors.begin(); it != shard.detectors.end();) {
    if (now_seq > it->second.last_seq &&
        now_seq - it->second.last_seq > max_idle) {
      it = shard.detectors.erase(it);
      evicted_.fetch_add(1);
      live_streams_.fetch_sub(1);
    } else {
      ++it;
    }
  }
}

void StreamEngine::Process(Shard& shard, Task task) {
  processed_.fetch_add(1);
  if (shard.quarantined.count(task.stream_id) > 0) {
    dropped_.fetch_add(1);
    return;
  }
  if (!task.bag.ok()) {
    // Flattening failed at the ingest boundary: quarantine exactly like a
    // detector failure so later bags of this key are dropped, not processed
    // out of order, and any detector built by earlier good bags is freed.
    auto existing = shard.detectors.find(task.stream_id);
    if (existing != shard.detectors.end()) {
      shard.detectors.erase(existing);
      live_streams_.fetch_sub(1);
    }
    shard.quarantined.emplace(task.stream_id, task.bag.status());
    std::lock_guard<std::mutex> lock(errors_mu_);
    errors_.emplace_back(task.stream_id, task.bag.status());
    quarantined_keys_.insert(task.stream_id);
    return;
  }
  auto it = shard.detectors.find(task.stream_id);
  if (it != shard.detectors.end() && options_.max_idle_submissions > 0 &&
      task.seq - it->second.last_seq - 1 > options_.max_idle_submissions) {
    // The key sat idle past the threshold: restart it from scratch. The
    // decision depends only on the global submission sequence, so it is
    // identical for any shard count.
    shard.detectors.erase(it);
    it = shard.detectors.end();
    evicted_.fetch_add(1);
    live_streams_.fetch_sub(1);
  }
  if (it == shard.detectors.end()) {
    DetectorOptions per_stream = options_.detector;
    // Seeded by (engine seed, key) only — never by shard index or count — so
    // a stream's entire output is reproducible under resharding, and a
    // restarted stream behaves exactly like a fresh one.
    per_stream.seed =
        Rng::MixSeed64(options_.seed ^ Rng::StableHash64(task.stream_id));
    StreamState state;
    state.detector = std::make_unique<BagStreamDetector>(per_stream);
    // Signature builds for this stream recycle buffers through the shard's
    // pool; the arena outlives every detector (member declaration order).
    state.detector->set_buffer_arena(shard.arena);
    it = shard.detectors.emplace(task.stream_id, std::move(state)).first;
    streams_created_.fetch_add(1);
    live_streams_.fetch_add(1);
  }
  it->second.last_seq = task.seq;
  Result<std::optional<StepResult>> step =
      it->second.detector->Push(task.bag.ValueOrDie().view());
  if (!step.ok()) {
    shard.quarantined.emplace(task.stream_id, step.status());
    shard.detectors.erase(it);
    live_streams_.fetch_sub(1);
    std::lock_guard<std::mutex> lock(errors_mu_);
    errors_.emplace_back(task.stream_id, step.status());
    quarantined_keys_.insert(task.stream_id);
    return;
  }
  if (!step.ValueOrDie().has_value()) return;
  StreamStepResult result{task.stream_id, *step.ValueOrDie()};
  results_emitted_.fetch_add(1);
  if (callback_) {
    callback_(result);
  } else if (options_.collect_results) {
    std::lock_guard<std::mutex> lock(results_mu_);
    results_.push_back(std::move(result));
  }
}

void StreamEngine::Flush() {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->drained.wait(lock,
                        [&] { return shard->queue.empty() && !shard->busy; });
  }
}

std::vector<StreamStepResult> StreamEngine::Drain() {
  std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<StreamStepResult> out;
  out.swap(results_);
  return out;
}

std::vector<std::pair<std::string, Status>> StreamEngine::DrainErrors() {
  std::lock_guard<std::mutex> lock(errors_mu_);
  std::vector<std::pair<std::string, Status>> out;
  out.swap(errors_);
  return out;
}

Result<std::map<std::string, std::vector<StepResult>>> StreamEngine::RunBatch(
    const std::map<std::string, BagSequence>& streams) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  if (callback_ || !options_.collect_results) {
    return Status::Invalid(
        "RunBatch needs collect_results = true and no callback");
  }
  // Isolate this batch from any earlier online traffic still in the queues.
  Flush();
  Drain();
  DrainErrors();
  // A key quarantined by earlier traffic would have its batch bags silently
  // dropped; refuse up front instead.
  {
    std::lock_guard<std::mutex> lock(errors_mu_);
    for (const auto& [key, bags] : streams) {
      if (quarantined_keys_.count(key) > 0) {
        return Status::Invalid("stream '" + key +
                               "' was quarantined by an earlier failure");
      }
    }
  }
  // Interleave submissions time-step-first so every shard has work from the
  // start instead of filling one stream's shard at a time.
  std::size_t max_len = 0;
  for (const auto& [key, bags] : streams) {
    max_len = std::max(max_len, bags.size());
  }
  for (std::size_t t = 0; t < max_len; ++t) {
    for (const auto& [key, bags] : streams) {
      if (t < bags.size()) {
        BAGCPD_RETURN_NOT_OK(Submit(key, bags[t]));
      }
    }
  }
  Flush();
  std::vector<std::pair<std::string, Status>> errors = DrainErrors();
  if (!errors.empty()) {
    return Status::Invalid("stream '" + errors.front().first +
                           "' failed: " + errors.front().second.ToString());
  }
  std::map<std::string, std::vector<StepResult>> out;
  for (const auto& [key, bags] : streams) {
    out.emplace(key, std::vector<StepResult>());
  }
  for (StreamStepResult& r : Drain()) {
    out[r.stream_id].push_back(r.step);
  }
  return out;
}

BufferArenaStats StreamEngine::arena_stats() const {
  BufferArenaStats total;
  for (const auto& arena : arenas_) {
    const BufferArenaStats s = arena->stats();
    total.acquires += s.acquires;
    total.pool_hits += s.pool_hits;
    total.releases += s.releases;
    total.dropped_releases += s.dropped_releases;
    total.pooled_buffers += s.pooled_buffers;
    total.pooled_doubles += s.pooled_doubles;
  }
  return total;
}

void StreamEngine::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  stop_.store(true);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->not_empty.notify_all();
    shard->not_full.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

}  // namespace bagcpd
