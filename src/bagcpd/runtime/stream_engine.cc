#include "bagcpd/runtime/stream_engine.h"

#include <algorithm>

#include "bagcpd/common/check.h"
#include "bagcpd/common/rng.h"

namespace bagcpd {

namespace {

Status ValidateEngineOptions(const StreamEngineOptions& options) {
  if (options.shard_queue_capacity < 1) {
    return Status::Invalid("shard_queue_capacity must be >= 1");
  }
  // Fail fast on a detector misconfiguration instead of quarantining every
  // stream on first push.
  BagStreamDetector probe(options.detector);
  return probe.init_status();
}

}  // namespace

StreamEngine::StreamEngine(const StreamEngineOptions& options)
    : options_(options), init_status_(ValidateEngineOptions(options)) {
  if (!init_status_.ok()) return;
  std::size_t n = options_.num_shards;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

StreamEngine::~StreamEngine() { Shutdown(); }

void StreamEngine::set_callback(ResultCallback callback) {
  callback_ = std::move(callback);
}

std::size_t StreamEngine::ShardOf(const std::string& stream_id) const {
  // Stable hash: the shard assignment (and hence nothing observable) depends
  // on platform or process; the per-stream seed derives from the same hash.
  return static_cast<std::size_t>(Rng::StableHash64(stream_id)) %
         shards_.size();
}

Status StreamEngine::Submit(const std::string& stream_id, Bag bag) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  if (stop_.load()) {
    return Status::Invalid("Submit on a stopped StreamEngine");
  }
  Shard& shard = *shards_[ShardOf(stream_id)];
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    shard.not_full.wait(lock, [&] {
      return shard.queue.size() < options_.shard_queue_capacity || stop_.load();
    });
    if (stop_.load()) {
      return Status::Invalid("Submit on a stopped StreamEngine");
    }
    shard.queue.push_back(Task{stream_id, std::move(bag)});
  }
  shard.not_empty.notify_one();
  submitted_.fetch_add(1);
  return Status::OK();
}

void StreamEngine::WorkerLoop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.not_empty.wait(
          lock, [&] { return stop_.load() || !shard.queue.empty(); });
      if (shard.queue.empty()) return;  // Stopping and fully drained.
      task = std::move(shard.queue.front());
      shard.queue.pop_front();
      shard.busy = true;
    }
    shard.not_full.notify_one();
    Process(shard, std::move(task));
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.busy = false;
      if (shard.queue.empty()) shard.drained.notify_all();
    }
  }
}

void StreamEngine::Process(Shard& shard, Task task) {
  processed_.fetch_add(1);
  if (shard.quarantined.count(task.stream_id) > 0) {
    dropped_.fetch_add(1);
    return;
  }
  auto it = shard.detectors.find(task.stream_id);
  if (it == shard.detectors.end()) {
    DetectorOptions per_stream = options_.detector;
    // Seeded by (engine seed, key) only — never by shard index or count — so
    // a stream's entire output is reproducible under resharding.
    per_stream.seed =
        Rng::MixSeed64(options_.seed ^ Rng::StableHash64(task.stream_id));
    it = shard.detectors
             .emplace(task.stream_id,
                      std::make_unique<BagStreamDetector>(per_stream))
             .first;
    streams_created_.fetch_add(1);
  }
  Result<std::optional<StepResult>> step = it->second->Push(task.bag);
  if (!step.ok()) {
    shard.quarantined.emplace(task.stream_id, step.status());
    std::lock_guard<std::mutex> lock(errors_mu_);
    errors_.emplace_back(task.stream_id, step.status());
    quarantined_keys_.insert(task.stream_id);
    return;
  }
  if (!step.ValueOrDie().has_value()) return;
  StreamStepResult result{task.stream_id, *step.ValueOrDie()};
  results_emitted_.fetch_add(1);
  if (callback_) {
    callback_(result);
  } else if (options_.collect_results) {
    std::lock_guard<std::mutex> lock(results_mu_);
    results_.push_back(std::move(result));
  }
}

void StreamEngine::Flush() {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->drained.wait(lock,
                        [&] { return shard->queue.empty() && !shard->busy; });
  }
}

std::vector<StreamStepResult> StreamEngine::Drain() {
  std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<StreamStepResult> out;
  out.swap(results_);
  return out;
}

std::vector<std::pair<std::string, Status>> StreamEngine::DrainErrors() {
  std::lock_guard<std::mutex> lock(errors_mu_);
  std::vector<std::pair<std::string, Status>> out;
  out.swap(errors_);
  return out;
}

Result<std::map<std::string, std::vector<StepResult>>> StreamEngine::RunBatch(
    const std::map<std::string, BagSequence>& streams) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  if (callback_ || !options_.collect_results) {
    return Status::Invalid(
        "RunBatch needs collect_results = true and no callback");
  }
  // Isolate this batch from any earlier online traffic still in the queues.
  Flush();
  Drain();
  DrainErrors();
  // A key quarantined by earlier traffic would have its batch bags silently
  // dropped; refuse up front instead.
  {
    std::lock_guard<std::mutex> lock(errors_mu_);
    for (const auto& [key, bags] : streams) {
      if (quarantined_keys_.count(key) > 0) {
        return Status::Invalid("stream '" + key +
                               "' was quarantined by an earlier failure");
      }
    }
  }
  // Interleave submissions time-step-first so every shard has work from the
  // start instead of filling one stream's shard at a time.
  std::size_t max_len = 0;
  for (const auto& [key, bags] : streams) {
    max_len = std::max(max_len, bags.size());
  }
  for (std::size_t t = 0; t < max_len; ++t) {
    for (const auto& [key, bags] : streams) {
      if (t < bags.size()) {
        BAGCPD_RETURN_NOT_OK(Submit(key, bags[t]));
      }
    }
  }
  Flush();
  std::vector<std::pair<std::string, Status>> errors = DrainErrors();
  if (!errors.empty()) {
    return Status::Invalid("stream '" + errors.front().first +
                           "' failed: " + errors.front().second.ToString());
  }
  std::map<std::string, std::vector<StepResult>> out;
  for (const auto& [key, bags] : streams) {
    out.emplace(key, std::vector<StepResult>());
  }
  for (StreamStepResult& r : Drain()) {
    out[r.stream_id].push_back(r.step);
  }
  return out;
}

void StreamEngine::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  stop_.store(true);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->not_empty.notify_all();
    shard->not_full.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

}  // namespace bagcpd
