#include "bagcpd/runtime/stream_engine.h"

#include <algorithm>
#include <cstdio>

#include "bagcpd/common/check.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/fault/fault_injector.h"
#include "bagcpd/serialize/checkpoint.h"
#include "bagcpd/serialize/wire.h"

namespace bagcpd {

namespace {

// How many tasks a shard processes between idle-eviction sweeps. The sweep
// only reclaims memory: any detector it frees would also have been recreated
// from scratch by the lazy per-task check, so results are unaffected.
constexpr std::uint64_t kIdleSweepPeriod = 512;

}  // namespace

std::uint64_t DerivePerStreamSeed(std::uint64_t engine_seed,
                                  const std::string& stream_id,
                                  const std::string& profile) {
  std::uint64_t base = engine_seed ^ Rng::StableHash64(stream_id);
  if (!profile.empty() && profile != kDefaultProfileName) {
    base ^= Rng::MixSeed64(Rng::StableHash64(profile));
  }
  return Rng::MixSeed64(base);
}

Status ValidateStreamEngineOptions(const StreamEngineOptions& options) {
  if (options.shard_queue_capacity < 1) {
    return Status::Invalid("shard_queue_capacity must be >= 1");
  }
  // Surface bad arena tuning like any other option (the BufferArena
  // constructor would abort on it).
  BAGCPD_RETURN_NOT_OK(ValidateBufferArenaOptions(options.arena));
  // Fail fast on a detector misconfiguration instead of quarantining every
  // stream on first push.
  BAGCPD_RETURN_NOT_OK(ValidateDetectorOptions(options.detector));
  // Historically a nonzero detector.seed was silently ignored (per-stream
  // seeds derive from the engine seed); reject it so the footgun is loud.
  if (options.detector.seed != 0) {
    return Status::Invalid(
        "StreamEngineOptions.detector.seed must be 0: per-stream seeds derive "
        "from StreamEngineOptions.seed and the stream key (set the engine "
        "seed instead)");
  }
  if (options.spill_resident_bytes > 0 && options.spill_directory.empty()) {
    return Status::Invalid(
        "spill_resident_bytes needs a spill_directory to spill into");
  }
  if (options.spill_gc_submissions > 0 && options.spill_directory.empty()) {
    return Status::Invalid(
        "spill_gc_submissions needs a spill_directory to collect from");
  }
  if (options.max_stream_faults == 0 &&
      (options.fault_backoff_submissions > 0 ||
       options.snapshot_interval > 0)) {
    return Status::Invalid(
        "fault_backoff_submissions / snapshot_interval need "
        "max_stream_faults > 0 (with a zero budget the first failure "
        "quarantines, so there is nothing to back off or restore)");
  }
  if (!options.fault.empty()) {
    BAGCPD_RETURN_NOT_OK(fault::FaultInjector::ValidateSpec(options.fault));
  }
  return Status::OK();
}

Result<std::unique_ptr<StreamEngine>> StreamEngine::Create(
    const StreamEngineOptions& options) {
  BAGCPD_RETURN_NOT_OK(ValidateStreamEngineOptions(options));
  return std::make_unique<StreamEngine>(options);
}

StreamEngine::StreamEngine(const StreamEngineOptions& options)
    : options_(options), init_status_(ValidateStreamEngineOptions(options)) {
  if (!init_status_.ok()) return;
  if (!options_.fault.empty()) {
    // Validated above, so arming cannot fail; the injector is process-wide,
    // so this replaces whatever spec an earlier engine (or BAGCPD_FAULT) set.
    fault::FaultInjector::Global().ArmFromSpec(options_.fault).ok();
  }
  std::size_t n = options_.num_shards;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  arenas_.reserve(n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    arenas_.push_back(std::make_unique<BufferArena>(options_.arena));
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->arena = arenas_.back().get();
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

StreamEngine::~StreamEngine() { Shutdown(); }

Status StreamEngine::RegisterProfile(const std::string& name,
                                     const DetectorOptions& profile) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  if (name.empty() || name == kDefaultProfileName) {
    return Status::Invalid(
        "profile name '" + name +
        "' is reserved (the default profile is StreamEngineOptions.detector)");
  }
  if (submit_seq_.load() > 0) {
    return Status::Invalid(
        "RegisterProfile must be called before the first Submit");
  }
  if (profiles_.count(name) > 0) {
    return Status::Invalid("profile '" + name + "' is already registered");
  }
  BAGCPD_RETURN_NOT_OK(ValidateDetectorOptions(profile));
  if (profile.seed != 0) {
    return Status::Invalid(
        "profile '" + name +
        "' has a nonzero detector seed: per-stream seeds derive from the "
        "engine seed, the stream key, and the profile name");
  }
  profiles_.emplace(name, profile);
  return Status::OK();
}

Status StreamEngine::set_event_sink(EventSink sink) {
  // Both documented preconditions are enforced: installing after traffic has
  // started would race shard workers reading sink_ in EmitEvent, and a sink
  // next to a legacy callback would silently starve one of them.
  if (submit_seq_.load() > 0) {
    return Status::Invalid(
        "set_event_sink must be called before the first Submit");
  }
  if (callback_) {
    return Status::Invalid(
        "set_event_sink on an engine with a legacy callback installed; use "
        "one delivery mechanism");
  }
  sink_ = std::move(sink);
  return Status::OK();
}

Status StreamEngine::set_callback(ResultCallback callback) {
  if (submit_seq_.load() > 0) {
    return Status::Invalid(
        "set_callback must be called before the first Submit");
  }
  if (sink_) {
    return Status::Invalid(
        "set_callback on an engine with an event sink installed; use one "
        "delivery mechanism");
  }
  callback_ = std::move(callback);
  return Status::OK();
}

std::size_t StreamEngine::ShardOf(const std::string& stream_id) const {
  // Stable hash: the shard assignment (and hence nothing observable) depends
  // on platform or process; the per-stream seed derives from the same hash.
  return static_cast<std::size_t>(Rng::StableHash64(stream_id)) %
         shards_.size();
}

Result<std::string> StreamEngine::ResolveProfile(
    const std::string& profile) const {
  if (profile.empty() || profile == kDefaultProfileName) {
    return std::string(kDefaultProfileName);
  }
  if (profiles_.count(profile) == 0) {
    return Status::Invalid("unknown detector profile '" + profile +
                           "' (register it before the first Submit)");
  }
  return profile;
}

const DetectorOptions& StreamEngine::ProfileOptions(
    const std::string& profile) const {
  if (profile == kDefaultProfileName) return options_.detector;
  auto it = profiles_.find(profile);
  BAGCPD_CHECK_MSG(it != profiles_.end(), "unresolved profile '%s'",
                   profile.c_str());
  return it->second;
}

std::uint64_t StreamEngine::DeriveStreamSeed(const std::string& stream_id,
                                             const std::string& profile) const {
  // Seeded by (engine seed, key, profile) only — never by shard index or
  // count — so a stream's entire output is reproducible under resharding and
  // a restarted stream behaves exactly like a fresh one. Shared with the
  // offline batch runner so RunBatchColumnar reproduces engine seeding
  // bit for bit.
  return DerivePerStreamSeed(options_.seed, stream_id, profile);
}

Status StreamEngine::Submit(const std::string& stream_id, const Bag& bag,
                            const std::string& profile) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  BAGCPD_ASSIGN_OR_RETURN(std::string canonical, ResolveProfile(profile));
  // Flatten exactly once at the ingest boundary, into a buffer recycled
  // through the target shard's arena (released on the shard thread when the
  // task dies — the cross-thread pattern the arena supports). A ragged bag
  // becomes an error task that quarantines the stream on its shard, matching
  // the detector-failure path.
  const std::size_t shard_index = ShardOf(stream_id);
  Result<FlatBag> flat = FlatBag::FromBag(bag, arenas_[shard_index].get());
  return SubmitImpl(stream_id, canonical, shard_index, &flat,
                    /*blocking=*/true);
}

Status StreamEngine::Submit(const std::string& stream_id, FlatBag bag,
                            const std::string& profile) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  BAGCPD_ASSIGN_OR_RETURN(std::string canonical, ResolveProfile(profile));
  Result<FlatBag> flat(std::move(bag));
  return SubmitImpl(stream_id, canonical, ShardOf(stream_id), &flat,
                    /*blocking=*/true);
}

Status StreamEngine::TrySubmit(const std::string& stream_id, const Bag& bag,
                               const std::string& profile) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  BAGCPD_ASSIGN_OR_RETURN(std::string canonical, ResolveProfile(profile));
  const std::size_t shard_index = ShardOf(stream_id);
  Result<FlatBag> flat = FlatBag::FromBag(bag, arenas_[shard_index].get());
  return SubmitImpl(stream_id, canonical, shard_index, &flat,
                    /*blocking=*/false);
}

Status StreamEngine::TrySubmit(const std::string& stream_id, FlatBag&& bag,
                               const std::string& profile) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  BAGCPD_ASSIGN_OR_RETURN(std::string canonical, ResolveProfile(profile));
  Result<FlatBag> flat(std::move(bag));
  const Status status = SubmitImpl(stream_id, canonical, ShardOf(stream_id),
                                   &flat, /*blocking=*/false);
  // Hand the payload back on a transient rejection so callers can retry
  // without re-flattening.
  if (status.IsUnavailable()) bag = flat.MoveValueUnsafe();
  return status;
}

Status StreamEngine::SubmitImpl(const std::string& stream_id,
                                const std::string& profile,
                                std::size_t shard_index, Result<FlatBag>* bag,
                                bool blocking) {
  if (stop_.load()) {
    return Status::Invalid("Submit on a stopped StreamEngine");
  }
  // Boundary sanitization, outside the shard lock: a NaN/Inf bag is tagged
  // here (while still attributable to this submission) and dropped on the
  // shard with a kStreamFault event; the stream continues on its next good
  // bag. Raggedness (bag holding an error) stays a quarantine.
  Status ingest_error;
  if (bag->ok()) {
    ingest_error = CheckBagViewFinite(bag->ValueOrDie().view());
  }
  Shard& shard = *shards_[shard_index];
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    if (blocking) {
      shard.not_full.wait(lock, [&] {
        return shard.queue.size() < options_.shard_queue_capacity ||
               stop_.load();
      });
    } else if (shard.queue.size() >= options_.shard_queue_capacity &&
               !stop_.load()) {
      return Status::Unavailable("shard queue full");
    }
    if (stop_.load()) {
      return Status::Invalid("Submit on a stopped StreamEngine");
    }
    // The sequence number is taken only once queue space is secured, so a
    // rejected TrySubmit never advances the idle clock.
    const std::uint64_t seq = submit_seq_.fetch_add(1) + 1;
    Task task;
    task.stream_id = stream_id;
    task.profile = profile;
    task.bag = std::move(*bag);
    task.seq = seq;
    task.ingest_error = std::move(ingest_error);
    task.enqueued_at = std::chrono::steady_clock::now();
    // `arena.alloc` fault point: a simulated ingest-side allocation failure,
    // keyed to (key hash, global submission sequence) so the same bag faults
    // for every shard count. Surfaces exactly like a bad bag: dropped on the
    // shard, stream unharmed.
    if (task.ingest_error.ok() && task.bag.ok() &&
        fault::FaultFires(fault::FaultPoint::kArenaAlloc,
                          Rng::StableHash64(stream_id), seq)) {
      task.ingest_error =
          fault::InjectedFaultError(fault::FaultPoint::kArenaAlloc);
    }
    shard.queue.push_back(std::move(task));
  }
  shard.not_empty.notify_one();
  return Status::OK();
}

void StreamEngine::WorkerLoop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.not_empty.wait(
          lock, [&] { return stop_.load() || !shard.queue.empty(); });
      if (shard.queue.empty()) return;  // Stopping and fully drained.
      task = std::move(shard.queue.front());
      shard.queue.pop_front();
      shard.busy = true;
    }
    shard.not_full.notify_one();
    const std::uint64_t seq = task.seq;
    Process(shard, std::move(task));
    if ((options_.max_idle_submissions > 0 ||
         options_.spill_gc_submissions > 0) &&
        ++shard.processed_since_sweep >= kIdleSweepPeriod) {
      shard.processed_since_sweep = 0;
      SweepIdle(shard, seq);
    }
    // Byte-budget LRU: spill this shard's coldest streams while the
    // engine-wide resident total is over budget. Runs before busy clears so
    // QuiesceShard callers never observe a mid-spill shard.
    if (options_.spill_resident_bytes > 0 &&
        resident_bytes_.load() > options_.spill_resident_bytes) {
      EnforceSpillBudget(shard, seq);
    }
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.busy = false;
      if (shard.queue.empty()) shard.drained.notify_all();
    }
  }
}

void StreamEngine::EmitEvent(EngineEvent event) {
  if (event.kind == EngineEvent::Kind::kStep) results_emitted_.fetch_add(1);
  if (sink_) {
    sink_(event);
    return;
  }
  if (event.kind == EngineEvent::Kind::kStep && callback_) {
    callback_(StreamStepResult{event.stream_id, event.step});
    return;
  }
  // The legacy contract queues errors even in callback mode (DrainErrors is
  // how failures surface there); steps and evictions honor collect_results.
  if (event.kind != EngineEvent::Kind::kError &&
      (callback_ || !options_.collect_results)) {
    return;
  }
  std::lock_guard<std::mutex> lock(events_mu_);
  events_.push_back(std::move(event));
}

void StreamEngine::QuarantineStream(Shard& shard, const std::string& stream_id,
                                    const std::string& profile,
                                    std::uint64_t seq, const Status& error,
                                    std::uint64_t latency_ns) {
  shard.quarantined.emplace(stream_id, error);
  // A quarantined key never recovers; its fault history and snapshot go too.
  shard.recovery.erase(stream_id);
  auto existing = shard.detectors.find(stream_id);
  if (existing != shard.detectors.end()) {
    resident_bytes_.fetch_sub(existing->second.state_bytes);
    shard.detectors.erase(existing);
    live_streams_.fetch_sub(1);
  }
  auto spilled = shard.spilled.find(stream_id);
  if (spilled != shard.spilled.end()) {
    // A quarantined key never rehydrates; drop its spill file too.
    std::remove(spilled->second.path.c_str());
    shard.spilled.erase(spilled);
  }
  {
    std::lock_guard<std::mutex> lock(events_mu_);
    quarantined_keys_.insert(stream_id);
  }
  EngineEvent event;
  event.kind = EngineEvent::Kind::kError;
  event.stream_id = stream_id;
  event.profile = profile;
  event.sequence = seq;
  event.enqueue_to_process_ns = latency_ns;
  event.error = error;
  EmitEvent(std::move(event));
}

void StreamEngine::HandleStreamFailure(Shard& shard,
                                       const std::string& stream_id,
                                       const std::string& profile,
                                       std::uint64_t seq, const Status& error,
                                       std::uint64_t latency_ns) {
  if (options_.max_stream_faults == 0) {
    // Historical contract: the first failure quarantines forever.
    QuarantineStream(shard, stream_id, profile, seq, error, latency_ns);
    return;
  }
  RecoveryState& rec = shard.recovery[stream_id];
  rec.profile = profile;
  ++rec.fault_count;
  stream_faults_.fetch_add(1);
  // The bag that surfaced the failure is consumed without a result, and the
  // failed detector's state is not trustworthy: tear it down either way.
  dropped_.fetch_add(1);
  auto existing = shard.detectors.find(stream_id);
  if (existing != shard.detectors.end()) {
    resident_bytes_.fetch_sub(existing->second.state_bytes);
    shard.detectors.erase(existing);
    live_streams_.fetch_sub(1);
  }
  EngineEvent event;
  event.kind = EngineEvent::Kind::kStreamFault;
  event.stream_id = stream_id;
  event.profile = profile;
  event.sequence = seq;
  event.enqueue_to_process_ns = latency_ns;
  event.error = error;
  EmitEvent(std::move(event));
  if (rec.fault_count > options_.max_stream_faults) {
    // Budget exhausted; the quarantine carries the final straw.
    QuarantineStream(shard, stream_id, profile, seq, error, latency_ns);
    return;
  }
  if (options_.fault_backoff_submissions > 0) {
    // Linear backoff on the global submission sequence: deterministic for a
    // fixed submission order, unlike any wall-clock delay.
    rec.cooldown_until =
        seq + options_.fault_backoff_submissions *
                  static_cast<std::uint64_t>(rec.fault_count);
  }
  // Restore from the rolling snapshot when one exists. Each attempt can
  // itself fail (a corrupt blob, or the ckpt.import fault point in a drill);
  // after max_restore_failures such failures the snapshot is declared
  // poisoned and discarded, and the stream restarts from scratch — lazily,
  // on its next accepted bag, with its usual per-key seed.
  while (!rec.snapshot.empty()) {
    if (rec.restore_failures >= options_.max_restore_failures) {
      rec.snapshot.clear();
      rec.restore_failures = 0;
      break;
    }
    const Status restored =
        ImportStreamLocked(shard, stream_id, rec.profile, rec.snapshot,
                           rec.snapshot.size(), seq, latency_ns);
    if (restored.ok()) {
      rec.restore_failures = 0;
      return;
    }
    ++rec.restore_failures;
  }
}

void StreamEngine::MaybeSnapshotStream(Shard& shard,
                                       const std::string& stream_id,
                                       StreamState& state) {
  if (options_.snapshot_interval == 0) return;
  if (state.detector->pushed_count() % options_.snapshot_interval != 0) {
    return;
  }
  std::string blob;
  // An export failure just keeps the previous snapshot: strictly better than
  // discarding it, and the next interval retries.
  if (!state.detector->ExportState(&blob).ok()) return;
  RecoveryState& rec = shard.recovery[stream_id];
  rec.profile = state.profile;
  rec.snapshot = std::move(blob);
  rec.restore_failures = 0;
}

void StreamEngine::CollectSpilledStream(Shard& shard,
                                        const std::string& stream_id,
                                        std::uint64_t now_seq) {
  auto it = shard.spilled.find(stream_id);
  if (it == shard.spilled.end()) return;
  std::remove(it->second.path.c_str());
  EngineEvent event;
  event.kind = EngineEvent::Kind::kEviction;
  event.stream_id = stream_id;
  event.profile = it->second.profile;
  event.sequence = now_seq;
  shard.spilled.erase(it);
  // The collected key restarts from scratch, so its fault history goes too.
  shard.recovery.erase(stream_id);
  evicted_.fetch_add(1);
  spill_gc_.fetch_add(1);
  EmitEvent(std::move(event));
}

void StreamEngine::SweepIdle(Shard& shard, std::uint64_t now_seq) {
  // Reclaims detectors idle past the threshold. Without spilling, any stream
  // erased here would also be restarted by the lazy check on its next bag
  // (its gap can only grow), so the sweep changes memory usage, never
  // results. With spilling, victims are exported instead of destroyed and
  // rehydrate bitwise on their next bag — again memory only, never results.
  // Spill-file GC: keys that spilled and never returned are reclaimed here
  // (the lazy per-task check cannot see them — it only runs when a key's
  // next bag arrives). Sweep timing is shard-dependent, so only counters and
  // kEviction timing vary with sharding; results never do (a collected key
  // restarts from scratch either way).
  if (options_.spill_gc_submissions > 0) {
    std::vector<std::string> expired;
    for (const auto& [key, rec] : shard.spilled) {
      if (now_seq > rec.last_seq &&
          now_seq - rec.last_seq > options_.spill_gc_submissions) {
        expired.push_back(key);
      }
    }
    for (const std::string& key : expired) {
      CollectSpilledStream(shard, key, now_seq);
    }
  }
  const std::uint64_t max_idle = options_.max_idle_submissions;
  if (max_idle == 0) return;
  if (spill_enabled()) {
    std::vector<std::string> victims;
    for (const auto& [key, state] : shard.detectors) {
      if (now_seq > state.last_seq && now_seq - state.last_seq > max_idle) {
        victims.push_back(key);
      }
    }
    for (const std::string& key : victims) {
      SpillStream(shard, key, now_seq);
    }
    return;
  }
  for (auto it = shard.detectors.begin(); it != shard.detectors.end();) {
    if (now_seq > it->second.last_seq &&
        now_seq - it->second.last_seq > max_idle) {
      EngineEvent event;
      event.kind = EngineEvent::Kind::kEviction;
      event.stream_id = it->first;
      event.profile = it->second.profile;
      event.sequence = now_seq;
      shard.recovery.erase(it->first);
      it = shard.detectors.erase(it);
      evicted_.fetch_add(1);
      live_streams_.fetch_sub(1);
      EmitEvent(std::move(event));
    } else {
      ++it;
    }
  }
}

void StreamEngine::Process(Shard& shard, Task task) {
  processed_.fetch_add(1);
  // One latency sample per processed submission, taken before any work so the
  // number measures queueing, not detector cost. Sampled even for dropped /
  // quarantining bags: those submissions queued like any other.
  const auto waited = std::chrono::steady_clock::now() - task.enqueued_at;
  const std::uint64_t latency_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count());
  latency_samples_.fetch_add(1);
  latency_total_ns_.fetch_add(latency_ns);
  std::uint64_t prev_max = latency_max_ns_.load();
  while (latency_ns > prev_max &&
         !latency_max_ns_.compare_exchange_weak(prev_max, latency_ns)) {
  }
  if (shard.quarantined.count(task.stream_id) > 0) {
    dropped_.fetch_add(1);
    return;
  }
  if (!task.bag.ok()) {
    // Flattening failed at the ingest boundary: quarantine exactly like a
    // detector failure so later bags of this key are dropped, not processed
    // out of order, and any detector built by earlier good bags is freed.
    QuarantineStream(shard, task.stream_id, task.profile, task.seq,
                     task.bag.status(), latency_ns);
    return;
  }
  {
    // Backoff window from an earlier contained failure: bags inside it are
    // dropped. Keyed to the submission sequence, so the window covers the
    // same bags for every shard count.
    auto rec_it = shard.recovery.find(task.stream_id);
    if (rec_it != shard.recovery.end() &&
        task.seq <= rec_it->second.cooldown_until) {
      dropped_.fetch_add(1);
      return;
    }
  }
  if (!task.ingest_error.ok()) {
    // The ingest boundary tagged this bag (non-finite values or an injected
    // arena.alloc fault): drop it with a kStreamFault event. The detector
    // never saw the bag, so the stream is unharmed, charges no fault budget,
    // and continues on its next good bag.
    dropped_.fetch_add(1);
    EngineEvent event;
    event.kind = EngineEvent::Kind::kStreamFault;
    event.stream_id = task.stream_id;
    event.profile = task.profile;
    event.sequence = task.seq;
    event.enqueue_to_process_ns = latency_ns;
    event.error = task.ingest_error;
    EmitEvent(std::move(event));
    return;
  }
  if (spill_enabled()) {
    auto spilled_it = shard.spilled.find(task.stream_id);
    if (spilled_it != shard.spilled.end()) {
      if (spilled_it->second.profile != task.profile) {
        // The binding survives the spill: a conflicting submission is the
        // same caller bug as against a resident stream.
        QuarantineStream(shard, task.stream_id, spilled_it->second.profile,
                         task.seq,
                         Status::Invalid("stream '" + task.stream_id +
                                         "' is bound to profile '" +
                                         spilled_it->second.profile +
                                         "' but was submitted with profile '" +
                                         task.profile + "'"),
                         latency_ns);
        return;
      }
      if (options_.spill_gc_submissions > 0 &&
          task.seq - spilled_it->second.last_seq - 1 >
              options_.spill_gc_submissions) {
        // The key outlived the GC horizon before this bag arrived: collect
        // the stale file now (the sweep may simply not have run yet) so the
        // keep-or-restart decision is a pure function of the submission
        // sequence, then fall through to a from-scratch restart.
        CollectSpilledStream(shard, task.stream_id, task.seq);
      } else {
        const Status restored =
            RehydrateStream(shard, task.stream_id, task.seq, latency_ns);
        if (!restored.ok()) {
          // Enters the recovery ladder: with a fault budget the stream
          // restarts (from snapshot or scratch) and THIS bag is dropped;
          // without one it quarantines exactly as before.
          HandleStreamFailure(shard, task.stream_id, task.profile, task.seq,
                              restored, latency_ns);
          return;
        }
      }
    }
  }
  auto it = shard.detectors.find(task.stream_id);
  // The lazy idle-restart only exists without spilling: a spilling engine
  // preserves idle state (on disk at worst) instead of discarding it.
  if (!spill_enabled() && it != shard.detectors.end() &&
      options_.max_idle_submissions > 0 &&
      task.seq - it->second.last_seq - 1 > options_.max_idle_submissions) {
    // The key sat idle past the threshold: restart it from scratch. The
    // decision depends only on the global submission sequence, so it is
    // identical for any shard count.
    EngineEvent event;
    event.kind = EngineEvent::Kind::kEviction;
    event.stream_id = task.stream_id;
    event.profile = it->second.profile;
    event.sequence = task.seq;
    event.enqueue_to_process_ns = latency_ns;
    shard.detectors.erase(it);
    it = shard.detectors.end();
    // An evicted key restarts with a clean fault history (same decision the
    // sweep-based eviction makes); keyed to the sequence, so deterministic.
    shard.recovery.erase(task.stream_id);
    evicted_.fetch_add(1);
    live_streams_.fetch_sub(1);
    EmitEvent(std::move(event));
  }
  if (it != shard.detectors.end() && it->second.profile != task.profile) {
    // A key is bound to one profile for its whole (un-evicted) life; a
    // conflicting submission is a caller bug, surfaced like any other
    // stream failure. Depends only on submission order, so the outcome is
    // shard-count deterministic. The event carries the BOUND profile (the
    // EngineEvent.profile contract); the message names both.
    QuarantineStream(shard, task.stream_id, it->second.profile, task.seq,
                     Status::Invalid("stream '" + task.stream_id +
                                     "' is bound to profile '" +
                                     it->second.profile +
                                     "' but was submitted with profile '" +
                                     task.profile + "'"),
                     latency_ns);
    return;
  }
  if (it == shard.detectors.end()) {
    // A stream torn down by a contained fault keeps its profile binding in
    // the recovery record; a conflicting later submission is the same caller
    // bug as against a resident stream.
    auto rec_it = shard.recovery.find(task.stream_id);
    if (rec_it != shard.recovery.end() &&
        !rec_it->second.profile.empty() &&
        rec_it->second.profile != task.profile) {
      QuarantineStream(shard, task.stream_id, rec_it->second.profile, task.seq,
                       Status::Invalid("stream '" + task.stream_id +
                                       "' is bound to profile '" +
                                       rec_it->second.profile +
                                       "' but was submitted with profile '" +
                                       task.profile + "'"),
                       latency_ns);
      return;
    }
    DetectorOptions per_stream = ProfileOptions(task.profile);
    per_stream.seed = DeriveStreamSeed(task.stream_id, task.profile);
    StreamState state;
    // Cannot fail: every registered profile was validated up front and the
    // engine only changes the seed.
    Result<std::unique_ptr<BagStreamDetector>> created =
        BagStreamDetector::Create(per_stream);
    BAGCPD_CHECK_MSG(created.ok(), "validated profile failed Create: %s",
                     created.status().ToString().c_str());
    state.detector = created.MoveValueUnsafe();
    state.profile = task.profile;
    // Signature builds for this stream recycle buffers through the shard's
    // pool; the arena outlives every detector (member declaration order).
    state.detector->set_buffer_arena(shard.arena);
    it = shard.detectors.emplace(task.stream_id, std::move(state)).first;
    streams_created_.fetch_add(1);
    live_streams_.fetch_add(1);
  }
  it->second.last_seq = task.seq;
  Result<std::optional<StepResult>> step =
      it->second.detector->Push(task.bag.ValueOrDie().view());
  if (!step.ok()) {
    HandleStreamFailure(shard, task.stream_id, task.profile, task.seq,
                        step.status(), latency_ns);
    return;
  }
  if (spill_enabled()) UpdateResidentBytes(it->second);
  MaybeSnapshotStream(shard, task.stream_id, it->second);
  if (!step.ValueOrDie().has_value()) return;
  EngineEvent event;
  event.kind = EngineEvent::Kind::kStep;
  event.stream_id = task.stream_id;
  event.profile = task.profile;
  event.sequence = task.seq;
  event.enqueue_to_process_ns = latency_ns;
  event.step = *step.ValueOrDie();
  EmitEvent(std::move(event));
}

void StreamEngine::Flush() {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->drained.wait(lock,
                        [&] { return shard->queue.empty() && !shard->busy; });
  }
}

std::vector<EngineEvent> StreamEngine::DrainEvents() {
  std::lock_guard<std::mutex> lock(events_mu_);
  std::vector<EngineEvent> out;
  out.swap(events_);
  return out;
}

std::vector<StreamStepResult> StreamEngine::Drain() {
  std::lock_guard<std::mutex> lock(events_mu_);
  std::vector<StreamStepResult> out;
  std::vector<EngineEvent> keep;
  keep.reserve(events_.size());
  for (EngineEvent& event : events_) {
    if (event.kind == EngineEvent::Kind::kStep) {
      out.push_back(StreamStepResult{std::move(event.stream_id), event.step});
    } else if (event.kind == EngineEvent::Kind::kError) {
      keep.push_back(std::move(event));
    }
    // kEviction events are discarded: the legacy drains predate them, so a
    // caller polling only Drain()/DrainErrors() must not accumulate them
    // forever (evicted_count() still tracks the total).
  }
  events_.swap(keep);
  return out;
}

std::vector<std::pair<std::string, Status>> StreamEngine::DrainErrors() {
  std::lock_guard<std::mutex> lock(events_mu_);
  std::vector<std::pair<std::string, Status>> out;
  std::vector<EngineEvent> keep;
  keep.reserve(events_.size());
  for (EngineEvent& event : events_) {
    if (event.kind == EngineEvent::Kind::kError) {
      out.emplace_back(std::move(event.stream_id), event.error);
    } else if (event.kind == EngineEvent::Kind::kStep) {
      keep.push_back(std::move(event));
    }
    // kEviction discarded; see Drain().
  }
  events_.swap(keep);
  return out;
}

Result<std::map<std::string, std::vector<StepResult>>> StreamEngine::RunBatch(
    const std::map<std::string, BagSequence>& streams,
    const std::string& profile) {
  return RunBatch(streams, /*profile_by_key=*/{}, profile);
}

Result<std::map<std::string, std::vector<StepResult>>> StreamEngine::RunBatch(
    const std::map<std::string, BagSequence>& streams,
    const std::map<std::string, std::string>& profile_by_key,
    const std::string& default_profile) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  if (sink_ || callback_ || !options_.collect_results) {
    return Status::Invalid(
        "RunBatch needs collect_results = true and no sink or callback");
  }
  BAGCPD_ASSIGN_OR_RETURN(std::string fallback,
                          ResolveProfile(default_profile));
  // Resolve every key's route up front: an unknown profile name must fail
  // the batch before any bag is enqueued, never after a partial sweep.
  // Routing-map entries for keys outside `streams` are ignored by the same
  // token — only the routes this batch will actually use are validated.
  std::map<std::string, std::string> route;
  for (const auto& [key, bags] : streams) {
    auto it = profile_by_key.find(key);
    if (it == profile_by_key.end()) {
      route.emplace(key, fallback);
    } else {
      BAGCPD_ASSIGN_OR_RETURN(std::string canonical,
                              ResolveProfile(it->second));
      route.emplace(key, std::move(canonical));
    }
  }
  // Isolate this batch from any earlier online traffic still in the queues.
  Flush();
  DrainEvents();
  // A key quarantined by earlier traffic would have its batch bags silently
  // dropped; refuse up front instead.
  {
    std::lock_guard<std::mutex> lock(events_mu_);
    for (const auto& [key, bags] : streams) {
      if (quarantined_keys_.count(key) > 0) {
        return Status::Invalid("stream '" + key +
                               "' was quarantined by an earlier failure");
      }
    }
  }
  // Interleave submissions time-step-first so every shard has work from the
  // start instead of filling one stream's shard at a time.
  std::size_t max_len = 0;
  for (const auto& [key, bags] : streams) {
    max_len = std::max(max_len, bags.size());
  }
  for (std::size_t t = 0; t < max_len; ++t) {
    for (const auto& [key, bags] : streams) {
      if (t < bags.size()) {
        BAGCPD_RETURN_NOT_OK(Submit(key, bags[t], route[key]));
      }
    }
  }
  Flush();
  std::vector<std::pair<std::string, Status>> errors = DrainErrors();
  if (!errors.empty()) {
    return Status::Invalid("stream '" + errors.front().first +
                           "' failed: " + errors.front().second.ToString());
  }
  std::map<std::string, std::vector<StepResult>> out;
  for (const auto& [key, bags] : streams) {
    out.emplace(key, std::vector<StepResult>());
  }
  for (StreamStepResult& r : Drain()) {
    out[r.stream_id].push_back(r.step);
  }
  return out;
}

std::unique_lock<std::mutex> StreamEngine::QuiesceShard(Shard& shard) {
  // With the lock held and the predicate true, the worker is parked on its
  // empty-queue wait (it needs the mutex to pop) and Submit is blocked on the
  // mutex, so the caller may safely touch shard-owned state. Post-Shutdown
  // the predicate is true immediately (workers drain before joining).
  std::unique_lock<std::mutex> lock(shard.mu);
  shard.drained.wait(lock, [&] { return shard.queue.empty() && !shard.busy; });
  return lock;
}

void StreamEngine::UpdateResidentBytes(StreamState& state) {
  const std::size_t now = state.detector->EstimatedStateBytes();
  if (now >= state.state_bytes) {
    resident_bytes_.fetch_add(now - state.state_bytes);
  } else {
    resident_bytes_.fetch_sub(state.state_bytes - now);
  }
  state.state_bytes = now;
}

std::string StreamEngine::SpillPathFor(const std::string& stream_id) {
  // Hash plus a never-reused counter: unique even when the same key spills
  // repeatedly, and free of unsanitized key bytes.
  return options_.spill_directory + "/bagcpd-" +
         std::to_string(Rng::StableHash64(stream_id)) + "-" +
         std::to_string(spill_file_seq_.fetch_add(1)) + ".ckpt";
}

bool StreamEngine::SpillStream(Shard& shard, const std::string& stream_id,
                               std::uint64_t now_seq) {
  auto it = shard.detectors.find(stream_id);
  if (it == shard.detectors.end()) return false;
  // `spill.write` fault point: behaves exactly like a failed file write —
  // the stream stays resident, nothing is lost, memory pressure persists.
  if (fault::FaultFires(fault::FaultPoint::kSpillWrite,
                        Rng::StableHash64(stream_id),
                        fault_spill_write_ops_.fetch_add(1) + 1)) {
    return false;
  }
  std::string detector_blob;
  if (!it->second.detector->ExportState(&detector_blob).ok()) return false;
  std::string stream_blob;
  serialize::BuildStreamBlob(stream_id, it->second.profile, detector_blob,
                             &stream_blob);
  SpilledStream rec;
  rec.path = SpillPathFor(stream_id);
  rec.profile = it->second.profile;
  rec.last_seq = it->second.last_seq;
  rec.blob_bytes = stream_blob.size();
  if (!serialize::WriteFileBytes(rec.path, stream_blob).ok()) {
    // Stream stays resident: memory pressure persists but nothing is lost.
    std::remove(rec.path.c_str());
    return false;
  }
  EngineEvent event;
  event.kind = EngineEvent::Kind::kCheckpoint;
  event.stream_id = stream_id;
  event.profile = it->second.profile;
  event.sequence = now_seq;
  event.blob_bytes = rec.blob_bytes;
  resident_bytes_.fetch_sub(it->second.state_bytes);
  // Record the spill BEFORE erasing the detector entry: callers (the budget
  // LRU in particular) pass a stream_id that aliases the map node's key, so
  // the erase must be the last read of it.
  shard.spilled.emplace(stream_id, std::move(rec));
  shard.detectors.erase(it);
  live_streams_.fetch_sub(1);
  spilled_.fetch_add(1);
  EmitEvent(std::move(event));
  return true;
}

Status StreamEngine::RehydrateStream(Shard& shard, const std::string& stream_id,
                                     std::uint64_t seq,
                                     std::uint64_t latency_ns) {
  auto rec_it = shard.spilled.find(stream_id);
  SpilledStream rec = std::move(rec_it->second);
  shard.spilled.erase(rec_it);
  // `spill.read` fault point: behaves exactly like an unreadable spill file.
  // The record is consumed like on any other failure (the caller runs the
  // recovery ladder), and the file is deleted below with the shared epilog.
  if (fault::FaultFires(fault::FaultPoint::kSpillRead,
                        Rng::StableHash64(stream_id),
                        fault_spill_read_ops_.fetch_add(1) + 1)) {
    std::remove(rec.path.c_str());
    return Status::IoError(
        "fault-injected: spill.read (simulated unreadable spill file)");
  }
  // The file is read through the shard arena, so once the pool is warm a
  // rehydrate allocates nothing on this path.
  std::vector<double> storage;
  Status status = [&]() -> Status {
    BAGCPD_ASSIGN_OR_RETURN(
        std::size_t bytes,
        serialize::ReadFileBytes(rec.path, shard.arena, &storage));
    const std::string_view blob = serialize::FileBytesView(storage, bytes);
    BAGCPD_ASSIGN_OR_RETURN(serialize::StreamBlobParts parts,
                            serialize::ParseStreamBlob(blob));
    if (parts.key != stream_id || parts.profile != rec.profile) {
      return Status::IoError("spill file '" + rec.path +
                             "' does not match stream '" + stream_id + "'");
    }
    return ImportStreamLocked(shard, stream_id, rec.profile,
                              parts.detector_blob, blob.size(), seq,
                              latency_ns);
  }();
  shard.arena->Release(std::move(storage));
  // The spill file is consumed either way: on success the state is resident
  // again, on failure the caller quarantines the stream.
  std::remove(rec.path.c_str());
  return status;
}

void StreamEngine::EnforceSpillBudget(Shard& shard, std::uint64_t now_seq) {
  // Coldest-first (smallest last-submission sequence) within this shard; the
  // stream whose bag triggered the check is never its own victim, so a
  // single hot stream cannot thrash through its own spill file. Other shards
  // enforce the same budget from their own workers.
  while (resident_bytes_.load() > options_.spill_resident_bytes) {
    const std::string* victim = nullptr;
    std::uint64_t coldest = now_seq;
    for (const auto& [key, state] : shard.detectors) {
      if (state.last_seq < coldest) {
        coldest = state.last_seq;
        victim = &key;
      }
    }
    if (victim == nullptr || !SpillStream(shard, *victim, now_seq)) return;
  }
}

Status StreamEngine::ExportStream(const std::string& stream_id,
                                  std::string* blob) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  Shard& shard = *shards_[ShardOf(stream_id)];
  std::unique_lock<std::mutex> lock = QuiesceShard(shard);
  return ExportStreamLocked(shard, stream_id, blob);
}

Status StreamEngine::ExportStreamLocked(Shard& shard,
                                        const std::string& stream_id,
                                        std::string* blob) {
  auto quarantined = shard.quarantined.find(stream_id);
  if (quarantined != shard.quarantined.end()) {
    return Status::Invalid("stream '" + stream_id + "' is quarantined: " +
                           quarantined->second.ToString());
  }
  std::string profile;
  auto it = shard.detectors.find(stream_id);
  if (it != shard.detectors.end()) {
    std::string detector_blob;
    BAGCPD_RETURN_NOT_OK(it->second.detector->ExportState(&detector_blob));
    blob->clear();
    serialize::BuildStreamBlob(stream_id, it->second.profile, detector_blob,
                               blob);
    profile = it->second.profile;
  } else {
    auto spilled = shard.spilled.find(stream_id);
    if (spilled == shard.spilled.end()) {
      return Status::Invalid("no stream with key '" + stream_id + "'");
    }
    // A spilled stream's file already IS its engine-stream blob.
    std::vector<double> storage;
    Result<std::size_t> read =
        serialize::ReadFileBytes(spilled->second.path, shard.arena, &storage);
    if (!read.ok()) {
      shard.arena->Release(std::move(storage));
      return read.status();
    }
    blob->assign(serialize::FileBytesView(storage, read.ValueOrDie()));
    shard.arena->Release(std::move(storage));
    profile = spilled->second.profile;
  }
  EngineEvent event;
  event.kind = EngineEvent::Kind::kCheckpoint;
  event.stream_id = stream_id;
  event.profile = std::move(profile);
  event.sequence = submit_seq_.load();
  event.blob_bytes = blob->size();
  EmitEvent(std::move(event));
  return Status::OK();
}

Status StreamEngine::ImportStream(const std::string& stream_id,
                                  std::string_view blob) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  BAGCPD_ASSIGN_OR_RETURN(serialize::StreamBlobParts parts,
                          serialize::ParseStreamBlob(blob));
  if (parts.key != stream_id) {
    return Status::Invalid("blob was exported for stream '" +
                           std::string(parts.key) + "', not '" + stream_id +
                           "'");
  }
  const std::string profile(parts.profile);
  if (profile != kDefaultProfileName && profiles_.count(profile) == 0) {
    return Status::Invalid("blob binds stream '" + stream_id +
                           "' to unregistered profile '" + profile + "'");
  }
  Shard& shard = *shards_[ShardOf(stream_id)];
  std::unique_lock<std::mutex> lock = QuiesceShard(shard);
  if (shard.quarantined.count(stream_id) > 0) {
    return Status::Invalid("stream '" + stream_id +
                           "' was quarantined by an earlier failure");
  }
  if (shard.detectors.count(stream_id) > 0 ||
      shard.spilled.count(stream_id) > 0) {
    return Status::Invalid(
        "stream '" + stream_id +
        "' is already bound; an import may not replace live state");
  }
  return ImportStreamLocked(shard, stream_id, profile, parts.detector_blob,
                            blob.size(), submit_seq_.load(),
                            /*latency_ns=*/0);
}

Status StreamEngine::ImportStreamLocked(Shard& shard,
                                        const std::string& stream_id,
                                        const std::string& profile,
                                        std::string_view detector_blob,
                                        std::uint64_t blob_bytes,
                                        std::uint64_t last_seq,
                                        std::uint64_t latency_ns) {
  // `ckpt.import` fault point: fails the restore attempt before any state is
  // touched (never leaves a partial stream), covering snapshot restores,
  // spill rehydrates, and explicit imports alike.
  if (fault::FaultFires(fault::FaultPoint::kCkptImport,
                        Rng::StableHash64(stream_id),
                        fault_ckpt_import_ops_.fetch_add(1) + 1)) {
    return fault::InjectedFaultError(fault::FaultPoint::kCkptImport);
  }
  DetectorOptions per_stream = ProfileOptions(profile);
  per_stream.seed = DeriveStreamSeed(stream_id, profile);
  // The spec gate inside ImportState compares the blob against these exact
  // options (seed included), so a wrong profile definition or engine seed
  // surfaces as Invalid here rather than as silently different scores.
  BAGCPD_ASSIGN_OR_RETURN(std::unique_ptr<BagStreamDetector> detector,
                          BagStreamDetector::Create(per_stream));
  detector->set_buffer_arena(shard.arena);
  BAGCPD_RETURN_NOT_OK(detector->ImportState(detector_blob));
  StreamState state;
  state.detector = std::move(detector);
  state.profile = profile;
  state.last_seq = last_seq;
  auto it = shard.detectors.emplace(stream_id, std::move(state)).first;
  if (spill_enabled()) UpdateResidentBytes(it->second);
  // Restores continue an existing stream, so streams_created_ stays put.
  live_streams_.fetch_add(1);
  restored_.fetch_add(1);
  EngineEvent event;
  event.kind = EngineEvent::Kind::kRestore;
  event.stream_id = stream_id;
  event.profile = profile;
  event.sequence = last_seq;
  event.enqueue_to_process_ns = latency_ns;
  event.blob_bytes = blob_bytes;
  EmitEvent(std::move(event));
  return Status::OK();
}

Status StreamEngine::Checkpoint(std::string* blob) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  // Shards are visited (and quiesced) one at a time in index order, keys
  // sorted within each shard, so the byte stream is deterministic for a
  // given engine state; the caller keeps submissions stopped across the walk
  // for the snapshot to be one consistent cut.
  std::vector<std::string> stream_blobs;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::unique_lock<std::mutex> lock = QuiesceShard(shard);
    std::vector<std::string> keys;
    keys.reserve(shard.detectors.size() + shard.spilled.size());
    for (const auto& [key, state] : shard.detectors) keys.push_back(key);
    for (const auto& [key, rec] : shard.spilled) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const std::string& key : keys) {
      std::string stream_blob;
      BAGCPD_RETURN_NOT_OK(ExportStreamLocked(shard, key, &stream_blob));
      stream_blobs.push_back(std::move(stream_blob));
    }
  }
  blob->clear();
  serialize::WireWriter writer(blob);
  writer.BeginBlob(serialize::BlobKind::kEngineCheckpoint);
  writer.BeginSection(serialize::kSecEngineMeta);
  writer.PutU64(options_.seed);
  writer.PutU64(stream_blobs.size());
  writer.EndSection();
  for (const std::string& stream_blob : stream_blobs) {
    writer.BeginSection(serialize::kSecEngineStream);
    writer.PutBytes(stream_blob.data(), stream_blob.size());
    writer.EndSection();
  }
  writer.EndBlob();
  return Status::OK();
}

Status StreamEngine::Restore(std::string_view blob) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  BAGCPD_ASSIGN_OR_RETURN(
      serialize::WireReader reader,
      serialize::OpenBlob(blob, serialize::BlobKind::kEngineCheckpoint));
  bool have_meta = false;
  std::uint64_t declared = 0;
  std::uint64_t seen = 0;
  while (!reader.AtEnd()) {
    std::uint32_t tag = 0;
    std::string_view payload;
    BAGCPD_RETURN_NOT_OK(reader.NextSection(&tag, &payload));
    if (tag == serialize::kSecEngineMeta) {
      serialize::WireReader meta(payload);
      std::uint64_t engine_seed = 0;
      BAGCPD_RETURN_NOT_OK(meta.ReadU64(&engine_seed));
      BAGCPD_RETURN_NOT_OK(meta.ReadU64(&declared));
      if (engine_seed != options_.seed) {
        return Status::Invalid(
            "checkpoint was taken with engine seed " +
            std::to_string(engine_seed) + " but this engine is seeded " +
            std::to_string(options_.seed) +
            "; per-stream seeds would not match");
      }
      have_meta = true;
    } else if (tag == serialize::kSecEngineStream) {
      BAGCPD_ASSIGN_OR_RETURN(serialize::StreamBlobParts parts,
                              serialize::ParseStreamBlob(payload));
      BAGCPD_RETURN_NOT_OK(ImportStream(std::string(parts.key), payload));
      ++seen;
    }
    // Unknown tags: forward-compatible extensions, skipped.
  }
  if (!have_meta) {
    return Status::IoError("engine checkpoint is missing its metadata");
  }
  if (seen != declared) {
    return Status::IoError("engine checkpoint declares " +
                           std::to_string(declared) + " streams but holds " +
                           std::to_string(seen));
  }
  return Status::OK();
}

EngineLatencyStats StreamEngine::latency_stats() const {
  EngineLatencyStats stats;
  stats.samples = latency_samples_.load();
  stats.total_ns = latency_total_ns_.load();
  stats.max_ns = latency_max_ns_.load();
  return stats;
}

BufferArenaStats StreamEngine::arena_stats() const {
  BufferArenaStats total;
  for (const auto& arena : arenas_) {
    const BufferArenaStats s = arena->stats();
    total.acquires += s.acquires;
    total.pool_hits += s.pool_hits;
    total.releases += s.releases;
    total.dropped_releases += s.dropped_releases;
    total.pooled_buffers += s.pooled_buffers;
    total.pooled_doubles += s.pooled_doubles;
  }
  return total;
}

void StreamEngine::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  stop_.store(true);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->not_empty.notify_all();
    shard->not_full.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

}  // namespace bagcpd
