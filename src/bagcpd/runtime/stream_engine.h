// StreamEngine: multiplexes many independent keyed bag streams over a set of
// shard worker threads. Every stream key is hash-routed to exactly one shard,
// so the bags of one stream are always processed in submission order by a
// single thread against that stream's own BagStreamDetector — no locking on
// the hot path, bounded per-shard queues for backpressure, and per-stream
// results that are bitwise-independent of the shard count (each detector is
// seeded from the engine seed and a platform-stable hash of its key only).
//
// This is the serving layer the ROADMAP's "millions of streams" target grows
// on: Submit() for online pushes (callback or drainable result queue),
// RunBatch() for offline sweeps over a keyed corpus.

#ifndef BAGCPD_RUNTIME_STREAM_ENGINE_H_
#define BAGCPD_RUNTIME_STREAM_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/core/detector.h"

namespace bagcpd {

/// \brief Configuration of a StreamEngine.
struct StreamEngineOptions {
  /// Number of shard worker threads; 0 picks std::thread::hardware_concurrency
  /// (at least 1).
  std::size_t num_shards = 0;
  /// Bound on each shard's pending-bag queue; Submit blocks (backpressure)
  /// while the target shard is full. Must be >= 1.
  std::size_t shard_queue_capacity = 1024;
  /// Detector configuration shared by every stream. The per-stream seed is
  /// derived as Mix(seed, StableHash64(stream_id)), so `detector.seed` itself
  /// is ignored in favor of the engine seed below.
  DetectorOptions detector;
  /// Engine seed; combined with each stream key to seed that stream's
  /// detector deterministically (independent of num_shards).
  std::uint64_t seed = 0;
  /// When true (and no callback is set) step results accumulate in an
  /// internal queue read via Drain(). Disable for fire-and-forget callers
  /// that only watch the counters.
  bool collect_results = true;
};

/// \brief One detector step result tagged with the stream that produced it.
struct StreamStepResult {
  std::string stream_id;
  StepResult step;
};

/// \brief Concurrent multi-stream change-point detection runtime.
///
/// Thread-safety: Submit/Flush/Drain/DrainErrors may be called from any
/// thread (typically one producer). The result callback runs on shard worker
/// threads and must be thread-safe if it touches shared state.
class StreamEngine {
 public:
  /// Called on a shard thread for every step result when set; replaces the
  /// internal result queue.
  using ResultCallback = std::function<void(const StreamStepResult&)>;

  explicit StreamEngine(const StreamEngineOptions& options);

  /// Shuts down (draining all queued work) and joins the shard workers.
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// \brief OK iff the options were coherent.
  const Status& init_status() const { return init_status_; }

  /// \brief Installs the result callback. Must be called before the first
  /// Submit; not thread-safe against concurrent Submit.
  void set_callback(ResultCallback callback);

  /// \brief Enqueues `bag` as the next observation of `stream_id`, creating
  /// the stream's detector on first sight. Blocks while the target shard's
  /// queue is full. Returns an error after Shutdown() or a bad init.
  Status Submit(const std::string& stream_id, Bag bag);

  /// \brief Blocks until every queued bag has been fully processed.
  void Flush();

  /// \brief Removes and returns all accumulated step results. Order across
  /// streams is arrival order (unspecified between shards); results of one
  /// stream always appear in time order.
  std::vector<StreamStepResult> Drain();

  /// \brief Removes and returns per-stream failures. A stream that fails
  /// (e.g. a ragged bag) is quarantined: its later bags are dropped and
  /// counted in dropped_count(). Other streams are unaffected.
  std::vector<std::pair<std::string, Status>> DrainErrors();

  /// \brief Offline sweep: feeds every sequence through the engine (bags
  /// interleaved round-robin across streams to keep all shards busy), waits
  /// for completion, and returns the per-stream result series.
  ///
  /// Requires collect_results and no callback. The batch fails if any
  /// requested stream is already quarantined or fails during the sweep.
  /// Deterministic for a fixed engine seed: per-stream output is identical
  /// for any num_shards. Note that detectors persist across calls, so a key
  /// already fed online (or by a previous batch) continues from its existing
  /// window state; use a fresh engine for a from-scratch sweep.
  Result<std::map<std::string, std::vector<StepResult>>> RunBatch(
      const std::map<std::string, BagSequence>& streams);

  /// \brief Stops accepting work, drains in-flight work, joins workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  std::size_t num_shards() const { return shards_.size(); }
  std::uint64_t submitted_count() const { return submitted_.load(); }
  std::uint64_t processed_count() const { return processed_.load(); }
  std::uint64_t result_count() const { return results_emitted_.load(); }
  std::uint64_t dropped_count() const { return dropped_.load(); }
  /// \brief Number of distinct stream keys seen so far.
  std::size_t stream_count() const { return streams_created_.load(); }

 private:
  struct Task {
    std::string stream_id;
    Bag bag;
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::condition_variable drained;
    std::deque<Task> queue;
    bool busy = false;
    // Touched only by this shard's worker thread (keyed state lives with the
    // shard that owns the key).
    std::unordered_map<std::string, std::unique_ptr<BagStreamDetector>>
        detectors;
    std::unordered_map<std::string, Status> quarantined;
  };

  void WorkerLoop(std::size_t shard_index);
  void Process(Shard& shard, Task task);
  std::size_t ShardOf(const std::string& stream_id) const;

  StreamEngineOptions options_;
  Status init_status_;
  ResultCallback callback_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  bool shut_down_ = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> results_emitted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> streams_created_{0};

  mutable std::mutex results_mu_;
  std::vector<StreamStepResult> results_;
  mutable std::mutex errors_mu_;
  std::vector<std::pair<std::string, Status>> errors_;
  // Every key ever quarantined; unlike errors_ this is never drained, so
  // RunBatch can refuse keys that failed in earlier traffic.
  std::unordered_set<std::string> quarantined_keys_;
};

}  // namespace bagcpd

#endif  // BAGCPD_RUNTIME_STREAM_ENGINE_H_
