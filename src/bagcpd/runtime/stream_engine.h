// StreamEngine: multiplexes many independent keyed bag streams over a set of
// shard worker threads. Every stream key is hash-routed to exactly one shard,
// so the bags of one stream are always processed in submission order by a
// single thread against that stream's own BagStreamDetector — no locking on
// the hot path, bounded per-shard queues for backpressure, and per-stream
// results that are bitwise-independent of the shard count (each detector is
// seeded from the engine seed and a platform-stable hash of its key only).
//
// Ingestion is zero-copy past the boundary: nested bags are flattened into a
// FlatBag exactly once at Submit/TrySubmit and then *moved* — never copied —
// through the shard queue to the detector, which consumes a BagView.
//
// This is the serving layer the ROADMAP's "millions of streams" target grows
// on: Submit() for online pushes (callback or drainable result queue),
// TrySubmit() for non-blocking ingest, RunBatch() for offline sweeps over a
// keyed corpus, and optional idle-stream eviction so mostly-idle keys do not
// pin detector memory forever.

#ifndef BAGCPD_RUNTIME_STREAM_ENGINE_H_
#define BAGCPD_RUNTIME_STREAM_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/core/detector.h"

namespace bagcpd {

/// \brief Configuration of a StreamEngine.
struct StreamEngineOptions {
  /// Number of shard worker threads; 0 picks std::thread::hardware_concurrency
  /// (at least 1).
  std::size_t num_shards = 0;
  /// Bound on each shard's pending-bag queue; Submit blocks (backpressure)
  /// while the target shard is full, TrySubmit returns Unavailable. Must be
  /// >= 1.
  std::size_t shard_queue_capacity = 1024;
  /// Detector configuration shared by every stream. The per-stream seed is
  /// derived as Mix(seed, StableHash64(stream_id)), so `detector.seed` itself
  /// is ignored in favor of the engine seed below.
  DetectorOptions detector;
  /// Engine seed; combined with each stream key to seed that stream's
  /// detector deterministically (independent of num_shards).
  std::uint64_t seed = 0;
  /// When true (and no callback is set) step results accumulate in an
  /// internal queue read via Drain(). Disable for fire-and-forget callers
  /// that only watch the counters.
  bool collect_results = true;
  /// When > 0, a stream key is evicted once strictly more than this many
  /// engine-wide submissions (of any key) have been enqueued since the key's
  /// previous bag: its detector (window state, EMD cache, CI history) is
  /// destroyed, and a later bag for the key starts a fresh detector with the
  /// same per-key seed. Idleness is measured on the global submission
  /// sequence — never on shard-local activity — so for every key that
  /// receives another bag, the evict-or-continue decision (and therefore
  /// every result) is independent of the shard count. Keys that never
  /// return are reclaimed by a periodic per-shard sweep whose timing does
  /// depend on sharding, so evicted_count()/live_stream_count() may differ
  /// across shard counts even though results never do.
  /// 0 disables eviction (streams live forever).
  std::uint64_t max_idle_submissions = 0;
  /// Per-shard buffer-arena tuning. Each shard owns one BufferArena; ingest
  /// flattening and the shard's detector signature builds recycle buffers
  /// through it, so the steady-state hot path never touches malloc. Pooling
  /// never changes results (buffers are fully overwritten).
  BufferArenaOptions arena;
};

/// \brief One detector step result tagged with the stream that produced it.
struct StreamStepResult {
  std::string stream_id;
  StepResult step;
};

/// \brief Concurrent multi-stream change-point detection runtime.
///
/// Thread-safety: Submit/TrySubmit/Flush/Drain/DrainErrors may be called from
/// any thread (typically one producer). The result callback runs on shard
/// worker threads and must be thread-safe if it touches shared state.
class StreamEngine {
 public:
  /// Called on a shard thread for every step result when set; replaces the
  /// internal result queue.
  using ResultCallback = std::function<void(const StreamStepResult&)>;

  explicit StreamEngine(const StreamEngineOptions& options);

  /// Shuts down (draining all queued work) and joins the shard workers.
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// \brief OK iff the options were coherent.
  const Status& init_status() const { return init_status_; }

  /// \brief Installs the result callback. Must be called before the first
  /// Submit; not thread-safe against concurrent Submit.
  void set_callback(ResultCallback callback);

  /// \brief Enqueues `bag` as the next observation of `stream_id`, creating
  /// the stream's detector on first sight. The nested bag is flattened once
  /// here and moved through the shard queue. Blocks while the target shard's
  /// queue is full. Returns an error after Shutdown() or a bad init.
  Status Submit(const std::string& stream_id, const Bag& bag);

  /// \brief Zero-copy submission: `bag` is moved — never copied — through
  /// the shard queue.
  Status Submit(const std::string& stream_id, FlatBag bag);

  /// \brief Non-blocking Submit: returns Unavailable (Status::IsUnavailable)
  /// immediately when the target shard's queue is full instead of blocking.
  /// The bag is NOT consumed in that case — retry or shed load upstream.
  Status TrySubmit(const std::string& stream_id, const Bag& bag);
  Status TrySubmit(const std::string& stream_id, FlatBag&& bag);

  /// \brief Blocks until every queued bag has been fully processed.
  void Flush();

  /// \brief Removes and returns all accumulated step results. Order across
  /// streams is arrival order (unspecified between shards); results of one
  /// stream always appear in time order.
  std::vector<StreamStepResult> Drain();

  /// \brief Removes and returns per-stream failures. A stream that fails
  /// (e.g. a ragged bag) is quarantined: its later bags are dropped and
  /// counted in dropped_count(). Other streams are unaffected.
  std::vector<std::pair<std::string, Status>> DrainErrors();

  /// \brief Offline sweep: feeds every sequence through the engine (bags
  /// interleaved round-robin across streams to keep all shards busy), waits
  /// for completion, and returns the per-stream result series.
  ///
  /// Requires collect_results and no callback. The batch fails if any
  /// requested stream is already quarantined or fails during the sweep.
  /// Deterministic for a fixed engine seed: per-stream output is identical
  /// for any num_shards. Note that detectors persist across calls, so a key
  /// already fed online (or by a previous batch) continues from its existing
  /// window state; use a fresh engine for a from-scratch sweep.
  Result<std::map<std::string, std::vector<StepResult>>> RunBatch(
      const std::map<std::string, BagSequence>& streams);

  /// \brief Stops accepting work, drains in-flight work, joins workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  std::size_t num_shards() const { return shards_.size(); }
  std::uint64_t submitted_count() const { return submit_seq_.load(); }
  std::uint64_t processed_count() const { return processed_.load(); }
  std::uint64_t result_count() const { return results_emitted_.load(); }
  std::uint64_t dropped_count() const { return dropped_.load(); }
  /// \brief Number of detectors created so far (a key evicted and seen again
  /// counts twice).
  std::size_t stream_count() const { return streams_created_.load(); }
  /// \brief Number of idle-stream evictions so far.
  std::uint64_t evicted_count() const { return evicted_.load(); }
  /// \brief Detectors currently resident across all shards.
  std::size_t live_stream_count() const { return live_streams_.load(); }
  /// \brief Aggregated buffer-pool counters across all shard arenas.
  BufferArenaStats arena_stats() const;

 private:
  struct Task {
    std::string stream_id;
    // Carries either the flattened bag or the flattening error; a conversion
    // failure must quarantine the stream on its shard (exactly like a
    // detector failure), not reject the Submit call. The initializer only
    // makes Task default-constructible for the worker's pop loop.
    Result<FlatBag> bag = Status::Invalid("empty task");
    // Global submission sequence number; drives idle eviction.
    std::uint64_t seq = 0;
  };

  struct StreamState {
    std::unique_ptr<BagStreamDetector> detector;
    std::uint64_t last_seq = 0;
  };

  struct Shard {
    std::mutex mu;
    // The shard's buffer pool (owned by arenas_; set once at construction).
    BufferArena* arena = nullptr;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::condition_variable drained;
    std::deque<Task> queue;
    bool busy = false;
    // Touched only by this shard's worker thread (keyed state lives with the
    // shard that owns the key).
    std::unordered_map<std::string, StreamState> detectors;
    std::unordered_map<std::string, Status> quarantined;
    // Worker-local counter driving the periodic idle sweep.
    std::uint64_t processed_since_sweep = 0;
  };

  // Moves *bag into the shard queue only once space is secured, so a
  // non-blocking rejection leaves the caller's payload intact.
  Status SubmitImpl(const std::string& stream_id, std::size_t shard_index,
                    Result<FlatBag>* bag, bool blocking);
  void WorkerLoop(std::size_t shard_index);
  void Process(Shard& shard, Task task);
  void SweepIdle(Shard& shard, std::uint64_t now_seq);
  std::size_t ShardOf(const std::string& stream_id) const;

  StreamEngineOptions options_;
  Status init_status_;
  ResultCallback callback_;
  // One arena per shard; declared before shards_ so every pooled buffer
  // still referenced by shard state (queued FlatBags, detector scratch) dies
  // before its arena does.
  std::vector<std::unique_ptr<BufferArena>> arenas_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  bool shut_down_ = false;

  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> results_emitted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> streams_created_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::size_t> live_streams_{0};
  // Global submission sequence; tasks record it so idleness is measured in
  // engine-wide submissions, independent of sharding. Doubles as the
  // submitted_count() value: exactly one increment per accepted submission.
  std::atomic<std::uint64_t> submit_seq_{0};

  mutable std::mutex results_mu_;
  std::vector<StreamStepResult> results_;
  mutable std::mutex errors_mu_;
  std::vector<std::pair<std::string, Status>> errors_;
  // Every key ever quarantined; unlike errors_ this is never drained, so
  // RunBatch can refuse keys that failed in earlier traffic.
  std::unordered_set<std::string> quarantined_keys_;
};

}  // namespace bagcpd

#endif  // BAGCPD_RUNTIME_STREAM_ENGINE_H_
