// StreamEngine: multiplexes many independent keyed bag streams over a set of
// shard worker threads. Every stream key is hash-routed to exactly one shard,
// so the bags of one stream are always processed in submission order by a
// single thread against that stream's own BagStreamDetector — no locking on
// the hot path, bounded per-shard queues for backpressure, and per-stream
// results that are bitwise-independent of the shard count (each detector is
// seeded from the engine seed, a platform-stable hash of its key, and — for
// non-default profiles — the profile name, never from shard placement).
//
// Heterogeneous streams: the engine carries a set of *named detector
// profiles* (RegisterProfile). Each stream key binds to one profile on first
// sight — Submit(key, bag, "profile") — so one engine can run, say,
// KL-scored activity streams next to Pearson/LR-scored network streams
// without spinning up a second runtime.
//
// Ingestion is zero-copy past the boundary: nested bags are flattened into a
// FlatBag exactly once at Submit/TrySubmit and then *moved* — never copied —
// through the shard queue to the detector, which consumes a BagView.
//
// Observability is one typed stream: every step result, stream error, and
// idle eviction is an EngineEvent delivered either to a caller-installed
// sink (set_event_sink) or into a drainable queue (DrainEvents). The legacy
// set_callback/Drain/DrainErrors trio is kept as shims over the same events.
//
// This is the serving layer the ROADMAP's "millions of streams" target grows
// on: Submit() for online pushes, TrySubmit() for non-blocking ingest,
// RunBatch() for offline sweeps over a keyed corpus, and optional
// idle-stream eviction so mostly-idle keys do not pin detector memory.

#ifndef BAGCPD_RUNTIME_STREAM_ENGINE_H_
#define BAGCPD_RUNTIME_STREAM_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/macros.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/core/detector.h"

namespace bagcpd {

/// \brief Name of the implicit profile backing StreamEngineOptions::detector;
/// Submit() with no profile argument routes here. The name is reserved:
/// RegisterProfile rejects it.
inline constexpr const char kDefaultProfileName[] = "default";

/// \brief The per-stream detector seed: a pure function of (engine seed,
/// stream key, canonical profile name) — never of shard placement — with the
/// default profile reproducing the historical (engine seed, key) derivation
/// bit for bit. Exposed as a free function so offline runners (see
/// batch/batch_runner.h) seed their detectors exactly like a StreamEngine
/// with the same engine seed would; `profile` must already be canonical
/// (empty canonicalizes to kDefaultProfileName here for convenience).
std::uint64_t DerivePerStreamSeed(std::uint64_t engine_seed,
                                  const std::string& stream_id,
                                  const std::string& profile);

/// \brief Configuration of a StreamEngine.
struct StreamEngineOptions {
  /// Number of shard worker threads; 0 picks std::thread::hardware_concurrency
  /// (at least 1).
  std::size_t num_shards = 0;
  /// Bound on each shard's pending-bag queue; Submit blocks (backpressure)
  /// while the target shard is full, TrySubmit returns Unavailable. Must be
  /// >= 1.
  std::size_t shard_queue_capacity = 1024;
  /// The "default" detector profile, used by every stream submitted without
  /// an explicit profile name. Additional profiles are registered on the
  /// engine (RegisterProfile). `detector.seed` MUST be 0: per-stream seeds
  /// derive from the engine `seed` below plus the key (and profile), and a
  /// nonzero value here used to be silently ignored — engine creation now
  /// rejects it so the footgun is loud.
  DetectorOptions detector;
  /// Engine seed; combined with each stream key (and, for non-default
  /// profiles, the profile name) to seed that stream's detector
  /// deterministically (independent of num_shards).
  std::uint64_t seed = 0;
  /// When true (and no sink or callback is set) events accumulate in an
  /// internal queue read via DrainEvents()/Drain(). Disable for
  /// fire-and-forget callers that only watch the counters.
  bool collect_results = true;
  /// When > 0, a stream key is evicted once strictly more than this many
  /// engine-wide submissions (of any key) have been enqueued since the key's
  /// previous bag: its detector (window state, EMD cache, CI history) is
  /// destroyed, and a later bag for the key starts a fresh detector with the
  /// same per-key seed. Idleness is measured on the global submission
  /// sequence — never on shard-local activity — so for every key that
  /// receives another bag, the evict-or-continue decision (and therefore
  /// every result) is independent of the shard count. Keys that never
  /// return are reclaimed by a periodic per-shard sweep whose timing does
  /// depend on sharding, so evicted_count()/live_stream_count() — and the
  /// timing of kEviction events — may differ across shard counts even though
  /// results never do.
  /// 0 disables eviction (streams live forever).
  std::uint64_t max_idle_submissions = 0;
  /// Per-shard buffer-arena tuning. Each shard owns one BufferArena; ingest
  /// flattening and the shard's detector signature builds recycle buffers
  /// through it, so the steady-state hot path never touches malloc. Pooling
  /// never changes results (buffers are fully overwritten).
  BufferArenaOptions arena;
  /// Spill-to-disk eviction. When non-empty, cold streams are *exported*
  /// instead of destroyed: the idle sweep (and, when spill_resident_bytes is
  /// set, a byte-budget LRU) writes each victim's checkpoint blob into this
  /// directory and frees the detector; the next bag for the key transparently
  /// re-imports the blob and continues with bitwise-identical results — no
  /// restart, so with spilling on max_idle_submissions governs when state
  /// leaves memory, never whether it survives. The directory must already
  /// exist and be writable; a stream whose spill file cannot be read back is
  /// quarantined like any other stream failure. Empty disables spilling.
  std::string spill_directory;
  /// Engine-wide resident-detector-state byte budget for the spill LRU; when
  /// > 0 (requires spill_directory) each shard spills its coldest streams —
  /// smallest last-submission sequence first, never the stream whose bag
  /// triggered the check — while the engine-wide resident total (see
  /// resident_state_bytes()) exceeds the budget. 0 means no budget: only the
  /// idle sweep spills.
  std::size_t spill_resident_bytes = 0;

  // -- Fault containment & self-healing ----------------------------------

  /// Per-stream fault budget. 0 (the historical default): the first failure
  /// of a stream — detector error, failed rehydrate — quarantines it forever
  /// (kError). When > 0 a failing stream is *restarted* instead: its detector
  /// is torn down, a kStreamFault event carries the error, and the stream
  /// resumes — from its rolling snapshot when snapshot_interval > 0, from
  /// scratch otherwise — until it has failed strictly more than this many
  /// times, after which it quarantines like before. Ragged bags and profile
  /// conflicts are caller bugs and always quarantine immediately, budget or
  /// not; non-finite bags are dropped per bag and never charge the budget.
  std::size_t max_stream_faults = 0;
  /// When > 0 (requires max_stream_faults > 0), a stream that just failed for
  /// the k-th time drops its bags for the next `k * fault_backoff_submissions`
  /// engine-wide submissions (linear backoff). The window is measured on the
  /// global submission sequence — never wall-clock — so recovery timing is a
  /// pure function of the submission order.
  std::uint64_t fault_backoff_submissions = 0;
  /// When > 0 (requires max_stream_faults > 0), each stream refreshes an
  /// in-memory state snapshot after every `snapshot_interval`-th successful
  /// push; a failing stream restores from it (losing at most
  /// snapshot_interval - 1 pushes) instead of restarting from scratch.
  /// Snapshots are recovery metadata: they are NOT part of Checkpoint(), so a
  /// restored engine starts with a clean fault history.
  std::uint64_t snapshot_interval = 0;
  /// Failed restore attempts tolerated against one snapshot before it is
  /// declared poisoned and discarded (the stream then restarts from scratch
  /// with its usual per-key seed).
  std::size_t max_restore_failures = 2;
  /// Spill-file garbage collection for keys that never return. When > 0
  /// (requires spill_directory), a spilled stream whose key has not been seen
  /// for strictly more than this many engine-wide submissions has its spill
  /// file deleted and its record dropped (kEviction event, counted in both
  /// evicted_count() and spill_gc_count()); a later bag restarts the stream
  /// from scratch. 0 keeps spill files forever.
  std::uint64_t spill_gc_submissions = 0;
  /// Fault-injection spec armed on the process-wide injector at engine
  /// construction, e.g. "spill.read:every-n:3" (syntax in
  /// fault/fault_injector.h). Empty arms nothing. This is a drill/test hook:
  /// arming replaces any previously armed spec process-wide.
  std::string fault;
};

/// \brief Checks that `options` form a coherent engine configuration; this is
/// exactly the condition StreamEngine::Create succeeds under (and what the
/// legacy constructor surfaces through init_status()).
Status ValidateStreamEngineOptions(const StreamEngineOptions& options);

/// \brief One detector step result tagged with the stream that produced it.
struct StreamStepResult {
  std::string stream_id;
  StepResult step;
};

/// \brief One observable engine occurrence: a detector step result, an
/// idle-stream eviction, or a stream failure. The single event type replaces
/// the historical callback-for-results / DrainErrors-for-failures split.
struct EngineEvent {
  enum class Kind {
    /// `step` holds the detector output for `stream_id`.
    kStep,
    /// `stream_id` sat idle past max_idle_submissions and its detector was
    /// destroyed; a later bag restarts it from scratch.
    kEviction,
    /// `error` holds the failure that quarantined `stream_id` (ragged bag,
    /// detector failure, or a profile conflict). Later bags are dropped.
    kError,
    /// `stream_id`'s state was exported — by ExportStream, by an engine-wide
    /// Checkpoint, or by a spill eviction; `blob_bytes` holds the snapshot
    /// size. The legacy Drain()/DrainErrors() pair discards these, like
    /// kEviction, so callers polling only the legacy drains are unaffected.
    kCheckpoint,
    /// `stream_id`'s state was restored — by ImportStream, by an engine-wide
    /// Restore, or by the transparent rehydrate of a spilled key on its next
    /// bag; `blob_bytes` holds the snapshot size read back.
    kRestore,
    /// `stream_id` failed (`error` holds why) but stayed within its fault
    /// budget (max_stream_faults > 0) — or the failing bag itself was bad
    /// (non-finite values / an injected ingest fault) and was dropped without
    /// touching the stream. The stream is NOT quarantined: it resumes from a
    /// snapshot (a kRestore event follows) or from scratch, possibly after a
    /// backoff window. The legacy Drain()/DrainErrors() discard these like
    /// kEviction; only quarantines surface as kError.
    kStreamFault,
  };
  Kind kind = Kind::kStep;
  std::string stream_id;
  /// Profile the stream is (was) bound to; kDefaultProfileName when none was
  /// named at submission.
  std::string profile;
  /// Global submission sequence number of the bag that triggered the event
  /// (for kEviction by sweep: the sequence the sweep observed).
  std::uint64_t sequence = 0;
  /// Wall time the triggering bag spent between enqueue (Submit securing
  /// queue space) and the start of processing on the shard worker — the
  /// queueing component of ingest latency, in nanoseconds. 0 for kEviction
  /// events raised by the periodic sweep (no triggering bag of their own).
  std::uint64_t enqueue_to_process_ns = 0;
  /// Checkpoint blob size for kCheckpoint/kRestore events; 0 otherwise.
  std::uint64_t blob_bytes = 0;
  StepResult step;
  Status error;
};

/// \brief Aggregate enqueue→process latency over every processed submission
/// (not just those that produced an event); see latency_stats().
struct EngineLatencyStats {
  std::uint64_t samples = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  double mean_ns() const {
    return samples == 0 ? 0.0 : static_cast<double>(total_ns) / samples;
  }
};

/// \brief Concurrent multi-stream change-point detection runtime.
///
/// Thread-safety: Submit/TrySubmit/Flush/Drain*/DrainEvents may be called
/// from any thread (typically one producer). RegisterProfile, set_event_sink
/// and set_callback must happen before the first Submit. The event sink runs
/// on shard worker threads and must be thread-safe if it touches shared
/// state.
class StreamEngine {
 public:
  /// Receives every EngineEvent on a shard thread when installed; replaces
  /// the internal event queue entirely.
  using EventSink = std::function<void(const EngineEvent&)>;
  /// Legacy step-results-only callback (shim over EventSink).
  using ResultCallback = std::function<void(const StreamStepResult&)>;

  /// \brief Validating factory: fails with the exact
  /// ValidateStreamEngineOptions status on incoherent options, otherwise
  /// returns a running engine (init_status() is OK by construction). This is
  /// the preferred entry point; see also api/spec.h for EngineSpec::Create().
  static Result<std::unique_ptr<StreamEngine>> Create(
      const StreamEngineOptions& options);

  /// Legacy constructor kept as a migration shim: construction never fails
  /// hard, so callers must check `init_status()` before use. Prefer Create().
  BAGCPD_DEPRECATED("use StreamEngine::Create(options)")
  explicit StreamEngine(const StreamEngineOptions& options);

  /// Shuts down (draining all queued work) and joins the shard workers.
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// \brief OK iff the options were coherent.
  const Status& init_status() const { return init_status_; }

  /// \brief Registers a named detector profile so streams can be routed to
  /// it via Submit(key, bag, name). Must be called before the first Submit
  /// (not thread-safe against concurrent Submit). Fails on a duplicate or
  /// reserved name, incoherent detector options, or a nonzero
  /// `profile.seed` (per-stream seeds always derive from the engine seed).
  Status RegisterProfile(const std::string& name,
                         const DetectorOptions& profile);

  /// \brief Number of registered profiles, including "default".
  std::size_t profile_count() const { return 1 + profiles_.size(); }

  /// \brief Installs the event sink receiving every EngineEvent. Must be
  /// called before the first Submit; replaces the drainable queue. Mutually
  /// exclusive with the legacy set_callback — installing both is refused
  /// with Invalid (one would silently starve the other).
  Status set_event_sink(EventSink sink);

  /// \brief Legacy: installs a step-results-only callback. Errors still
  /// accumulate for DrainErrors(); eviction events are dropped. Prefer
  /// set_event_sink (mutually exclusive with it, like above).
  BAGCPD_DEPRECATED("use set_event_sink")
  Status set_callback(ResultCallback callback);

  /// \brief Enqueues `bag` as the next observation of `stream_id`, creating
  /// the stream's detector on first sight (bound to `profile`, or the
  /// default profile when empty). The nested bag is flattened once here and
  /// moved through the shard queue. Blocks while the target shard's queue is
  /// full. Returns an error for an unknown profile, after Shutdown(), or on
  /// a bad init. A stream already bound to a different profile is
  /// quarantined when the conflicting bag is processed.
  Status Submit(const std::string& stream_id, const Bag& bag,
                const std::string& profile = std::string());

  /// \brief Zero-copy submission: `bag` is moved — never copied — through
  /// the shard queue.
  Status Submit(const std::string& stream_id, FlatBag bag,
                const std::string& profile = std::string());

  /// \brief Non-blocking Submit: returns Unavailable (Status::IsUnavailable)
  /// immediately when the target shard's queue is full instead of blocking.
  /// The bag is NOT consumed in that case — retry or shed load upstream.
  Status TrySubmit(const std::string& stream_id, const Bag& bag,
                   const std::string& profile = std::string());
  Status TrySubmit(const std::string& stream_id, FlatBag&& bag,
                   const std::string& profile = std::string());

  /// \brief Blocks until every queued bag has been fully processed.
  void Flush();

  /// \brief Removes and returns all queued events (step results, errors,
  /// evictions... every kind). Empty when an event sink is installed. Order
  /// across streams is arrival order (unspecified between shards); events of
  /// one stream always appear in submission order.
  std::vector<EngineEvent> DrainEvents();

  /// \brief Legacy: removes and returns the queued step results only
  /// (queued errors stay for DrainErrors; queued evictions are discarded —
  /// the legacy drains predate eviction events, and keeping them would grow
  /// the queue forever for callers that only ever poll the legacy pair).
  /// Results of one stream appear in time order.
  std::vector<StreamStepResult> Drain();

  /// \brief Legacy: removes and returns the queued per-stream failures only
  /// (queued steps stay for Drain; queued evictions are discarded, see
  /// Drain). A stream that fails (e.g. a ragged bag) is quarantined: its
  /// later bags are dropped and counted in dropped_count(). Other streams
  /// are unaffected.
  std::vector<std::pair<std::string, Status>> DrainErrors();

  /// \brief Offline sweep: feeds every sequence through the engine (bags
  /// interleaved round-robin across streams to keep all shards busy), waits
  /// for completion, and returns the per-stream result series. Streams are
  /// routed to `profile` (default profile when empty).
  ///
  /// Requires collect_results and no sink/callback. The batch fails if any
  /// requested stream is already quarantined or fails during the sweep.
  /// Deterministic for a fixed engine seed: per-stream output is identical
  /// for any num_shards. Note that detectors persist across calls, so a key
  /// already fed online (or by a previous batch) continues from its existing
  /// window state; use a fresh engine for a from-scratch sweep.
  Result<std::map<std::string, std::vector<StepResult>>> RunBatch(
      const std::map<std::string, BagSequence>& streams,
      const std::string& profile = std::string());

  /// \brief Heterogeneous sweep: like RunBatch above, but each key routes to
  /// its entry in `profile_by_key` (falling back to `default_profile`, then
  /// to the default profile, when absent). Every referenced profile must be
  /// registered — an unknown name fails the whole batch up front, before any
  /// submission. Map entries for keys not present in `streams` are ignored,
  /// so one long-lived routing map can serve many partial sweeps. A key
  /// already bound to a different profile by earlier traffic is quarantined
  /// deterministically when its first conflicting bag is processed, which
  /// fails the batch like any other stream failure.
  Result<std::map<std::string, std::vector<StepResult>>> RunBatch(
      const std::map<std::string, BagSequence>& streams,
      const std::map<std::string, std::string>& profile_by_key,
      const std::string& default_profile = std::string());

  // -- Checkpointing (wire format in serialize/checkpoint.h) -------------

  /// \brief Snapshots one stream — key, profile binding, and complete
  /// detector state — into an engine-stream blob. Quiesces the key's shard
  /// (waits for its queue to drain), so the snapshot always sits between
  /// pushes; other shards keep running. Works for both resident and spilled
  /// streams. Fails with Invalid for an unknown or quarantined key. Emits a
  /// kCheckpoint event. May be called from any thread, including after
  /// Shutdown() (the checkpoint-at-exit pattern).
  Status ExportStream(const std::string& stream_id, std::string* blob);

  /// \brief Restores a stream exported by ExportStream (possibly from
  /// another engine process). The blob's embedded key must equal
  /// `stream_id`, its profile must be registered here with identical
  /// detector options (per-stream seeds re-derive from THIS engine's seed,
  /// so the engine seed must match the exporter's for bitwise continuation —
  /// the options-spec gate enforces it), and the key must not already be
  /// bound, spilled, or quarantined (Invalid otherwise). A truncated or
  /// corrupt blob fails with IoError, an unknown format version with
  /// NotImplemented; failures never leave a partial stream behind. Restored
  /// detectors rehydrate their buffers through the owning shard's arena.
  /// Emits a kRestore event.
  Status ImportStream(const std::string& stream_id, std::string_view blob);

  /// \brief Snapshots the whole engine — seed plus every stream, resident or
  /// spilled — into one engine-checkpoint blob. Walks shards in index order
  /// (quiescing each in turn) with keys sorted within a shard, so the bytes
  /// are deterministic for a given engine state. The caller must stop
  /// submitting for the snapshot to be a consistent cut across shards (after
  /// a Flush(), or post-Shutdown()).
  Status Checkpoint(std::string* blob);

  /// \brief Restores every stream of an engine checkpoint into this engine
  /// (which must be configured with the same engine seed — Invalid
  /// otherwise — and have the profiles the checkpoint's streams bind to).
  /// Each stream is restored exactly as ImportStream would; the first
  /// failure aborts the walk, leaving earlier streams restored.
  Status Restore(std::string_view blob);

  /// \brief Streams spilled to disk so far (cumulative).
  std::uint64_t spilled_count() const { return spilled_.load(); }
  /// \brief Streams restored so far (ImportStream / Restore / transparent
  /// rehydrate), cumulative.
  std::uint64_t restored_count() const { return restored_.load(); }
  /// \brief Estimated resident detector-state bytes across all shards (the
  /// quantity the spill budget caps). Maintained only when spilling is
  /// enabled; 0 otherwise.
  std::size_t resident_state_bytes() const { return resident_bytes_.load(); }

  /// \brief Stops accepting work, drains in-flight work, joins workers.
  /// Idempotent; called by the destructor. Spill files are left on disk (they
  /// are the recovery artifacts).
  void Shutdown();

  std::size_t num_shards() const { return shards_.size(); }
  std::uint64_t submitted_count() const { return submit_seq_.load(); }
  std::uint64_t processed_count() const { return processed_.load(); }
  std::uint64_t result_count() const { return results_emitted_.load(); }
  std::uint64_t dropped_count() const { return dropped_.load(); }
  /// \brief Number of detectors created so far (a key evicted and seen again
  /// counts twice).
  std::size_t stream_count() const { return streams_created_.load(); }
  /// \brief Number of idle-stream evictions so far.
  std::uint64_t evicted_count() const { return evicted_.load(); }
  /// \brief Detectors currently resident across all shards.
  std::size_t live_stream_count() const { return live_streams_.load(); }
  /// \brief Contained stream failures so far (kStreamFault events charged
  /// against a fault budget; quarantines surface in kError events instead).
  std::uint64_t stream_fault_count() const { return stream_faults_.load(); }
  /// \brief Spill files garbage-collected so far (keys that never returned;
  /// also counted in evicted_count()).
  std::uint64_t spill_gc_count() const { return spill_gc_.load(); }
  /// \brief Aggregated buffer-pool counters across all shard arenas.
  BufferArenaStats arena_stats() const;
  /// \brief Aggregate enqueue→process latency across every processed
  /// submission so far (the same quantity EngineEvent::enqueue_to_process_ns
  /// reports per event). Purely observational: reading it never perturbs
  /// results.
  EngineLatencyStats latency_stats() const;

 private:
  struct Task {
    std::string stream_id;
    // Profile the submission named (canonicalized; kDefaultProfileName when
    // none was given).
    std::string profile;
    // Carries either the flattened bag or the flattening error; a conversion
    // failure must quarantine the stream on its shard (exactly like a
    // detector failure), not reject the Submit call. The initializer only
    // makes Task default-constructible for the worker's pop loop.
    Result<FlatBag> bag = Status::Invalid("empty task");
    // Global submission sequence number; drives idle eviction.
    std::uint64_t seq = 0;
    // Non-OK when the ingest boundary tagged this bag as bad (non-finite
    // values, or an injected arena.alloc fault): the shard drops the bag with
    // a kStreamFault event and the stream continues on its next good bag.
    Status ingest_error;
    // When the task entered the shard queue; Process() turns it into the
    // enqueue→process latency sample.
    std::chrono::steady_clock::time_point enqueued_at;
  };

  struct StreamState {
    std::unique_ptr<BagStreamDetector> detector;
    // Profile the key bound to at detector creation.
    std::string profile;
    std::uint64_t last_seq = 0;
    // Last EstimatedStateBytes() reading, folded into resident_bytes_;
    // maintained only when spilling is enabled.
    std::size_t state_bytes = 0;
  };

  // Self-healing bookkeeping for one stream key. Lives OUTSIDE StreamState so
  // it survives detector teardown and spilling; erased on quarantine and on
  // eviction/GC (an evicted key restarts with a clean history). Never part of
  // Checkpoint(): snapshots are recovery metadata, not engine state.
  struct RecoveryState {
    // Profile the key bound to; snapshots restore against it and a
    // conflicting later submission quarantines like a resident conflict.
    std::string profile;
    // Failures charged against max_stream_faults so far.
    std::size_t fault_count = 0;
    // Bags with seq <= cooldown_until are dropped (the backoff window).
    std::uint64_t cooldown_until = 0;
    // Most recent detector-state blob (empty: none yet, or discarded as
    // poisoned after max_restore_failures failed restores).
    std::string snapshot;
    // Failed restore attempts against the current snapshot.
    std::size_t restore_failures = 0;
  };

  // A stream whose detector state lives in a spill file instead of memory.
  struct SpilledStream {
    std::string path;
    std::string profile;
    std::uint64_t last_seq = 0;
    std::uint64_t blob_bytes = 0;
  };

  struct Shard {
    std::mutex mu;
    // The shard's buffer pool (owned by arenas_; set once at construction).
    BufferArena* arena = nullptr;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::condition_variable drained;
    std::deque<Task> queue;
    bool busy = false;
    // Touched only by this shard's worker thread (keyed state lives with the
    // shard that owns the key).
    std::unordered_map<std::string, StreamState> detectors;
    // Spilled keys of this shard (same ownership rules as detectors).
    std::unordered_map<std::string, SpilledStream> spilled;
    // Per-key fault/recovery bookkeeping (same ownership rules as detectors).
    std::unordered_map<std::string, RecoveryState> recovery;
    std::unordered_map<std::string, Status> quarantined;
    // Worker-local counter driving the periodic idle sweep.
    std::uint64_t processed_since_sweep = 0;
  };

  // Moves *bag into the shard queue only once space is secured, so a
  // non-blocking rejection leaves the caller's payload intact.
  Status SubmitImpl(const std::string& stream_id, const std::string& profile,
                    std::size_t shard_index, Result<FlatBag>* bag,
                    bool blocking);
  // Maps a submission's profile argument to its canonical registered name
  // (empty -> default), or fails for an unknown profile.
  Result<std::string> ResolveProfile(const std::string& profile) const;
  // The detector options behind a canonical profile name.
  const DetectorOptions& ProfileOptions(const std::string& profile) const;
  // Per-stream detector seed: a pure function of (engine seed, key, profile)
  // — never of shard placement — with the default profile reproducing the
  // historical (engine seed, key) derivation bit for bit.
  std::uint64_t DeriveStreamSeed(const std::string& stream_id,
                                 const std::string& profile) const;
  // Routes an event to the sink / legacy callback / queue; `quarantine`
  // additionally records the key so RunBatch can refuse it later.
  void EmitEvent(EngineEvent event);
  void QuarantineStream(Shard& shard, const std::string& stream_id,
                        const std::string& profile, std::uint64_t seq,
                        const Status& error, std::uint64_t latency_ns = 0);
  // Recovery ladder for a failed stream: quarantines when max_stream_faults
  // is 0 (the historical contract) or the budget is exhausted; otherwise
  // tears the detector down, emits kStreamFault, opens the backoff window,
  // and restores from the rolling snapshot when one exists (falling back to
  // a from-scratch restart once the snapshot fails too often).
  void HandleStreamFailure(Shard& shard, const std::string& stream_id,
                           const std::string& profile, std::uint64_t seq,
                           const Status& error, std::uint64_t latency_ns);
  // Refreshes the stream's rolling recovery snapshot when the push count
  // hits the snapshot interval.
  void MaybeSnapshotStream(Shard& shard, const std::string& stream_id,
                           StreamState& state);
  // Deletes a spilled key's file and record past the GC horizon (kEviction
  // event); a later bag restarts the stream from scratch.
  void CollectSpilledStream(Shard& shard, const std::string& stream_id,
                            std::uint64_t now_seq);
  void WorkerLoop(std::size_t shard_index);
  void Process(Shard& shard, Task task);
  void SweepIdle(Shard& shard, std::uint64_t now_seq);
  std::size_t ShardOf(const std::string& stream_id) const;

  // -- Checkpoint / spill internals --------------------------------------
  bool spill_enabled() const { return !options_.spill_directory.empty(); }
  // Blocks until `shard` has no queued or in-flight task and returns the
  // held lock: the worker is parked on its empty-queue wait and Submit is
  // blocked on the mutex, so the caller may touch shard-owned state.
  std::unique_lock<std::mutex> QuiesceShard(Shard& shard);
  // ExportStream body, shard already quiesced.
  Status ExportStreamLocked(Shard& shard, const std::string& stream_id,
                            std::string* blob);
  // ImportStream body past validation: builds the detector, restores the
  // blob into it, registers the stream, emits kRestore. `restoring_spill`
  // distinguishes a transparent rehydrate (keeps the spill record's
  // last_seq) from an explicit import (stamped with the current sequence).
  Status ImportStreamLocked(Shard& shard, const std::string& stream_id,
                            const std::string& profile,
                            std::string_view detector_blob,
                            std::uint64_t blob_bytes, std::uint64_t last_seq,
                            std::uint64_t latency_ns);
  // Exports `stream_id`'s resident detector to a fresh spill file; true on
  // success (the detector is freed), false if the stream stays resident
  // (export or write failed — memory pressure persists but nothing is lost).
  bool SpillStream(Shard& shard, const std::string& stream_id,
                   std::uint64_t now_seq);
  // Reads a spilled key's file back into a resident detector (through the
  // shard arena). The spill record is consumed either way; a failure
  // quarantines the stream at the caller.
  Status RehydrateStream(Shard& shard, const std::string& stream_id,
                         std::uint64_t seq, std::uint64_t latency_ns);
  // Spills this shard's coldest streams while the engine-wide resident total
  // exceeds the budget (never the stream whose bag triggered the check).
  void EnforceSpillBudget(Shard& shard, std::uint64_t now_seq);
  // Fresh spill-file path for `stream_id` (hash + running counter).
  std::string SpillPathFor(const std::string& stream_id);
  // Folds a new EstimatedStateBytes reading into the resident accounting.
  void UpdateResidentBytes(StreamState& state);

  StreamEngineOptions options_;
  Status init_status_;
  EventSink sink_;
  ResultCallback callback_;
  // Named profiles beyond the implicit "default" (read-only once traffic
  // starts; RegisterProfile enforces that).
  std::map<std::string, DetectorOptions> profiles_;
  // One arena per shard; declared before shards_ so every pooled buffer
  // still referenced by shard state (queued FlatBags, detector scratch) dies
  // before its arena does.
  std::vector<std::unique_ptr<BufferArena>> arenas_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  bool shut_down_ = false;

  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> results_emitted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::size_t> streams_created_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::size_t> live_streams_{0};
  // Contained (non-quarantining) stream failures; see stream_fault_count().
  std::atomic<std::uint64_t> stream_faults_{0};
  // Spill files reclaimed by the GC horizon; see spill_gc_count().
  std::atomic<std::uint64_t> spill_gc_{0};
  // Occurrence ordinals feeding the spill/ckpt fault points. Engine-local so
  // concurrent engines do not perturb each other's drills; deterministic per
  // configuration (spill timing legitimately depends on sharding).
  std::atomic<std::uint64_t> fault_spill_write_ops_{0};
  std::atomic<std::uint64_t> fault_spill_read_ops_{0};
  std::atomic<std::uint64_t> fault_ckpt_import_ops_{0};
  // Checkpoint subsystem counters: cumulative spills and restores, the
  // resident-state total the spill budget caps, and the spill-file name
  // sequence (never reused, so a respilled key gets a fresh file).
  std::atomic<std::uint64_t> spilled_{0};
  std::atomic<std::uint64_t> restored_{0};
  std::atomic<std::size_t> resident_bytes_{0};
  std::atomic<std::uint64_t> spill_file_seq_{0};
  // Global submission sequence; tasks record it so idleness is measured in
  // engine-wide submissions, independent of sharding. Doubles as the
  // submitted_count() value: exactly one increment per accepted submission.
  std::atomic<std::uint64_t> submit_seq_{0};
  // Enqueue→process latency accumulators behind latency_stats(); the max is
  // maintained with a CAS loop so concurrent shard workers never lose a peak.
  std::atomic<std::uint64_t> latency_samples_{0};
  std::atomic<std::uint64_t> latency_total_ns_{0};
  std::atomic<std::uint64_t> latency_max_ns_{0};

  // The single event queue behind DrainEvents/Drain/DrainErrors (unused when
  // a sink is installed). quarantined_keys_ lives under the same lock: every
  // key ever quarantined, never drained, so RunBatch can refuse keys that
  // failed in earlier traffic.
  mutable std::mutex events_mu_;
  std::vector<EngineEvent> events_;
  std::unordered_set<std::string> quarantined_keys_;
};

}  // namespace bagcpd

#endif  // BAGCPD_RUNTIME_STREAM_ENGINE_H_
