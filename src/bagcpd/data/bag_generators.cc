#include "bagcpd/data/bag_generators.h"

#include "bagcpd/common/check.h"
#include "bagcpd/common/rng.h"

namespace bagcpd {

Result<LabeledBagSequence> GenerateMixtureStream(
    const std::string& name, std::size_t steps,
    const std::function<GaussianMixture(std::size_t)>& mixture_at,
    const std::function<int(std::size_t)>& segment_of,
    const MixtureStreamOptions& options) {
  if (steps == 0) return Status::Invalid("steps must be >= 1");
  if (options.bag_size_rate <= 0.0) {
    return Status::Invalid("bag_size_rate must be > 0");
  }

  LabeledBagSequence out;
  out.name = name;
  out.bags.reserve(steps);
  out.segment_labels.reserve(steps);
  Rng rng(options.seed);

  for (std::size_t t = 0; t < steps; ++t) {
    const GaussianMixture mixture = mixture_at(t);
    BAGCPD_RETURN_NOT_OK(mixture.Validate());
    const int n = rng.Poisson(options.bag_size_rate, options.min_bag_size);
    out.bags.push_back(mixture.SampleBag(static_cast<std::size_t>(n), &rng));
    const int segment = segment_of(t);
    out.segment_labels.push_back(segment);
    if (t > 0 && segment != out.segment_labels[t - 1]) {
      out.change_points.push_back(t);
    }
  }
  return out;
}

}  // namespace bagcpd
