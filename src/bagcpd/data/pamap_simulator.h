// PAMAP-like physical-activity simulator: the offline stand-in for the PAMAP2
// dataset experiment (paper Section 5.2, Table 1, Fig. 7). Subjects perform
// the twelve protocol activities in sequence; four sensor channels (heart
// rate + three IMU intensity channels) are sampled at ~100 Hz with rate
// jitter and dropout, and the stream is split into 10-second bags — so bag
// sizes vary exactly as in the real dataset (the paper reports 947.8 +- 162.3
// records per bag). See DESIGN.md section 3 for the substitution rationale.

#ifndef BAGCPD_DATA_PAMAP_SIMULATOR_H_
#define BAGCPD_DATA_PAMAP_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/data/bag_generators.h"

namespace bagcpd {

/// \brief One protocol activity (paper Table 1).
struct PamapActivity {
  int id;
  std::string name;
};

/// \brief The twelve activities with their paper IDs.
const std::vector<PamapActivity>& PamapActivityTable();

/// \brief The per-subject activity order of the Fig. 7 protocol:
/// 1 2 3 4 5 6 7 6 7 8 9 10 11 12 (stairs are repeated; the paper's axis
/// shows "6 6 ... 7 7").
const std::vector<int>& PamapProtocolOrder();

/// \brief Options for one simulated subject.
struct PamapSimulatorOptions {
  std::uint64_t seed = 0;
  /// Which subject to simulate (1-based; changes durations and sensor
  /// idiosyncrasies).
  int subject = 1;
  /// Nominal sensor sampling rate in Hz (the real IMUs are ~100 Hz).
  double sampling_hz = 100.0;
  /// Bag window in seconds (paper: 10 s).
  double bag_seconds = 10.0;
  /// Mean activity duration in bags (paper subjects average ~252 bags over
  /// 14 protocol entries => ~18 bags per entry).
  double mean_bags_per_activity = 18.0;
  /// Fraction of samples dropped at random (hardware faults in the paper).
  double dropout = 0.05;
};

/// \brief A simulated subject recording.
struct PamapRecording {
  /// The bag stream (one bag per 10 s window; 4-d points).
  LabeledBagSequence stream;
  /// Activity id of each bag (parallel to stream.bags).
  std::vector<int> activity_ids;
};

/// \brief Simulates one subject following the protocol.
Result<PamapRecording> SimulatePamapSubject(const PamapSimulatorOptions& options);

}  // namespace bagcpd

#endif  // BAGCPD_DATA_PAMAP_SIMULATOR_H_
