#include "bagcpd/data/fig1.h"

#include <cmath>

namespace bagcpd {

Result<LabeledBagSequence> MakeFig1Stream(const Fig1Options& options) {
  if (options.phase_length == 0) {
    return Status::Invalid("phase_length must be >= 1");
  }
  const std::size_t p = options.phase_length;

  // All three phases have mean zero AND total variance 9; only the shape
  // (modality) changes. This makes the sample-mean sequence of Fig. 1b
  // statistically identical across phases — mean-based pipelines provably
  // carry no signal, which is the point of the example.
  //   phase 1: N(0, 3^2)                                   (unimodal)
  //   phase 2: 1/2 N(-sqrt(8), 1) + 1/2 N(+sqrt(8), 1)     (bimodal)
  //   phase 3: 1/3 N(-sqrt(12), 1) + 1/3 N(0, 1) + 1/3 N(+sqrt(12), 1)
  const double m2 = std::sqrt(8.0);
  const double m3 = std::sqrt(12.0);
  const GaussianMixture phase1 = GaussianMixture::Isotropic({0.0}, 3.0);
  const GaussianMixture phase2 =
      GaussianMixture::EqualWeight({{-m2}, {m2}}, 1.0);
  const GaussianMixture phase3 =
      GaussianMixture::EqualWeight({{-m3}, {0.0}, {m3}}, 1.0);

  MixtureStreamOptions stream_options;
  stream_options.bag_size_rate = options.bag_size_rate;
  stream_options.seed = options.seed;

  return GenerateMixtureStream(
      "fig1-motivating", 3 * p,
      [&](std::size_t t) {
        if (t < p) return phase1;
        if (t < 2 * p) return phase2;
        return phase3;
      },
      [&](std::size_t t) { return static_cast<int>(t / p); }, stream_options);
}

}  // namespace bagcpd
