#include "bagcpd/data/ci_datasets.h"

#include <cmath>

#include "bagcpd/common/stats.h"

namespace bagcpd {

namespace {


// Dataset 3/5 circular path: mu(t) = r (cos(pi (t - 0.5) / 5),
// sin(pi (t - 0.5) / 5)) with t 1-based as in the paper.
Point CircleMean(double radius, std::size_t t_one_based) {
  const double angle = kPi * (static_cast<double>(t_one_based) - 0.5) / 5.0;
  return {radius * std::cos(angle), radius * std::sin(angle)};
}

}  // namespace

Result<LabeledBagSequence> MakeCiDataset(int index,
                                         const CiDatasetOptions& options) {
  MixtureStreamOptions stream_options;
  stream_options.bag_size_rate = options.bag_size_rate;
  stream_options.seed = options.seed;
  const std::size_t steps = options.steps;
  const std::size_t half = steps / 2;

  switch (index) {
    case 1:
      // Large isotropic variance, stationary.
      return GenerateMixtureStream(
          "ci-ds1-large-variance", steps,
          [](std::size_t) {
            return GaussianMixture::Isotropic({0.0, 0.0}, 15.0);
          },
          [](std::size_t) { return 0; }, stream_options);
    case 2:
      // 80% standard normal + 20% scattered noise component. The noise mean
      // mu ~ N(0, 20^2 I) is drawn per bag; modeled here by refreshing the
      // component each step from a dedicated stream.
      return GenerateMixtureStream(
          "ci-ds2-background-noise", steps,
          [options](std::size_t t) {
            Rng noise_rng(options.seed ^ (0xABCDULL + t * 7919ULL));
            GmmComponent clean;
            clean.weight = 0.8;
            clean.mean = {0.0, 0.0};
            clean.sigma = 1.0;
            GmmComponent noise;
            noise.weight = 0.2;
            noise.mean = noise_rng.MultivariateGaussianIso({0.0, 0.0}, 20.0);
            noise.sigma = 5.0;
            return GaussianMixture({clean, noise});
          },
          [](std::size_t) { return 0; }, stream_options);
    case 3:
      // Gradual circular drift, radius sqrt(3); no significant change point.
      return GenerateMixtureStream(
          "ci-ds3-gradual-drift", steps,
          [](std::size_t t) {
            return GaussianMixture::Isotropic(CircleMean(std::sqrt(3.0), t + 1),
                                              1.0);
          },
          [](std::size_t) { return 0; }, stream_options);
    case 4:
      // Mean jump (3,0) -> (-3,0) at 1-based t = 11.
      return GenerateMixtureStream(
          "ci-ds4-mean-jump", steps,
          [half](std::size_t t) {
            return GaussianMixture::Isotropic(
                t < half ? Point{3.0, 0.0} : Point{-3.0, 0.0}, 1.0);
          },
          [half](std::size_t t) { return t < half ? 0 : 1; }, stream_options);
    case 5:
      // Drift speed-up: radius sqrt(3) -> 3 at 1-based t = 11.
      return GenerateMixtureStream(
          "ci-ds5-drift-speedup", steps,
          [half](std::size_t t) {
            const double radius = t < half ? std::sqrt(3.0) : 3.0;
            return GaussianMixture::Isotropic(CircleMean(radius, t + 1), 1.0);
          },
          [half](std::size_t t) { return t < half ? 0 : 1; }, stream_options);
    default:
      return Status::Invalid("dataset index must be in 1..5");
  }
}

Result<std::vector<LabeledBagSequence>> MakeAllCiDatasets(
    const CiDatasetOptions& options) {
  std::vector<LabeledBagSequence> all;
  all.reserve(5);
  for (int i = 1; i <= 5; ++i) {
    BAGCPD_ASSIGN_OR_RETURN(LabeledBagSequence ds, MakeCiDataset(i, options));
    all.push_back(std::move(ds));
  }
  return all;
}

bool CiDatasetHasDetectableChange(int index) { return index == 4; }

}  // namespace bagcpd
