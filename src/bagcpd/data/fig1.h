// The motivating example of paper Fig. 1: 150 time steps of ~300
// one-dimensional observations each, generated from a single Gaussian
// (t = 1..50), a two-component mixture (t = 51..100), and a three-component
// mixture (t = 101..150). The component means are symmetric around zero so
// the sample-mean sequence (Fig. 1b) carries no change signal — the bag-level
// detector sees the changes, centroid-based baselines do not.

#ifndef BAGCPD_DATA_FIG1_H_
#define BAGCPD_DATA_FIG1_H_

#include <cstdint>

#include "bagcpd/common/result.h"
#include "bagcpd/data/bag_generators.h"

namespace bagcpd {

/// \brief Options for the Fig. 1 stream.
struct Fig1Options {
  std::uint64_t seed = 0;
  /// Steps per phase (paper: 50 + 50 + 50).
  std::size_t phase_length = 50;
  /// Poisson rate of instances per step (paper: "about 300").
  double bag_size_rate = 300.0;
};

/// \brief Generates the Fig. 1 bag stream. Change points fall at
/// t = phase_length and t = 2 * phase_length (0-based).
Result<LabeledBagSequence> MakeFig1Stream(const Fig1Options& options);

}  // namespace bagcpd

#endif  // BAGCPD_DATA_FIG1_H_
