// The five confidence-interval behaviour datasets of paper Section 5.1.
// Every dataset is a sequence of 20 bags of two-dimensional Gaussians with
// bag sizes n_t ~ Poisson(50); the detector is run with tau = tau' = 5.
//
//   Dataset 1: N(0, 15^2 I), no change points (high variance, stationary).
//   Dataset 2: 80% N(0, I) + 20% noise with mu ~ N(0, 20^2 I), Sigma = 5^2 I,
//              no change points (heavy noise, stationary).
//   Dataset 3: mean moves on a circle of radius sqrt(3) (continuous drift,
//              no *significant* change point).
//   Dataset 4: mean jumps from (3, 0) to (-3, 0) at t = 11 (1-based).
//   Dataset 5: circular drift whose radius/speed changes at t = 11.

#ifndef BAGCPD_DATA_CI_DATASETS_H_
#define BAGCPD_DATA_CI_DATASETS_H_

#include <cstdint>

#include "bagcpd/common/result.h"
#include "bagcpd/data/bag_generators.h"

namespace bagcpd {

/// \brief Options for the Section 5.1 datasets.
struct CiDatasetOptions {
  std::uint64_t seed = 0;
  /// Sequence length (paper: 20).
  std::size_t steps = 20;
  /// Poisson rate of the bag sizes (paper: 50).
  double bag_size_rate = 50.0;
};

/// \brief Builds dataset `index` in 1..5.
Result<LabeledBagSequence> MakeCiDataset(int index,
                                         const CiDatasetOptions& options);

/// \brief All five datasets in order.
Result<std::vector<LabeledBagSequence>> MakeAllCiDatasets(
    const CiDatasetOptions& options);

/// \brief True iff the paper expects alarms on this dataset (only dataset 4;
/// dataset 5's change is real but the paper's method misses it too).
bool CiDatasetHasDetectableChange(int index);

}  // namespace bagcpd

#endif  // BAGCPD_DATA_CI_DATASETS_H_
