// Gaussian mixture models: the generating distributions of the synthetic
// experiments (paper Fig. 1 and Section 5.1).

#ifndef BAGCPD_DATA_GMM_H_
#define BAGCPD_DATA_GMM_H_

#include <vector>

#include "bagcpd/common/matrix.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/common/rng.h"

namespace bagcpd {

/// \brief One mixture component: N(mean, covariance) with mixing weight.
struct GmmComponent {
  double weight = 1.0;
  Point mean;
  /// Isotropic shortcut: when covariance is empty, N(mean, sigma^2 I).
  double sigma = 1.0;
  /// Full covariance (optional; must be SPD when non-empty).
  Matrix covariance;
};

/// \brief A finite Gaussian mixture.
class GaussianMixture {
 public:
  GaussianMixture() = default;
  explicit GaussianMixture(std::vector<GmmComponent> components);

  /// \brief Single isotropic Gaussian N(mean, sigma^2 I).
  static GaussianMixture Isotropic(Point mean, double sigma);

  /// \brief Equal-weight mixture of isotropic components.
  static GaussianMixture EqualWeight(std::vector<Point> means, double sigma);

  /// \brief Structural validation (weights positive, dims consistent).
  Status Validate() const;

  /// \brief One draw.
  Point Sample(Rng* rng) const;

  /// \brief A bag of n iid draws.
  Bag SampleBag(std::size_t n, Rng* rng) const;

  std::size_t dim() const;
  const std::vector<GmmComponent>& components() const { return components_; }

 private:
  std::vector<GmmComponent> components_;
};

}  // namespace bagcpd

#endif  // BAGCPD_DATA_GMM_H_
