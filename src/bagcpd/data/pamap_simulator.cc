#include "bagcpd/data/pamap_simulator.h"

#include <cmath>

#include "bagcpd/common/check.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/common/stats.h"

namespace bagcpd {

const std::vector<PamapActivity>& PamapActivityTable() {
  static const std::vector<PamapActivity> kTable = {
      {1, "lying"},          {2, "sitting"},
      {3, "standing"},       {4, "ironing"},
      {5, "vacuum cleaning"}, {6, "ascending stairs"},
      {7, "descending stairs"}, {8, "walking"},
      {9, "Nordic walking"}, {10, "cycling"},
      {11, "running"},       {12, "rope jumping"},
  };
  return kTable;
}

const std::vector<int>& PamapProtocolOrder() {
  static const std::vector<int> kOrder = {1, 2, 3, 4, 5, 6, 7,
                                          6, 7, 8, 9, 10, 11, 12};
  return kOrder;
}

namespace {

// Per-activity sensor profile: heart rate (bpm), mean absolute acceleration
// per IMU (hand, chest, ankle), and the dominant motion frequency in Hz for
// the periodic component (0 for static postures). Values are rough but
// ordered like the real dataset: lying is calm, rope jumping is extreme.
struct ActivityProfile {
  double heart_rate;
  double accel[3];
  double motion_hz;
  double motion_amp;
};

ActivityProfile ProfileFor(int activity_id) {
  switch (activity_id) {
    case 1:  return {60.0,  {0.3, 0.2, 0.1}, 0.0, 0.0};   // lying
    case 2:  return {65.0,  {0.5, 0.3, 0.2}, 0.0, 0.0};   // sitting
    case 3:  return {70.0,  {0.6, 0.4, 0.3}, 0.0, 0.0};   // standing
    case 4:  return {80.0,  {2.5, 0.6, 0.4}, 0.8, 0.8};   // ironing
    case 5:  return {95.0,  {3.0, 1.5, 1.0}, 0.9, 1.2};   // vacuum cleaning
    case 6:  return {120.0, {2.0, 2.5, 4.0}, 1.6, 2.0};   // ascending stairs
    case 7:  return {110.0, {1.8, 2.2, 3.6}, 1.8, 1.8};   // descending stairs
    case 8:  return {100.0, {1.5, 2.0, 3.5}, 1.9, 1.5};   // walking
    case 9:  return {110.0, {3.5, 2.2, 3.6}, 2.0, 1.8};   // Nordic walking
    case 10: return {115.0, {1.0, 1.2, 4.5}, 1.4, 2.2};   // cycling
    case 11: return {155.0, {4.0, 4.5, 7.0}, 2.8, 3.5};   // running
    case 12: return {165.0, {6.0, 6.5, 9.0}, 2.2, 5.0};   // rope jumping
    default: return {75.0,  {1.0, 1.0, 1.0}, 0.0, 0.0};
  }
}

}  // namespace

Result<PamapRecording> SimulatePamapSubject(
    const PamapSimulatorOptions& options) {
  if (options.subject < 1) return Status::Invalid("subject must be >= 1");
  if (options.sampling_hz <= 0.0 || options.bag_seconds <= 0.0) {
    return Status::Invalid("sampling_hz and bag_seconds must be > 0");
  }
  if (options.dropout < 0.0 || options.dropout >= 1.0) {
    return Status::Invalid("dropout must be in [0, 1)");
  }

  Rng rng(options.seed ^ (0x9A3AULL * static_cast<std::uint64_t>(options.subject)));
  PamapRecording recording;
  recording.stream.name =
      "pamap-subject-" + std::to_string(options.subject);

  // Subject idiosyncrasies: resting heart rate offset, overall vigor.
  const double hr_offset = rng.Gaussian(0.0, 6.0);
  const double vigor = std::exp(rng.Gaussian(0.0, 0.08));

  const std::vector<int>& protocol = PamapProtocolOrder();
  double global_time = 0.0;
  int previous_segment = -1;
  int segment_index = 0;

  for (int activity_id : protocol) {
    const ActivityProfile profile = ProfileFor(activity_id);
    // Duration in bags, jittered per activity.
    const double mean_bags = options.mean_bags_per_activity;
    int bags = std::max(
        4, static_cast<int>(std::llround(rng.Gaussian(mean_bags, mean_bags / 5.0))));
    for (int b = 0; b < bags; ++b) {
      // Effective sample count: nominal - dropout - rate jitter. The paper
      // reports per-bag counts fluctuating with sd ~160 around ~950.
      const double nominal = options.sampling_hz * options.bag_seconds;
      const double rate_jitter = rng.Gaussian(1.0, 0.12);
      int samples = static_cast<int>(std::llround(
          nominal * rate_jitter * (1.0 - options.dropout)));
      samples = std::max(samples, 20);

      Bag bag;
      bag.reserve(static_cast<std::size_t>(samples));
      const double dt = options.bag_seconds / samples;
      // Slowly drifting heart rate toward the activity's level.
      double hr = profile.heart_rate + hr_offset + rng.Gaussian(0.0, 3.0);
      for (int s = 0; s < samples; ++s) {
        const double tsec = global_time + s * dt;
        Point x(4);
        x[0] = hr + rng.Gaussian(0.0, 2.0);
        for (int c = 0; c < 3; ++c) {
          const double periodic =
              profile.motion_hz > 0.0
                  ? profile.motion_amp *
                        std::sin(2.0 * kPi * profile.motion_hz *
                                     tsec +
                                 c * 1.3)
                  : 0.0;
          const double noise = rng.Gaussian(0.0, 0.25 + 0.15 * profile.accel[c]);
          x[1 + c] = vigor * (profile.accel[c] + periodic) + noise;
        }
        bag.push_back(std::move(x));
      }
      global_time += options.bag_seconds;

      recording.stream.bags.push_back(std::move(bag));
      recording.stream.segment_labels.push_back(segment_index);
      recording.activity_ids.push_back(activity_id);
      if (previous_segment >= 0 && previous_segment != segment_index) {
        recording.stream.change_points.push_back(
            recording.stream.bags.size() - 1);
      }
      previous_segment = segment_index;
    }
    ++segment_index;
  }
  return recording;
}

}  // namespace bagcpd
