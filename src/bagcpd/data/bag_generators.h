// Generic bag-stream generation: a schedule of generating mixtures plus a
// bag-size law produces a BagSequence with known change points.

#ifndef BAGCPD_DATA_BAG_GENERATORS_H_
#define BAGCPD_DATA_BAG_GENERATORS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/data/gmm.h"

namespace bagcpd {

/// \brief A bag stream with ground-truth change points.
struct LabeledBagSequence {
  std::string name;
  BagSequence bags;
  /// 0-based times t whose generating distribution differs from t-1.
  std::vector<std::size_t> change_points;
  /// Segment id per bag (for the feature-selection extension and metrics).
  std::vector<int> segment_labels;
};

/// \brief Options for GenerateMixtureStream.
struct MixtureStreamOptions {
  /// Poisson rate of the bag sizes n_t.
  double bag_size_rate = 50.0;
  /// Bags never shrink below this (estimators need a few points).
  int min_bag_size = 3;
  std::uint64_t seed = 0;
};

/// \brief Generates `steps` bags; `mixture_at(t)` (0-based) supplies the
/// generating distribution of step t. Change points are recorded at every t
/// where `segment_of(t) != segment_of(t-1)`.
Result<LabeledBagSequence> GenerateMixtureStream(
    const std::string& name, std::size_t steps,
    const std::function<GaussianMixture(std::size_t)>& mixture_at,
    const std::function<int(std::size_t)>& segment_of,
    const MixtureStreamOptions& options);

}  // namespace bagcpd

#endif  // BAGCPD_DATA_BAG_GENERATORS_H_
