#include "bagcpd/data/gmm.h"

#include "bagcpd/common/check.h"

namespace bagcpd {

GaussianMixture::GaussianMixture(std::vector<GmmComponent> components)
    : components_(std::move(components)) {}

GaussianMixture GaussianMixture::Isotropic(Point mean, double sigma) {
  GmmComponent c;
  c.weight = 1.0;
  c.mean = std::move(mean);
  c.sigma = sigma;
  return GaussianMixture({std::move(c)});
}

GaussianMixture GaussianMixture::EqualWeight(std::vector<Point> means,
                                             double sigma) {
  std::vector<GmmComponent> components;
  components.reserve(means.size());
  for (Point& m : means) {
    GmmComponent c;
    c.weight = 1.0;
    c.mean = std::move(m);
    c.sigma = sigma;
    components.push_back(std::move(c));
  }
  return GaussianMixture(std::move(components));
}

Status GaussianMixture::Validate() const {
  if (components_.empty()) return Status::Invalid("mixture has no components");
  const std::size_t d = components_.front().mean.size();
  if (d == 0) return Status::Invalid("zero-dimensional mixture");
  for (const GmmComponent& c : components_) {
    if (!(c.weight > 0.0)) return Status::Invalid("non-positive mixing weight");
    if (c.mean.size() != d) return Status::Invalid("inconsistent mean dims");
    if (!c.covariance.empty()) {
      if (c.covariance.rows() != d || c.covariance.cols() != d) {
        return Status::Invalid("covariance shape mismatch");
      }
    } else if (!(c.sigma > 0.0)) {
      return Status::Invalid("non-positive sigma");
    }
  }
  return Status::OK();
}

Point GaussianMixture::Sample(Rng* rng) const {
  BAGCPD_CHECK(!components_.empty());
  std::size_t idx = 0;
  if (components_.size() > 1) {
    std::vector<double> weights;
    weights.reserve(components_.size());
    for (const GmmComponent& c : components_) weights.push_back(c.weight);
    idx = rng->Categorical(weights);
  }
  const GmmComponent& c = components_[idx];
  if (!c.covariance.empty()) {
    return rng->MultivariateGaussian(c.mean, c.covariance);
  }
  return rng->MultivariateGaussianIso(c.mean, c.sigma);
}

Bag GaussianMixture::SampleBag(std::size_t n, Rng* rng) const {
  Bag bag;
  bag.reserve(n);
  for (std::size_t i = 0; i < n; ++i) bag.push_back(Sample(rng));
  return bag;
}

std::size_t GaussianMixture::dim() const {
  return components_.empty() ? 0 : components_.front().mean.size();
}

}  // namespace bagcpd
