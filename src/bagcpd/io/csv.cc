#include "bagcpd/io/csv.h"

#include <cstdio>
#include <fstream>

namespace bagcpd {

namespace {

std::string EscapeField(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Status WriteCsv(const std::string& path, const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) file << ',';
    file << EscapeField(header[i]);
  }
  file << '\n';
  for (const auto& row : rows) {
    if (row.size() != header.size()) {
      return Status::Invalid("row width does not match header");
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) file << ',';
      file << EscapeField(row[i]);
    }
    file << '\n';
  }
  if (!file.good()) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace bagcpd
