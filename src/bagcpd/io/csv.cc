#include "bagcpd/io/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace bagcpd {

namespace {

std::string EscapeField(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Status WriteCsv(const std::string& path, const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) file << ',';
    file << EscapeField(header[i]);
  }
  file << '\n';
  for (const auto& row : rows) {
    if (row.size() != header.size()) {
      return Status::Invalid("row width does not match header");
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) file << ',';
      file << EscapeField(row[i]);
    }
    file << '\n';
  }
  if (!file.good()) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

Result<CsvData> ReadCsv(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for reading");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  // One pass over the whole file: embedded newlines inside quoted fields
  // make line-by-line reading wrong, so rows are delimited here, not by
  // getline.
  CsvData data;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool row_has_content = false;
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_row = [&]() -> Status {
    end_field();
    if (data.header.empty()) {
      data.header = std::move(row);
    } else {
      if (row.size() != data.header.size()) {
        return Status::Invalid(
            path + ": row " + std::to_string(data.rows.size() + 1) + " has " +
            std::to_string(row.size()) + " fields, header has " +
            std::to_string(data.header.size()));
      }
      data.rows.push_back(std::move(row));
    }
    row.clear();
    row_has_content = false;
    return Status::OK();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';  // Doubled quote: one literal quote.
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty() || field_was_quoted) {
          return Status::Invalid(path + ": quote inside an unquoted field");
        }
        in_quotes = true;
        field_was_quoted = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        // Only as part of a CRLF line ending; a bare CR is field content.
        if (i + 1 < text.size() && text[i + 1] == '\n') {
          BAGCPD_RETURN_NOT_OK(end_row());
          ++i;
        } else {
          field += c;
          row_has_content = true;
        }
        break;
      case '\n':
        BAGCPD_RETURN_NOT_OK(end_row());
        break;
      default:
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::Invalid(path + ": unterminated quoted field");
  }
  // A final row without a trailing newline still counts; a trailing newline
  // must not produce a phantom empty row.
  if (row_has_content || !row.empty() || !field.empty()) {
    BAGCPD_RETURN_NOT_OK(end_row());
  }
  if (data.header.empty()) {
    return Status::Invalid(path + ": empty CSV (no header row)");
  }
  return data;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace bagcpd
