// Minimal CSV reading and writing for experiment inputs and outputs.

#ifndef BAGCPD_IO_CSV_H_
#define BAGCPD_IO_CSV_H_

#include <string>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief Writes a CSV file with a header row. Fields containing commas,
/// quotes, or newlines are quoted.
Status WriteCsv(const std::string& path, const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// \brief Parsed CSV contents: one header row plus data rows, every row
/// exactly header.size() fields wide.
struct CsvData {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// \brief Reads a CSV file written by WriteCsv (RFC 4180 quoting: quoted
/// fields may contain commas, doubled quotes, and embedded newlines; CRLF
/// line endings are accepted). Round-trips WriteCsv output exactly. Fails on
/// an unreadable file, a row whose width differs from the header's, or a
/// malformed quoted field.
Result<CsvData> ReadCsv(const std::string& path);

/// \brief Formats a double with fixed precision for CSV/table cells.
std::string FormatDouble(double value, int precision = 6);

}  // namespace bagcpd

#endif  // BAGCPD_IO_CSV_H_
