// Minimal CSV writing for experiment outputs.

#ifndef BAGCPD_IO_CSV_H_
#define BAGCPD_IO_CSV_H_

#include <string>
#include <vector>

#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief Writes a CSV file with a header row. Fields containing commas,
/// quotes, or newlines are quoted.
Status WriteCsv(const std::string& path, const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// \brief Formats a double with fixed precision for CSV/table cells.
std::string FormatDouble(double value, int precision = 6);

}  // namespace bagcpd

#endif  // BAGCPD_IO_CSV_H_
