// Fixed-width table rendering for bench/experiment reports.

#ifndef BAGCPD_IO_TABLE_H_
#define BAGCPD_IO_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace bagcpd {

/// \brief Accumulates rows and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// \brief Appends a row; width must match the header.
  void AddRow(std::vector<std::string> row);

  /// \brief Renders the table with a separator under the header.
  void Print(std::ostream& os) const;

  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bagcpd

#endif  // BAGCPD_IO_TABLE_H_
