#include "bagcpd/io/table.h"

#include <algorithm>
#include <sstream>

#include "bagcpd/common/check.h"

namespace bagcpd {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  BAGCPD_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  BAGCPD_CHECK_MSG(row.size() == header_.size(),
                   "row width %zu != header width %zu", row.size(),
                   header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "  ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 2;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + 2;
  os << "  " << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace bagcpd
