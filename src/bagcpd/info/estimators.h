// Distance-based information estimators for weighted data
// (paper Section 3.3; Hino & Murata, "Information estimators for weighted
// observations", Neural Networks 2013):
//
//   I(S; S')  = c + d * sum_j gamma'_j log EMD(S'_j, S)
//   H(S)      = c + d * sum_i sum_{j != i} gamma_i gamma_j / (1 - gamma_i)
//                       * log EMD(S_i, S_j)
//   H(S, S')  = c + d * sum_i sum_j gamma_i gamma'_j log EMD(S_i, S'_j)
//
// The constant c cancels in both change-point scores (Eqs. 16-17) and d is an
// overall scale standing in for the unknown effective dimension of the metric
// space, so the defaults c = 0, d = 1 reproduce the paper's scores exactly.
//
// Two API levels are provided:
//  * matrix-level primitives over precomputed log-distance tables — these are
//    what the detector and the Bayesian bootstrap call in the hot loop, so
//    that resampling weights never recomputes an EMD;
//  * signature-level conveniences that run EMD internally.

#ifndef BAGCPD_INFO_ESTIMATORS_H_
#define BAGCPD_INFO_ESTIMATORS_H_

#include <vector>

#include "bagcpd/common/matrix.h"
#include "bagcpd/common/result.h"
#include "bagcpd/emd/ground_distance.h"
#include "bagcpd/info/weighted_set.h"
#include "bagcpd/signature/signature.h"

namespace bagcpd {

/// \brief Shared configuration of the information estimators.
struct InfoEstimatorOptions {
  /// Additive constant c; cancels in all change-point scores.
  double c = 0.0;
  /// Effective-dimension scale d.
  double d = 1.0;
  /// Distances are floored at this value before the log so that coinciding
  /// signatures (EMD == 0) do not produce -inf. The floor only matters for
  /// exactly duplicated bags.
  double distance_floor = 1e-12;
};

/// \brief log(max(distance, floor)) applied elementwise; the precomputation
/// shared by all three estimators.
Matrix LogDistances(const Matrix& distances, double distance_floor = 1e-12);

/// \brief I(S; S') from precomputed log distances.
/// `log_dist_to_s[j]` = log EMD(S'_j, S); `gamma_prime[j]` are S' weights.
double InformationContentFromLog(const std::vector<double>& log_dist_to_s,
                                 const std::vector<double>& gamma_prime,
                                 const InfoEstimatorOptions& options = {});

/// \brief H(S) from a precomputed symmetric log-distance matrix (n x n, the
/// diagonal is ignored) and weights gamma (n).
double AutoEntropyFromLog(const Matrix& log_dist, const std::vector<double>& gamma,
                          const InfoEstimatorOptions& options = {});

/// \brief H(S, S') from a precomputed log-distance matrix (n x m) and the two
/// weight vectors.
double CrossEntropyFromLog(const Matrix& log_dist,
                           const std::vector<double>& gamma,
                           const std::vector<double>& gamma_prime,
                           const InfoEstimatorOptions& options = {});

/// \brief I(S; S'): information content of signature `s` with respect to the
/// weighted set `s_prime`, running EMD internally.
Result<double> InformationContent(const Signature& s,
                                  const WeightedSignatureSet& s_prime,
                                  GroundDistance ground = GroundDistance::kEuclidean,
                                  const InfoEstimatorOptions& options = {});

/// \brief H(S): auto-entropy of a weighted signature set (requires >= 2
/// elements and every gamma_i < 1).
Result<double> AutoEntropy(const WeightedSignatureSet& s,
                           GroundDistance ground = GroundDistance::kEuclidean,
                           const InfoEstimatorOptions& options = {});

/// \brief H(S, S'): cross-entropy between two weighted signature sets.
/// Symmetric in its arguments because EMD is.
Result<double> CrossEntropy(const WeightedSignatureSet& s,
                            const WeightedSignatureSet& s_prime,
                            GroundDistance ground = GroundDistance::kEuclidean,
                            const InfoEstimatorOptions& options = {});

/// \brief Symmetrized Kullback-Leibler divergence between two weighted sets,
/// (D(S||S') + D(S'||S)) / 2 = H(S,S') - (H(S) + H(S')) / 2. This is exactly
/// the paper's Eq. 17 when applied to reference/test windows.
Result<double> SymmetrizedKl(const WeightedSignatureSet& s,
                             const WeightedSignatureSet& s_prime,
                             GroundDistance ground = GroundDistance::kEuclidean,
                             const InfoEstimatorOptions& options = {});

}  // namespace bagcpd

#endif  // BAGCPD_INFO_ESTIMATORS_H_
