#include "bagcpd/info/estimators.h"

#include <algorithm>
#include <cmath>

#include "bagcpd/common/check.h"
#include "bagcpd/emd/emd.h"

namespace bagcpd {

Matrix LogDistances(const Matrix& distances, double distance_floor) {
  BAGCPD_CHECK(distance_floor > 0.0);
  Matrix out(distances.rows(), distances.cols());
  for (std::size_t i = 0; i < distances.rows(); ++i) {
    for (std::size_t j = 0; j < distances.cols(); ++j) {
      out(i, j) = std::log(std::max(distances(i, j), distance_floor));
    }
  }
  return out;
}

double InformationContentFromLog(const std::vector<double>& log_dist_to_s,
                                 const std::vector<double>& gamma_prime,
                                 const InfoEstimatorOptions& options) {
  BAGCPD_CHECK(log_dist_to_s.size() == gamma_prime.size());
  double acc = 0.0;
  for (std::size_t j = 0; j < gamma_prime.size(); ++j) {
    acc += gamma_prime[j] * log_dist_to_s[j];
  }
  return options.c + options.d * acc;
}

double AutoEntropyFromLog(const Matrix& log_dist,
                          const std::vector<double>& gamma,
                          const InfoEstimatorOptions& options) {
  const std::size_t n = gamma.size();
  BAGCPD_CHECK(log_dist.rows() == n && log_dist.cols() == n);
  BAGCPD_CHECK_MSG(n >= 2, "auto-entropy needs at least two elements");
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // gamma_i == 1 would zero every other weight; the i-th term then has an
    // empty inner sum, so skip it (limit of the expression as gamma_i -> 1).
    const double denom = 1.0 - gamma[i];
    if (denom <= 0.0) continue;
    double inner = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      inner += gamma[j] * log_dist(i, j);
    }
    acc += gamma[i] * inner / denom;
  }
  return options.c + options.d * acc;
}

double CrossEntropyFromLog(const Matrix& log_dist,
                           const std::vector<double>& gamma,
                           const std::vector<double>& gamma_prime,
                           const InfoEstimatorOptions& options) {
  BAGCPD_CHECK(log_dist.rows() == gamma.size());
  BAGCPD_CHECK(log_dist.cols() == gamma_prime.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < gamma.size(); ++i) {
    if (gamma[i] == 0.0) continue;
    double inner = 0.0;
    for (std::size_t j = 0; j < gamma_prime.size(); ++j) {
      inner += gamma_prime[j] * log_dist(i, j);
    }
    acc += gamma[i] * inner;
  }
  return options.c + options.d * acc;
}

Result<double> InformationContent(const Signature& s,
                                  const WeightedSignatureSet& s_prime,
                                  GroundDistance ground,
                                  const InfoEstimatorOptions& options) {
  BAGCPD_RETURN_NOT_OK(s.Validate());
  BAGCPD_RETURN_NOT_OK(s_prime.Validate());
  const GroundDistanceFn fn = MakeGroundDistance(ground);
  std::vector<double> log_dist(s_prime.size());
  for (std::size_t j = 0; j < s_prime.size(); ++j) {
    BAGCPD_ASSIGN_OR_RETURN(double d,
                            ComputeEmd(s_prime.signatures.view(j), s, fn));
    log_dist[j] = std::log(std::max(d, options.distance_floor));
  }
  return InformationContentFromLog(log_dist, s_prime.weights, options);
}

Result<double> AutoEntropy(const WeightedSignatureSet& s, GroundDistance ground,
                           const InfoEstimatorOptions& options) {
  BAGCPD_RETURN_NOT_OK(s.Validate());
  if (s.size() < 2) {
    return Status::Invalid("auto-entropy needs at least two signatures");
  }
  BAGCPD_ASSIGN_OR_RETURN(Matrix dist, PairwiseEmdMatrix(s.signatures, ground));
  return AutoEntropyFromLog(LogDistances(dist, options.distance_floor),
                            s.weights, options);
}

Result<double> CrossEntropy(const WeightedSignatureSet& s,
                            const WeightedSignatureSet& s_prime,
                            GroundDistance ground,
                            const InfoEstimatorOptions& options) {
  BAGCPD_RETURN_NOT_OK(s.Validate());
  BAGCPD_RETURN_NOT_OK(s_prime.Validate());
  BAGCPD_ASSIGN_OR_RETURN(
      Matrix dist, CrossDistanceMatrix(s.signatures, s_prime.signatures, ground));
  return CrossEntropyFromLog(LogDistances(dist, options.distance_floor),
                             s.weights, s_prime.weights, options);
}

Result<double> SymmetrizedKl(const WeightedSignatureSet& s,
                             const WeightedSignatureSet& s_prime,
                             GroundDistance ground,
                             const InfoEstimatorOptions& options) {
  BAGCPD_ASSIGN_OR_RETURN(double cross, CrossEntropy(s, s_prime, ground, options));
  BAGCPD_ASSIGN_OR_RETURN(double auto_s, AutoEntropy(s, ground, options));
  BAGCPD_ASSIGN_OR_RETURN(double auto_sp, AutoEntropy(s_prime, ground, options));
  // Eq. 17: (2 H(S,S') - H(S) - H(S')) / 2; H(.,.) is symmetric since EMD is.
  return cross - 0.5 * (auto_s + auto_sp);
}

}  // namespace bagcpd
