// A weighted collection of signatures: the object the distance-based
// information estimators operate on (paper Section 3.3,
// S = {(S_i, gamma_i)} with gamma_i >= 0, sum gamma_i = 1).

#ifndef BAGCPD_INFO_WEIGHTED_SET_H_
#define BAGCPD_INFO_WEIGHTED_SET_H_

#include <vector>

#include "bagcpd/common/status.h"
#include "bagcpd/signature/signature.h"

namespace bagcpd {

/// \brief Signatures with simplex weights.
struct WeightedSignatureSet {
  std::vector<Signature> signatures;
  /// gamma_i: non-negative, summing to one (checked by Validate()).
  std::vector<double> weights;

  std::size_t size() const { return signatures.size(); }

  /// \brief Structural validation: sizes match, weights on the simplex
  /// (within `tol` of summing to one), every signature valid.
  Status Validate(double tol = 1e-9) const;

  /// \brief Builds a set with uniform weights 1/n.
  static WeightedSignatureSet Uniform(std::vector<Signature> signatures);
};

/// \brief The per-element discount weights of paper Eq. 15, normalized to the
/// simplex. For a reference window {t - tau, ..., t - 1} the weight of the
/// element at offset o from the inspection point decays as 1 / (distance to t).
///
/// `window` is the window length; `toward_end` selects whether weights grow
/// toward the end of the window (reference windows, newest last) or toward the
/// beginning (test windows, newest first).
std::vector<double> DiscountWeights(std::size_t window, bool toward_end);

}  // namespace bagcpd

#endif  // BAGCPD_INFO_WEIGHTED_SET_H_
