// A weighted collection of signatures: the object the distance-based
// information estimators operate on (paper Section 3.3,
// S = {(S_i, gamma_i)} with gamma_i >= 0, sum gamma_i = 1).
//
// Members live in a SignatureSet — one shared center buffer, one shared
// weight buffer — so the estimators' distance-matrix builds stream all
// signatures through the cache instead of chasing per-signature heap blocks.
// The Uniform(std::vector<Signature>) shim keeps AoS call sites working.

#ifndef BAGCPD_INFO_WEIGHTED_SET_H_
#define BAGCPD_INFO_WEIGHTED_SET_H_

#include <vector>

#include "bagcpd/common/status.h"
#include "bagcpd/signature/signature.h"
#include "bagcpd/signature/signature_set.h"

namespace bagcpd {

/// \brief Signatures (shared-buffer SoA) with simplex weights.
struct WeightedSignatureSet {
  SignatureSet signatures;
  /// gamma_i: non-negative, summing to one (checked by Validate()).
  std::vector<double> weights;
  /// Sticky error from gathering the members (e.g. an AoS vector whose
  /// signatures disagree on dimension, which the shared-buffer layout cannot
  /// represent). Validate() reports it first, so construction never aborts
  /// and every estimator surfaces the problem as a Status — the historical
  /// error-handling contract.
  Status gather_status = Status::OK();

  std::size_t size() const { return signatures.size(); }

  /// \brief Structural validation: gather_status OK, sizes match, weights on
  /// the simplex (within `tol` of summing to one), every signature valid.
  Status Validate(double tol = 1e-9) const;

  /// \brief Builds a set with uniform weights 1/n.
  static WeightedSignatureSet Uniform(SignatureSet signatures);

  /// \brief AoS shim: gathers the vector into a SignatureSet, then weights
  /// uniformly. Never aborts: invalid members (empty, non-positive weights)
  /// are stored as-is, and an unrepresentable gather (mixed dimensions)
  /// parks the error in gather_status — both surface recoverably through
  /// Validate(), matching the historical behaviour.
  static WeightedSignatureSet Uniform(std::vector<Signature> signatures);
};

/// \brief The per-element discount weights of paper Eq. 15, normalized to the
/// simplex. For a reference window {t - tau, ..., t - 1} the weight of the
/// element at offset o from the inspection point decays as 1 / (distance to t).
///
/// `window` is the window length; `toward_end` selects whether weights grow
/// toward the end of the window (reference windows, newest last) or toward the
/// beginning (test windows, newest first).
std::vector<double> DiscountWeights(std::size_t window, bool toward_end);

}  // namespace bagcpd

#endif  // BAGCPD_INFO_WEIGHTED_SET_H_
