#include "bagcpd/info/weighted_set.h"

#include <cmath>

#include "bagcpd/common/check.h"

namespace bagcpd {

Status WeightedSignatureSet::Validate(double tol) const {
  BAGCPD_RETURN_NOT_OK(gather_status);
  if (signatures.empty()) return Status::Invalid("weighted set is empty");
  if (signatures.size() != weights.size()) {
    return Status::Invalid("weighted set size mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::Invalid("negative weight in weighted set");
    total += w;
  }
  if (std::abs(total - 1.0) > tol) {
    return Status::Invalid("weights sum to " + std::to_string(total) +
                           ", expected 1");
  }
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    BAGCPD_RETURN_NOT_OK(signatures.view(i).Validate());
  }
  return Status::OK();
}

WeightedSignatureSet WeightedSignatureSet::Uniform(SignatureSet signatures) {
  WeightedSignatureSet set;
  const double w = signatures.empty()
                       ? 0.0
                       : 1.0 / static_cast<double>(signatures.size());
  set.weights.assign(signatures.size(), w);
  set.signatures = std::move(signatures);
  return set;
}

WeightedSignatureSet WeightedSignatureSet::Uniform(
    std::vector<Signature> signatures) {
  SignatureSet gathered;
  Status gather = Status::OK();
  std::size_t centers = 0;
  for (const Signature& s : signatures) centers += s.size();
  if (!signatures.empty()) {
    gathered.Reserve(signatures.size(), centers, signatures.front().dim());
  }
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    // Invalid members are kept for Validate() to report. A member the
    // shared-buffer layout cannot even hold (mixed dimensions) becomes an
    // empty placeholder slot plus a sticky gather error — still recoverable.
    Status appended = gathered.AppendUnchecked(signatures[i]);
    if (!appended.ok()) {
      // An empty placeholder keeps member indices aligned with weights.
      (void)gathered.AppendUnchecked(SignatureView());
      if (gather.ok()) {
        gather = Status::Invalid("signature " + std::to_string(i) + ": " +
                                 appended.message());
      }
    }
  }
  WeightedSignatureSet set = Uniform(std::move(gathered));
  set.gather_status = std::move(gather);
  return set;
}

std::vector<double> DiscountWeights(std::size_t window, bool toward_end) {
  BAGCPD_CHECK(window > 0);
  std::vector<double> w(window);
  double total = 0.0;
  for (std::size_t o = 0; o < window; ++o) {
    // Distance from the inspection point: the element adjacent to t gets 1,
    // the next 1/2, etc. (paper Eq. 15).
    const std::size_t steps = toward_end ? (window - o) : (o + 1);
    w[o] = 1.0 / static_cast<double>(steps);
    total += w[o];
  }
  for (double& v : w) v /= total;
  return w;
}

}  // namespace bagcpd
