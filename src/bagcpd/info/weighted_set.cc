#include "bagcpd/info/weighted_set.h"

#include <cmath>

#include "bagcpd/common/check.h"

namespace bagcpd {

Status WeightedSignatureSet::Validate(double tol) const {
  if (signatures.empty()) return Status::Invalid("weighted set is empty");
  if (signatures.size() != weights.size()) {
    return Status::Invalid("weighted set size mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::Invalid("negative weight in weighted set");
    total += w;
  }
  if (std::abs(total - 1.0) > tol) {
    return Status::Invalid("weights sum to " + std::to_string(total) +
                           ", expected 1");
  }
  for (const Signature& s : signatures) {
    BAGCPD_RETURN_NOT_OK(s.Validate());
  }
  return Status::OK();
}

WeightedSignatureSet WeightedSignatureSet::Uniform(
    std::vector<Signature> signatures) {
  WeightedSignatureSet set;
  const double w = signatures.empty()
                       ? 0.0
                       : 1.0 / static_cast<double>(signatures.size());
  set.weights.assign(signatures.size(), w);
  set.signatures = std::move(signatures);
  return set;
}

std::vector<double> DiscountWeights(std::size_t window, bool toward_end) {
  BAGCPD_CHECK(window > 0);
  std::vector<double> w(window);
  double total = 0.0;
  for (std::size_t o = 0; o < window; ++o) {
    // Distance from the inspection point: the element adjacent to t gets 1,
    // the next 1/2, etc. (paper Eq. 15).
    const std::size_t steps = toward_end ? (window - o) : (o + 1);
    w[o] = 1.0 / static_cast<double>(steps);
    total += w[o];
  }
  for (double& v : w) v /= total;
  return w;
}

}  // namespace bagcpd
