#include "bagcpd/graph/features.h"

#include <set>

namespace bagcpd {

std::array<GraphFeature, 7> AllGraphFeatures() {
  return {GraphFeature::kSourceDegree,          GraphFeature::kDestinationDegree,
          GraphFeature::kSourceSecondDegree,    GraphFeature::kDestinationSecondDegree,
          GraphFeature::kSourceStrength,        GraphFeature::kDestinationStrength,
          GraphFeature::kEdgeWeight};
}

const char* GraphFeatureName(GraphFeature feature) {
  switch (feature) {
    case GraphFeature::kSourceDegree:
      return "source_degree";
    case GraphFeature::kDestinationDegree:
      return "destination_degree";
    case GraphFeature::kSourceSecondDegree:
      return "source_second_degree";
    case GraphFeature::kDestinationSecondDegree:
      return "destination_second_degree";
    case GraphFeature::kSourceStrength:
      return "source_strength";
    case GraphFeature::kDestinationStrength:
      return "destination_strength";
    case GraphFeature::kEdgeWeight:
      return "edge_weight";
  }
  return "unknown";
}

namespace {

Bag SourceDegrees(const BipartiteGraph& g) {
  Bag bag;
  bag.reserve(g.num_sources());
  for (std::size_t s = 0; s < g.num_sources(); ++s) {
    bag.push_back({static_cast<double>(g.DestinationsOf(s).size())});
  }
  return bag;
}

Bag DestinationDegrees(const BipartiteGraph& g) {
  Bag bag;
  bag.reserve(g.num_destinations());
  for (std::size_t d = 0; d < g.num_destinations(); ++d) {
    bag.push_back({static_cast<double>(g.SourcesOf(d).size())});
  }
  return bag;
}

Bag SourceSecondDegrees(const BipartiteGraph& g) {
  Bag bag;
  bag.reserve(g.num_sources());
  for (std::size_t s = 0; s < g.num_sources(); ++s) {
    std::set<std::size_t> peers;
    for (std::size_t d : g.DestinationsOf(s)) {
      for (std::size_t other : g.SourcesOf(d)) {
        if (other != s) peers.insert(other);
      }
    }
    bag.push_back({static_cast<double>(peers.size())});
  }
  return bag;
}

Bag DestinationSecondDegrees(const BipartiteGraph& g) {
  Bag bag;
  bag.reserve(g.num_destinations());
  for (std::size_t d = 0; d < g.num_destinations(); ++d) {
    std::set<std::size_t> peers;
    for (std::size_t s : g.SourcesOf(d)) {
      for (std::size_t other : g.DestinationsOf(s)) {
        if (other != d) peers.insert(other);
      }
    }
    bag.push_back({static_cast<double>(peers.size())});
  }
  return bag;
}

Bag SourceStrengths(const BipartiteGraph& g) {
  Bag bag;
  bag.reserve(g.num_sources());
  for (std::size_t s = 0; s < g.num_sources(); ++s) {
    double total = 0.0;
    for (std::size_t d : g.DestinationsOf(s)) total += g.EdgeWeight(s, d);
    bag.push_back({total});
  }
  return bag;
}

Bag DestinationStrengths(const BipartiteGraph& g) {
  Bag bag;
  bag.reserve(g.num_destinations());
  for (std::size_t d = 0; d < g.num_destinations(); ++d) {
    double total = 0.0;
    for (std::size_t s : g.SourcesOf(d)) total += g.EdgeWeight(s, d);
    bag.push_back({total});
  }
  return bag;
}

Bag EdgeWeights(const BipartiteGraph& g) {
  Bag bag;
  bag.reserve(g.num_edges());
  for (const BipartiteEdge& e : g.Edges()) bag.push_back({e.weight});
  return bag;
}

}  // namespace

Result<Bag> ExtractGraphFeature(const BipartiteGraph& graph,
                                GraphFeature feature) {
  switch (feature) {
    case GraphFeature::kSourceDegree:
      if (graph.num_sources() == 0) {
        return Status::Invalid("graph has no source nodes");
      }
      return SourceDegrees(graph);
    case GraphFeature::kDestinationDegree:
      if (graph.num_destinations() == 0) {
        return Status::Invalid("graph has no destination nodes");
      }
      return DestinationDegrees(graph);
    case GraphFeature::kSourceSecondDegree:
      if (graph.num_sources() == 0) {
        return Status::Invalid("graph has no source nodes");
      }
      return SourceSecondDegrees(graph);
    case GraphFeature::kDestinationSecondDegree:
      if (graph.num_destinations() == 0) {
        return Status::Invalid("graph has no destination nodes");
      }
      return DestinationSecondDegrees(graph);
    case GraphFeature::kSourceStrength:
      if (graph.num_sources() == 0) {
        return Status::Invalid("graph has no source nodes");
      }
      return SourceStrengths(graph);
    case GraphFeature::kDestinationStrength:
      if (graph.num_destinations() == 0) {
        return Status::Invalid("graph has no destination nodes");
      }
      return DestinationStrengths(graph);
    case GraphFeature::kEdgeWeight:
      if (graph.num_edges() == 0) {
        return Status::Invalid("graph has no edges");
      }
      return EdgeWeights(graph);
  }
  return Status::Invalid("unknown graph feature");
}

Result<std::array<Bag, 7>> ExtractAllGraphFeatures(
    const BipartiteGraph& graph) {
  std::array<Bag, 7> out;
  const auto features = AllGraphFeatures();
  for (std::size_t i = 0; i < features.size(); ++i) {
    BAGCPD_ASSIGN_OR_RETURN(out[i], ExtractGraphFeature(graph, features[i]));
  }
  return out;
}

}  // namespace bagcpd
