// The seven per-node / per-edge statistics of paper Section 5.3 (semantics
// fixed by the worked example of Fig. 9). Each feature maps a bipartite graph
// to a bag of one-dimensional points, one point per node or edge, so graphs
// with different node counts become bags of different sizes.

#ifndef BAGCPD_GRAPH_FEATURES_H_
#define BAGCPD_GRAPH_FEATURES_H_

#include <array>

#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/graph/bipartite_graph.h"

namespace bagcpd {

/// \brief The seven features, numbered exactly as in the paper.
enum class GraphFeature : int {
  /// 1) For each source node: number of destinations connected to it.
  kSourceDegree = 1,
  /// 2) For each destination node: number of sources connected to it.
  kDestinationDegree = 2,
  /// 3) For each source node: number of *other* sources reachable via a
  /// shared destination.
  kSourceSecondDegree = 3,
  /// 4) For each destination node: number of *other* destinations reachable
  /// via a shared source.
  kDestinationSecondDegree = 4,
  /// 5) For each source node: total weight of outgoing edges.
  kSourceStrength = 5,
  /// 6) For each destination node: total weight of incoming edges.
  kDestinationStrength = 6,
  /// 7) For each edge: its weight.
  kEdgeWeight = 7,
};

/// \brief All seven features in paper order.
std::array<GraphFeature, 7> AllGraphFeatures();

/// \brief Human-readable name ("source_degree", ...).
const char* GraphFeatureName(GraphFeature feature);

/// \brief Extracts one feature as a bag of 1-d points.
///
/// Nodes with no incident edges contribute a 0-valued point for degree and
/// strength features (they were observed but silent). Fails with Invalid when
/// the graph has no edges and the feature is kEdgeWeight (an empty bag cannot
/// be summarized).
Result<Bag> ExtractGraphFeature(const BipartiteGraph& graph,
                                GraphFeature feature);

/// \brief Extracts all seven features; result[i] corresponds to feature i+1.
Result<std::array<Bag, 7>> ExtractAllGraphFeatures(const BipartiteGraph& graph);

}  // namespace bagcpd

#endif  // BAGCPD_GRAPH_FEATURES_H_
