// Synthetic bipartite-graph streams with planted change points: the four
// datasets of paper Section 5.3. Graphs have two source-node clusters and two
// destination-node clusters; community (k, l) is the block of edges between
// source cluster k and destination cluster l, with Poisson(lambda_kl) edge
// weights. Node counts are resampled from Poisson(200) every step.

#ifndef BAGCPD_GRAPH_GENERATORS_H_
#define BAGCPD_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/graph/bipartite_graph.h"

namespace bagcpd {

/// \brief Parameters of one community-structured bipartite snapshot.
struct CommunityGraphParams {
  /// lambda[k][l]: Poisson rate of edge weights in community (k, l).
  /// The paper's initial state: {{10, 3}, {1, 5}}.
  std::vector<std::vector<double>> lambda = {{10.0, 3.0}, {1.0, 5.0}};
  /// Fraction of source nodes in cluster 0 (paper's alpha).
  double alpha = 0.5;
  /// Fraction of destination nodes in cluster 0 (paper's beta).
  double beta = 0.5;
  /// Poisson rate of the number of source / destination nodes.
  double source_rate = 200.0;
  double destination_rate = 200.0;
  /// Probability that a given (source, destination) pair inside a community
  /// carries an edge at all; the paper draws a weight for each pair, which is
  /// density 1. Smaller values produce sparser graphs for fast tests.
  double edge_density = 1.0;
  /// If >= 0, the total edge weight is fixed to this value and distributed
  /// over communities proportionally to lambda_kl, then randomly over the
  /// pairs inside each community (dataset 3's construction).
  double fixed_total_weight = -1.0;
};

/// \brief Samples one snapshot.
Result<BipartiteGraph> SampleCommunityGraph(const CommunityGraphParams& params,
                                            Rng* rng);

/// \brief A generated stream with its planted change points.
struct BipartiteStream {
  std::string name;
  std::vector<BipartiteGraph> graphs;
  /// 0-based indices t such that the generating parameters of graph t differ
  /// from those of graph t-1.
  std::vector<std::size_t> change_points;
};

/// \brief Options shared by the four dataset generators.
struct BipartiteStreamOptions {
  std::uint64_t seed = 0;
  /// Node-count rate (the paper uses 200; tests may lower it for speed).
  double node_rate = 200.0;
  /// Edge density (1.0 in the paper).
  double edge_density = 1.0;
  /// Scales the number of time steps (1.0 = the paper's 200 / 240 steps;
  /// the block length 20 is scaled proportionally).
  double length_scale = 1.0;
};

/// \brief Dataset 1: partitions fixed, total traffic level changes.
/// lambda_kl = a + 1 inside block a (t in [20(a+1)+1, 20(a+1)+20], a = 1..5),
/// else 1.
Result<BipartiteStream> MakeBipartiteDataset1(const BipartiteStreamOptions& options);

/// \brief Dataset 2: partition fractions alpha = beta jump to 0.5 +- 0.1a
/// inside block a; lambda keeps the initial state.
Result<BipartiteStream> MakeBipartiteDataset2(const BipartiteStreamOptions& options);

/// \brief Dataset 3: dataset 2's partition changes but with the total edge
/// weight pinned to 100,000, split over communities by the lambda ratios.
Result<BipartiteStream> MakeBipartiteDataset3(const BipartiteStreamOptions& options);

/// \brief Dataset 4: partitions fixed; the four lambda values are permuted in
/// a different way every 20 steps (240 steps total).
Result<BipartiteStream> MakeBipartiteDataset4(const BipartiteStreamOptions& options);

/// \brief All four datasets in paper order.
Result<std::vector<BipartiteStream>> MakeAllBipartiteDatasets(
    const BipartiteStreamOptions& options);

}  // namespace bagcpd

#endif  // BAGCPD_GRAPH_GENERATORS_H_
