#include "bagcpd/graph/bipartite_graph.h"

#include <algorithm>

#include "bagcpd/common/check.h"

namespace bagcpd {

BipartiteGraph::BipartiteGraph(std::size_t num_sources,
                               std::size_t num_destinations)
    : num_sources_(num_sources), num_destinations_(num_destinations) {}

Status BipartiteGraph::AddEdge(std::size_t source, std::size_t destination,
                               double weight) {
  if (source >= num_sources_) {
    return Status::OutOfRange("source " + std::to_string(source) +
                              " >= " + std::to_string(num_sources_));
  }
  if (destination >= num_destinations_) {
    return Status::OutOfRange("destination " + std::to_string(destination) +
                              " >= " + std::to_string(num_destinations_));
  }
  if (!(weight > 0.0)) return Status::Invalid("edge weight must be > 0");
  edges_[{source, destination}] += weight;
  adjacency_dirty_ = true;
  return Status::OK();
}

std::vector<BipartiteEdge> BipartiteGraph::Edges() const {
  std::vector<BipartiteEdge> out;
  out.reserve(edges_.size());
  for (const auto& [key, weight] : edges_) {
    out.push_back(BipartiteEdge{key.first, key.second, weight});
  }
  return out;
}

double BipartiteGraph::EdgeWeight(std::size_t source,
                                  std::size_t destination) const {
  auto it = edges_.find({source, destination});
  return it == edges_.end() ? 0.0 : it->second;
}

void BipartiteGraph::RebuildAdjacency() const {
  out_adjacency_.assign(num_sources_, {});
  in_adjacency_.assign(num_destinations_, {});
  for (const auto& [key, weight] : edges_) {
    out_adjacency_[key.first].push_back(key.second);
    in_adjacency_[key.second].push_back(key.first);
  }
  adjacency_dirty_ = false;
}

const std::vector<std::size_t>& BipartiteGraph::DestinationsOf(
    std::size_t source) const {
  BAGCPD_CHECK(source < num_sources_);
  if (adjacency_dirty_) RebuildAdjacency();
  return out_adjacency_[source];
}

const std::vector<std::size_t>& BipartiteGraph::SourcesOf(
    std::size_t destination) const {
  BAGCPD_CHECK(destination < num_destinations_);
  if (adjacency_dirty_) RebuildAdjacency();
  return in_adjacency_[destination];
}

double BipartiteGraph::TotalWeight() const {
  double total = 0.0;
  for (const auto& [key, weight] : edges_) total += weight;
  return total;
}

}  // namespace bagcpd
