#include "bagcpd/graph/generators.h"

#include <algorithm>
#include <cmath>

#include "bagcpd/common/check.h"

namespace bagcpd {

namespace {

// Cluster boundary helper: nodes [0, cut) are cluster 0, [cut, n) cluster 1.
std::size_t Cut(double fraction, std::size_t n) {
  const double c = std::clamp(fraction, 0.0, 1.0) * static_cast<double>(n);
  return std::min(static_cast<std::size_t>(std::llround(c)), n);
}

}  // namespace

Result<BipartiteGraph> SampleCommunityGraph(const CommunityGraphParams& params,
                                            Rng* rng) {
  if (params.lambda.empty() || params.lambda.front().empty()) {
    return Status::Invalid("lambda matrix is empty");
  }
  const std::size_t num_src_clusters = params.lambda.size();
  const std::size_t num_dst_clusters = params.lambda.front().size();
  for (const auto& row : params.lambda) {
    if (row.size() != num_dst_clusters) {
      return Status::Invalid("lambda matrix is ragged");
    }
  }
  if (num_src_clusters != 2 || num_dst_clusters != 2) {
    // The alpha/beta split is defined for 2 x 2 communities (as in the paper).
    return Status::NotImplemented("community sampler supports 2x2 clusters");
  }

  const std::size_t ns =
      static_cast<std::size_t>(rng->Poisson(params.source_rate, /*min=*/4));
  const std::size_t nd =
      static_cast<std::size_t>(rng->Poisson(params.destination_rate, /*min=*/4));
  const std::size_t src_cut = Cut(params.alpha, ns);
  const std::size_t dst_cut = Cut(params.beta, nd);

  BipartiteGraph graph(ns, nd);

  if (params.fixed_total_weight >= 0.0) {
    // Dataset-3 style: distribute a fixed budget over communities by lambda
    // ratio, then randomly over pairs inside each community. Communities
    // emptied by an extreme partition fraction are excluded from the ratio so
    // the total stays pinned.
    auto community_rows = [&](std::size_t k) {
      return (k == 0) ? src_cut : ns - src_cut;
    };
    auto community_cols = [&](std::size_t l) {
      return (l == 0) ? dst_cut : nd - dst_cut;
    };
    double lambda_sum = 0.0;
    for (std::size_t k = 0; k < 2; ++k) {
      for (std::size_t l = 0; l < 2; ++l) {
        if (community_rows(k) > 0 && community_cols(l) > 0) {
          lambda_sum += params.lambda[k][l];
        }
      }
    }
    if (lambda_sum <= 0.0) return Status::Invalid("lambda sums to zero");
    for (std::size_t k = 0; k < 2; ++k) {
      for (std::size_t l = 0; l < 2; ++l) {
        const std::size_t src_lo = (k == 0) ? 0 : src_cut;
        const std::size_t src_hi = (k == 0) ? src_cut : ns;
        const std::size_t dst_lo = (l == 0) ? 0 : dst_cut;
        const std::size_t dst_hi = (l == 0) ? dst_cut : nd;
        const std::size_t rows = src_hi - src_lo;
        const std::size_t cols = dst_hi - dst_lo;
        if (rows == 0 || cols == 0) continue;
        const double budget =
            params.fixed_total_weight * params.lambda[k][l] / lambda_sum;
        const int whole = static_cast<int>(std::llround(budget));
        if (whole <= 0) continue;
        // Spread the integer budget uniformly over the community's pairs.
        const std::size_t pairs = rows * cols;
        std::vector<double> probs(pairs, 1.0 / static_cast<double>(pairs));
        std::vector<int> alloc = rng->Multinomial(whole, probs);
        for (std::size_t p = 0; p < pairs; ++p) {
          if (alloc[p] <= 0) continue;
          const std::size_t s = src_lo + p / cols;
          const std::size_t d = dst_lo + p % cols;
          BAGCPD_RETURN_NOT_OK(
              graph.AddEdge(s, d, static_cast<double>(alloc[p])));
        }
      }
    }
    return graph;
  }

  for (std::size_t s = 0; s < ns; ++s) {
    const std::size_t k = (s < src_cut) ? 0 : 1;
    for (std::size_t d = 0; d < nd; ++d) {
      const std::size_t l = (d < dst_cut) ? 0 : 1;
      if (params.edge_density < 1.0 && !rng->Bernoulli(params.edge_density)) {
        continue;
      }
      const int weight = rng->Poisson(params.lambda[k][l], /*min=*/0);
      if (weight > 0) {
        BAGCPD_RETURN_NOT_OK(
            graph.AddEdge(s, d, static_cast<double>(weight)));
      }
    }
  }
  return graph;
}

namespace {

// Shared scaffolding: walks `steps` time steps; `params_at(t)` yields the
// parameters of step t (1-based as in the paper's formulas) and the generator
// records a change point wherever consecutive parameters differ.
template <typename ParamsAt>
Result<BipartiteStream> GenerateStream(const std::string& name,
                                       std::size_t steps,
                                       const BipartiteStreamOptions& options,
                                       ParamsAt params_at) {
  BipartiteStream stream;
  stream.name = name;
  Rng rng(options.seed);
  CommunityGraphParams previous;
  bool has_previous = false;
  for (std::size_t t = 1; t <= steps; ++t) {
    CommunityGraphParams params = params_at(t);
    params.source_rate = options.node_rate;
    params.destination_rate = options.node_rate;
    params.edge_density = options.edge_density;
    BAGCPD_ASSIGN_OR_RETURN(BipartiteGraph graph,
                            SampleCommunityGraph(params, &rng));
    if (has_previous) {
      const bool changed = params.lambda != previous.lambda ||
                           params.alpha != previous.alpha ||
                           params.beta != previous.beta;
      if (changed) stream.change_points.push_back(t - 1);  // 0-based index.
    }
    previous = params;
    has_previous = true;
    stream.graphs.push_back(std::move(graph));
  }
  return stream;
}

// Block index a = 1..5 if t falls inside the elevated block of parameter a,
// else 0. Paper: block a covers t in [20(a+1)+1, 20(a+1)+20], scaled by
// `block` / 20.
int BlockOf(std::size_t t, std::size_t block) {
  for (int a = 1; a <= 5; ++a) {
    const std::size_t lo = block * static_cast<std::size_t>(a + 1) + 1;
    const std::size_t hi = lo + block - 1;
    if (t >= lo && t <= hi) return a;
  }
  return 0;
}

}  // namespace

Result<BipartiteStream> MakeBipartiteDataset1(
    const BipartiteStreamOptions& options) {
  const std::size_t block =
      std::max<std::size_t>(2, static_cast<std::size_t>(20 * options.length_scale));
  const std::size_t steps = 10 * block;
  return GenerateStream("bipartite-ds1-traffic-level", steps, options,
                        [&](std::size_t t) {
                          CommunityGraphParams p;
                          const int a = BlockOf(t, block);
                          const double level = a > 0 ? a + 1.0 : 1.0;
                          p.lambda = {{level, level}, {level, level}};
                          p.alpha = 0.5;
                          p.beta = 0.5;
                          return p;
                        });
}

Result<BipartiteStream> MakeBipartiteDataset2(
    const BipartiteStreamOptions& options) {
  const std::size_t block =
      std::max<std::size_t>(2, static_cast<std::size_t>(20 * options.length_scale));
  const std::size_t steps = 10 * block;
  // The random sign delta of each block is fixed up front (one draw per block,
  // as in the paper's description).
  Rng sign_rng(options.seed ^ 0x5157ULL);
  std::vector<double> signs(6, 1.0);
  for (int a = 1; a <= 5; ++a) signs[a] = sign_rng.Bernoulli(0.5) ? 1.0 : -1.0;
  return GenerateStream("bipartite-ds2-partition", steps, options,
                        [&, signs](std::size_t t) {
                          CommunityGraphParams p;  // Initial-state lambda.
                          const int a = BlockOf(t, block);
                          const double frac =
                              a > 0 ? 0.5 + 0.1 * a * signs[a] : 0.5;
                          p.alpha = frac;
                          p.beta = frac;
                          return p;
                        });
}

Result<BipartiteStream> MakeBipartiteDataset3(
    const BipartiteStreamOptions& options) {
  const std::size_t block =
      std::max<std::size_t>(2, static_cast<std::size_t>(20 * options.length_scale));
  const std::size_t steps = 10 * block;
  Rng sign_rng(options.seed ^ 0x5157ULL);
  std::vector<double> signs(6, 1.0);
  for (int a = 1; a <= 5; ++a) signs[a] = sign_rng.Bernoulli(0.5) ? 1.0 : -1.0;
  // Fixed total weight scales with graph size so reduced-size test streams
  // keep comparable per-edge weights (100,000 at the paper's 200-node rate).
  const double total_weight =
      100000.0 * (options.node_rate / 200.0) * (options.node_rate / 200.0) *
      options.edge_density;
  return GenerateStream("bipartite-ds3-partition-fixed-traffic", steps, options,
                        [&, signs](std::size_t t) {
                          CommunityGraphParams p;
                          const int a = BlockOf(t, block);
                          const double frac =
                              a > 0 ? 0.5 + 0.1 * a * signs[a] : 0.5;
                          p.alpha = frac;
                          p.beta = frac;
                          p.fixed_total_weight = total_weight;
                          return p;
                        });
}

Result<BipartiteStream> MakeBipartiteDataset4(
    const BipartiteStreamOptions& options) {
  const std::size_t block =
      std::max<std::size_t>(2, static_cast<std::size_t>(20 * options.length_scale));
  const std::size_t steps = 12 * block;  // The paper's 240 at block = 20.
  // Twelve fixed arrangements of the four rates (10, 3, 1, 5): the identity
  // followed by interchanges "in different ways" (paper's wording).
  static const double kPerms[12][4] = {
      {10, 3, 1, 5}, {5, 3, 1, 10}, {10, 1, 3, 5}, {3, 10, 5, 1},
      {10, 3, 1, 5}, {1, 5, 10, 3}, {10, 5, 3, 1}, {5, 1, 3, 10},
      {10, 3, 1, 5}, {3, 1, 10, 5}, {1, 10, 5, 3}, {5, 10, 3, 1}};
  return GenerateStream(
      "bipartite-ds4-lambda-interchange", steps, options, [&](std::size_t t) {
        CommunityGraphParams p;
        const std::size_t b = std::min<std::size_t>((t - 1) / block, 11);
        p.lambda = {{kPerms[b][0], kPerms[b][1]}, {kPerms[b][2], kPerms[b][3]}};
        return p;
      });
}

Result<std::vector<BipartiteStream>> MakeAllBipartiteDatasets(
    const BipartiteStreamOptions& options) {
  std::vector<BipartiteStream> streams;
  BAGCPD_ASSIGN_OR_RETURN(BipartiteStream s1, MakeBipartiteDataset1(options));
  BAGCPD_ASSIGN_OR_RETURN(BipartiteStream s2, MakeBipartiteDataset2(options));
  BAGCPD_ASSIGN_OR_RETURN(BipartiteStream s3, MakeBipartiteDataset3(options));
  BAGCPD_ASSIGN_OR_RETURN(BipartiteStream s4, MakeBipartiteDataset4(options));
  streams.push_back(std::move(s1));
  streams.push_back(std::move(s2));
  streams.push_back(std::move(s3));
  streams.push_back(std::move(s4));
  return streams;
}

}  // namespace bagcpd
