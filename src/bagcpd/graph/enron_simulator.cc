#include "bagcpd/graph/enron_simulator.h"

#include <algorithm>
#include <cmath>

#include "bagcpd/common/check.h"
#include "bagcpd/common/rng.h"

namespace bagcpd {

const char* EnronEventKindName(EnronEventKind kind) {
  switch (kind) {
    case EnronEventKind::kTrafficSurge:
      return "traffic_surge";
    case EnronEventKind::kTrafficDrop:
      return "traffic_drop";
    case EnronEventKind::kPartitionShift:
      return "partition_shift";
    case EnronEventKind::kCommunitySwap:
      return "community_swap";
    case EnronEventKind::kHeadcountChange:
      return "headcount_change";
  }
  return "unknown";
}

std::vector<EnronEvent> DefaultEnronEvents() {
  // Shaped after the Fig. 11 timeline: quiet first year, then an accelerating
  // cascade of crises. Labels paraphrase the paper's event table.
  return {
      {12, EnronEventKind::kHeadcountChange, 1.4,
       "CEO transition announced; desks re-staffed", true},
      {30, EnronEventKind::kTrafficSurge, 2.0,
       "stock dives; company-wide all-hands email storm", true},
      {45, EnronEventKind::kPartitionShift, 0.25,
       "restructuring: trading desks regrouped", false},
      {58, EnronEventKind::kTrafficSurge, 2.5,
       "quarterly loss disclosed; SEC inquiry letters", true},
      {66, EnronEventKind::kCommunitySwap, 1.0,
       "earnings restated; legal takes over comms", true},
      {74, EnronEventKind::kTrafficSurge, 3.0,
       "merger collapses; bankruptcy filing", true},
      {82, EnronEventKind::kHeadcountChange, 0.5,
       "mass layoffs; thousands of accounts disabled", true},
      {92, EnronEventKind::kTrafficDrop, 0.4,
       "criminal investigation opens; traffic withers", false},
  };
}

Result<EnronStream> SimulateEnronStream(const EnronSimulatorOptions& options) {
  if (options.weeks < 10) return Status::Invalid("need at least 10 weeks");

  EnronStream stream;
  stream.events = DefaultEnronEvents();
  // Drop events outside the simulated horizon.
  stream.events.erase(
      std::remove_if(stream.events.begin(), stream.events.end(),
                     [&](const EnronEvent& e) { return e.week >= options.weeks; }),
      stream.events.end());

  Rng rng(options.seed);
  // Baseline parameters: two loose communities (executives+legal vs traders+
  // operations) with asymmetric rates.
  const CommunityGraphParams baseline = [&] {
    CommunityGraphParams p;
    p.lambda = {{6.0, 2.0}, {1.5, 4.0}};
    p.alpha = 0.4;
    p.beta = 0.5;
    p.source_rate = options.node_rate;
    p.destination_rate = options.node_rate;
    p.edge_density = options.edge_density;
    return p;
  }();

  for (std::size_t week = 0; week < options.weeks; ++week) {
    CommunityGraphParams params = baseline;
    // Mild seasonal modulation so the background is not perfectly stationary
    // (the real corpus certainly is not).
    const double season =
        1.0 + 0.05 * std::sin(static_cast<double>(week) * 0.35);
    for (auto& row : params.lambda) {
      for (double& v : row) v *= season;
    }
    // Apply every active event.
    for (const EnronEvent& event : stream.events) {
      if (week < event.week || week >= event.week + options.event_duration) {
        continue;
      }
      switch (event.kind) {
        case EnronEventKind::kTrafficSurge:
        case EnronEventKind::kTrafficDrop:
          for (auto& row : params.lambda) {
            for (double& v : row) v *= event.magnitude;
          }
          break;
        case EnronEventKind::kPartitionShift:
          params.alpha = std::clamp(baseline.alpha + event.magnitude, 0.05, 0.95);
          params.beta = std::clamp(baseline.beta - event.magnitude, 0.05, 0.95);
          break;
        case EnronEventKind::kCommunitySwap:
          std::swap(params.lambda[0][0], params.lambda[1][1]);
          std::swap(params.lambda[0][1], params.lambda[1][0]);
          break;
        case EnronEventKind::kHeadcountChange:
          params.source_rate =
              std::max(8.0, baseline.source_rate * event.magnitude);
          params.destination_rate =
              std::max(8.0, baseline.destination_rate * event.magnitude);
          break;
      }
    }
    BAGCPD_ASSIGN_OR_RETURN(BipartiteGraph graph,
                            SampleCommunityGraph(params, &rng));
    stream.weekly_graphs.push_back(std::move(graph));
  }
  return stream;
}

}  // namespace bagcpd
