// Weighted bipartite graphs: the observation type of the network-monitoring
// experiments (paper Section 5.3). A graph snapshot covers one time window of
// sender -> receiver traffic; node counts differ across snapshots, which is
// exactly why the bag representation is needed.

#ifndef BAGCPD_GRAPH_BIPARTITE_GRAPH_H_
#define BAGCPD_GRAPH_BIPARTITE_GRAPH_H_

#include <cstddef>
#include <map>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief One weighted edge source -> destination.
struct BipartiteEdge {
  std::size_t source;
  std::size_t destination;
  double weight;
};

/// \brief A bipartite graph over `num_sources` sender nodes and
/// `num_destinations` receiver nodes with non-negative edge weights.
///
/// Duplicate AddEdge calls on the same (source, destination) accumulate
/// weight. Zero-weight pairs are simply absent.
class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t num_sources, std::size_t num_destinations);

  /// \brief Accumulates `weight` (> 0) on the edge source -> destination.
  Status AddEdge(std::size_t source, std::size_t destination, double weight);

  std::size_t num_sources() const { return num_sources_; }
  std::size_t num_destinations() const { return num_destinations_; }
  std::size_t num_edges() const { return edges_.size(); }

  /// \brief All edges in insertion-independent (source, destination) order.
  std::vector<BipartiteEdge> Edges() const;

  /// \brief Weight on (source, destination); 0 when absent.
  double EdgeWeight(std::size_t source, std::size_t destination) const;

  /// \brief Destinations adjacent to `source` (sorted).
  const std::vector<std::size_t>& DestinationsOf(std::size_t source) const;

  /// \brief Sources adjacent to `destination` (sorted).
  const std::vector<std::size_t>& SourcesOf(std::size_t destination) const;

  /// \brief Sum of all edge weights.
  double TotalWeight() const;

 private:
  std::size_t num_sources_;
  std::size_t num_destinations_;
  // Sparse weights keyed by (source, destination).
  std::map<std::pair<std::size_t, std::size_t>, double> edges_;
  // Adjacency lists (kept sorted by construction via std::map iteration cache).
  mutable std::vector<std::vector<std::size_t>> out_adjacency_;
  mutable std::vector<std::vector<std::size_t>> in_adjacency_;
  mutable bool adjacency_dirty_ = true;

  void RebuildAdjacency() const;
};

}  // namespace bagcpd

#endif  // BAGCPD_GRAPH_BIPARTITE_GRAPH_H_
