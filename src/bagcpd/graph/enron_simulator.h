// Event-driven email-network simulator standing in for the ENRON corpus
// experiment (paper Section 5.4). The real corpus is not available offline;
// this simulator replays a weekly sender -> receiver bipartite stream whose
// background traffic is community-structured and whose scripted events mirror
// the character of the real Enron timeline (traffic surges around crises,
// partition shifts as groups re-organize, exits of key personnel). See
// DESIGN.md section 3 for the substitution rationale.

#ifndef BAGCPD_GRAPH_ENRON_SIMULATOR_H_
#define BAGCPD_GRAPH_ENRON_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/graph/bipartite_graph.h"
#include "bagcpd/graph/generators.h"

namespace bagcpd {

/// \brief How a scripted event perturbs the network.
enum class EnronEventKind {
  /// Company-wide traffic surge (crisis news).
  kTrafficSurge,
  /// Traffic collapse (departures, shutdown).
  kTrafficDrop,
  /// Re-organization: partition fractions shift.
  kPartitionShift,
  /// Communication pattern inversion: community rates interchange.
  kCommunitySwap,
  /// Headcount change: node rates move.
  kHeadcountChange,
};

const char* EnronEventKindName(EnronEventKind kind);

/// \brief One scripted event.
struct EnronEvent {
  /// Week (0-based) at which the event takes effect.
  std::size_t week;
  EnronEventKind kind;
  /// Multiplier / shift magnitude, interpreted per kind.
  double magnitude;
  /// Label shown in the experiment report (plays the role of the dated event
  /// list of paper Fig. 11).
  std::string label;
  /// Whether GraphScope-style methods detected the corresponding real event
  /// (the right-hand X column of Fig. 11); carried for report parity.
  bool detected_by_graphscope;
};

/// \brief Options of the simulator.
struct EnronSimulatorOptions {
  std::uint64_t seed = 0;
  /// Number of weekly snapshots (the paper's window Jul-2000..May-2002 is
  /// 100 weeks).
  std::size_t weeks = 100;
  /// Baseline Poisson rate of weekly active senders / receivers.
  double node_rate = 60.0;
  /// Edge density of the background traffic.
  double edge_density = 0.25;
  /// Weeks an event's effect lasts before parameters relax back.
  std::size_t event_duration = 4;
};

/// \brief The generated stream plus the event script.
struct EnronStream {
  std::vector<BipartiteGraph> weekly_graphs;
  std::vector<EnronEvent> events;
};

/// \brief The default event script (eight events across 100 weeks, shaped
/// after the Fig. 11 timeline).
std::vector<EnronEvent> DefaultEnronEvents();

/// \brief Simulates the weekly stream.
Result<EnronStream> SimulateEnronStream(const EnronSimulatorOptions& options);

}  // namespace bagcpd

#endif  // BAGCPD_GRAPH_ENRON_SIMULATOR_H_
