// Deterministic fault injection. A single process-wide injector holds at most
// one armed fault spec ("point:mode:arg") naming one of the library's fault
// points — well-known failure sites wired into the hot layers (EMD solve,
// Sinkhorn iteration, ingest allocation, spill I/O, checkpoint import,
// detector push). Call sites ask `FaultFires(point, scope, count)` with a
// DETERMINISTIC (scope, count) pair — a stable per-entity identifier and a
// submission-/iteration-ordinal, never a wall clock or a global hit counter
// shared across threads — so whether a given operation faults is a pure
// function of the workload, bitwise-reproducible across shard and pool
// counts.
//
// The injector is compiled unconditionally. Disarmed (the default) the check
// is one relaxed atomic load of a namespace-scope flag and a predictable
// branch; the tier-1 perf gates run with exactly this code in the hot paths.
//
// Arming: programmatically (FaultInjector::Global().ArmFromSpec), via the
// engine `fault=` spec key, or via the BAGCPD_FAULT environment variable
// (read once at static-init time). Spec syntax:
//
//   <point>:nth:<K>             fires on the K-th occurrence only (1-based)
//   <point>:every-n:<N>         fires on every N-th occurrence
//   <point>:seeded-p:<P>[:<S>]  fires i.i.d. with probability P, keyed by a
//                               hash of (S, scope, count) — deterministic for
//                               a fixed seed S (default 0)

#ifndef BAGCPD_FAULT_FAULT_INJECTOR_H_
#define BAGCPD_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "bagcpd/common/result.h"
#include "bagcpd/common/status.h"

namespace bagcpd {
namespace fault {

/// \brief The library's named fault points (sites that consult the injector).
enum class FaultPoint : int {
  /// One exact/batched EMD pair solve inside the detector's rolling-table
  /// update or pooled prefill; count = per-stream solved-pair ordinal.
  kEmdSolve = 0,
  /// One Sinkhorn scaling iteration; count = iteration ordinal within the
  /// solve. Firing surfaces as the solver's underflow-style Invalid error,
  /// which exercises the `emd-fallback=exact` degradation path.
  kSinkhornIterate,
  /// Ingest-side flatten/allocation at Submit/TrySubmit; count = global
  /// submission sequence.
  kArenaAlloc,
  /// Spill-file write during eviction; firing behaves as a failed write (the
  /// stream stays resident).
  kSpillWrite,
  /// Spill-file read during transparent rehydrate; firing behaves as an I/O
  /// error and enters the stream-failure recovery ladder.
  kSpillRead,
  /// Detector-state import (snapshot restore / rehydrate parse); firing
  /// fails the restore attempt.
  kCkptImport,
  /// One detector push; count = per-stream push ordinal (1-based).
  kDetectorPush,
};

/// \brief Number of distinct fault points (for counter arrays).
inline constexpr std::size_t kFaultPointCount = 7;

/// \brief Canonical dotted name of a fault point ("emd.solve", ...).
const char* FaultPointName(FaultPoint point);

/// \brief Parses a canonical dotted fault-point name.
Result<FaultPoint> ParseFaultPoint(const std::string& name);

namespace internal {
// Namespace-scope armed flag so the disarmed fast path inlines to one
// relaxed load — no function call, no singleton-accessor guard.
extern std::atomic<bool> g_fault_armed;
// Slow path: only reached while armed; takes the injector mutex.
bool FaultFiresSlow(FaultPoint point, std::uint64_t scope,
                    std::uint64_t count);
}  // namespace internal

/// \brief True iff the armed fault spec targets `point` and fires for this
/// (scope, count). Disarmed cost: one relaxed atomic load. `scope` is a
/// stable identifier of the entity (e.g. the per-stream seed or key hash);
/// `count` is the 1-based occurrence ordinal within that scope. Both must be
/// derived deterministically from the workload, never from timing.
inline bool FaultFires(FaultPoint point, std::uint64_t scope,
                       std::uint64_t count) {
  if (!internal::g_fault_armed.load(std::memory_order_relaxed)) return false;
  return internal::FaultFiresSlow(point, scope, count);
}

/// \brief The canonical Status an injected fault surfaces as: Internal with a
/// message prefixed "fault-injected:" so tests and operators can tell a
/// drilled failure from an organic one.
Status InjectedFaultError(FaultPoint point);

/// \brief Process-wide fault injector: at most one armed spec at a time
/// (arming replaces any previous spec). Thread-safe.
class FaultInjector {
 public:
  /// The process-wide instance every fault point consults.
  static FaultInjector& Global();

  /// \brief Arms from a "point:mode:arg[:seed]" spec (see file comment);
  /// replaces any previously armed spec and resets nothing — call
  /// ResetCounters() for a fresh drill. Invalid on a malformed spec (the
  /// injector stays in its previous state).
  Status ArmFromSpec(const std::string& spec);

  /// \brief Checks a spec for syntactic validity without touching the armed
  /// state — the hook option validators (engine `fault=` key) use this so a
  /// bad spec fails configuration instead of the first drill.
  static Status ValidateSpec(const std::string& spec);

  /// \brief Disarms; every subsequent FaultFires() is false at fast-path
  /// cost.
  void Disarm();

  /// \brief True iff a spec is armed.
  bool armed() const {
    return internal::g_fault_armed.load(std::memory_order_relaxed);
  }

  /// \brief The armed spec string (empty when disarmed).
  std::string armed_spec() const;

  /// \brief Total faults fired since the last ResetCounters().
  std::uint64_t fired_count() const;

  /// \brief Faults fired at one point since the last ResetCounters().
  std::uint64_t fired_count(FaultPoint point) const;

  /// \brief Zeroes the fired counters (does not disarm).
  void ResetCounters();

 private:
  friend bool internal::FaultFiresSlow(FaultPoint, std::uint64_t,
                                       std::uint64_t);

  enum class Mode { kNth, kEveryN, kSeededP };

  // Shared parse path behind ArmFromSpec and ValidateSpec; fills the outputs
  // only on success.
  static Status ParseSpec(const std::string& spec, FaultPoint* point,
                          Mode* mode, std::uint64_t* arg,
                          std::uint64_t* threshold, std::uint64_t* seed);

  FaultInjector() = default;

  mutable std::mutex mu_;
  FaultPoint point_ = FaultPoint::kEmdSolve;
  Mode mode_ = Mode::kNth;
  std::uint64_t arg_ = 0;        // K for nth, N for every-n.
  std::uint64_t threshold_ = 0;  // P scaled to [0, 2^64) for seeded-p.
  std::uint64_t seed_ = 0;
  std::string spec_;
  std::atomic<std::uint64_t> fired_total_{0};
  std::atomic<std::uint64_t> fired_by_point_[kFaultPointCount] = {};
};

/// \brief RAII arm/disarm for tests: arms the global injector (resetting its
/// counters first) and disarms on destruction. Check status() — a malformed
/// spec leaves the injector disarmed.
class ScopedFault {
 public:
  explicit ScopedFault(const std::string& spec) {
    FaultInjector::Global().Disarm();
    FaultInjector::Global().ResetCounters();
    status_ = FaultInjector::Global().ArmFromSpec(spec);
  }
  ~ScopedFault() { FaultInjector::Global().Disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const Status& status() const { return status_; }
  std::uint64_t fired() const {
    return FaultInjector::Global().fired_count();
  }

 private:
  Status status_;
};

}  // namespace fault
}  // namespace bagcpd

#endif  // BAGCPD_FAULT_FAULT_INJECTOR_H_
