#include "bagcpd/fault/fault_injector.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "bagcpd/common/rng.h"

namespace bagcpd {
namespace fault {

namespace internal {
std::atomic<bool> g_fault_armed{false};
}  // namespace internal

namespace {

const char* const kPointNames[kFaultPointCount] = {
    "emd.solve",  "sinkhorn.iterate", "arena.alloc", "spill.write",
    "spill.read", "ckpt.import",      "detector.push",
};

std::vector<std::string> SplitColons(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (true) {
    const std::size_t colon = text.find(':', pos);
    if (colon == std::string::npos) {
      parts.push_back(text.substr(pos));
      return parts;
    }
    parts.push_back(text.substr(pos, colon - pos));
    pos = colon + 1;
  }
}

Result<std::uint64_t> ParseCount(const std::string& spec,
                                 const std::string& value) {
  if (value.empty()) {
    return Status::Invalid("fault spec '" + spec + "': missing count");
  }
  std::uint64_t parsed = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      return Status::Invalid("fault spec '" + spec + "': '" + value +
                             "' is not a non-negative integer");
    }
    parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return parsed;
}

}  // namespace

const char* FaultPointName(FaultPoint point) {
  return kPointNames[static_cast<int>(point)];
}

Result<FaultPoint> ParseFaultPoint(const std::string& name) {
  for (std::size_t i = 0; i < kFaultPointCount; ++i) {
    if (name == kPointNames[i]) return static_cast<FaultPoint>(i);
  }
  return Status::Invalid(
      "unknown fault point '" + name +
      "' (known: emd.solve, sinkhorn.iterate, arena.alloc, spill.write, "
      "spill.read, ckpt.import, detector.push)");
}

Status InjectedFaultError(FaultPoint point) {
  return Status::Internal(std::string("fault-injected: ") +
                          FaultPointName(point));
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

Status FaultInjector::ParseSpec(const std::string& spec, FaultPoint* out_point,
                                Mode* out_mode, std::uint64_t* out_arg,
                                std::uint64_t* out_threshold,
                                std::uint64_t* out_seed) {
  const std::vector<std::string> parts = SplitColons(spec);
  if (parts.size() < 3) {
    return Status::Invalid("fault spec '" + spec +
                           "': expected point:mode:arg[:seed]");
  }
  BAGCPD_ASSIGN_OR_RETURN(FaultPoint point, ParseFaultPoint(parts[0]));
  const std::string& mode_name = parts[1];
  Mode mode;
  std::uint64_t arg = 0;
  std::uint64_t threshold = 0;
  std::uint64_t seed = 0;
  if (mode_name == "nth" || mode_name == "every-n") {
    if (parts.size() != 3) {
      return Status::Invalid("fault spec '" + spec + "': " + mode_name +
                             " takes exactly one argument");
    }
    mode = mode_name == "nth" ? Mode::kNth : Mode::kEveryN;
    BAGCPD_ASSIGN_OR_RETURN(arg, ParseCount(spec, parts[2]));
    if (arg == 0) {
      return Status::Invalid("fault spec '" + spec + "': " + mode_name +
                             " argument must be >= 1");
    }
  } else if (mode_name == "seeded-p") {
    if (parts.size() > 4) {
      return Status::Invalid("fault spec '" + spec +
                             "': seeded-p takes probability[:seed]");
    }
    mode = Mode::kSeededP;
    char* end = nullptr;
    const double p = std::strtod(parts[2].c_str(), &end);
    if (parts[2].empty() || end != parts[2].c_str() + parts[2].size() ||
        !std::isfinite(p) || p < 0.0 || p > 1.0) {
      return Status::Invalid("fault spec '" + spec + "': '" + parts[2] +
                             "' is not a probability in [0, 1]");
    }
    // P scaled to a [0, 2^64) threshold the mixed hash compares against;
    // p == 1.0 must always fire, so it saturates to the max.
    threshold = p >= 1.0 ? ~std::uint64_t{0}
                         : static_cast<std::uint64_t>(
                               p * 18446744073709551616.0 /* 2^64 */);
    if (parts.size() == 4) {
      BAGCPD_ASSIGN_OR_RETURN(seed, ParseCount(spec, parts[3]));
    }
  } else {
    return Status::Invalid("fault spec '" + spec + "': unknown mode '" +
                           mode_name + "' (known: nth, every-n, seeded-p)");
  }
  *out_point = point;
  *out_mode = mode;
  *out_arg = arg;
  *out_threshold = threshold;
  *out_seed = seed;
  return Status::OK();
}

Status FaultInjector::ValidateSpec(const std::string& spec) {
  FaultPoint point;
  Mode mode;
  std::uint64_t arg = 0;
  std::uint64_t threshold = 0;
  std::uint64_t seed = 0;
  return ParseSpec(spec, &point, &mode, &arg, &threshold, &seed);
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  FaultPoint point;
  Mode mode;
  std::uint64_t arg = 0;
  std::uint64_t threshold = 0;
  std::uint64_t seed = 0;
  BAGCPD_RETURN_NOT_OK(ParseSpec(spec, &point, &mode, &arg, &threshold, &seed));
  std::lock_guard<std::mutex> lock(mu_);
  point_ = point;
  mode_ = mode;
  arg_ = arg;
  threshold_ = threshold;
  seed_ = seed;
  spec_ = spec;
  internal::g_fault_armed.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  internal::g_fault_armed.store(false, std::memory_order_relaxed);
  spec_.clear();
}

std::string FaultInjector::armed_spec() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_;
}

std::uint64_t FaultInjector::fired_count() const {
  return fired_total_.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired_count(FaultPoint point) const {
  return fired_by_point_[static_cast<int>(point)].load(
      std::memory_order_relaxed);
}

void FaultInjector::ResetCounters() {
  fired_total_.store(0, std::memory_order_relaxed);
  for (auto& counter : fired_by_point_) {
    counter.store(0, std::memory_order_relaxed);
  }
}

namespace internal {

bool FaultFiresSlow(FaultPoint point, std::uint64_t scope,
                    std::uint64_t count) {
  FaultInjector& injector = FaultInjector::Global();
  bool fires = false;
  {
    std::lock_guard<std::mutex> lock(injector.mu_);
    if (!g_fault_armed.load(std::memory_order_relaxed) ||
        injector.point_ != point) {
      return false;
    }
    switch (injector.mode_) {
      case FaultInjector::Mode::kNth:
        fires = count == injector.arg_;
        break;
      case FaultInjector::Mode::kEveryN:
        fires = count >= 1 && count % injector.arg_ == 0;
        break;
      case FaultInjector::Mode::kSeededP: {
        // A pure (seed, point, scope, count) hash against the probability
        // threshold: i.i.d.-looking but exactly reproducible, independent of
        // shard/pool scheduling.
        std::uint64_t h = Rng::MixSeed64(
            injector.seed_ ^ (0x9e3779b97f4a7c15ULL *
                              (static_cast<std::uint64_t>(point) + 1)));
        h = Rng::MixSeed64(h ^ scope);
        h = Rng::MixSeed64(h ^ count);
        fires = h < injector.threshold_;
        break;
      }
    }
  }
  if (fires) {
    injector.fired_total_.fetch_add(1, std::memory_order_relaxed);
    injector.fired_by_point_[static_cast<int>(point)].fetch_add(
        1, std::memory_order_relaxed);
  }
  return fires;
}

}  // namespace internal

namespace {

// BAGCPD_FAULT environment arming: lets the drills and CI arm a fault in any
// binary (tools, benches, tests) without plumbing a flag through every
// main(). A malformed value is ignored — the variable is a test/ops hook,
// never a correctness input.
struct EnvArm {
  EnvArm() {
    const char* spec = std::getenv("BAGCPD_FAULT");
    if (spec != nullptr && spec[0] != '\0') {
      FaultInjector::Global().ArmFromSpec(spec).ok();
    }
  }
};
const EnvArm g_env_arm;

}  // namespace

}  // namespace fault
}  // namespace bagcpd
