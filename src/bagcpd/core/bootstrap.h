// Confidence intervals for change-point scores via the Bayesian bootstrap
// (paper Section 4.2, Appendices A-B; Rubin 1981). At each inspection point
// the window weights are resampled T times:
//
//   {gamma_ref}  ~ Dir(tau  * pi_ref)     (Eq. 21; Dir(1,...,1) when uniform)
//   {gamma_test} ~ Dir(tau' * pi_test)    (Eq. 22)
//
// and the score recomputed from the cached log-EMD tables, yielding the
// [alpha/2, 1-alpha/2] quantile interval. A standard (multinomial) bootstrap
// is provided for the ablation study of the smoothness claim in Section 4.2.

#ifndef BAGCPD_CORE_BOOTSTRAP_H_
#define BAGCPD_CORE_BOOTSTRAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/core/scores.h"

namespace bagcpd {

class ThreadPool;

/// \brief Which resampling scheme generates the weight replicates.
enum class BootstrapMethod {
  /// Dirichlet posterior weights (the paper's choice).
  kBayesian,
  /// Classical multinomial resampling proportions (ablation baseline).
  kStandard,
};

/// \brief Short lowercase name ("bayesian" / "standard").
const char* BootstrapMethodName(BootstrapMethod method);

/// \brief Every bootstrap method, in declaration order (api/ registry table).
const std::vector<BootstrapMethod>& AllBootstrapMethods();

/// \brief Inverse of BootstrapMethodName; rejects unknown names.
Result<BootstrapMethod> ParseBootstrapMethod(const std::string& name);

/// \brief Configuration of the bootstrap procedure.
struct BootstrapOptions {
  /// Number of replicates T.
  int replicates = 200;
  /// Significance level alpha; the CI covers 1 - alpha.
  double alpha = 0.05;
  BootstrapMethod method = BootstrapMethod::kBayesian;
};

/// \brief A bootstrap confidence interval with its replicate summary.
struct BootstrapInterval {
  double lo = 0.0;
  double up = 0.0;
  double replicate_mean = 0.0;
  double replicate_stddev = 0.0;
};

/// \brief Draws one weight replicate for a window of size n with base weights
/// `pi` (simplex). Bayesian: Dir(n * pi). Standard: multinomial(n, pi) / n.
std::vector<double> ResampleWeights(BootstrapMethod method,
                                    const std::vector<double>& pi, Rng* rng);

/// \brief Bootstraps the chosen change-point score over a fixed ScoreContext.
///
/// `pi_ref` / `pi_test` are the base (prior) weights of the two windows; pass
/// uniform vectors for the paper's default. The same EMD tables in `ctx` are
/// reused by every replicate.
///
/// Each replicate draws from its own RNG stream forked off one fresh base
/// seed pulled from `rng` (which advances by exactly one word per call), so
/// the interval is bitwise-identical whether the replicate loop runs
/// serially or chunked over `pool` — and for any pool size. Pass
/// `pool == nullptr` for the serial loop.
Result<BootstrapInterval> BootstrapScoreInterval(
    ScoreType score_type, const ScoreContext& ctx,
    const std::vector<double>& pi_ref, const std::vector<double>& pi_test,
    const BootstrapOptions& options, Rng* rng, ThreadPool* pool = nullptr);

}  // namespace bagcpd

#endif  // BAGCPD_CORE_BOOTSTRAP_H_
