#include "bagcpd/core/bootstrap.h"

#include <cmath>

#include "bagcpd/common/check.h"
#include "bagcpd/common/enum_names.h"
#include "bagcpd/common/stats.h"
#include "bagcpd/runtime/thread_pool.h"

namespace bagcpd {

const char* BootstrapMethodName(BootstrapMethod method) {
  switch (method) {
    case BootstrapMethod::kBayesian:
      return "bayesian";
    case BootstrapMethod::kStandard:
      return "standard";
  }
  return "unknown";
}

const std::vector<BootstrapMethod>& AllBootstrapMethods() {
  static const std::vector<BootstrapMethod> kAll = {BootstrapMethod::kBayesian,
                                                    BootstrapMethod::kStandard};
  return kAll;
}

Result<BootstrapMethod> ParseBootstrapMethod(const std::string& name) {
  return ParseNamedEnum(name, AllBootstrapMethods(), BootstrapMethodName,
                        "bootstrap method");
}

std::vector<double> ResampleWeights(BootstrapMethod method,
                                    const std::vector<double>& pi, Rng* rng) {
  BAGCPD_CHECK(!pi.empty());
  const std::size_t n = pi.size();
  switch (method) {
    case BootstrapMethod::kBayesian: {
      // Appendix B: alpha_i = n * pi_i, which reduces to Dir(1,...,1) for the
      // uniform prior of Appendix A.
      std::vector<double> alpha(n);
      for (std::size_t i = 0; i < n; ++i) {
        alpha[i] = std::max(static_cast<double>(n) * pi[i], 1e-9);
      }
      return rng->Dirichlet(alpha);
    }
    case BootstrapMethod::kStandard: {
      std::vector<int> counts = rng->Multinomial(static_cast<int>(n), pi);
      std::vector<double> gamma(n);
      for (std::size_t i = 0; i < n; ++i) {
        gamma[i] = static_cast<double>(counts[i]) / static_cast<double>(n);
      }
      return gamma;
    }
  }
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

Result<BootstrapInterval> BootstrapScoreInterval(
    ScoreType score_type, const ScoreContext& ctx,
    const std::vector<double>& pi_ref, const std::vector<double>& pi_test,
    const BootstrapOptions& options, Rng* rng, ThreadPool* pool) {
  BAGCPD_RETURN_NOT_OK(ctx.Validate());
  if (options.replicates < 2) {
    return Status::Invalid("need at least 2 bootstrap replicates");
  }
  if (options.alpha <= 0.0 || options.alpha >= 1.0) {
    return Status::Invalid("alpha must be in (0, 1)");
  }
  if (pi_ref.size() != ctx.tau() || pi_test.size() != ctx.tau_prime()) {
    return Status::Invalid("base weight size mismatch");
  }

  // One engine word seeds the whole replicate set; replicate r then draws
  // from Fork(r), its own stream. The caller's rng advances identically
  // whether or not a pool is attached, and replicate r's draws never depend
  // on which thread (or chunk) ran it: fixed seed => bitwise-identical
  // intervals for any thread count.
  const Rng replicate_base(rng->NextUInt64());
  const std::size_t replicates = static_cast<std::size_t>(options.replicates);
  std::vector<double> replicate_scores(replicates, 0.0);
  std::vector<Status> replicate_status(replicates, Status::OK());
  auto run_replicate = [&](std::size_t r) {
    Rng rep_rng = replicate_base.Fork(r);
    // The standard bootstrap can draw gamma_test[0] == 1 (every resample hit
    // element 0), which makes scoreLR undefined; redraw in that rare case.
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::vector<double> gamma_ref =
          ResampleWeights(options.method, pi_ref, &rep_rng);
      std::vector<double> gamma_test =
          ResampleWeights(options.method, pi_test, &rep_rng);
      Result<double> score =
          ComputeScore(score_type, ctx, gamma_ref, gamma_test);
      if (score.ok()) {
        replicate_scores[r] = score.ValueOrDie();
        return;
      }
      if (attempt == 63) replicate_status[r] = score.status();
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, replicates, run_replicate);
  } else {
    for (std::size_t r = 0; r < replicates; ++r) run_replicate(r);
  }
  for (const Status& status : replicate_status) {
    BAGCPD_RETURN_NOT_OK(status);
  }

  BAGCPD_ASSIGN_OR_RETURN(Interval interval,
                          CentralInterval(replicate_scores, options.alpha));
  BootstrapInterval out;
  out.lo = interval.lo;
  out.up = interval.up;
  out.replicate_mean = Mean(replicate_scores);
  out.replicate_stddev = StdDev(replicate_scores);
  return out;
}

}  // namespace bagcpd
