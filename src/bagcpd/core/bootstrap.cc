#include "bagcpd/core/bootstrap.h"

#include <cmath>

#include "bagcpd/common/check.h"
#include "bagcpd/common/stats.h"

namespace bagcpd {

const char* BootstrapMethodName(BootstrapMethod method) {
  switch (method) {
    case BootstrapMethod::kBayesian:
      return "bayesian";
    case BootstrapMethod::kStandard:
      return "standard";
  }
  return "unknown";
}

std::vector<double> ResampleWeights(BootstrapMethod method,
                                    const std::vector<double>& pi, Rng* rng) {
  BAGCPD_CHECK(!pi.empty());
  const std::size_t n = pi.size();
  switch (method) {
    case BootstrapMethod::kBayesian: {
      // Appendix B: alpha_i = n * pi_i, which reduces to Dir(1,...,1) for the
      // uniform prior of Appendix A.
      std::vector<double> alpha(n);
      for (std::size_t i = 0; i < n; ++i) {
        alpha[i] = std::max(static_cast<double>(n) * pi[i], 1e-9);
      }
      return rng->Dirichlet(alpha);
    }
    case BootstrapMethod::kStandard: {
      std::vector<int> counts = rng->Multinomial(static_cast<int>(n), pi);
      std::vector<double> gamma(n);
      for (std::size_t i = 0; i < n; ++i) {
        gamma[i] = static_cast<double>(counts[i]) / static_cast<double>(n);
      }
      return gamma;
    }
  }
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

Result<BootstrapInterval> BootstrapScoreInterval(
    ScoreType score_type, const ScoreContext& ctx,
    const std::vector<double>& pi_ref, const std::vector<double>& pi_test,
    const BootstrapOptions& options, Rng* rng) {
  BAGCPD_RETURN_NOT_OK(ctx.Validate());
  if (options.replicates < 2) {
    return Status::Invalid("need at least 2 bootstrap replicates");
  }
  if (options.alpha <= 0.0 || options.alpha >= 1.0) {
    return Status::Invalid("alpha must be in (0, 1)");
  }
  if (pi_ref.size() != ctx.tau() || pi_test.size() != ctx.tau_prime()) {
    return Status::Invalid("base weight size mismatch");
  }

  std::vector<double> replicate_scores;
  replicate_scores.reserve(static_cast<std::size_t>(options.replicates));
  for (int r = 0; r < options.replicates; ++r) {
    // The standard bootstrap can draw gamma_test[0] == 1 (every resample hit
    // element 0), which makes scoreLR undefined; redraw in that rare case.
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::vector<double> gamma_ref =
          ResampleWeights(options.method, pi_ref, rng);
      std::vector<double> gamma_test =
          ResampleWeights(options.method, pi_test, rng);
      Result<double> score =
          ComputeScore(score_type, ctx, gamma_ref, gamma_test);
      if (score.ok()) {
        replicate_scores.push_back(score.ValueOrDie());
        break;
      }
      if (attempt == 63) return score.status();
    }
  }

  BAGCPD_ASSIGN_OR_RETURN(Interval interval,
                          CentralInterval(replicate_scores, options.alpha));
  BootstrapInterval out;
  out.lo = interval.lo;
  out.up = interval.up;
  out.replicate_mean = Mean(replicate_scores);
  out.replicate_stddev = StdDev(replicate_scores);
  return out;
}

}  // namespace bagcpd
