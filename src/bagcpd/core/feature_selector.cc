#include "bagcpd/core/feature_selector.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "bagcpd/common/check.h"
#include "bagcpd/common/stats.h"

namespace bagcpd {

Result<std::vector<double>> LearnFeatureScaling(
    const BagSequence& bags, const std::vector<int>& segment_labels,
    const FeatureSelectorOptions& options) {
  BAGCPD_RETURN_NOT_OK(ValidateBagSequence(bags));
  if (segment_labels.size() != bags.size()) {
    return Status::Invalid("labels/bags size mismatch");
  }
  const std::size_t d = bags.front().front().size();

  // Per-segment collections of per-bag means, plus pooled within-bag variance.
  std::map<int, std::vector<Point>> segment_means;
  std::vector<double> within(d, 0.0);
  for (std::size_t t = 0; t < bags.size(); ++t) {
    const Point mean = BagMean(bags[t]);
    segment_means[segment_labels[t]].push_back(mean);
    for (std::size_t j = 0; j < d; ++j) {
      double acc = 0.0;
      for (const Point& x : bags[t]) acc += (x[j] - mean[j]) * (x[j] - mean[j]);
      within[j] += acc / static_cast<double>(bags[t].size());
    }
  }
  if (segment_means.size() < 2) {
    return Status::Invalid("need at least two distinct segment labels");
  }
  for (double& w : within) {
    w = std::max(w / static_cast<double>(bags.size()), options.epsilon);
  }

  // Between-segment variance of the segment-average means per dimension.
  std::vector<Point> segment_centroids;
  for (const auto& [label, means] : segment_means) {
    Point centroid(d, 0.0);
    for (const Point& m : means) {
      for (std::size_t j = 0; j < d; ++j) centroid[j] += m[j];
    }
    for (double& v : centroid) v /= static_cast<double>(means.size());
    segment_centroids.push_back(std::move(centroid));
  }
  std::vector<double> ratio(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    std::vector<double> vals;
    vals.reserve(segment_centroids.size());
    for (const Point& c : segment_centroids) vals.push_back(c[j]);
    ratio[j] = Variance(vals) / within[j];
  }

  // Normalize to unit mean and prune.
  const double max_ratio = *std::max_element(ratio.begin(), ratio.end());
  std::vector<double> scale(d, 1.0);
  if (max_ratio <= 0.0) return scale;  // Nothing separates; identity scaling.
  double mean_ratio = 0.0;
  for (double r : ratio) mean_ratio += r;
  mean_ratio /= static_cast<double>(d);
  for (std::size_t j = 0; j < d; ++j) {
    if (ratio[j] < options.prune_below * max_ratio) {
      scale[j] = options.pruned_scale;
    } else {
      scale[j] = mean_ratio > 0.0 ? std::sqrt(ratio[j] / mean_ratio)
                                  : 1.0;
      scale[j] = std::max(scale[j], options.pruned_scale);
    }
  }
  return scale;
}

Result<Bag> ApplyFeatureScaling(const Bag& bag,
                                const std::vector<double>& scale) {
  BAGCPD_RETURN_NOT_OK(ValidateBag(bag, scale.size()));
  Bag out = bag;
  for (Point& x : out) {
    for (std::size_t j = 0; j < scale.size(); ++j) x[j] *= scale[j];
  }
  return out;
}

Result<BagSequence> ApplyFeatureScaling(const BagSequence& bags,
                                        const std::vector<double>& scale) {
  BagSequence out;
  out.reserve(bags.size());
  for (const Bag& bag : bags) {
    BAGCPD_ASSIGN_OR_RETURN(Bag scaled, ApplyFeatureScaling(bag, scale));
    out.push_back(std::move(scaled));
  }
  return out;
}

}  // namespace bagcpd
