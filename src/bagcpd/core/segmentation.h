// Offline segmentation of a bag sequence — the "segment time-series data
// before prediction / signal processing" application of the paper's
// introduction. Runs the online detector over the full sequence, takes its
// adaptive alarms as segment boundaries, and merges boundaries closer than a
// minimum segment length (consecutive alarms for one change collapse to the
// earliest).

#ifndef BAGCPD_CORE_SEGMENTATION_H_
#define BAGCPD_CORE_SEGMENTATION_H_

#include <cstdint>
#include <vector>

#include "bagcpd/core/detector.h"

namespace bagcpd {

/// \brief A half-open segment [begin, end) of bag indices.
struct Segment {
  std::size_t begin;
  std::size_t end;

  std::size_t length() const { return end - begin; }
  bool operator==(const Segment& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// \brief Options for SegmentBagSequence.
struct SegmentationOptions {
  /// Detector configuration (bootstrap must be enabled: the adaptive alarms
  /// are the boundary signal).
  DetectorOptions detector;
  /// Boundaries closer than this merge into one (the earliest alarm wins).
  std::size_t min_segment_length = 2;
};

/// \brief Segmentation output: segments, their boundaries, and the raw
/// per-step detector results for inspection.
struct SegmentationResult {
  std::vector<Segment> segments;
  /// Bag indices where a new segment starts (excluding index 0).
  std::vector<std::size_t> boundaries;
  std::vector<StepResult> steps;
};

/// \brief Splits `bags` into homogeneous segments at the detector's alarms.
///
/// Fails with Invalid if the sequence is shorter than one full window or the
/// detector options are incoherent / have the bootstrap disabled.
Result<SegmentationResult> SegmentBagSequence(const BagSequence& bags,
                                              const SegmentationOptions& options);

}  // namespace bagcpd

#endif  // BAGCPD_CORE_SEGMENTATION_H_
