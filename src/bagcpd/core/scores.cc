#include "bagcpd/core/scores.h"

#include <cmath>

#include "bagcpd/common/check.h"
#include "bagcpd/common/enum_names.h"

namespace bagcpd {

const char* ScoreTypeName(ScoreType type) {
  switch (type) {
    case ScoreType::kLogLikelihoodRatio:
      return "lr";
    case ScoreType::kSymmetrizedKl:
      return "kl";
  }
  return "unknown";
}

const std::vector<ScoreType>& AllScoreTypes() {
  static const std::vector<ScoreType> kAll = {ScoreType::kLogLikelihoodRatio,
                                              ScoreType::kSymmetrizedKl};
  return kAll;
}

Result<ScoreType> ParseScoreType(const std::string& name) {
  if (name == "llr") return ScoreType::kLogLikelihoodRatio;
  if (name == "skl") return ScoreType::kSymmetrizedKl;
  return ParseNamedEnum(name, AllScoreTypes(), ScoreTypeName, "score type");
}

Status ScoreContext::Validate() const {
  if (log_ref_ref.rows() != log_ref_ref.cols()) {
    return Status::Invalid("log_ref_ref is not square");
  }
  if (log_test_test.rows() != log_test_test.cols()) {
    return Status::Invalid("log_test_test is not square");
  }
  if (log_ref_test.rows() != log_ref_ref.rows() ||
      log_ref_test.cols() != log_test_test.rows()) {
    return Status::Invalid("log_ref_test shape mismatch");
  }
  return Status::OK();
}

Result<double> ScoreLogLikelihoodRatio(const ScoreContext& ctx,
                                       const std::vector<double>& gamma_ref,
                                       const std::vector<double>& gamma_test) {
  BAGCPD_RETURN_NOT_OK(ctx.Validate());
  if (gamma_ref.size() != ctx.tau() || gamma_test.size() != ctx.tau_prime()) {
    return Status::Invalid("weight vector size mismatch");
  }
  if (ctx.tau_prime() < 2) {
    return Status::Invalid("scoreLR needs tau' >= 2 (S_test \\ S_t non-empty)");
  }

  // I(S_t; S_ref): S_t is test element 0, so the distances are column 0 of
  // log_ref_test weighted by gamma_ref.
  double info_ref = 0.0;
  for (std::size_t i = 0; i < ctx.tau(); ++i) {
    info_ref += gamma_ref[i] * ctx.log_ref_test(i, 0);
  }

  // I(S_t; S_test \ S_t): test elements 1..tau'-1 with weights renormalized
  // by 1 / (1 - gamma_test[0]).
  const double denom = 1.0 - gamma_test[0];
  if (denom <= 0.0) {
    return Status::Invalid("gamma_test[0] == 1 leaves S_test \\ S_t empty");
  }
  double info_test = 0.0;
  for (std::size_t j = 1; j < ctx.tau_prime(); ++j) {
    info_test += (gamma_test[j] / denom) * ctx.log_test_test(j, 0);
  }

  const double d = ctx.info.d;
  return d * (info_ref - info_test);
}

Result<double> ScoreSymmetrizedKl(const ScoreContext& ctx,
                                  const std::vector<double>& gamma_ref,
                                  const std::vector<double>& gamma_test) {
  BAGCPD_RETURN_NOT_OK(ctx.Validate());
  if (gamma_ref.size() != ctx.tau() || gamma_test.size() != ctx.tau_prime()) {
    return Status::Invalid("weight vector size mismatch");
  }
  if (ctx.tau() < 2 || ctx.tau_prime() < 2) {
    return Status::Invalid("scoreKL needs tau >= 2 and tau' >= 2");
  }
  const double cross =
      CrossEntropyFromLog(ctx.log_ref_test, gamma_ref, gamma_test, ctx.info);
  const double auto_ref =
      AutoEntropyFromLog(ctx.log_ref_ref, gamma_ref, ctx.info);
  const double auto_test =
      AutoEntropyFromLog(ctx.log_test_test, gamma_test, ctx.info);
  // Eq. 17; the c constants cancel.
  return cross - 0.5 * (auto_ref + auto_test);
}

Result<double> ComputeScore(ScoreType type, const ScoreContext& ctx,
                            const std::vector<double>& gamma_ref,
                            const std::vector<double>& gamma_test) {
  switch (type) {
    case ScoreType::kLogLikelihoodRatio:
      return ScoreLogLikelihoodRatio(ctx, gamma_ref, gamma_test);
    case ScoreType::kSymmetrizedKl:
      return ScoreSymmetrizedKl(ctx, gamma_ref, gamma_test);
  }
  return Status::Invalid("unknown score type");
}

}  // namespace bagcpd
