// Change-point scores (paper Eqs. 16-17) evaluated over a reference/test
// window pair. The hot-path entry points work on precomputed log-EMD tables
// (a ScoreContext) so the Bayesian bootstrap can recompute scores thousands of
// times while the EMDs are solved exactly once per window position.

#ifndef BAGCPD_CORE_SCORES_H_
#define BAGCPD_CORE_SCORES_H_

#include <string>
#include <vector>

#include "bagcpd/common/matrix.h"
#include "bagcpd/common/result.h"
#include "bagcpd/info/estimators.h"

namespace bagcpd {

/// \brief Which change-point score to compute.
enum class ScoreType {
  /// Eq. 16: log-likelihood-ratio style, sensitive but less robust.
  kLogLikelihoodRatio,
  /// Eq. 17: symmetrized KL, conservative and robust (the paper's default for
  /// the bipartite-graph experiments).
  kSymmetrizedKl,
};

/// \brief Short lowercase name ("lr" / "kl").
const char* ScoreTypeName(ScoreType type);

/// \brief Every score type, in declaration order (api/ registry name table).
const std::vector<ScoreType>& AllScoreTypes();

/// \brief Inverse of ScoreTypeName. Accepts the aliases "llr" (kLogLikelihoodRatio)
/// and "skl" (kSymmetrizedKl); rejects unknown names.
Result<ScoreType> ParseScoreType(const std::string& name);

/// \brief Precomputed log-EMD tables for one inspection point t.
///
/// Reference window has tau elements (indices 0..tau-1 = times t-tau..t-1,
/// oldest first); test window has tau_prime elements (indices 0..tau_prime-1 =
/// times t..t+tau_prime-1). S_t itself is test element 0.
struct ScoreContext {
  /// log EMD within the reference window (tau x tau, diagonal ignored).
  Matrix log_ref_ref;
  /// log EMD within the test window (tau' x tau', diagonal ignored).
  Matrix log_test_test;
  /// log EMD across windows (tau x tau').
  Matrix log_ref_test;
  /// Estimator constants (c cancels; d scales).
  InfoEstimatorOptions info;

  std::size_t tau() const { return log_ref_ref.rows(); }
  std::size_t tau_prime() const { return log_test_test.rows(); }

  /// \brief Shape consistency check.
  Status Validate() const;
};

/// \brief Eq. 16: scoreLR(S_t) = I(S_t; S_ref) - I(S_t; S_test \ S_t).
///
/// The weights of S_test \ S_t are the test weights excluding element 0,
/// renormalized to the simplex. Requires tau' >= 2.
Result<double> ScoreLogLikelihoodRatio(const ScoreContext& ctx,
                                       const std::vector<double>& gamma_ref,
                                       const std::vector<double>& gamma_test);

/// \brief Eq. 17: scoreKL(S_t) = H(S_ref,S_test) - (H(S_ref) + H(S_test)) / 2.
/// Requires tau >= 2 and tau' >= 2.
Result<double> ScoreSymmetrizedKl(const ScoreContext& ctx,
                                  const std::vector<double>& gamma_ref,
                                  const std::vector<double>& gamma_test);

/// \brief Dispatches on `type`.
Result<double> ComputeScore(ScoreType type, const ScoreContext& ctx,
                            const std::vector<double>& gamma_ref,
                            const std::vector<double>& gamma_test);

}  // namespace bagcpd

#endif  // BAGCPD_CORE_SCORES_H_
