#include "bagcpd/core/detector.h"

#include <algorithm>
#include <cmath>

#include "bagcpd/common/check.h"
#include "bagcpd/common/enum_names.h"
#include "bagcpd/emd/transport_solver.h"
#include "bagcpd/fault/fault_injector.h"
#include "bagcpd/info/weighted_set.h"
#include "bagcpd/runtime/thread_pool.h"

namespace bagcpd {

const char* WeightSchemeName(WeightScheme scheme) {
  switch (scheme) {
    case WeightScheme::kUniform:
      return "uniform";
    case WeightScheme::kDiscounted:
      return "discounted";
  }
  return "unknown";
}

const std::vector<WeightScheme>& AllWeightSchemes() {
  static const std::vector<WeightScheme> kAll = {WeightScheme::kUniform,
                                                 WeightScheme::kDiscounted};
  return kAll;
}

Result<WeightScheme> ParseWeightScheme(const std::string& name) {
  return ParseNamedEnum(name, AllWeightSchemes(), WeightSchemeName,
                        "weight scheme");
}

Status ValidateDetectorOptions(const DetectorOptions& options) {
  if (options.tau < 2) return Status::Invalid("tau must be >= 2");
  if (options.tau_prime < 2) return Status::Invalid("tau' must be >= 2");
  if (options.bootstrap.replicates > 0) {
    if (options.bootstrap.alpha <= 0.0 || options.bootstrap.alpha >= 1.0) {
      return Status::Invalid("bootstrap alpha must be in (0, 1)");
    }
  }
  if (options.info.distance_floor <= 0.0) {
    return Status::Invalid("distance floor must be > 0");
  }
  BAGCPD_RETURN_NOT_OK(ValidateEmdSolverOptions(options.emd));
  return Status::OK();
}

Result<std::unique_ptr<BagStreamDetector>> BagStreamDetector::Create(
    const DetectorOptions& options) {
  BAGCPD_RETURN_NOT_OK(ValidateDetectorOptions(options));
  return std::make_unique<BagStreamDetector>(options);
}

PairwiseDistanceCache::ComputeFn BagStreamDetector::MakeCacheComputeFn() {
  // Solve on the detector-owned EmdSolver (never the 1-d sweep): the exact
  // transportation solve by default, or the configured approximate solver —
  // both dispatch the batched cost kernel on the ground enum.
  return [this](std::uint64_t i, std::uint64_t j) -> Result<double> {
    return solver_.Compute(SignatureAt(i), SignatureAt(j), options_.ground);
  };
}

BagStreamDetector::BagStreamDetector(const DetectorOptions& options)
    : options_(options),
      init_status_(ValidateDetectorOptions(options)),
      builder_(options.signature),
      rng_(options.seed),
      solver_(options.emd),
      cache_(MakeCacheComputeFn()) {
  // Fault-injection scope: the per-stream seed identifies this detector's
  // solves deterministically. Threaded through options_.emd so the serial
  // solver AND the pooled prefill (which passes options_.emd explicitly to
  // thread-local solvers) see the same scope. No effect unless a fault is
  // armed; never serialized.
  options_.emd.fault_scope = options_.seed;
  solver_.set_options(options_.emd);
  if (init_status_.ok()) {
    const std::size_t full = options_.tau + options_.tau_prime;
    window_.Reset(full);
    log_table_.assign(full * full, 0.0);
    batch_lefts_.reserve(full - 1);
    batch_left_pos_.reserve(full - 1);
    batch_emd_.reserve(full - 1);
    // The score-context matrices are sized once here and refilled in place
    // every step; their diagonals stay at the 0.0 the scores ignore.
    ctx_.info = options_.info;
    ctx_.log_ref_ref = Matrix(options_.tau, options_.tau, 0.0);
    ctx_.log_test_test = Matrix(options_.tau_prime, options_.tau_prime, 0.0);
    ctx_.log_ref_test = Matrix(options_.tau, options_.tau_prime, 0.0);
    if (options_.weight_scheme == WeightScheme::kUniform) {
      pi_ref_.assign(options_.tau, 1.0 / static_cast<double>(options_.tau));
      pi_test_.assign(options_.tau_prime,
                      1.0 / static_cast<double>(options_.tau_prime));
    } else {
      pi_ref_ = DiscountWeights(options_.tau, /*toward_end=*/true);
      pi_test_ = DiscountWeights(options_.tau_prime, /*toward_end=*/false);
    }
  }
}

SignatureView BagStreamDetector::SignatureAt(
    std::uint64_t global_index) const {
  const std::uint64_t window_start = next_index_ - window_.size();
  BAGCPD_CHECK_MSG(global_index >= window_start && global_index < next_index_,
                   "signature %llu outside window [%llu, %llu)",
                   static_cast<unsigned long long>(global_index),
                   static_cast<unsigned long long>(window_start),
                   static_cast<unsigned long long>(next_index_));
  return window_.view(static_cast<std::size_t>(global_index - window_start));
}

void BagStreamDetector::Reset() {
  if (init_status_.ok()) {
    window_.Reset(options_.tau + options_.tau_prime);
  }
  upper_history_.clear();
  next_index_ = 0;
  table_base_ = 0;
  table_primed_ = false;
  fault_emd_count_ = 0;
  // Clear — not reallocate — so a long-lived engine stream keeps the cache's
  // bucket storage (and its one generator) across resets.
  cache_.Clear();
  // Per-owner memory policy: with a byte ceiling configured on the solver,
  // oversized EMD scratch (grown by one outlier pair) is released here, at a
  // quiet point, and regrows to the working-set size on the next solve.
  solver_.ShrinkToCeiling();
}

Result<std::optional<StepResult>> BagStreamDetector::Push(const Bag& bag) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  // The boundary flatten recycles through the attached arena too, like the
  // signature build below.
  BAGCPD_ASSIGN_OR_RETURN(FlatBag flat, FlatBag::FromBag(bag, arena_));
  return Push(flat.view());
}

Result<std::optional<StepResult>> BagStreamDetector::Push(BagView bag) {
  BAGCPD_RETURN_NOT_OK(init_status_);
  // Boundary sanitization: a NaN/Inf coordinate must never reach a distance
  // kernel. Checked BEFORE any state mutation, so a direct caller can drop
  // the bad bag and continue the stream on the next good one.
  BAGCPD_RETURN_NOT_OK(CheckBagViewFinite(bag));
  // `detector.push` fault point, keyed to (per-stream seed, push ordinal):
  // deterministic across shard/pool counts, and — like the finite check —
  // raised before any state mutation.
  if (fault::FaultFires(fault::FaultPoint::kDetectorPush, options_.seed,
                        next_index_ + 1)) {
    return fault::InjectedFaultError(fault::FaultPoint::kDetectorPush);
  }
  // The quantizer assembles straight into the window ring's next slot
  // (borrowed-slot build) — no intermediate signature materialized or copied
  // on the push path. Histogram, whose bin count is unbounded, falls back to
  // the copying path inside BuildInto.
  BAGCPD_RETURN_NOT_OK(builder_.BuildInto(bag, next_index_, arena_, &window_));
  ++next_index_;

  const std::size_t full = options_.tau + options_.tau_prime;
  if (window_.size() < full) return std::optional<StepResult>();
  BAGCPD_CHECK(window_.size() == full);

  if (pool_ != nullptr) {
    BAGCPD_RETURN_NOT_OK(PrefillWindowDistances());
  }
  BAGCPD_ASSIGN_OR_RETURN(StepResult step, ScoreInspectionPoint());

  // Slide: drop the oldest signature; its rolling-table slot becomes the
  // next signature's row/column. Every cached raw distance has been folded
  // into the table by now and is never read again, so drop them all —
  // steady-state cache memory is O(tau + tau'), not O((tau + tau')^2).
  window_.PopFront();
  table_base_ = (table_base_ + 1) % full;
  cache_.EvictAll();
  return std::optional<StepResult>(step);
}

Status BagStreamDetector::AdvanceEmdFaultCounter(std::size_t solved) {
  const std::uint64_t begin = fault_emd_count_;
  fault_emd_count_ += solved;
  if (!fault::FaultInjector::Global().armed()) return Status::OK();
  for (std::uint64_t c = begin + 1; c <= begin + solved; ++c) {
    if (fault::FaultFires(fault::FaultPoint::kEmdSolve, options_.seed, c)) {
      return fault::InjectedFaultError(fault::FaultPoint::kEmdSolve);
    }
  }
  return Status::OK();
}

Status BagStreamDetector::PrefillWindowDistances() {
  // Collect the window pairs missing from the cache and solve them
  // concurrently. The rolling table's invariant makes the missing set known
  // without probing the cache: once primed, every pair of the previous
  // window survives eviction, so only the (tau + tau' - 1) pairs of the
  // newest signature are absent; before priming (first full window, or
  // after Reset) the whole C(tau + tau', 2) table is. Each EMD depends only
  // on its two signatures, so the cache contents (and everything downstream)
  // are independent of the pool size; only the insertion happens on this
  // thread.
  const std::uint64_t window_start = next_index_ - window_.size();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> missing;
  if (table_primed_) {
    const std::uint64_t newest = next_index_ - 1;
    missing.reserve(window_.size() - 1);
    for (std::uint64_t i = window_start; i < newest; ++i) {
      missing.emplace_back(i, newest);
    }
  } else {
    missing.reserve(window_.size() * (window_.size() - 1) / 2);
    for (std::uint64_t i = window_start; i < next_index_; ++i) {
      for (std::uint64_t j = i + 1; j < next_index_; ++j) {
        missing.emplace_back(i, j);
      }
    }
  }
  if (missing.empty()) return Status::OK();
  BAGCPD_RETURN_NOT_OK(AdvanceEmdFaultCounter(missing.size()));
  std::vector<SignatureView> lefts;
  std::vector<SignatureView> rights;
  lefts.reserve(missing.size());
  rights.reserve(missing.size());
  for (const auto& [i, j] : missing) {
    lefts.push_back(SignatureAt(i));
    rights.push_back(SignatureAt(j));
  }
  std::vector<double> values(missing.size(), 0.0);
  std::vector<Status> statuses(missing.size(), Status::OK());
  // Each chunk runs ONE batched solve over its contiguous slice of the pair
  // list on a per-pool-thread solver (concurrent solves never share scratch;
  // the explicit-options overload lets one shared thread-local solver serve
  // streams with different emd= selections). ComputeBatch detects the runs
  // of shared right operands — the whole steady-state list shares the newest
  // signature — and hoists their transpose. Any chunking yields the same
  // values because each pair's EMD depends only on its two signatures; a
  // chunk's first error lands at its first index, so the scan below still
  // surfaces the lowest failing pair.
  pool_->ParallelForChunked(0, missing.size(),
                            [&](std::size_t begin, std::size_t end) {
    const Status s = ThreadLocalEmdSolver().ComputeBatch(
        lefts.data() + begin, rights.data() + begin, end - begin,
        options_.ground, options_.emd, values.data() + begin);
    if (!s.ok()) statuses[begin] = s;
  });
  for (std::size_t p = 0; p < missing.size(); ++p) {
    BAGCPD_RETURN_NOT_OK(statuses[p]);
    cache_.Put(missing[p].first, missing[p].second, values[p]);
  }
  return Status::OK();
}

Status BagStreamDetector::FoldNewPairsForColumn(std::size_t q) {
  const std::size_t w = window_.size();  // == tau + tau' (window is full).
  const std::uint64_t window_start = next_index_ - w;
  const double floor = options_.info.distance_floor;
  const auto slot = [this, w](std::size_t pos) {
    return (table_base_ + pos) % w;
  };
  const std::size_t q_slot = slot(q);
  const std::uint64_t gq = window_start + q;
  const auto fold = [&](std::size_t p, double d) {
    const double v = std::log(std::max(d, floor));
    log_table_[slot(p) * w + q_slot] = v;
    log_table_[q_slot * w + slot(p)] = v;
  };
  // Split column q's pairs into cached (pooled prefill already solved them;
  // reading them back counts the same hits as before) and absent. The absent
  // ones — ALL of them on the serial path — go through one batched solve
  // sharing the right operand, then Put() records exactly the misses the
  // per-pair cache walk would have.
  batch_lefts_.clear();
  batch_left_pos_.clear();
  for (std::size_t p = 0; p < q; ++p) {
    const std::uint64_t gp = window_start + p;
    if (cache_.Contains(gp, gq)) {
      BAGCPD_ASSIGN_OR_RETURN(double d, cache_.Get(gp, gq));
      fold(p, d);
    } else {
      batch_lefts_.push_back(window_.view(p));
      batch_left_pos_.push_back(p);
    }
  }
  if (batch_lefts_.empty()) return Status::OK();
  BAGCPD_RETURN_NOT_OK(AdvanceEmdFaultCounter(batch_lefts_.size()));
  batch_emd_.resize(batch_lefts_.size());
  BAGCPD_RETURN_NOT_OK(solver_.ComputeBatch(batch_lefts_.data(),
                                            batch_lefts_.size(),
                                            window_.view(q), options_.ground,
                                            batch_emd_.data()));
  for (std::size_t i = 0; i < batch_left_pos_.size(); ++i) {
    cache_.Put(window_start + batch_left_pos_[i], gq, batch_emd_[i]);
    fold(batch_left_pos_[i], batch_emd_[i]);
  }
  return Status::OK();
}

Status BagStreamDetector::UpdateRollingTable() {
  const std::size_t w = window_.size();
  if (!table_primed_) {
    // First full window (or first after Reset): fill every pair, one batched
    // shared-right column at a time.
    for (std::size_t q = 1; q < w; ++q) {
      BAGCPD_RETURN_NOT_OK(FoldNewPairsForColumn(q));
    }
    table_primed_ = true;
    return Status::OK();
  }
  // Steady state: the slide already retired the oldest row/column (its slot
  // is the newest signature's), so only the newest column's (w - 1) pairs
  // need solving — the detector's hottest loop, now one ComputeBatch call.
  return FoldNewPairsForColumn(w - 1);
}

Result<StepResult> BagStreamDetector::ScoreInspectionPoint() {
  const std::size_t tau = options_.tau;
  const std::size_t tau_prime = options_.tau_prime;
  const std::size_t w = tau + tau_prime;
  // Global indices: reference = [t - tau, t), test = [t, t + tau').
  const std::uint64_t t = next_index_ - tau_prime;

  // Slide the rolling log-EMD table (one new row/column per step), then copy
  // its three window blocks into the reused ScoreContext matrices — straight
  // buffer reads instead of the historical per-step hash-map assembly, and
  // no per-step Matrix allocations. The log values are computed once per
  // pair, so every ctx entry is bit-identical to recomputing it from the
  // cache each step. Reference window = positions 0..tau-1 (oldest first),
  // test window = positions tau..w-1.
  BAGCPD_RETURN_NOT_OK(UpdateRollingTable());
  const auto slot = [this, w](std::size_t pos) {
    return (table_base_ + pos) % w;
  };
  for (std::size_t i = 0; i < tau; ++i) {
    const double* row = log_table_.data() + slot(i) * w;
    for (std::size_t j = i + 1; j < tau; ++j) {
      const double v = row[slot(j)];
      ctx_.log_ref_ref(i, j) = v;
      ctx_.log_ref_ref(j, i) = v;
    }
  }
  for (std::size_t i = 0; i < tau_prime; ++i) {
    const double* row = log_table_.data() + slot(tau + i) * w;
    for (std::size_t j = i + 1; j < tau_prime; ++j) {
      const double v = row[slot(tau + j)];
      ctx_.log_test_test(i, j) = v;
      ctx_.log_test_test(j, i) = v;
    }
  }
  for (std::size_t i = 0; i < tau; ++i) {
    const double* row = log_table_.data() + slot(i) * w;
    for (std::size_t j = 0; j < tau_prime; ++j) {
      ctx_.log_ref_test(i, j) = row[slot(tau + j)];
    }
  }

  StepResult step;
  step.time = t;
  BAGCPD_ASSIGN_OR_RETURN(
      step.score, ComputeScore(options_.score_type, ctx_, pi_ref_, pi_test_));

  if (options_.bootstrap.replicates > 0) {
    BAGCPD_ASSIGN_OR_RETURN(
        BootstrapInterval ci,
        BootstrapScoreInterval(options_.score_type, ctx_, pi_ref_, pi_test_,
                               options_.bootstrap, &rng_, pool_));
    step.ci_lo = ci.lo;
    step.ci_up = ci.up;
    // Eq. 20: compare with theta_up of inspection time t - tau'. The history
    // deque holds the last tau' upper endpoints, front = oldest = t - tau'.
    if (upper_history_.size() == options_.tau_prime) {
      step.xi = step.ci_lo - upper_history_.front();
      step.alarm = step.xi > 0.0;  // Eq. 18.
    }
    upper_history_.push_back(step.ci_up);
    if (upper_history_.size() > options_.tau_prime) upper_history_.pop_front();
  }
  return step;
}

Result<std::vector<StepResult>> BagStreamDetector::Run(const BagSequence& bags) {
  Reset();
  std::vector<StepResult> results;
  results.reserve(bags.size());
  for (const Bag& bag : bags) {
    BAGCPD_ASSIGN_OR_RETURN(std::optional<StepResult> step, Push(bag));
    if (step.has_value()) results.push_back(*step);
  }
  return results;
}

Result<std::vector<StepResult>> BagStreamDetector::Run(
    const FlatBagSequence& bags) {
  Reset();
  std::vector<StepResult> results;
  results.reserve(bags.size());
  for (const FlatBag& bag : bags) {
    BAGCPD_ASSIGN_OR_RETURN(std::optional<StepResult> step, Push(bag.view()));
    if (step.has_value()) results.push_back(*step);
  }
  return results;
}

std::vector<std::uint64_t> AlarmTimes(const std::vector<StepResult>& results) {
  std::vector<std::uint64_t> times;
  for (const StepResult& r : results) {
    if (r.alarm) times.push_back(r.time);
  }
  return times;
}

}  // namespace bagcpd
