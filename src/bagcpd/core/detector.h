// BagStreamDetector: the end-to-end online change-point detector over a
// stream of bags — the library's primary public API. Each pushed bag is
// quantized into a signature; once tau + tau' signatures are buffered the
// detector scores the inspection point t = (latest - tau' + 1), bootstraps its
// confidence interval, applies the adaptive alarm test of Eq. 20, and slides
// the window. EMDs are memoized across steps so each new bag costs only
// (tau + tau' - 1) transportation solves.

#ifndef BAGCPD_CORE_DETECTOR_H_
#define BAGCPD_CORE_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/macros.h"
#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/common/rng.h"
#include "bagcpd/core/bootstrap.h"
#include "bagcpd/core/scores.h"
#include "bagcpd/emd/approx/emd_solver.h"
#include "bagcpd/emd/distance_cache.h"
#include "bagcpd/emd/ground_distance.h"
#include "bagcpd/emd/transport_solver.h"
#include "bagcpd/signature/builder.h"
#include "bagcpd/signature/signature_set.h"

namespace bagcpd {

class ThreadPool;

/// \brief How the base (prior) weights gamma of the windows are chosen.
enum class WeightScheme {
  /// gamma_i = 1/tau (resp. 1/tau'); the paper's setting for all experiments.
  kUniform,
  /// Hyperbolic discounting toward the inspection point (paper Eq. 15).
  kDiscounted,
};

/// \brief Short lowercase name ("uniform" / "discounted").
const char* WeightSchemeName(WeightScheme scheme);

/// \brief Every weight scheme, in declaration order (api/ registry table).
const std::vector<WeightScheme>& AllWeightSchemes();

/// \brief Inverse of WeightSchemeName; rejects unknown names.
Result<WeightScheme> ParseWeightScheme(const std::string& name);

/// \brief Full configuration of the detector.
struct DetectorOptions {
  /// Reference window length tau (>= 2).
  std::size_t tau = 5;
  /// Test window length tau' (>= 2).
  std::size_t tau_prime = 5;
  ScoreType score_type = ScoreType::kSymmetrizedKl;
  WeightScheme weight_scheme = WeightScheme::kUniform;
  /// Bootstrap CI settings; set bootstrap.replicates <= 0 to skip CIs (the
  /// detector then reports scores only and never raises alarms).
  BootstrapOptions bootstrap;
  /// How bags are quantized into signatures.
  SignatureBuilderOptions signature;
  GroundDistance ground = GroundDistance::kEuclidean;
  /// Which solver evaluates EMD(P, Q) on the scoring path: the exact
  /// transportation solve (default, bit-identical to earlier releases) or an
  /// approximate solver trading bounded score error for per-pair speed
  /// (spec key `emd=exact|sinkhorn:eps|sliced:n`).
  EmdSolverOptions emd;
  InfoEstimatorOptions info;
  std::uint64_t seed = 0;
};

/// \brief Checks that `options` form a coherent detector configuration; this
/// is exactly the condition BagStreamDetector::Create succeeds under (and
/// what the legacy constructor surfaces through init_status()).
Status ValidateDetectorOptions(const DetectorOptions& options);

/// \brief Per-inspection-point output.
struct StepResult {
  /// Inspection time t (0-based index into the pushed stream). The result for
  /// t becomes available once bag t + tau' - 1 has been pushed.
  std::uint64_t time = 0;
  /// Change-point score (Eq. 16 or 17).
  double score = 0.0;
  /// Bootstrap CI endpoints theta_lo^(t), theta_up^(t); NaN when CIs are off.
  double ci_lo = std::numeric_limits<double>::quiet_NaN();
  double ci_up = std::numeric_limits<double>::quiet_NaN();
  /// Test statistic xi_t = theta_lo^(t) - theta_up^(t - tau') (Eq. 20); NaN
  /// until the interval tau' steps back exists.
  double xi = std::numeric_limits<double>::quiet_NaN();
  /// Eq. 18: xi_t > 0.
  bool alarm = false;
};

/// \brief Online detector over a stream of bags.
class BagStreamDetector {
 public:
  /// \brief Validating factory: fails with the exact ValidateDetectorOptions
  /// status on incoherent options, otherwise returns a ready-to-use detector
  /// (init_status() is OK by construction). This is the preferred entry
  /// point; see also api/spec.h for DetectorSpec::Create().
  static Result<std::unique_ptr<BagStreamDetector>> Create(
      const DetectorOptions& options);

  /// Legacy constructor kept as a migration shim: construction never fails
  /// hard, so callers must check `init_status()` before use. Prefer Create().
  BAGCPD_DEPRECATED("use BagStreamDetector::Create(options)")
  explicit BagStreamDetector(const DetectorOptions& options);

  // The EMD memo table is wired to this object's window storage, so a moved
  // detector would leave the memo reading the husk; Create() hands out a
  // unique_ptr instead.
  BagStreamDetector(BagStreamDetector&&) = delete;
  BagStreamDetector& operator=(BagStreamDetector&&) = delete;

  /// \brief OK iff the options were coherent.
  const Status& init_status() const { return init_status_; }

  /// \brief Feeds the bag observed at the next time index (zero-copy flat
  /// path; a FlatBag converts implicitly).
  ///
  /// Returns the StepResult for inspection time (pushed_count - tau') if the
  /// window is full after this push, std::nullopt while still warming up.
  Result<std::optional<StepResult>> Push(BagView bag);

  /// \brief Nested-bag convenience: validates and flattens once at this
  /// boundary, then runs the view path. Bitwise-identical results.
  Result<std::optional<StepResult>> Push(const Bag& bag);

  /// \brief Convenience: Reset(), push every bag, and collect all results.
  Result<std::vector<StepResult>> Run(const BagSequence& bags);

  /// \brief Flat-sequence counterpart of Run(); bitwise-identical results.
  Result<std::vector<StepResult>> Run(const FlatBagSequence& bags);

  /// \brief Clears all buffered state (signatures, cache, CI history).
  void Reset();

  /// \brief Number of bags pushed since the last Reset().
  std::uint64_t pushed_count() const { return next_index_; }

  /// \brief EMD cache statistics (diagnostics / benchmarks). Misses count
  /// transportation solves; hits count cache reads of prefilled values (the
  /// rolling score tables reuse log-distances without re-querying, so the
  /// serial path reads each pair exactly once).
  std::uint64_t emd_cache_hits() const { return cache_.hits(); }
  std::uint64_t emd_cache_misses() const { return cache_.misses(); }

  const DetectorOptions& options() const { return options_; }

  /// \brief Attaches a compute pool (non-owning; may be nullptr to detach).
  ///
  /// With a pool, each step prefills the missing window EMDs via ParallelFor
  /// and chunks the bootstrap replicate loop over the pool. Results are
  /// bitwise-identical to the serial path for any pool size: the EMD of a
  /// pair does not depend on which thread solves it, and bootstrap replicates
  /// draw from per-replicate forked RNG streams.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// \brief Attaches a buffer arena (non-owning; may be nullptr to detach).
  ///
  /// With an arena, the per-push signature build recycles its packed buffer
  /// and scratch through the pool instead of malloc. The arena must outlive
  /// the detector (StreamEngine owns one per shard and guarantees this).
  /// Results are bitwise-identical with or without an arena.
  void set_buffer_arena(BufferArena* arena) { arena_ = arena; }
  BufferArena* buffer_arena() const { return arena_; }

  /// \brief The detector-owned EMD solver (exact workspace + approx
  /// scratch). Exposed for diagnostics — allocation/solve counters — and for
  /// the per-stream byte-ceiling policy: set a ceiling here and Reset()
  /// releases oversized scratch (EmdSolver::ShrinkToCeiling).
  EmdSolver& emd_solver() { return solver_; }

  // -- Checkpointing (implemented in serialize/detector_serialize.cc) -----

  /// \brief Snapshots the complete detector state into a versioned,
  /// checksummed binary blob (serialize/checkpoint.h layout): the canonical
  /// options spec, the signature window, the rolling log-EMD table, the
  /// step/warm-up counters, the alarm history, and the RNG stream position.
  /// A detector restored from the blob produces bitwise-identical scores to
  /// this one on the same remaining stream. Call between pushes (the
  /// detector is always between pushes from the caller's perspective;
  /// StreamEngine quiesces the owning shard before exporting).
  Status ExportState(std::string* blob) const;

  /// \brief Restores a snapshot taken by ExportState into this detector,
  /// replacing all buffered state. The blob's options spec must match this
  /// detector's configuration exactly (Invalid otherwise — restoring into a
  /// differently-configured detector would silently change scores); a
  /// truncated or corrupt blob fails with IoError, an unsupported format
  /// version with NotImplemented, all without modifying the detector.
  /// Decode staging recycles through the attached buffer arena when set.
  Status ImportState(std::string_view blob);

  /// \brief Builds a detector configured from the blob's embedded options
  /// spec and restores the snapshot into it (the one-call restore used when
  /// no pre-configured detector exists, e.g. tools and cold restores).
  static Result<std::unique_ptr<BagStreamDetector>> CreateFromState(
      std::string_view blob);

  /// \brief Approximate resident bytes of the restorable state (window ring,
  /// rolling table, history) — the spill-budget accounting the engine's
  /// byte-budget LRU runs on. Tracks the checkpoint blob size closely but
  /// costs no serialization.
  std::size_t EstimatedStateBytes() const;

 private:
  Result<StepResult> ScoreInspectionPoint();
  Status PrefillWindowDistances();
  Status UpdateRollingTable();
  // Folds every pair (p, q), p < q, of window position q into the rolling
  // table: cached pairs are read back (counted hits — the pooled-prefill
  // case), the rest are solved in ONE EmdSolver::ComputeBatch call sharing
  // the right operand, then inserted (counted misses). Bitwise- and
  // counter-identical to the historical per-pair cache walk.
  Status FoldNewPairsForColumn(std::size_t q);
  SignatureView SignatureAt(std::uint64_t global_index) const;
  // The one place the cache's generator lambda is built (constructor and
  // Reset() used to each create their own copy); solves run on workspace_.
  PairwiseDistanceCache::ComputeFn MakeCacheComputeFn();
  // `emd.solve` fault point: advances the per-stream solved-pair ordinal by
  // `solved` and returns the injected error if any ordinal in the advanced
  // range fires. The pooled prefill's missing set equals the serial fold's
  // miss set exactly (the cache-counter invariant the tests pin), so the
  // per-push ordinal range — and therefore the fault outcome — is identical
  // for every pool size. One relaxed load when disarmed.
  Status AdvanceEmdFaultCounter(std::size_t solved);

  DetectorOptions options_;
  Status init_status_;
  SignatureBuilder builder_;
  Rng rng_;
  ThreadPool* pool_ = nullptr;
  BufferArena* arena_ = nullptr;
  // Reusable EMD solver (exact workspace or approximate, per options_.emd)
  // for the serial scoring path; the parallel prefill solves on
  // per-pool-thread solvers instead (identical values).
  EmdSolver solver_;
  PairwiseDistanceCache cache_;
  // Sliding window of the most recent tau + tau' signatures packed into one
  // shared ring buffer; view(0) is the oldest and has global index
  // next_index_ - window_.size(). Sliding is allocation-free in steady state.
  SignatureRing window_;
  std::uint64_t next_index_ = 0;
  // Rolling log-EMD table over the full window, W = tau + tau' slots square.
  // Window position p (0 = oldest) lives in physical slot
  // (table_base_ + p) % W; sliding just advances table_base_, and each step
  // writes one new row/column (the pairs of the newest signature) instead of
  // re-assembling every pair through hash lookups. ScoreInspectionPoint
  // copies the three ScoreContext blocks out of this table into ctx_, whose
  // matrices are allocated once and reused every step.
  std::vector<double> log_table_;
  std::size_t table_base_ = 0;
  bool table_primed_ = false;
  // Scratch for FoldNewPairsForColumn's batched solves, reserved once to the
  // window size so the steady-state serial path stays allocation-free.
  std::vector<SignatureView> batch_lefts_;
  std::vector<std::size_t> batch_left_pos_;
  std::vector<double> batch_emd_;
  // Solved-pair ordinal behind the `emd.solve` fault point; cleared by
  // Reset(), deliberately NOT serialized (a restored detector restarts its
  // drill ordinals — recovery metadata never affects scores).
  std::uint64_t fault_emd_count_ = 0;
  ScoreContext ctx_;
  // theta_up history for the xi test, keyed relative to inspection time:
  // upper_history_[k] is theta_up of inspection time (current_t - 1 - k).
  std::deque<double> upper_history_;
  std::vector<double> pi_ref_;
  std::vector<double> pi_test_;
};

/// \brief Extracts the times where `results` raised alarms.
std::vector<std::uint64_t> AlarmTimes(const std::vector<StepResult>& results);

}  // namespace bagcpd

#endif  // BAGCPD_CORE_DETECTOR_H_
