// Supervised per-dimension feature scaling — the "online feature selection"
// extension sketched in the paper's future work (Section 6): when segment
// labels ("change" / "no change" regimes) are available, learn a diagonal
// scaling that amplifies the dimensions that actually separate the regimes
// and damps irrelevant ones, then apply it to every bag before signatures are
// built.
//
// The importance of dimension j is its Fisher-style ratio
//   between-segment variance of per-bag means / mean within-bag variance,
// normalized so the scaling has unit mean. Dimensions with ratio below
// `prune_below` are dropped to (near) zero.

#ifndef BAGCPD_CORE_FEATURE_SELECTOR_H_
#define BAGCPD_CORE_FEATURE_SELECTOR_H_

#include <vector>

#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"

namespace bagcpd {

/// \brief Options for LearnFeatureScaling.
struct FeatureSelectorOptions {
  /// Ratios below this fraction of the maximum ratio are pruned to
  /// `pruned_scale`.
  double prune_below = 0.0;
  /// Scale assigned to pruned dimensions.
  double pruned_scale = 1e-3;
  /// Numerical floor on within variances.
  double epsilon = 1e-9;
};

/// \brief Learns a per-dimension scaling from labeled bags.
///
/// `segment_labels[t]` identifies the regime of bag t; at least two distinct
/// labels are required. Returns a vector of d multiplicative scales.
Result<std::vector<double>> LearnFeatureScaling(
    const BagSequence& bags, const std::vector<int>& segment_labels,
    const FeatureSelectorOptions& options = {});

/// \brief Applies a diagonal scaling to one bag.
Result<Bag> ApplyFeatureScaling(const Bag& bag,
                                const std::vector<double>& scale);

/// \brief Applies a diagonal scaling to every bag of a sequence.
Result<BagSequence> ApplyFeatureScaling(const BagSequence& bags,
                                        const std::vector<double>& scale);

}  // namespace bagcpd

#endif  // BAGCPD_CORE_FEATURE_SELECTOR_H_
