#include "bagcpd/core/segmentation.h"

namespace bagcpd {

Result<SegmentationResult> SegmentBagSequence(
    const BagSequence& bags, const SegmentationOptions& options) {
  if (options.detector.bootstrap.replicates <= 0) {
    return Status::Invalid(
        "segmentation needs bootstrap alarms; enable bootstrap.replicates");
  }
  if (options.min_segment_length == 0) {
    return Status::Invalid("min_segment_length must be >= 1");
  }
  const std::size_t window =
      options.detector.tau + options.detector.tau_prime;
  if (bags.size() < window) {
    return Status::Invalid("sequence shorter than one detector window (" +
                           std::to_string(window) + " bags)");
  }

  BAGCPD_ASSIGN_OR_RETURN(std::unique_ptr<BagStreamDetector> detector,
                          BagStreamDetector::Create(options.detector));
  SegmentationResult result;
  BAGCPD_ASSIGN_OR_RETURN(result.steps, detector->Run(bags));

  // Alarms -> boundaries, merging clusters of alarms (an abrupt change often
  // alarms on a couple of consecutive inspection points).
  std::size_t last_boundary = 0;
  for (const StepResult& step : result.steps) {
    if (!step.alarm) continue;
    const std::size_t t = static_cast<std::size_t>(step.time);
    if (result.boundaries.empty()) {
      if (t >= options.min_segment_length) {
        result.boundaries.push_back(t);
        last_boundary = t;
      }
      continue;
    }
    if (t >= last_boundary + options.min_segment_length) {
      result.boundaries.push_back(t);
      last_boundary = t;
    }
  }

  // Boundaries -> segments.
  std::size_t begin = 0;
  for (std::size_t boundary : result.boundaries) {
    result.segments.push_back(Segment{begin, boundary});
    begin = boundary;
  }
  result.segments.push_back(Segment{begin, bags.size()});
  return result;
}

}  // namespace bagcpd
