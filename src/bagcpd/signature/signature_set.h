// SignatureSet: structure-of-arrays storage for a batch of signatures — ONE
// shared row-major center buffer, one shared weight buffer, and an offset
// table. The batch distance-matrix analyses (PairwiseEmdMatrix /
// CrossDistanceMatrix, MDS embeddings, the weighted-set estimators) walk N
// signatures back to back through the cache instead of hopping across N
// independent heap blocks, and the whole batch is two allocations total.
//
// SignatureRing is the sliding-window sibling used by the detector: a fixed
// number of slots carved out of one shared buffer, allocation-free in steady
// state as signatures are pushed and the oldest retired.
//
// Both containers hand out SignatureView (signature/signature.h) — the same
// non-owning view every distance kernel consumes — so `std::vector<Signature>`
// call sites migrate incrementally (see the FromSignatures/ToSignatures
// shims) with bitwise-identical results.

#ifndef BAGCPD_SIGNATURE_SIGNATURE_SET_H_
#define BAGCPD_SIGNATURE_SIGNATURE_SET_H_

#include <cstddef>
#include <vector>

#include "bagcpd/common/result.h"
#include "bagcpd/common/status.h"
#include "bagcpd/signature/signature.h"

namespace bagcpd {

/// \brief SoA container of signatures sharing one center buffer and one
/// weight buffer. All members share the dimension d; per-signature cluster
/// counts K_i may differ.
class SignatureSet {
 public:
  SignatureSet() = default;

  SignatureSet(const SignatureSet&) = default;
  SignatureSet& operator=(const SignatureSet&) = default;
  // Moves must leave the source in the valid empty state (offsets_ = {0}),
  // not with a moved-out offset table that would underflow size().
  SignatureSet(SignatureSet&& other) noexcept { *this = std::move(other); }
  SignatureSet& operator=(SignatureSet&& other) noexcept {
    if (this != &other) {
      centers_ = std::move(other.centers_);
      weights_ = std::move(other.weights_);
      offsets_ = std::move(other.offsets_);
      dim_ = other.dim_;
      other.offsets_.assign(1, 0);
      other.centers_.clear();
      other.weights_.clear();
      other.dim_ = 0;
    }
    return *this;
  }

  /// \brief Number of signatures.
  std::size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// \brief Dimension d shared by every member (0 while empty).
  std::size_t dim() const { return dim_; }

  /// \brief Total number of centers across all members.
  std::size_t total_centers() const { return offsets_.back(); }

  /// \brief Zero-copy view of the i-th signature.
  SignatureView view(std::size_t i) const {
    const std::size_t begin = offsets_[i];
    const std::size_t k = offsets_[i + 1] - begin;
    return SignatureView(centers_.data() + begin * dim_,
                         weights_.data() + begin, k, dim_);
  }
  SignatureView operator[](std::size_t i) const { return view(i); }

  /// \brief Appends a copy of `sig` into the shared buffers. Rejects empty
  /// signatures and dimension mismatches (the SoA layout is rectangular in
  /// d by construction).
  Status Append(SignatureView sig);

  /// \brief Appends without per-member validation: empty members and
  /// non-positive weights are stored as-is for a later Validate() pass to
  /// report recoverably (WeightedSignatureSet relies on this to preserve
  /// Status-based error handling). Only a dimension mismatch — which the
  /// shared-buffer layout cannot represent — still fails.
  Status AppendUnchecked(SignatureView sig);

  /// \brief Pre-sizes the shared buffers for `signatures` members totalling
  /// about `centers_hint` centers of dimension `dim`.
  void Reserve(std::size_t signatures, std::size_t centers_hint,
               std::size_t dim);

  /// \brief Drops all members (buffers keep their capacity).
  void Clear();

  /// \brief Migration shim: gathers an AoS vector into the SoA layout.
  /// Fails if any member is invalid or the dimensions disagree.
  static Result<SignatureSet> FromSignatures(
      const std::vector<Signature>& signatures);

  /// \brief Migration shim: scatters back into owning packed signatures.
  std::vector<Signature> ToSignatures() const;

  /// \brief The shared buffers (diagnostics / tests).
  const std::vector<double>& center_data() const { return centers_; }
  const std::vector<double>& weight_data() const { return weights_; }

 private:
  std::vector<double> centers_;  // total_centers() x dim_, row-major.
  std::vector<double> weights_;  // total_centers() weights.
  // offsets_[i] is the first center row of signature i; size() + 1 entries.
  std::vector<std::size_t> offsets_ = {0};
  std::size_t dim_ = 0;
};

/// \brief Fixed-capacity sliding window of signatures over ONE shared
/// buffer: the detector's window ring. Each slot holds a packed (K*d + K)
/// signature image; pushing copies a few dozen doubles into the next slot
/// and popping just advances the head, so steady-state sliding performs no
/// allocation at all. Slots grow (a rare re-layout) only when a signature
/// larger than any seen before arrives.
class SignatureRing {
 public:
  SignatureRing() = default;
  /// \brief Ring with room for `capacity` signatures.
  explicit SignatureRing(std::size_t capacity) { Reset(capacity); }

  SignatureRing(const SignatureRing&) = default;
  SignatureRing& operator=(const SignatureRing&) = default;
  // Moves reset the source to the empty default state so its size/capacity
  // counters never dangle over moved-out storage.
  SignatureRing(SignatureRing&& other) noexcept { *this = std::move(other); }
  SignatureRing& operator=(SignatureRing&& other) noexcept {
    if (this != &other) {
      data_ = std::move(other.data_);
      ks_ = std::move(other.ks_);
      stride_ = other.stride_;
      dim_ = other.dim_;
      capacity_ = other.capacity_;
      head_ = other.head_;
      count_ = other.count_;
      borrowed_max_k_ = other.borrowed_max_k_;
      other.data_.clear();
      other.ks_.clear();
      other.stride_ = other.dim_ = other.capacity_ = other.head_ =
          other.count_ = other.borrowed_max_k_ = 0;
    }
    return *this;
  }

  /// \brief Clears the ring and re-arms it with `capacity` slots.
  void Reset(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == capacity_; }
  std::size_t dim() const { return dim_; }

  /// \brief Copies `sig` into the next slot. The ring must not be full; the
  /// first push fixes the dimension and later mismatches abort.
  void PushBack(SignatureView sig);

  /// \brief Hands out the next slot for direct in-place assembly (at least
  /// max_k*(dim+1) doubles, the packed signature layout), so a producer that
  /// knows its cluster-count bound — a SignatureAssembler in borrowed-buffer
  /// mode — writes the signature straight into ring storage with no
  /// intermediate copy. The ring must not be full; the usual dimension rules
  /// apply. The slot is not live until CommitBorrowed; exactly one of
  /// CommitBorrowed / CancelBorrow must follow before any other mutation.
  double* BorrowSlot(std::size_t max_k, std::size_t dim);

  /// \brief Publishes the borrowed slot as the newest signature with `k`
  /// centers (1 <= k <= the borrowed max_k, packed at the front of the slot).
  void CommitBorrowed(std::size_t k);

  /// \brief Abandons an outstanding borrow (e.g. the quantizer failed); the
  /// ring is unchanged.
  void CancelBorrow();

  /// \brief Retires the oldest signature (the slot is reused in place).
  void PopFront();

  /// \brief View of the i-th oldest signature (0 = oldest).
  SignatureView view(std::size_t i) const;
  SignatureView operator[](std::size_t i) const { return view(i); }

  /// \brief Resident heap footprint of the ring's buffers, in bytes (the
  /// checkpoint subsystem's spill-budget accounting).
  std::size_t memory_bytes() const {
    return data_.capacity() * sizeof(double) +
           ks_.capacity() * sizeof(std::size_t);
  }

 private:
  std::size_t SlotOf(std::size_t i) const {
    return (head_ + i) % capacity_;
  }

  // Fixes/checks the dimension, grows the stride to fit k_cap*(dim+1) if
  // needed, and returns the next slot's base (shared by PushBack/BorrowSlot).
  double* EnsureSlot(std::size_t k_cap, std::size_t dim);

  std::vector<double> data_;     // capacity_ * stride_ doubles.
  std::vector<std::size_t> ks_;  // Per-slot cluster count.
  std::size_t stride_ = 0;       // Doubles per slot, >= max K*(d+1) seen.
  std::size_t dim_ = 0;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t borrowed_max_k_ = 0;  // Nonzero while a borrow is outstanding.
};

}  // namespace bagcpd

#endif  // BAGCPD_SIGNATURE_SIGNATURE_SET_H_
