#include "bagcpd/signature/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bagcpd/common/check.h"
#include "bagcpd/common/rng.h"

namespace bagcpd {

namespace {

// Flat row-major (k x d) center buffer used by all internal stages; rows are
// appended during seeding and rewritten in place during Lloyd updates.
class FlatCenters {
 public:
  FlatCenters(std::size_t k, std::size_t d, BufferArena* arena) : dim_(d) {
    if (arena != nullptr) data_ = arena->Acquire(k * d);
    data_.reserve(k * d);
  }

  std::size_t count() const { return data_.size() / dim_; }
  PointView row(std::size_t c) const {
    return PointView(data_.data() + c * dim_, dim_);
  }
  PointView back() const { return row(count() - 1); }
  void Append(PointView x) {
    data_.insert(data_.end(), x.begin(), x.end());
  }
  std::vector<double>&& TakeFlat() { return std::move(data_); }

 private:
  std::vector<double> data_;
  std::size_t dim_;
};

// k-means++ seeding (Arthur & Vassilvitskii 2007): iteratively picks centers
// with probability proportional to the squared distance to the closest
// already-chosen center.
FlatCenters SeedPlusPlus(BagView bag, std::size_t k, Rng* rng,
                         BufferArena* arena) {
  FlatCenters centers(k, bag.dim(), arena);
  centers.Append(bag[static_cast<std::size_t>(
      rng->UniformInt(0, static_cast<int>(bag.size()) - 1))]);

  PooledBuffer closest_buf = PooledBuffer::AcquireFrom(arena, bag.size());
  std::vector<double>& closest_sq = closest_buf.vec();
  closest_sq.assign(bag.size(), std::numeric_limits<double>::infinity());
  while (centers.count() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < bag.size(); ++i) {
      const double d2 = SquaredDistance(bag[i], centers.back());
      closest_sq[i] = std::min(closest_sq[i], d2);
      total += closest_sq[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centers; duplicate one.
      centers.Append(bag[static_cast<std::size_t>(
          rng->UniformInt(0, static_cast<int>(bag.size()) - 1))]);
      continue;
    }
    double u = rng->Uniform() * total;
    std::size_t chosen = bag.size() - 1;
    for (std::size_t i = 0; i < bag.size(); ++i) {
      u -= closest_sq[i];
      if (u <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.Append(bag[chosen]);
  }
  return centers;
}

std::size_t NearestCenter(PointView x, const std::vector<double>& centers,
                          std::size_t k, std::size_t d) {
  std::size_t best = 0;
  double best_d2 = SquaredDistance(x, PointView(centers.data(), d));
  for (std::size_t c = 1; c < k; ++c) {
    const double d2 = SquaredDistance(x, PointView(centers.data() + c * d, d));
    if (d2 < best_d2) {
      best_d2 = d2;
      best = c;
    }
  }
  return best;
}

// Core Lloyd run shared by both entry points; when `sink` is non-null the
// surviving clusters stream into it (borrowed-slot assembly) instead of the
// result signature. Identical arithmetic either way.
Result<KMeansResult> QuantizeImpl(BagView bag, const KMeansOptions& options,
                                  BufferArena* arena,
                                  SignatureAssembler* sink) {
  BAGCPD_RETURN_NOT_OK(ValidateBagView(bag));
  if (options.k == 0) return Status::Invalid("k must be >= 1");

  const std::size_t n = bag.size();
  const std::size_t d = bag.dim();
  const std::size_t k = std::min(options.k, n);
  Rng rng(options.seed);

  // The Lloyd loop double-buffers between `centers` and `update_buf`, so the
  // iterations allocate nothing; both scratch buffers recycle through the
  // arena when one is attached.
  PooledBuffer centers_buf(SeedPlusPlus(bag, k, &rng, arena).TakeFlat(),
                           arena);
  std::vector<double>& centers = centers_buf.vec();
  PooledBuffer update_buf = PooledBuffer::AcquireFrom(arena, k * d);
  std::vector<std::size_t> assignment(n, 0);
  std::vector<std::size_t> counts(k, 0);

  KMeansResult out;
  for (out.iterations = 0; out.iterations < options.max_iterations;
       ++out.iterations) {
    // Assignment step.
    for (std::size_t i = 0; i < n; ++i) {
      assignment[i] = NearestCenter(bag[i], centers, k, d);
    }
    // Update step.
    std::vector<double>& new_centers = update_buf.vec();
    new_centers.assign(k * d, 0.0);
    counts.assign(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      counts[assignment[i]]++;
      const double* x = bag[i].data();
      double* acc = new_centers.data() + assignment[i] * d;
      for (std::size_t j = 0; j < d; ++j) acc[j] += x[j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Reseed an empty cluster at the point farthest from its own center.
        std::size_t farthest = 0;
        double far_d2 = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d2 = SquaredDistance(
              bag[i], PointView(centers.data() + assignment[i] * d, d));
          if (d2 > far_d2) {
            far_d2 = d2;
            farthest = i;
          }
        }
        std::copy(bag[farthest].begin(), bag[farthest].end(),
                  new_centers.begin() + c * d);
        counts[c] = 1;  // Will be fixed by the next assignment pass.
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      double* row = new_centers.data() + c * d;
      for (std::size_t j = 0; j < d; ++j) row[j] *= inv;
    }
    // Convergence check.
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      movement += SquaredDistance(PointView(centers.data() + c * d, d),
                                  PointView(new_centers.data() + c * d, d));
    }
    std::swap(centers, new_centers);
    if (movement <= options.tolerance) {
      ++out.iterations;
      break;
    }
  }

  // Final assignment + signature.
  std::vector<double> weights(k, 0.0);
  out.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    assignment[i] = NearestCenter(bag[i], centers, k, d);
    weights[assignment[i]] += 1.0;
    out.inertia += SquaredDistance(
        bag[i], PointView(centers.data() + assignment[i] * d, d));
  }

  // Drop empty clusters (can remain after the final assignment), compacting
  // the surviving rows into the signature's packed buffer (one allocation,
  // no per-add weight shifting) — or straight into the caller's sink.
  if (sink != nullptr) {
    for (std::size_t c = 0; c < k; ++c) {
      if (weights[c] > 0.0) {
        sink->Add(PointView(centers.data() + c * d, d), weights[c]);
      }
    }
  } else {
    SignatureAssembler assembler(k, d, arena);
    for (std::size_t c = 0; c < k; ++c) {
      if (weights[c] > 0.0) {
        assembler.Add(PointView(centers.data() + c * d, d), weights[c]);
      }
    }
    out.signature = assembler.Finish();
  }
  // Remap assignments to the compacted cluster indices.
  std::vector<std::size_t> remap(k, 0);
  for (std::size_t c = 0, next = 0; c < k; ++c) {
    if (weights[c] > 0.0) remap[c] = next++;
  }
  for (std::size_t i = 0; i < n; ++i) assignment[i] = remap[assignment[i]];

  out.assignment = std::move(assignment);
  if (sink == nullptr) BAGCPD_RETURN_NOT_OK(out.signature.Validate());
  return out;
}

}  // namespace

Result<KMeansResult> KMeansQuantize(BagView bag, const KMeansOptions& options,
                                    BufferArena* arena) {
  return QuantizeImpl(bag, options, arena, nullptr);
}

Status KMeansQuantizeInto(BagView bag, const KMeansOptions& options,
                          BufferArena* arena, SignatureAssembler* sink) {
  return QuantizeImpl(bag, options, arena, sink).status();
}

Result<KMeansResult> KMeansQuantize(const Bag& bag,
                                    const KMeansOptions& options,
                                    BufferArena* arena) {
  BAGCPD_ASSIGN_OR_RETURN(FlatBag flat, FlatBag::FromBag(bag, arena));
  return KMeansQuantize(flat.view(), options, arena);
}

}  // namespace bagcpd
