#include "bagcpd/signature/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bagcpd/common/check.h"
#include "bagcpd/common/rng.h"

namespace bagcpd {

namespace {

// k-means++ seeding (Arthur & Vassilvitskii 2007): iteratively picks centers
// with probability proportional to the squared distance to the closest
// already-chosen center.
std::vector<Point> SeedPlusPlus(const Bag& bag, std::size_t k, Rng* rng) {
  std::vector<Point> centers;
  centers.reserve(k);
  centers.push_back(bag[static_cast<std::size_t>(
      rng->UniformInt(0, static_cast<int>(bag.size()) - 1))]);

  std::vector<double> closest_sq(bag.size(),
                                 std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < bag.size(); ++i) {
      const double d2 = SquaredDistance(bag[i], centers.back());
      closest_sq[i] = std::min(closest_sq[i], d2);
      total += closest_sq[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centers; duplicate one.
      centers.push_back(bag[static_cast<std::size_t>(
          rng->UniformInt(0, static_cast<int>(bag.size()) - 1))]);
      continue;
    }
    double u = rng->Uniform() * total;
    std::size_t chosen = bag.size() - 1;
    for (std::size_t i = 0; i < bag.size(); ++i) {
      u -= closest_sq[i];
      if (u <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(bag[chosen]);
  }
  return centers;
}

std::size_t NearestCenter(const Point& x, const std::vector<Point>& centers) {
  std::size_t best = 0;
  double best_d2 = SquaredDistance(x, centers[0]);
  for (std::size_t k = 1; k < centers.size(); ++k) {
    const double d2 = SquaredDistance(x, centers[k]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = k;
    }
  }
  return best;
}

}  // namespace

Result<KMeansResult> KMeansQuantize(const Bag& bag,
                                    const KMeansOptions& options) {
  BAGCPD_RETURN_NOT_OK(ValidateBag(bag));
  if (options.k == 0) return Status::Invalid("k must be >= 1");

  const std::size_t n = bag.size();
  const std::size_t d = bag.front().size();
  const std::size_t k = std::min(options.k, n);
  Rng rng(options.seed);

  std::vector<Point> centers = SeedPlusPlus(bag, k, &rng);
  std::vector<std::size_t> assignment(n, 0);

  KMeansResult out;
  for (out.iterations = 0; out.iterations < options.max_iterations;
       ++out.iterations) {
    // Assignment step.
    for (std::size_t i = 0; i < n; ++i) {
      assignment[i] = NearestCenter(bag[i], centers);
    }
    // Update step.
    std::vector<Point> new_centers(k, Point(d, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      counts[assignment[i]]++;
      for (std::size_t j = 0; j < d; ++j) {
        new_centers[assignment[i]][j] += bag[i][j];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Reseed an empty cluster at the point farthest from its own center.
        std::size_t farthest = 0;
        double far_d2 = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d2 = SquaredDistance(bag[i], centers[assignment[i]]);
          if (d2 > far_d2) {
            far_d2 = d2;
            farthest = i;
          }
        }
        new_centers[c] = bag[farthest];
        counts[c] = 1;  // Will be fixed by the next assignment pass.
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t j = 0; j < d; ++j) new_centers[c][j] *= inv;
    }
    // Convergence check.
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      movement += SquaredDistance(centers[c], new_centers[c]);
    }
    centers = std::move(new_centers);
    if (movement <= options.tolerance) {
      ++out.iterations;
      break;
    }
  }

  // Final assignment + signature.
  std::vector<double> weights(k, 0.0);
  out.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    assignment[i] = NearestCenter(bag[i], centers);
    weights[assignment[i]] += 1.0;
    out.inertia += SquaredDistance(bag[i], centers[assignment[i]]);
  }

  // Drop empty clusters (can remain after the final assignment).
  Signature sig;
  for (std::size_t c = 0; c < k; ++c) {
    if (weights[c] > 0.0) {
      sig.centers.push_back(std::move(centers[c]));
      sig.weights.push_back(weights[c]);
    }
  }
  // Remap assignments to the compacted cluster indices.
  std::vector<std::size_t> remap(k, 0);
  for (std::size_t c = 0, next = 0; c < k; ++c) {
    if (weights[c] > 0.0) remap[c] = next++;
  }
  for (std::size_t i = 0; i < n; ++i) assignment[i] = remap[assignment[i]];

  out.signature = std::move(sig);
  out.assignment = std::move(assignment);
  BAGCPD_RETURN_NOT_OK(out.signature.Validate());
  return out;
}

}  // namespace bagcpd
