#include "bagcpd/signature/kmedoids.h"

#include <algorithm>
#include <limits>

#include "bagcpd/common/check.h"
#include "bagcpd/common/rng.h"

namespace bagcpd {

namespace {

double DeviationToNearest(BagView bag,
                          const std::vector<std::size_t>& medoids,
                          std::vector<std::size_t>* assignment) {
  double total = 0.0;
  for (std::size_t i = 0; i < bag.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_m = 0;
    for (std::size_t m = 0; m < medoids.size(); ++m) {
      const double dist = EuclideanDistance(bag[i], bag[medoids[m]]);
      if (dist < best) {
        best = dist;
        best_m = m;
      }
    }
    if (assignment) (*assignment)[i] = best_m;
    total += best;
  }
  return total;
}

// Core BUILD/SWAP run shared by both entry points; a non-null `sink`
// receives the surviving (medoid, weight) pairs directly (borrowed-slot
// assembly) instead of the result signature. Identical arithmetic either way.
Result<KMedoidsResult> QuantizeImpl(BagView bag,
                                    const KMedoidsOptions& options,
                                    BufferArena* arena,
                                    SignatureAssembler* sink) {
  BAGCPD_RETURN_NOT_OK(ValidateBagView(bag));
  if (options.k == 0) return Status::Invalid("k must be >= 1");

  const std::size_t n = bag.size();
  const std::size_t k = std::min(options.k, n);
  Rng rng(options.seed);

  // BUILD: greedy distance-weighted seeding (k-means++-style on distances).
  std::vector<std::size_t> medoids;
  medoids.reserve(k);
  medoids.push_back(
      static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(n) - 1)));
  PooledBuffer closest_buf = PooledBuffer::AcquireFrom(arena, n);
  std::vector<double>& closest = closest_buf.vec();
  closest.assign(n, std::numeric_limits<double>::infinity());
  while (medoids.size() < k) {
    for (std::size_t i = 0; i < n; ++i) {
      closest[i] =
          std::min(closest[i], EuclideanDistance(bag[i], bag[medoids.back()]));
    }
    double total = 0.0;
    for (double c : closest) total += c;
    if (total <= 0.0) {
      medoids.push_back(
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(n) - 1)));
      continue;
    }
    double u = rng.Uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      u -= closest[i];
      if (u <= 0.0) {
        chosen = i;
        break;
      }
    }
    medoids.push_back(chosen);
  }

  std::vector<std::size_t> assignment(n, 0);
  double best_total = DeviationToNearest(bag, medoids, &assignment);

  // SWAP passes over sampled candidates.
  for (int pass = 0; pass < options.max_iterations; ++pass) {
    bool improved = false;
    const std::size_t sample =
        std::min(options.swap_candidate_sample, n);
    std::vector<std::size_t> perm = rng.Permutation(n);
    for (std::size_t m = 0; m < medoids.size(); ++m) {
      for (std::size_t s = 0; s < sample; ++s) {
        const std::size_t candidate = perm[s];
        if (std::find(medoids.begin(), medoids.end(), candidate) !=
            medoids.end()) {
          continue;
        }
        const std::size_t saved = medoids[m];
        medoids[m] = candidate;
        const double total = DeviationToNearest(bag, medoids, nullptr);
        if (total + 1e-12 < best_total) {
          best_total = total;
          improved = true;
        } else {
          medoids[m] = saved;
        }
      }
    }
    if (!improved) break;
  }

  best_total = DeviationToNearest(bag, medoids, &assignment);

  KMedoidsResult out;
  out.total_deviation = best_total;
  std::vector<double> weights(medoids.size(), 0.0);
  for (std::size_t i = 0; i < n; ++i) weights[assignment[i]] += 1.0;
  if (sink != nullptr) {
    for (std::size_t m = 0; m < medoids.size(); ++m) {
      if (weights[m] > 0.0) {
        sink->Add(bag[medoids[m]], weights[m]);
        out.medoid_indices.push_back(medoids[m]);
      }
    }
    return out;
  }
  SignatureAssembler assembler(medoids.size(), bag.dim(), arena);
  for (std::size_t m = 0; m < medoids.size(); ++m) {
    if (weights[m] > 0.0) {
      assembler.Add(bag[medoids[m]], weights[m]);
      out.medoid_indices.push_back(medoids[m]);
    }
  }
  out.signature = assembler.Finish();
  BAGCPD_RETURN_NOT_OK(out.signature.Validate());
  return out;
}

}  // namespace

Result<KMedoidsResult> KMedoidsQuantize(BagView bag,
                                        const KMedoidsOptions& options,
                                        BufferArena* arena) {
  return QuantizeImpl(bag, options, arena, nullptr);
}

Status KMedoidsQuantizeInto(BagView bag, const KMedoidsOptions& options,
                            BufferArena* arena, SignatureAssembler* sink) {
  return QuantizeImpl(bag, options, arena, sink).status();
}

Result<KMedoidsResult> KMedoidsQuantize(const Bag& bag,
                                        const KMedoidsOptions& options,
                                        BufferArena* arena) {
  BAGCPD_ASSIGN_OR_RETURN(FlatBag flat, FlatBag::FromBag(bag, arena));
  return KMedoidsQuantize(flat.view(), options, arena);
}

}  // namespace bagcpd
