#include "bagcpd/signature/lvq.h"

#include <algorithm>
#include <limits>

#include "bagcpd/common/check.h"
#include "bagcpd/common/rng.h"

namespace bagcpd {

Result<Signature> LvqQuantize(const Bag& bag, const LvqOptions& options) {
  BAGCPD_RETURN_NOT_OK(ValidateBag(bag));
  if (options.k == 0) return Status::Invalid("k must be >= 1");
  if (options.epochs <= 0) return Status::Invalid("epochs must be >= 1");

  const std::size_t n = bag.size();
  const std::size_t k = std::min(options.k, n);
  Rng rng(options.seed);

  // Initialize prototypes at k distinct random bag points.
  std::vector<std::size_t> perm = rng.Permutation(n);
  std::vector<Point> prototypes(k);
  for (std::size_t m = 0; m < k; ++m) prototypes[m] = bag[perm[m]];

  const long total_updates = static_cast<long>(options.epochs) * n;
  long update = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<std::size_t> order = rng.Permutation(n);
    for (std::size_t idx : order) {
      // Find the winner.
      std::size_t winner = 0;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t m = 0; m < k; ++m) {
        const double d2 = SquaredDistance(bag[idx], prototypes[m]);
        if (d2 < best) {
          best = d2;
          winner = m;
        }
      }
      // Move the winner toward the sample.
      const double rate =
          options.initial_learning_rate *
          (1.0 - static_cast<double>(update) / static_cast<double>(total_updates));
      for (std::size_t j = 0; j < prototypes[winner].size(); ++j) {
        prototypes[winner][j] += rate * (bag[idx][j] - prototypes[winner][j]);
      }
      ++update;
    }
  }

  // Final hard assignment defines the weights.
  std::vector<double> weights(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t winner = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t m = 0; m < k; ++m) {
      const double d2 = SquaredDistance(bag[i], prototypes[m]);
      if (d2 < best) {
        best = d2;
        winner = m;
      }
    }
    weights[winner] += 1.0;
  }

  Signature sig;
  for (std::size_t m = 0; m < k; ++m) {
    if (weights[m] > 0.0) {
      sig.centers.push_back(std::move(prototypes[m]));
      sig.weights.push_back(weights[m]);
    }
  }
  BAGCPD_RETURN_NOT_OK(sig.Validate());
  return sig;
}

}  // namespace bagcpd
