#include "bagcpd/signature/lvq.h"

#include <algorithm>
#include <limits>

#include "bagcpd/common/check.h"
#include "bagcpd/common/rng.h"

namespace bagcpd {

namespace {

// Core competitive-learning run shared by both entry points; a non-null
// `sink` receives the surviving (prototype, weight) pairs directly
// (borrowed-slot assembly). Identical arithmetic either way.
Result<Signature> QuantizeImpl(BagView bag, const LvqOptions& options,
                               BufferArena* arena, SignatureAssembler* sink) {
  BAGCPD_RETURN_NOT_OK(ValidateBagView(bag));
  if (options.k == 0) return Status::Invalid("k must be >= 1");
  if (options.epochs <= 0) return Status::Invalid("epochs must be >= 1");

  const std::size_t n = bag.size();
  const std::size_t d = bag.dim();
  const std::size_t k = std::min(options.k, n);
  Rng rng(options.seed);

  // Initialize prototypes at k distinct random bag points (flat k x d buffer).
  std::vector<std::size_t> perm = rng.Permutation(n);
  PooledBuffer prototype_buf = PooledBuffer::AcquireFrom(arena, k * d);
  std::vector<double>& prototypes = prototype_buf.vec();
  prototypes.assign(k * d, 0.0);
  for (std::size_t m = 0; m < k; ++m) {
    const PointView x = bag[perm[m]];
    std::copy(x.begin(), x.end(), prototypes.begin() + m * d);
  }

  const long total_updates = static_cast<long>(options.epochs) * n;
  long update = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<std::size_t> order = rng.Permutation(n);
    for (std::size_t idx : order) {
      // Find the winner.
      std::size_t winner = 0;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t m = 0; m < k; ++m) {
        const double d2 =
            SquaredDistance(bag[idx], PointView(prototypes.data() + m * d, d));
        if (d2 < best) {
          best = d2;
          winner = m;
        }
      }
      // Move the winner toward the sample.
      const double rate =
          options.initial_learning_rate *
          (1.0 - static_cast<double>(update) / static_cast<double>(total_updates));
      const double* x = bag[idx].data();
      double* proto = prototypes.data() + winner * d;
      for (std::size_t j = 0; j < d; ++j) {
        proto[j] += rate * (x[j] - proto[j]);
      }
      ++update;
    }
  }

  // Final hard assignment defines the weights.
  std::vector<double> weights(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t winner = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t m = 0; m < k; ++m) {
      const double d2 =
          SquaredDistance(bag[i], PointView(prototypes.data() + m * d, d));
      if (d2 < best) {
        best = d2;
        winner = m;
      }
    }
    weights[winner] += 1.0;
  }

  if (sink != nullptr) {
    for (std::size_t m = 0; m < k; ++m) {
      if (weights[m] > 0.0) {
        sink->Add(PointView(prototypes.data() + m * d, d), weights[m]);
      }
    }
    return Signature();
  }
  SignatureAssembler assembler(k, d, arena);
  for (std::size_t m = 0; m < k; ++m) {
    if (weights[m] > 0.0) {
      assembler.Add(PointView(prototypes.data() + m * d, d), weights[m]);
    }
  }
  Signature sig = assembler.Finish();
  BAGCPD_RETURN_NOT_OK(sig.Validate());
  return sig;
}

}  // namespace

Result<Signature> LvqQuantize(BagView bag, const LvqOptions& options,
                              BufferArena* arena) {
  return QuantizeImpl(bag, options, arena, nullptr);
}

Status LvqQuantizeInto(BagView bag, const LvqOptions& options,
                       BufferArena* arena, SignatureAssembler* sink) {
  return QuantizeImpl(bag, options, arena, sink).status();
}

Result<Signature> LvqQuantize(const Bag& bag, const LvqOptions& options,
                              BufferArena* arena) {
  BAGCPD_ASSIGN_OR_RETURN(FlatBag flat, FlatBag::FromBag(bag, arena));
  return LvqQuantize(flat.view(), options, arena);
}

}  // namespace bagcpd
