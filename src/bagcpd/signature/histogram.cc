#include "bagcpd/signature/histogram.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "bagcpd/common/check.h"

namespace bagcpd {

Result<Signature> HistogramQuantize(BagView bag,
                                    const HistogramOptions& options,
                                    BufferArena* arena) {
  BAGCPD_RETURN_NOT_OK(ValidateBagView(bag));
  if (!(options.bin_width > 0.0)) {
    return Status::Invalid("bin_width must be > 0");
  }

  const std::size_t d = bag.dim();

  struct BinStats {
    double count = 0.0;
    Point sum;
  };
  // Multi-index of the bin -> stats. std::map keeps deterministic ordering.
  std::map<std::vector<std::int64_t>, BinStats> bins;

  std::vector<std::int64_t> key(d);
  for (const PointView x : bag) {
    for (std::size_t j = 0; j < d; ++j) {
      key[j] = static_cast<std::int64_t>(
          std::floor((x[j] - options.origin) / options.bin_width));
    }
    BinStats& stats = bins[key];
    if (stats.sum.empty()) stats.sum.assign(d, 0.0);
    stats.count += 1.0;
    for (std::size_t j = 0; j < d; ++j) stats.sum[j] += x[j];
  }

  SignatureAssembler assembler(bins.size(), d, arena);
  Point center(d);
  for (const auto& [index, stats] : bins) {
    if (options.use_bin_centers) {
      for (std::size_t j = 0; j < d; ++j) {
        center[j] = options.origin +
                    (static_cast<double>(index[j]) + 0.5) * options.bin_width;
      }
    } else {
      for (std::size_t j = 0; j < d; ++j) center[j] = stats.sum[j] / stats.count;
    }
    assembler.Add(center, stats.count);
  }
  Signature sig = assembler.Finish();
  BAGCPD_RETURN_NOT_OK(sig.Validate());
  return sig;
}

Result<Signature> HistogramQuantize(const Bag& bag,
                                    const HistogramOptions& options,
                                    BufferArena* arena) {
  BAGCPD_ASSIGN_OR_RETURN(FlatBag flat, FlatBag::FromBag(bag, arena));
  return HistogramQuantize(flat.view(), options, arena);
}

}  // namespace bagcpd
