// Unsupervised learning-vector-quantization (competitive learning / online
// k-means), the third quantization option named in paper Section 3.1
// (Kohonen, "Learning vector quantization"). Processes the bag in one or more
// online passes, moving the winning prototype toward each sample with a
// decaying learning rate.

#ifndef BAGCPD_SIGNATURE_LVQ_H_
#define BAGCPD_SIGNATURE_LVQ_H_

#include <cstdint>

#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/signature/signature.h"

namespace bagcpd {

/// \brief Configuration for LvqQuantize.
struct LvqOptions {
  /// Number of prototypes; clamped to the bag size.
  std::size_t k = 8;
  /// Number of online passes over the (shuffled) bag.
  int epochs = 5;
  /// Initial learning rate; decays linearly to ~0 over all updates.
  double initial_learning_rate = 0.3;
  std::uint64_t seed = 0;
};

/// \brief Quantizes `bag` with competitive learning and returns prototypes as
/// centers with final assignment counts as weights.
Result<Signature> LvqQuantize(BagView bag, const LvqOptions& options,
                              BufferArena* arena = nullptr);

/// \brief Same quantization, streaming the surviving (prototype, weight)
/// pairs into `sink` (sized for at least min(options.k, bag.size()) centers,
/// typically borrowed over a SignatureRing slot) instead of materializing a
/// Signature; the pairs are bitwise-identical to LvqQuantize's.
Status LvqQuantizeInto(BagView bag, const LvqOptions& options,
                       BufferArena* arena, SignatureAssembler* sink);

/// \brief Nested-bag convenience: validates and flattens once, then runs the
/// view path. Output is bitwise-identical to the flat entry point.
Result<Signature> LvqQuantize(const Bag& bag, const LvqOptions& options,
                              BufferArena* arena = nullptr);

}  // namespace bagcpd

#endif  // BAGCPD_SIGNATURE_LVQ_H_
