#include "bagcpd/signature/signature.h"

#include <cstring>
#include <functional>
#include <sstream>

#include "bagcpd/common/check.h"

namespace bagcpd {

namespace {

Status ValidateShape(std::size_t k, std::size_t dim, const double* weights) {
  if (k == 0) return Status::Invalid("signature has no centers");
  if (dim == 0) {
    return Status::Invalid("signature centers are zero-dimensional");
  }
  for (std::size_t i = 0; i < k; ++i) {
    if (!(weights[i] > 0.0)) {
      return Status::Invalid("weight " + std::to_string(i) +
                             " is not strictly positive");
    }
  }
  return Status::OK();
}

double SumWeights(const double* weights, std::size_t k) {
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) acc += weights[i];
  return acc;
}

}  // namespace

SignatureView::SignatureView(const Signature& s)
    : centers_(s.centers().data()),
      weights_(s.weights().data()),
      k_(s.size()),
      dim_(s.dim()) {}

double SignatureView::TotalWeight() const { return SumWeights(weights_, k_); }

Status SignatureView::Validate() const {
  return ValidateShape(k_, dim_, weights_);
}

Signature SignatureView::ToSignature() const {
  Signature out;
  out.ReserveCenters(k_, dim_);
  for (std::size_t k = 0; k < k_; ++k) out.AddCenter(center(k), weights_[k]);
  return out;
}

Signature Signature::FromCenters(const std::vector<Point>& centers,
                                 std::vector<double> weights) {
  BAGCPD_CHECK_MSG(centers.size() == weights.size(),
                   "FromCenters: %zu centers but %zu weights", centers.size(),
                   weights.size());
  Signature out;
  if (!centers.empty()) out.ReserveCenters(centers.size(), centers.front().size());
  for (std::size_t k = 0; k < centers.size(); ++k) {
    out.AddCenter(centers[k], weights[k]);
  }
  return out;
}

Signature Signature::FromFlat(std::vector<double> flat_centers,
                              std::size_t dim, std::vector<double> weights) {
  BAGCPD_CHECK_MSG(dim > 0 || flat_centers.empty(),
                   "FromFlat: zero dim with non-empty centers");
  BAGCPD_CHECK_MSG(dim == 0 || flat_centers.size() == dim * weights.size(),
                   "FromFlat: %zu values != %zu centers x dim %zu",
                   flat_centers.size(), weights.size(), dim);
  Signature out;
  // Reuse the center buffer as the packed buffer: the weights append behind
  // the center block, matching the packed layout exactly.
  out.k_ = weights.size();
  out.dim_ = flat_centers.empty() ? 0 : dim;
  std::vector<double>& buf = out.storage_.vec();
  buf = std::move(flat_centers);
  buf.insert(buf.end(), weights.begin(), weights.end());
  return out;
}

void Signature::AddCenter(PointView center, double weight) {
  BAGCPD_CHECK_MSG(!center.empty(), "AddCenter: zero-dimensional center");
  if (dim_ == 0) {
    dim_ = center.size();
  } else {
    BAGCPD_CHECK_MSG(center.size() == dim_,
                     "AddCenter: dimension %zu, expected %zu", center.size(),
                     dim_);
  }
  std::vector<double>& buf = storage_.vec();
  // The new center slots in before the weight block (the insert shifts the
  // k_ weights right by dim_). A view into this signature's own storage
  // would be invalidated by the shift or a reallocation — copy it out first.
  // std::less gives the total pointer order the raw operators don't
  // guarantee for unrelated objects.
  const std::less<const double*> before;
  const double* src = center.data();
  Point alias_copy;
  if (!buf.empty() && !before(src, buf.data()) &&
      before(src, buf.data() + buf.size())) {
    alias_copy = center.ToPoint();
    src = alias_copy.data();
  }
  buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(k_ * dim_), src,
             src + dim_);
  buf.push_back(weight);
  ++k_;
}

void Signature::ReserveCenters(std::size_t count, std::size_t dim,
                               BufferArena* arena) {
  if (dim_ == 0) dim_ = dim;
  const std::size_t want = (k_ + count) * (dim_ + 1);
  std::vector<double>& buf = storage_.vec();
  if (arena != nullptr && buf.empty() && buf.capacity() == 0 &&
      storage_.arena() == nullptr) {
    storage_ = PooledBuffer(arena->Acquire(want), arena);
    return;
  }
  buf.reserve(want);
}

double Signature::TotalWeight() const {
  return SumWeights(data() + k_ * dim_, k_);
}

void Signature::NormalizeInPlace() {
  const double total = TotalWeight();
  BAGCPD_CHECK_MSG(total > 0.0, "normalizing a zero-mass signature");
  double* w = mutable_weights();
  for (std::size_t k = 0; k < k_; ++k) w[k] /= total;
}

Signature Signature::Normalized() const {
  Signature out = *this;
  out.NormalizeInPlace();
  return out;
}

Point Signature::Centroid() const {
  BAGCPD_CHECK(size() > 0);
  Point c(dim(), 0.0);
  const double* w = data() + k_ * dim_;
  double total = 0.0;
  for (std::size_t k = 0; k < size(); ++k) {
    const double* row = data() + k * dim_;
    for (std::size_t j = 0; j < c.size(); ++j) c[j] += w[k] * row[j];
    total += w[k];
  }
  BAGCPD_CHECK(total > 0.0);
  for (double& v : c) v /= total;
  return c;
}

std::vector<double> Signature::flat_centers() const {
  return std::vector<double>(data(), data() + k_ * dim_);
}

Status Signature::Validate() const {
  return ValidateShape(k_, dim_, data() + k_ * dim_);
}

std::string Signature::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << "{";
  for (std::size_t k = 0; k < size(); ++k) {
    if (k) os << ", ";
    os << "(";
    const PointView c = center(k);
    for (std::size_t j = 0; j < c.size(); ++j) {
      if (j) os << " ";
      os << c[j];
    }
    os << "):" << weight(k);
  }
  os << "}";
  return os.str();
}

SignatureAssembler::SignatureAssembler(std::size_t max_count, std::size_t dim,
                                       BufferArena* arena)
    : buffer_(PooledBuffer::AcquireFrom(arena, max_count * (dim + 1))),
      max_count_(max_count),
      dim_(dim) {
  BAGCPD_CHECK_MSG(dim > 0, "SignatureAssembler: zero dimension");
  // Centers fill [0, count*dim); weights stage at [max_count*dim, ...): both
  // regions live in the one buffer, so assembly allocates exactly once.
  buffer_.vec().resize(max_count * (dim + 1));
}

SignatureAssembler::SignatureAssembler(double* slot, std::size_t max_count,
                                       std::size_t dim)
    : borrowed_(slot), max_count_(max_count), dim_(dim) {
  BAGCPD_CHECK_MSG(slot != nullptr, "SignatureAssembler: null borrowed slot");
  BAGCPD_CHECK_MSG(dim > 0, "SignatureAssembler: zero dimension");
}

void SignatureAssembler::Add(PointView center, double weight) {
  BAGCPD_CHECK_MSG(count_ < max_count_, "SignatureAssembler: over capacity");
  BAGCPD_CHECK_MSG(center.size() == dim_,
                   "SignatureAssembler: dimension %zu, expected %zu",
                   center.size(), dim_);
  double* base = this->base();
  std::memcpy(base + count_ * dim_, center.data(), dim_ * sizeof(double));
  base[max_count_ * dim_ + count_] = weight;
  ++count_;
}

std::size_t SignatureAssembler::FinishInPlace() {
  BAGCPD_CHECK_MSG(borrowed_ != nullptr,
                   "SignatureAssembler: FinishInPlace needs borrowed mode");
  if (count_ < max_count_) {
    std::memmove(borrowed_ + count_ * dim_, borrowed_ + max_count_ * dim_,
                 count_ * sizeof(double));
  }
  const std::size_t k = count_;
  borrowed_ = nullptr;
  max_count_ = 0;
  count_ = 0;
  return k;
}

Signature SignatureAssembler::Finish() {
  BAGCPD_CHECK_MSG(borrowed_ == nullptr,
                   "SignatureAssembler: Finish unavailable in borrowed mode");
  double* base = buffer_.vec().data();
  if (count_ < max_count_) {
    // Fewer centers than reserved (e.g. empty clusters dropped): compact the
    // staged weights down to their packed position and trim.
    std::memmove(base + count_ * dim_, base + max_count_ * dim_,
                 count_ * sizeof(double));
  }
  buffer_.vec().resize(count_ * (dim_ + 1));
  Signature out;
  out.storage_ = std::move(buffer_);
  out.k_ = count_;
  out.dim_ = count_ == 0 ? 0 : dim_;
  max_count_ = 0;
  count_ = 0;
  return out;
}

Signature CentroidSignature(BagView bag, BufferArena* arena) {
  BAGCPD_CHECK(!bag.empty());
  Signature sig;
  sig.ReserveCenters(1, bag.dim(), arena);
  sig.AddCenter(BagMean(bag), static_cast<double>(bag.size()));
  return sig;
}

Signature CentroidSignature(const Bag& bag) {
  BAGCPD_CHECK(!bag.empty());
  Signature sig;
  sig.AddCenter(BagMean(bag), static_cast<double>(bag.size()));
  return sig;
}

}  // namespace bagcpd
