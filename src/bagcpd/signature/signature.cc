#include "bagcpd/signature/signature.h"

#include <sstream>

#include "bagcpd/common/check.h"

namespace bagcpd {

Signature Signature::FromCenters(const std::vector<Point>& centers,
                                 std::vector<double> weights) {
  BAGCPD_CHECK_MSG(centers.size() == weights.size(),
                   "FromCenters: %zu centers but %zu weights", centers.size(),
                   weights.size());
  Signature out;
  if (!centers.empty()) out.ReserveCenters(centers.size(), centers.front().size());
  for (std::size_t k = 0; k < centers.size(); ++k) {
    out.AddCenter(centers[k], weights[k]);
  }
  return out;
}

Signature Signature::FromFlat(std::vector<double> flat_centers,
                              std::size_t dim, std::vector<double> weights) {
  BAGCPD_CHECK_MSG(dim > 0 || flat_centers.empty(),
                   "FromFlat: zero dim with non-empty centers");
  BAGCPD_CHECK_MSG(dim == 0 || flat_centers.size() == dim * weights.size(),
                   "FromFlat: %zu values != %zu centers x dim %zu",
                   flat_centers.size(), weights.size(), dim);
  Signature out;
  out.flat_ = std::move(flat_centers);
  out.dim_ = dim;
  out.weights = std::move(weights);
  return out;
}

void Signature::AddCenter(PointView center, double weight) {
  BAGCPD_CHECK_MSG(!center.empty(), "AddCenter: zero-dimensional center");
  if (dim_ == 0) {
    dim_ = center.size();
  } else {
    BAGCPD_CHECK_MSG(center.size() == dim_,
                     "AddCenter: dimension %zu, expected %zu", center.size(),
                     dim_);
  }
  AppendRow(&flat_, center);
  weights.push_back(weight);
}

void Signature::ReserveCenters(std::size_t count, std::size_t dim) {
  if (dim_ == 0) dim_ = dim;
  flat_.reserve(flat_.size() + count * dim_);
  weights.reserve(weights.size() + count);
}

double Signature::TotalWeight() const {
  double acc = 0.0;
  for (double w : weights) acc += w;
  return acc;
}

Signature Signature::Normalized() const {
  Signature out = *this;
  const double total = TotalWeight();
  BAGCPD_CHECK_MSG(total > 0.0, "normalizing a zero-mass signature");
  for (double& w : out.weights) w /= total;
  return out;
}

Point Signature::Centroid() const {
  BAGCPD_CHECK(size() > 0);
  Point c(dim(), 0.0);
  double total = 0.0;
  for (std::size_t k = 0; k < size(); ++k) {
    const double* row = flat_.data() + k * dim_;
    for (std::size_t j = 0; j < c.size(); ++j) c[j] += weights[k] * row[j];
    total += weights[k];
  }
  BAGCPD_CHECK(total > 0.0);
  for (double& v : c) v /= total;
  return c;
}

Status Signature::Validate() const {
  if (weights.empty() && flat_.empty()) {
    return Status::Invalid("signature has no centers");
  }
  if (dim_ == 0) {
    return Status::Invalid("signature centers are zero-dimensional");
  }
  if (flat_.size() != weights.size() * dim_) {
    return Status::Invalid("signature weights/centers size mismatch");
  }
  for (std::size_t k = 0; k < weights.size(); ++k) {
    if (!(weights[k] > 0.0)) {
      return Status::Invalid("weight " + std::to_string(k) +
                             " is not strictly positive");
    }
  }
  return Status::OK();
}

std::string Signature::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << "{";
  for (std::size_t k = 0; k < size(); ++k) {
    if (k) os << ", ";
    os << "(";
    const PointView c = center(k);
    for (std::size_t j = 0; j < c.size(); ++j) {
      if (j) os << " ";
      os << c[j];
    }
    os << "):" << weights[k];
  }
  os << "}";
  return os.str();
}

Signature CentroidSignature(BagView bag) {
  BAGCPD_CHECK(!bag.empty());
  Signature sig;
  sig.AddCenter(BagMean(bag), static_cast<double>(bag.size()));
  return sig;
}

Signature CentroidSignature(const Bag& bag) {
  BAGCPD_CHECK(!bag.empty());
  Signature sig;
  sig.AddCenter(BagMean(bag), static_cast<double>(bag.size()));
  return sig;
}

}  // namespace bagcpd
