#include "bagcpd/signature/signature.h"

#include <sstream>

#include "bagcpd/common/check.h"

namespace bagcpd {

double Signature::TotalWeight() const {
  double acc = 0.0;
  for (double w : weights) acc += w;
  return acc;
}

Signature Signature::Normalized() const {
  Signature out = *this;
  const double total = TotalWeight();
  BAGCPD_CHECK_MSG(total > 0.0, "normalizing a zero-mass signature");
  for (double& w : out.weights) w /= total;
  return out;
}

Point Signature::Centroid() const {
  BAGCPD_CHECK(!centers.empty());
  Point c(dim(), 0.0);
  double total = 0.0;
  for (std::size_t k = 0; k < centers.size(); ++k) {
    for (std::size_t j = 0; j < c.size(); ++j) c[j] += weights[k] * centers[k][j];
    total += weights[k];
  }
  BAGCPD_CHECK(total > 0.0);
  for (double& v : c) v /= total;
  return c;
}

Status Signature::Validate() const {
  if (centers.empty()) return Status::Invalid("signature has no centers");
  if (weights.size() != centers.size()) {
    return Status::Invalid("signature weights/centers size mismatch");
  }
  const std::size_t d = centers.front().size();
  if (d == 0) return Status::Invalid("signature centers are zero-dimensional");
  for (std::size_t k = 0; k < centers.size(); ++k) {
    if (centers[k].size() != d) {
      return Status::Invalid("center " + std::to_string(k) +
                             " has inconsistent dimension");
    }
    if (!(weights[k] > 0.0)) {
      return Status::Invalid("weight " + std::to_string(k) +
                             " is not strictly positive");
    }
  }
  return Status::OK();
}

std::string Signature::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << "{";
  for (std::size_t k = 0; k < centers.size(); ++k) {
    if (k) os << ", ";
    os << "(";
    for (std::size_t j = 0; j < centers[k].size(); ++j) {
      if (j) os << " ";
      os << centers[k][j];
    }
    os << "):" << weights[k];
  }
  os << "}";
  return os.str();
}

Signature CentroidSignature(const Bag& bag) {
  BAGCPD_CHECK(!bag.empty());
  Signature sig;
  sig.centers.push_back(BagMean(bag));
  sig.weights.push_back(static_cast<double>(bag.size()));
  return sig;
}

}  // namespace bagcpd
