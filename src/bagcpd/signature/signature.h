// Signature: the quantized representation S_t = {(u_k, w_k)} of a bag's
// underlying distribution (paper Eq. 6). Centers u_k live in R^d and w_k > 0
// counts (or weights) the observations assigned to center k.
//
// Centers are stored flat: one contiguous row-major (K x d) buffer, so the
// EMD cost-matrix build and every ground-distance evaluation stream through
// the cache with zero per-center pointer chasing. Access centers through
// `center(k)` (a PointView) or `centers()` (a BagView over all rows).

#ifndef BAGCPD_SIGNATURE_SIGNATURE_H_
#define BAGCPD_SIGNATURE_SIGNATURE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief A weighted point set summarizing one bag's distribution.
///
/// Invariants (checked by Validate()): centers non-empty, all centers share
/// one dimension (guaranteed by the flat layout), weights.size() == number of
/// centers, all weights > 0.
struct Signature {
  /// w_k > 0 for every center; kept public because scores/bootstrap resample
  /// and normalize weights in place.
  std::vector<double> weights;

  /// \brief Builds a signature from nested centers (test/interop helper).
  /// Aborts on ragged centers or a weight-count mismatch; use Validate() for
  /// recoverable checking of the remaining invariants.
  static Signature FromCenters(const std::vector<Point>& centers,
                               std::vector<double> weights);

  /// \brief Adopts an already-flat row-major (K x d) center buffer.
  static Signature FromFlat(std::vector<double> flat_centers, std::size_t dim,
                            std::vector<double> weights);

  /// \brief Number of clusters K.
  std::size_t size() const { return weights.size(); }

  /// \brief Dimension d of the centers (0 if empty).
  std::size_t dim() const { return dim_; }

  /// \brief Zero-copy view of center u_k.
  PointView center(std::size_t k) const {
    return PointView(flat_.data() + k * dim_, dim_);
  }

  /// \brief Mutable pointer to center u_k's row (dim() doubles).
  double* mutable_center(std::size_t k) { return flat_.data() + k * dim_; }

  /// \brief Zero-copy view over all centers as a (K x d) bag.
  BagView centers() const { return BagView(flat_.data(), size(), dim_); }

  /// \brief The raw contiguous center storage (size() * dim() doubles).
  const std::vector<double>& flat_centers() const { return flat_; }

  /// \brief Appends center u_k = `center` with weight w_k = `weight`. The
  /// first center fixes the dimension; later mismatches abort (quantizers
  /// produce consistent dimensions by construction). Safe to pass a view
  /// into this signature's own storage.
  void AddCenter(PointView center, double weight);

  /// \brief Pre-allocates room for `count` centers of dimension `dim`.
  void ReserveCenters(std::size_t count, std::size_t dim);

  /// \brief Sum of weights (total mass).
  double TotalWeight() const;

  /// \brief Returns a copy whose weights sum to one.
  Signature Normalized() const;

  /// \brief Weighted centroid of the signature.
  Point Centroid() const;

  /// \brief Structural validation of the invariants listed above.
  Status Validate() const;

  /// \brief Human-readable rendering for diagnostics.
  std::string ToString(int precision = 3) const;

 private:
  // Row-major (K x d) center storage; row k is center u_k.
  std::vector<double> flat_;
  std::size_t dim_ = 0;
};

/// \brief Builds a signature with a single cluster at the bag mean carrying
/// the full bag weight. This is the degenerate "centroid" summarization the
/// paper argues against (Section 1) — kept as a baseline representation.
Signature CentroidSignature(BagView bag);
Signature CentroidSignature(const Bag& bag);

}  // namespace bagcpd

#endif  // BAGCPD_SIGNATURE_SIGNATURE_H_
