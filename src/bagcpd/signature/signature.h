// Signature: the quantized representation S_t = {(u_k, w_k)} of a bag's
// underlying distribution (paper Eq. 6). Centers u_k live in R^d and w_k > 0
// counts (or weights) the observations assigned to center k.
//
// Storage is packed: ONE contiguous buffer of K*d + K doubles holds the
// row-major (K x d) center block followed by the K weights, so a signature is
// a single allocation (recyclable through a BufferArena) and the EMD
// cost-matrix build streams centers and weights through the cache with zero
// pointer chasing. Access goes through the accessors: `center(k)` /
// `centers()` for the center block, `weights()` / `weight(k)` /
// `mutable_weights()` for the weight block.
//
// SignatureView is the non-owning counterpart (centers pointer + weights
// pointer + K + d): every distance kernel consumes views, a Signature
// converts implicitly, and SignatureSet / SignatureRing hand out views into
// their shared buffers.

#ifndef BAGCPD_SIGNATURE_SIGNATURE_H_
#define BAGCPD_SIGNATURE_SIGNATURE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "bagcpd/common/buffer_arena.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief Non-owning read view of a signature's K weights. Trivially
/// copyable; pass by value. Comparable elementwise (test convenience).
class WeightsView {
 public:
  constexpr WeightsView() = default;
  constexpr WeightsView(const double* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const double* data() const { return data_; }
  double operator[](std::size_t k) const { return data_[k]; }
  const double* begin() const { return data_; }
  const double* end() const { return data_ + size_; }

  std::vector<double> ToVector() const {
    return std::vector<double>(data_, data_ + size_);
  }

  friend bool operator==(WeightsView a, WeightsView b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t k = 0; k < a.size_; ++k) {
      if (a.data_[k] != b.data_[k]) return false;
    }
    return true;
  }
  friend bool operator!=(WeightsView a, WeightsView b) { return !(a == b); }

 private:
  const double* data_ = nullptr;
  std::size_t size_ = 0;
};

class Signature;

/// \brief Non-owning view of one signature: a center block, a weight block,
/// and the shape (K, d). The blocks need not be adjacent, so a view can point
/// into a packed Signature buffer or into SignatureSet's split SoA buffers
/// alike. Never outlives the storage it points into.
class SignatureView {
 public:
  constexpr SignatureView() = default;
  constexpr SignatureView(const double* centers, const double* weights,
                          std::size_t k, std::size_t dim)
      : centers_(centers), weights_(weights), k_(k), dim_(dim) {}
  // Implicit: every kernel taking a SignatureView also accepts a Signature.
  SignatureView(const Signature& s);  // NOLINT(runtime/explicit)

  /// \brief Number of clusters K.
  std::size_t size() const { return k_; }
  /// \brief Dimension d of the centers.
  std::size_t dim() const { return dim_; }
  bool empty() const { return k_ == 0; }

  PointView center(std::size_t k) const {
    return PointView(centers_ + k * dim_, dim_);
  }
  BagView centers() const { return BagView(centers_, k_, dim_); }
  const double* centers_data() const { return centers_; }

  WeightsView weights() const { return WeightsView(weights_, k_); }
  double weight(std::size_t k) const { return weights_[k]; }
  const double* weights_data() const { return weights_; }

  /// \brief Sum of weights (total mass).
  double TotalWeight() const;

  /// \brief Structural validation (non-empty, d > 0, all weights > 0).
  Status Validate() const;

  /// \brief Materializes an owning packed copy.
  Signature ToSignature() const;

 private:
  const double* centers_ = nullptr;
  const double* weights_ = nullptr;
  std::size_t k_ = 0;
  std::size_t dim_ = 0;
};

/// \brief A weighted point set summarizing one bag's distribution (owning,
/// packed form).
///
/// Invariants (checked by Validate()): centers non-empty, all centers share
/// one dimension and every weight is strictly positive (the packed layout
/// makes center/weight count mismatches unrepresentable).
class Signature {
 public:
  Signature() = default;

  Signature(const Signature&) = default;
  Signature& operator=(const Signature&) = default;
  // Moves zero the source's shape so a moved-from Signature degrades to a
  // valid empty one (the storage move already clears the source buffer;
  // stale k_/dim_ over it would make every accessor read out of bounds).
  Signature(Signature&& other) noexcept { *this = std::move(other); }
  Signature& operator=(Signature&& other) noexcept {
    if (this != &other) {
      storage_ = std::move(other.storage_);
      k_ = other.k_;
      dim_ = other.dim_;
      other.k_ = 0;
      other.dim_ = 0;
    }
    return *this;
  }

  /// \brief Builds a signature from nested centers (test/interop helper).
  /// Aborts on ragged centers or a weight-count mismatch; use Validate() for
  /// recoverable checking of the remaining invariants.
  static Signature FromCenters(const std::vector<Point>& centers,
                               std::vector<double> weights);

  /// \brief Packs an already-flat row-major (K x d) center buffer and its
  /// weights into the single-buffer layout.
  static Signature FromFlat(std::vector<double> flat_centers, std::size_t dim,
                            std::vector<double> weights);

  /// \brief Number of clusters K.
  std::size_t size() const { return k_; }

  /// \brief Dimension d of the centers (0 if empty).
  std::size_t dim() const { return dim_; }

  /// \brief Zero-copy view of center u_k.
  PointView center(std::size_t k) const {
    return PointView(data() + k * dim_, dim_);
  }

  /// \brief Mutable pointer to center u_k's row (dim() doubles).
  double* mutable_center(std::size_t k) { return data() + k * dim_; }

  /// \brief Zero-copy view over all centers as a (K x d) bag.
  BagView centers() const { return BagView(data(), k_, dim_); }

  /// \brief Read view of the K weights (w_k > 0 for every center).
  WeightsView weights() const { return WeightsView(data() + k_ * dim_, k_); }

  /// \brief Weight w_k of center u_k.
  double weight(std::size_t k) const { return data()[k_ * dim_ + k]; }

  /// \brief Mutable pointer to the weight block (size() doubles); scores and
  /// tests rescale weights in place through it.
  double* mutable_weights() { return data() + k_ * dim_; }
  void set_weight(std::size_t k, double w) { data()[k_ * dim_ + k] = w; }

  /// \brief Copy of the contiguous center block (size() * dim() doubles).
  /// Compatibility shim from the split-storage era: the centers are a prefix
  /// of the packed buffer, so this copies; prefer centers() for zero-copy.
  std::vector<double> flat_centers() const;

  /// \brief The packed (K*d + K) buffer: centers then weights.
  const std::vector<double>& packed() const { return storage_.vec(); }

  /// \brief Zero-copy view of the whole signature.
  SignatureView view() const {
    return SignatureView(data(), data() + k_ * dim_, k_, dim_);
  }

  /// \brief Appends center u_k = `center` with weight w_k = `weight`. The
  /// first center fixes the dimension; later mismatches abort (quantizers
  /// produce consistent dimensions by construction). Safe to pass a view
  /// into this signature's own storage.
  void AddCenter(PointView center, double weight);

  /// \brief Pre-allocates room for `count` centers of dimension `dim`. When
  /// `arena` is non-null and the signature is still empty, the packed buffer
  /// is acquired from the arena (and returns to it when the signature dies).
  void ReserveCenters(std::size_t count, std::size_t dim,
                      BufferArena* arena = nullptr);

  /// \brief Sum of weights (total mass).
  double TotalWeight() const;

  /// \brief Divides every weight by the total mass, in place.
  void NormalizeInPlace();

  /// \brief Returns a copy whose weights sum to one.
  Signature Normalized() const;

  /// \brief Weighted centroid of the signature.
  Point Centroid() const;

  /// \brief Structural validation of the invariants listed above.
  Status Validate() const;

  /// \brief Human-readable rendering for diagnostics.
  std::string ToString(int precision = 3) const;

 private:
  friend class SignatureAssembler;  // Adopts fully-assembled packed buffers.

  double* data() { return storage_.vec().data(); }
  const double* data() const { return storage_.vec().data(); }

  // Packed storage: k_ * dim_ center values (row k is u_k) followed by the
  // k_ weights. Arena-recyclable through the PooledBuffer handle.
  PooledBuffer storage_;
  std::size_t k_ = 0;
  std::size_t dim_ = 0;
};

/// \brief One-allocation packed-signature assembly for producers that know
/// an upper bound on the cluster count (every quantizer does).
///
/// The single (max_count*(dim+1)) buffer is sized once — from the arena when
/// one is given. Add() appends the center at the front of the buffer and
/// stages the weight in the buffer's reserved tail, so unlike
/// Signature::AddCenter there is no per-add shifting of the weight block;
/// Finish() compacts the staged weights down to k*dim once and adopts the
/// buffer. Centers passed to Add must not alias the assembler's own buffer.
class SignatureAssembler {
 public:
  SignatureAssembler(std::size_t max_count, std::size_t dim,
                     BufferArena* arena = nullptr);

  /// \brief Borrowed-buffer mode: assembles into `slot`, caller-owned storage
  /// of at least max_count*(dim+1) doubles (e.g. a SignatureRing slot), with
  /// the same staging layout and arithmetic as the owning mode. Finalize with
  /// FinishInPlace() — Finish() is unavailable, there is no buffer to adopt.
  SignatureAssembler(double* slot, std::size_t max_count, std::size_t dim);

  /// \brief Appends one (center, weight) pair; at most max_count times.
  void Add(PointView center, double weight);

  std::size_t count() const { return count_; }

  /// \brief Finalizes into a Signature owning the packed buffer. The
  /// assembler is left empty; at most one Finish per assembler.
  Signature Finish();

  /// \brief Borrowed-mode finalize: compacts the staged weights down to the
  /// packed position (k*dim) inside the borrowed slot and returns k. The
  /// slot then holds a valid packed signature image. At most once.
  std::size_t FinishInPlace();

 private:
  double* base() {
    return borrowed_ != nullptr ? borrowed_ : buffer_.vec().data();
  }

  PooledBuffer buffer_;
  double* borrowed_ = nullptr;  // Non-null in borrowed-buffer mode.
  std::size_t max_count_ = 0;
  std::size_t dim_ = 0;
  std::size_t count_ = 0;
};

/// \brief Builds a signature with a single cluster at the bag mean carrying
/// the full bag weight. This is the degenerate "centroid" summarization the
/// paper argues against (Section 1) — kept as a baseline representation.
Signature CentroidSignature(BagView bag, BufferArena* arena = nullptr);
Signature CentroidSignature(const Bag& bag);

}  // namespace bagcpd

#endif  // BAGCPD_SIGNATURE_SIGNATURE_H_
