// Signature: the quantized representation S_t = {(u_k, w_k)} of a bag's
// underlying distribution (paper Eq. 6). Centers u_k live in R^d and w_k > 0
// counts (or weights) the observations assigned to center k.

#ifndef BAGCPD_SIGNATURE_SIGNATURE_H_
#define BAGCPD_SIGNATURE_SIGNATURE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "bagcpd/common/point.h"
#include "bagcpd/common/status.h"

namespace bagcpd {

/// \brief A weighted point set summarizing one bag's distribution.
///
/// Invariants (checked by Validate()): centers non-empty, all centers share
/// one dimension, weights.size() == centers.size(), all weights > 0.
struct Signature {
  std::vector<Point> centers;
  std::vector<double> weights;

  /// \brief Number of clusters K.
  std::size_t size() const { return centers.size(); }

  /// \brief Dimension d of the centers (0 if empty).
  std::size_t dim() const { return centers.empty() ? 0 : centers.front().size(); }

  /// \brief Sum of weights (total mass).
  double TotalWeight() const;

  /// \brief Returns a copy whose weights sum to one.
  Signature Normalized() const;

  /// \brief Weighted centroid of the signature.
  Point Centroid() const;

  /// \brief Structural validation of the invariants listed above.
  Status Validate() const;

  /// \brief Human-readable rendering for diagnostics.
  std::string ToString(int precision = 3) const;
};

/// \brief Builds a signature with a single cluster at the bag mean carrying the
/// full bag weight. This is the degenerate "centroid" summarization the paper
/// argues against (Section 1) — kept as a baseline representation.
Signature CentroidSignature(const Bag& bag);

}  // namespace bagcpd

#endif  // BAGCPD_SIGNATURE_SIGNATURE_H_
