// Fixed-width histogram signatures: partition R^d into axis-aligned bins and
// count the observations per bin (paper Section 3.1, "another very simple way
// to make signatures"). Only non-empty bins are materialized, so the signature
// stays sparse even in higher dimensions.

#ifndef BAGCPD_SIGNATURE_HISTOGRAM_H_
#define BAGCPD_SIGNATURE_HISTOGRAM_H_

#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/signature/signature.h"

namespace bagcpd {

/// \brief Configuration for HistogramQuantize.
struct HistogramOptions {
  /// Bin width along every axis.
  double bin_width = 1.0;
  /// Origin of the grid (bin b covers [origin + b*w, origin + (b+1)*w)).
  double origin = 0.0;
  /// If true, the center of each occupied bin is used as the signature center;
  /// if false, the mean of the samples inside the bin is used (tighter ground
  /// distances; still a histogram partition).
  bool use_bin_centers = true;
};

/// \brief Histogram-quantizes `bag`; weights are per-bin counts.
Result<Signature> HistogramQuantize(BagView bag,
                                    const HistogramOptions& options,
                                    BufferArena* arena = nullptr);

/// \brief Nested-bag convenience: validates and flattens once, then runs the
/// view path. Output is bitwise-identical to the flat entry point.
Result<Signature> HistogramQuantize(const Bag& bag,
                                    const HistogramOptions& options,
                                    BufferArena* arena = nullptr);

}  // namespace bagcpd

#endif  // BAGCPD_SIGNATURE_HISTOGRAM_H_
