#include "bagcpd/signature/signature_set.h"

#include <cstring>

#include "bagcpd/common/check.h"

namespace bagcpd {

Status SignatureSet::Append(SignatureView sig) {
  BAGCPD_RETURN_NOT_OK(sig.Validate());
  return AppendUnchecked(sig);
}

Status SignatureSet::AppendUnchecked(SignatureView sig) {
  if (sig.empty()) {
    // A member with no centers: representable (zero-width offset slot) and
    // reported by a later Validate() pass.
    offsets_.push_back(offsets_.back());
    return Status::OK();
  }
  if (dim_ == 0) {
    dim_ = sig.dim();
  } else if (sig.dim() != dim_) {
    return Status::Invalid("signature has dimension " +
                           std::to_string(sig.dim()) + ", set has " +
                           std::to_string(dim_));
  }
  const std::size_t k = sig.size();
  centers_.insert(centers_.end(), sig.centers_data(),
                  sig.centers_data() + k * dim_);
  weights_.insert(weights_.end(), sig.weights_data(),
                  sig.weights_data() + k);
  offsets_.push_back(offsets_.back() + k);
  return Status::OK();
}

void SignatureSet::Reserve(std::size_t signatures, std::size_t centers_hint,
                           std::size_t dim) {
  if (dim_ == 0) dim_ = dim;
  centers_.reserve(centers_.size() + centers_hint * dim_);
  weights_.reserve(weights_.size() + centers_hint);
  offsets_.reserve(offsets_.size() + signatures);
}

void SignatureSet::Clear() {
  centers_.clear();
  weights_.clear();
  offsets_.assign(1, 0);
  dim_ = 0;
}

Result<SignatureSet> SignatureSet::FromSignatures(
    const std::vector<Signature>& signatures) {
  SignatureSet set;
  std::size_t centers = 0;
  for (const Signature& s : signatures) centers += s.size();
  if (!signatures.empty()) {
    set.Reserve(signatures.size(), centers, signatures.front().dim());
  }
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    Status appended = set.Append(signatures[i]);
    if (!appended.ok()) {
      return Status::Invalid("signature " + std::to_string(i) + ": " +
                             appended.message());
    }
  }
  return set;
}

std::vector<Signature> SignatureSet::ToSignatures() const {
  std::vector<Signature> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out.push_back(view(i).ToSignature());
  }
  return out;
}

void SignatureRing::Reset(std::size_t capacity) {
  BAGCPD_CHECK_MSG(capacity > 0, "SignatureRing needs capacity >= 1");
  capacity_ = capacity;
  head_ = 0;
  count_ = 0;
  dim_ = 0;
  stride_ = 0;
  borrowed_max_k_ = 0;
  data_.clear();
  ks_.assign(capacity, 0);
}

double* SignatureRing::EnsureSlot(std::size_t k_cap, std::size_t dim) {
  BAGCPD_CHECK_MSG(count_ < capacity_, "SignatureRing overflow");
  BAGCPD_CHECK_MSG(borrowed_max_k_ == 0, "SignatureRing: borrow outstanding");
  BAGCPD_CHECK_MSG(k_cap > 0 && dim > 0, "SignatureRing: empty signature");
  if (dim_ == 0) {
    dim_ = dim;
  } else {
    BAGCPD_CHECK_MSG(dim == dim_,
                     "SignatureRing: dimension %zu, expected %zu", dim, dim_);
  }
  const std::size_t need = k_cap * (dim_ + 1);
  if (need > stride_) {
    // Re-layout with a wider stride, compacting live slots to the front in
    // age order. Rare: stride only grows until the largest signature the
    // stream produces has been seen once.
    const std::size_t new_stride = need + (dim_ + 1);  // Headroom row.
    std::vector<double> grown(capacity_ * new_stride, 0.0);
    std::vector<std::size_t> new_ks(capacity_, 0);
    for (std::size_t i = 0; i < count_; ++i) {
      const std::size_t slot = SlotOf(i);
      std::memcpy(grown.data() + i * new_stride,
                  data_.data() + slot * stride_,
                  ks_[slot] * (dim_ + 1) * sizeof(double));
      new_ks[i] = ks_[slot];
    }
    data_ = std::move(grown);
    ks_ = std::move(new_ks);
    stride_ = new_stride;
    head_ = 0;
  }
  return data_.data() + SlotOf(count_) * stride_;
}

void SignatureRing::PushBack(SignatureView sig) {
  double* base = EnsureSlot(sig.size(), sig.dim());
  std::memcpy(base, sig.centers_data(), sig.size() * dim_ * sizeof(double));
  std::memcpy(base + sig.size() * dim_, sig.weights_data(),
              sig.size() * sizeof(double));
  ks_[SlotOf(count_)] = sig.size();
  ++count_;
}

double* SignatureRing::BorrowSlot(std::size_t max_k, std::size_t dim) {
  double* base = EnsureSlot(max_k, dim);
  borrowed_max_k_ = max_k;
  return base;
}

void SignatureRing::CommitBorrowed(std::size_t k) {
  BAGCPD_CHECK_MSG(borrowed_max_k_ > 0, "SignatureRing: no outstanding borrow");
  BAGCPD_CHECK_MSG(k > 0 && k <= borrowed_max_k_,
                   "SignatureRing: committing %zu centers into a slot "
                   "borrowed for %zu",
                   k, borrowed_max_k_);
  ks_[SlotOf(count_)] = k;
  ++count_;
  borrowed_max_k_ = 0;
}

void SignatureRing::CancelBorrow() {
  BAGCPD_CHECK_MSG(borrowed_max_k_ > 0, "SignatureRing: no outstanding borrow");
  borrowed_max_k_ = 0;
}

void SignatureRing::PopFront() {
  BAGCPD_CHECK_MSG(count_ > 0, "SignatureRing underflow");
  ks_[head_] = 0;
  head_ = (head_ + 1) % capacity_;
  --count_;
}

SignatureView SignatureRing::view(std::size_t i) const {
  BAGCPD_CHECK_MSG(i < count_, "SignatureRing: index %zu of %zu", i, count_);
  const std::size_t slot = SlotOf(i);
  const double* base = data_.data() + slot * stride_;
  return SignatureView(base, base + ks_[slot] * dim_, ks_[slot], dim_);
}

}  // namespace bagcpd
