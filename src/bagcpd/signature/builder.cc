#include "bagcpd/signature/builder.h"

#include "bagcpd/common/enum_names.h"

namespace bagcpd {

namespace {

// SplitMix64-style mix for per-bag seeds.
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* SignatureMethodName(SignatureMethod method) {
  switch (method) {
    case SignatureMethod::kKMeans:
      return "kmeans";
    case SignatureMethod::kKMedoids:
      return "kmedoids";
    case SignatureMethod::kLvq:
      return "lvq";
    case SignatureMethod::kHistogram:
      return "histogram";
    case SignatureMethod::kCentroid:
      return "centroid";
  }
  return "unknown";
}

const std::vector<SignatureMethod>& AllSignatureMethods() {
  static const std::vector<SignatureMethod> kAll = {
      SignatureMethod::kKMeans, SignatureMethod::kKMedoids,
      SignatureMethod::kLvq, SignatureMethod::kHistogram,
      SignatureMethod::kCentroid};
  return kAll;
}

Result<SignatureMethod> ParseSignatureMethod(const std::string& name) {
  return ParseNamedEnum(name, AllSignatureMethods(), SignatureMethodName,
                        "quantizer");
}

Result<Signature> SignatureBuilder::Build(BagView bag, std::uint64_t bag_index,
                                          BufferArena* arena) const {
  BAGCPD_ASSIGN_OR_RETURN(Signature sig, BuildRaw(bag, bag_index, arena));
  // In-place normalization keeps the (possibly arena-pooled) packed buffer;
  // the arithmetic is identical to the copying Normalized().
  if (options_.normalize) sig.NormalizeInPlace();
  return sig;
}

Result<Signature> SignatureBuilder::Build(const Bag& bag,
                                          std::uint64_t bag_index,
                                          BufferArena* arena) const {
  BAGCPD_ASSIGN_OR_RETURN(FlatBag flat, FlatBag::FromBag(bag, arena));
  return Build(flat.view(), bag_index, arena);
}

Result<Signature> SignatureBuilder::BuildRaw(BagView bag,
                                             std::uint64_t bag_index,
                                             BufferArena* arena) const {
  const std::uint64_t seed = MixSeed(options_.seed ^ MixSeed(bag_index));
  switch (options_.method) {
    case SignatureMethod::kKMeans: {
      KMeansOptions opts;
      opts.k = options_.k;
      opts.seed = seed;
      BAGCPD_ASSIGN_OR_RETURN(KMeansResult res,
                              KMeansQuantize(bag, opts, arena));
      return std::move(res.signature);
    }
    case SignatureMethod::kKMedoids: {
      KMedoidsOptions opts;
      opts.k = options_.k;
      opts.seed = seed;
      BAGCPD_ASSIGN_OR_RETURN(KMedoidsResult res,
                              KMedoidsQuantize(bag, opts, arena));
      return std::move(res.signature);
    }
    case SignatureMethod::kLvq: {
      LvqOptions opts;
      opts.k = options_.k;
      opts.seed = seed;
      return LvqQuantize(bag, opts, arena);
    }
    case SignatureMethod::kHistogram: {
      HistogramOptions opts;
      opts.bin_width = options_.bin_width;
      opts.origin = options_.histogram_origin;
      return HistogramQuantize(bag, opts, arena);
    }
    case SignatureMethod::kCentroid: {
      BAGCPD_RETURN_NOT_OK(ValidateBagView(bag));
      return CentroidSignature(bag, arena);
    }
  }
  return Status::Invalid("unknown signature method");
}

}  // namespace bagcpd
