#include "bagcpd/signature/builder.h"

#include <algorithm>

#include "bagcpd/common/check.h"
#include "bagcpd/common/enum_names.h"

namespace bagcpd {

namespace {

// SplitMix64-style mix for per-bag seeds.
std::uint64_t MixSeed(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* SignatureMethodName(SignatureMethod method) {
  switch (method) {
    case SignatureMethod::kKMeans:
      return "kmeans";
    case SignatureMethod::kKMedoids:
      return "kmedoids";
    case SignatureMethod::kLvq:
      return "lvq";
    case SignatureMethod::kHistogram:
      return "histogram";
    case SignatureMethod::kCentroid:
      return "centroid";
  }
  return "unknown";
}

const std::vector<SignatureMethod>& AllSignatureMethods() {
  static const std::vector<SignatureMethod> kAll = {
      SignatureMethod::kKMeans, SignatureMethod::kKMedoids,
      SignatureMethod::kLvq, SignatureMethod::kHistogram,
      SignatureMethod::kCentroid};
  return kAll;
}

Result<SignatureMethod> ParseSignatureMethod(const std::string& name) {
  return ParseNamedEnum(name, AllSignatureMethods(), SignatureMethodName,
                        "quantizer");
}

Result<Signature> SignatureBuilder::Build(BagView bag, std::uint64_t bag_index,
                                          BufferArena* arena) const {
  BAGCPD_ASSIGN_OR_RETURN(Signature sig, BuildRaw(bag, bag_index, arena));
  // In-place normalization keeps the (possibly arena-pooled) packed buffer;
  // the arithmetic is identical to the copying Normalized().
  if (options_.normalize) sig.NormalizeInPlace();
  return sig;
}

Result<Signature> SignatureBuilder::Build(const Bag& bag,
                                          std::uint64_t bag_index,
                                          BufferArena* arena) const {
  BAGCPD_ASSIGN_OR_RETURN(FlatBag flat, FlatBag::FromBag(bag, arena));
  return Build(flat.view(), bag_index, arena);
}

Status SignatureBuilder::BuildInto(BagView bag, std::uint64_t bag_index,
                                   BufferArena* arena,
                                   SignatureRing* ring) const {
  // Histogram's bin count is data-dependent with no a-priori bound, so it
  // cannot pre-size a borrowed slot; it builds normally and copies in.
  if (options_.method == SignatureMethod::kHistogram) {
    BAGCPD_ASSIGN_OR_RETURN(Signature sig, Build(bag, bag_index, arena));
    ring->PushBack(sig);
    return Status::OK();
  }
  // Validate before borrowing: the quantizers validate again internally
  // (cheap shape checks), but the slot's dimension comes from the bag.
  BAGCPD_RETURN_NOT_OK(ValidateBagView(bag));
  if (options_.method != SignatureMethod::kCentroid && options_.k == 0) {
    return Status::Invalid("k must be >= 1");
  }
  const std::size_t max_k = options_.method == SignatureMethod::kCentroid
                                ? 1
                                : std::min(options_.k, bag.size());
  double* slot = ring->BorrowSlot(max_k, bag.dim());
  SignatureAssembler assembler(slot, max_k, bag.dim());

  const std::uint64_t seed = MixSeed(options_.seed ^ MixSeed(bag_index));
  Status built = Status::OK();
  switch (options_.method) {
    case SignatureMethod::kKMeans: {
      KMeansOptions opts;
      opts.k = options_.k;
      opts.seed = seed;
      built = KMeansQuantizeInto(bag, opts, arena, &assembler);
      break;
    }
    case SignatureMethod::kKMedoids: {
      KMedoidsOptions opts;
      opts.k = options_.k;
      opts.seed = seed;
      built = KMedoidsQuantizeInto(bag, opts, arena, &assembler);
      break;
    }
    case SignatureMethod::kLvq: {
      LvqOptions opts;
      opts.k = options_.k;
      opts.seed = seed;
      built = LvqQuantizeInto(bag, opts, arena, &assembler);
      break;
    }
    case SignatureMethod::kCentroid:
      assembler.Add(BagMean(bag), static_cast<double>(bag.size()));
      break;
    case SignatureMethod::kHistogram:
      break;  // Handled above.
  }
  if (!built.ok()) {
    ring->CancelBorrow();
    return built;
  }
  const std::size_t k = assembler.FinishInPlace();
  if (k == 0) {
    ring->CancelBorrow();
    return Status::Invalid("signature has no centers");
  }
  if (options_.normalize) {
    // Same arithmetic as Signature::NormalizeInPlace over the slot's packed
    // weight block (sequential sum, then one divide per weight).
    double* w = slot + k * bag.dim();
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) total += w[i];
    BAGCPD_CHECK_MSG(total > 0.0, "normalizing a zero-mass signature");
    for (std::size_t i = 0; i < k; ++i) w[i] /= total;
  }
  ring->CommitBorrowed(k);
  return Status::OK();
}

Result<Signature> SignatureBuilder::BuildRaw(BagView bag,
                                             std::uint64_t bag_index,
                                             BufferArena* arena) const {
  const std::uint64_t seed = MixSeed(options_.seed ^ MixSeed(bag_index));
  switch (options_.method) {
    case SignatureMethod::kKMeans: {
      KMeansOptions opts;
      opts.k = options_.k;
      opts.seed = seed;
      BAGCPD_ASSIGN_OR_RETURN(KMeansResult res,
                              KMeansQuantize(bag, opts, arena));
      return std::move(res.signature);
    }
    case SignatureMethod::kKMedoids: {
      KMedoidsOptions opts;
      opts.k = options_.k;
      opts.seed = seed;
      BAGCPD_ASSIGN_OR_RETURN(KMedoidsResult res,
                              KMedoidsQuantize(bag, opts, arena));
      return std::move(res.signature);
    }
    case SignatureMethod::kLvq: {
      LvqOptions opts;
      opts.k = options_.k;
      opts.seed = seed;
      return LvqQuantize(bag, opts, arena);
    }
    case SignatureMethod::kHistogram: {
      HistogramOptions opts;
      opts.bin_width = options_.bin_width;
      opts.origin = options_.histogram_origin;
      return HistogramQuantize(bag, opts, arena);
    }
    case SignatureMethod::kCentroid: {
      BAGCPD_RETURN_NOT_OK(ValidateBagView(bag));
      return CentroidSignature(bag, arena);
    }
  }
  return Status::Invalid("unknown signature method");
}

}  // namespace bagcpd
