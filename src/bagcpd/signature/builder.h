// SignatureBuilder: the single configuration point choosing how bags are
// summarized into signatures. The detector and all experiment harnesses go
// through this interface. The primary entry point takes a zero-copy BagView;
// the nested-Bag overload flattens once and is bitwise-identical.

#ifndef BAGCPD_SIGNATURE_BUILDER_H_
#define BAGCPD_SIGNATURE_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bagcpd/common/flat_bag.h"
#include "bagcpd/common/point.h"
#include "bagcpd/common/result.h"
#include "bagcpd/signature/histogram.h"
#include "bagcpd/signature/kmeans.h"
#include "bagcpd/signature/kmedoids.h"
#include "bagcpd/signature/lvq.h"
#include "bagcpd/signature/signature.h"
#include "bagcpd/signature/signature_set.h"

namespace bagcpd {

/// \brief Quantization method used to form signatures (paper Section 3.1).
enum class SignatureMethod {
  /// Lloyd k-means with k-means++ seeding (default).
  kKMeans,
  /// PAM-style k-medoids.
  kKMedoids,
  /// Competitive-learning vector quantization.
  kLvq,
  /// Fixed-width histogram bins.
  kHistogram,
  /// Single centroid (the information-losing baseline of Section 1).
  kCentroid,
};

/// \brief Returns a short lowercase name ("kmeans", "histogram", ...).
const char* SignatureMethodName(SignatureMethod method);

/// \brief Every quantization method, in declaration order (api/ registry
/// name table).
const std::vector<SignatureMethod>& AllSignatureMethods();

/// \brief Inverse of SignatureMethodName; rejects unknown names with a
/// message listing the known ones.
Result<SignatureMethod> ParseSignatureMethod(const std::string& name);

/// \brief Unified options for SignatureBuilder.
struct SignatureBuilderOptions {
  SignatureMethod method = SignatureMethod::kKMeans;
  /// Cluster/prototype count for kKMeans / kKMedoids / kLvq.
  std::size_t k = 8;
  /// Histogram bin width for kHistogram.
  double bin_width = 1.0;
  /// Histogram grid origin for kHistogram.
  double histogram_origin = 0.0;
  /// If true, signature weights are normalized to total mass 1. EMD between
  /// normalized signatures is a metric (balanced transport), bag-size
  /// fluctuations stop leaking into the distances, and the exact 1-d sweep
  /// fast path applies to every pair (emd/emd_1d.h). The paper's experiments
  /// use raw counts (partial matching); both behave almost identically
  /// because Eq. 12 normalizes by the moved mass.
  bool normalize = false;
  /// Base seed; per-bag seeds are derived from it and the bag index so the
  /// same stream always produces the same signatures.
  std::uint64_t seed = 0;
};

/// \brief Stateless factory turning bags into signatures.
class SignatureBuilder {
 public:
  explicit SignatureBuilder(SignatureBuilderOptions options)
      : options_(options) {}

  /// \brief Builds the signature of `bag` (normalized iff options().normalize).
  /// `bag_index` seeds any stochastic quantizer deterministically per
  /// position in the stream. With a non-null `arena`, the signature's packed
  /// buffer and the quantizer scratch recycle through that arena (identical
  /// output either way).
  Result<Signature> Build(BagView bag, std::uint64_t bag_index = 0,
                          BufferArena* arena = nullptr) const;

  /// \brief Nested-bag convenience: validates and flattens once, then runs
  /// the view path. Output is bitwise-identical to the flat entry point.
  Result<Signature> Build(const Bag& bag, std::uint64_t bag_index = 0,
                          BufferArena* arena = nullptr) const;

  /// \brief Builds the signature of `bag` directly into `ring`'s next slot —
  /// the quantizer assembles into the ring's own storage (borrowed slot), so
  /// the detector push path performs no intermediate signature copy. The
  /// committed slot is bitwise-identical to Build() + SignatureRing::PushBack.
  /// Histogram is the one method whose cluster count is data-dependent and
  /// unbounded; it keeps the copying path internally. On error the ring is
  /// unchanged.
  Status BuildInto(BagView bag, std::uint64_t bag_index, BufferArena* arena,
                   SignatureRing* ring) const;

  const SignatureBuilderOptions& options() const { return options_; }

 private:
  /// \brief Quantizes without the normalization step.
  Result<Signature> BuildRaw(BagView bag, std::uint64_t bag_index,
                             BufferArena* arena) const;

 private:
  SignatureBuilderOptions options_;
};

}  // namespace bagcpd

#endif  // BAGCPD_SIGNATURE_BUILDER_H_
